#pragma once

#include "pbio/pbio.hpp"

namespace acex::pbio {

/// Columnar (struct-of-arrays) shuffle for fixed-layout PBIO streams.
///
/// Fig. 6's insight is that the FIELDS of a record differ wildly in
/// compressibility (types ~10 %, velocities ~50 %, coordinates ~90 %), yet
/// a PBIO stream interleaves them per record, denying the codecs long
/// same-field runs. Shuffling transposes the packed records so each
/// field's bytes are contiguous — the standard columnar trick, and an
/// instance of the "application-specific compression" the paper's
/// middleware exists to host: a handler can shuffle before compressing and
/// unshuffle after decompressing with no loss.
///
/// Only streams whose record layout is fixed-size (no string/bytes fields)
/// can be transposed; shuffle() throws ConfigError otherwise.
///
/// Wire layout of the shuffled form: the original format header, verbatim,
/// followed by a varint record count, then one contiguous column per field
/// in declaration order. unshuffle() restores the byte-identical original
/// stream.

/// True when the stream's schema is fixed-layout (transposable).
bool is_columnar_eligible(const RecordFormat& format) noexcept;

/// Transpose records into columns. Throws ConfigError on variable-size
/// layouts, DecodeError on malformed input.
Bytes columnar_shuffle(ByteView stream);

/// Inverse of columnar_shuffle; returns the original PBIO stream.
Bytes columnar_unshuffle(ByteView shuffled);

/// One field's contiguous byte range within a shuffled stream.
struct ColumnSlice {
  std::string name;        ///< field name from the schema
  FieldType type = FieldType::kInt32;
  std::size_t width = 0;   ///< packed bytes per element
  std::size_t offset = 0;  ///< byte offset of the column in the shuffled form
  std::size_t size = 0;    ///< records * width bytes
};

/// Structural map of a shuffled stream: where the preamble (format header +
/// record-count varint) ends and where each field's column lives. Spares
/// per-column consumers — the colpipe planner, the columnar ablation bench —
/// from re-deriving offsets out of the wire form by hand.
struct ColumnSlices {
  std::size_t header_size = 0;  ///< bytes of the verbatim format header
  std::size_t body_offset = 0;  ///< first column's offset (header + varint)
  std::uint64_t records = 0;
  std::vector<ColumnSlice> columns;

  /// View of one column's bytes within `shuffled` (the buffer the slices
  /// were computed from).
  ByteView column(ByteView shuffled, std::size_t index) const {
    return shuffled.subspan(columns.at(index).offset, columns.at(index).size);
  }
};

/// Parse the layout of a shuffled stream (as produced by columnar_shuffle)
/// into per-column offsets/extents. Throws ConfigError on variable-size
/// layouts, DecodeError when the record count is inconsistent with the
/// body size.
ColumnSlices column_slices(ByteView shuffled);

}  // namespace acex::pbio
