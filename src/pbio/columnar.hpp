#pragma once

#include "pbio/pbio.hpp"

namespace acex::pbio {

/// Columnar (struct-of-arrays) shuffle for fixed-layout PBIO streams.
///
/// Fig. 6's insight is that the FIELDS of a record differ wildly in
/// compressibility (types ~10 %, velocities ~50 %, coordinates ~90 %), yet
/// a PBIO stream interleaves them per record, denying the codecs long
/// same-field runs. Shuffling transposes the packed records so each
/// field's bytes are contiguous — the standard columnar trick, and an
/// instance of the "application-specific compression" the paper's
/// middleware exists to host: a handler can shuffle before compressing and
/// unshuffle after decompressing with no loss.
///
/// Only streams whose record layout is fixed-size (no string/bytes fields)
/// can be transposed; shuffle() throws ConfigError otherwise.
///
/// Wire layout of the shuffled form: the original format header, verbatim,
/// followed by a varint record count, then one contiguous column per field
/// in declaration order. unshuffle() restores the byte-identical original
/// stream.

/// True when the stream's schema is fixed-layout (transposable).
bool is_columnar_eligible(const RecordFormat& format) noexcept;

/// Transpose records into columns. Throws ConfigError on variable-size
/// layouts, DecodeError on malformed input.
Bytes columnar_shuffle(ByteView stream);

/// Inverse of columnar_shuffle; returns the original PBIO stream.
Bytes columnar_unshuffle(ByteView shuffled);

}  // namespace acex::pbio
