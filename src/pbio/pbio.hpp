#pragma once

// PBIO-style self-describing binary record interchange (paper ref [35]:
// "Fast Heterogeneous Binary Data Interchange"). A stream opens with a
// format header describing the record layout — field names, types, and the
// sender's byte order — followed by packed records. Receivers decode any
// stream without prior knowledge of the layout and byte-swap only when the
// sender's byte order differs from theirs, which is PBIO's core trick.
//
// The molecular-dynamics workload (Fig. 6) is carried in this encoding.

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace acex::pbio {

/// Wire-stable field type tags.
enum class FieldType : std::uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kUInt32 = 2,
  kUInt64 = 3,
  kFloat32 = 4,
  kFloat64 = 5,
  kString = 6,  ///< varint length + UTF-8 bytes
  kBytes = 7,   ///< varint length + raw bytes
};

/// Human-readable name of a field type ("int32", "float64", ...).
std::string_view field_type_name(FieldType type) noexcept;

/// One field in a record layout.
struct FieldDesc {
  std::string name;
  FieldType type;

  bool operator==(const FieldDesc&) const = default;
};

/// A named, ordered collection of fields — the schema records conform to.
class RecordFormat {
 public:
  RecordFormat() = default;

  /// Throws ConfigError on empty/duplicate field names or an empty format
  /// name.
  RecordFormat(std::string name, std::vector<FieldDesc> fields);

  const std::string& name() const noexcept { return name_; }
  const std::vector<FieldDesc>& fields() const noexcept { return fields_; }
  std::size_t field_count() const noexcept { return fields_.size(); }

  /// Index of the field called `name`; throws ConfigError if absent.
  std::size_t field_index(std::string_view name) const;

  bool operator==(const RecordFormat&) const = default;

 private:
  std::string name_;
  std::vector<FieldDesc> fields_;
};

/// A dynamically typed field value.
using Value = std::variant<std::int32_t, std::int64_t, std::uint32_t,
                           std::uint64_t, float, double, std::string, Bytes>;

/// The FieldType a Value currently holds.
FieldType value_type(const Value& v) noexcept;

/// One record conforming to a RecordFormat. Values are type-checked on set:
/// storing a double into an int32 field throws ConfigError.
class Record {
 public:
  /// Copies the format into shared storage, so records stay valid after
  /// the schema object (or a Decoder) that described them is gone.
  explicit Record(const RecordFormat& format);

  /// Shares `format` without copying (the Decoder's fast path).
  explicit Record(std::shared_ptr<const RecordFormat> format);

  const RecordFormat& format() const noexcept { return *format_; }

  void set(std::string_view field, Value value);
  void set(std::size_t index, Value value);

  const Value& get(std::string_view field) const;
  const Value& get(std::size_t index) const;

  /// Typed read; throws ConfigError if the stored type differs.
  template <typename T>
  const T& as(std::string_view field) const {
    const Value& v = get(field);
    if (const T* p = std::get_if<T>(&v)) return *p;
    throw_type_mismatch(field);
  }

 private:
  [[noreturn]] void throw_type_mismatch(std::string_view field) const;

  std::shared_ptr<const RecordFormat> format_;
  std::vector<Value> values_;
};

/// Byte order stamped into the stream header.
enum class ByteOrder : std::uint8_t { kLittle = 0, kBig = 1 };

/// The byte order of this machine.
ByteOrder host_order() noexcept;

/// Serializes a format header followed by records.
class Encoder {
 public:
  /// `order` defaults to the host's native order — PBIO senders never swap;
  /// the test suite overrides it to exercise the receiver's swap path.
  explicit Encoder(RecordFormat format, ByteOrder order = host_order());

  const RecordFormat& format() const noexcept { return format_; }

  /// Append the stream header (magic, version, byte order, schema).
  void encode_format(Bytes& out) const;

  /// Append one record's packed field values. Throws ConfigError if a
  /// field was never set or holds the wrong type.
  void encode_record(const Record& record, Bytes& out) const;

 private:
  RecordFormat format_;
  ByteOrder order_;
};

/// Parses a stream produced by any Encoder, swapping byte order if the
/// sender's differs from the host's.
class Decoder {
 public:
  /// Read the stream header at `*pos`, advancing it. Throws DecodeError on
  /// malformed headers.
  static Decoder open(ByteView stream, std::size_t* pos);

  const RecordFormat& format() const noexcept { return *format_; }
  ByteOrder sender_order() const noexcept { return order_; }

  /// Decode one record at `*pos`, advancing it.
  Record decode_record(ByteView stream, std::size_t* pos) const;

 private:
  Decoder(RecordFormat format, ByteOrder order)
      : format_(std::make_shared<const RecordFormat>(std::move(format))),
        order_(order) {}

  std::shared_ptr<const RecordFormat> format_;
  ByteOrder order_;
};

/// Convenience: header + all records in one buffer.
Bytes encode_stream(const Encoder& encoder, const std::vector<Record>& records);

/// Convenience: parse a whole buffer back into records.
std::vector<Record> decode_stream(ByteView stream);

}  // namespace acex::pbio
