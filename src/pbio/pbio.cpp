#include "pbio/pbio.hpp"

#include <bit>
#include <cstring>
#include <unordered_set>

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::pbio {
namespace {

constexpr std::uint8_t kMagic0 = 'P';
constexpr std::uint8_t kMagic1 = 'B';
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kMaxFields = 4096;
constexpr std::size_t kMaxStringLength = 1 << 20;

void put_string(Bytes& out, std::string_view s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(ByteView in, std::size_t* pos) {
  const std::uint64_t len = get_varint(in, pos);
  if (len > kMaxStringLength || *pos + len > in.size()) {
    throw DecodeError("pbio: truncated or oversized string");
  }
  std::string s(reinterpret_cast<const char*>(in.data() + *pos),
                static_cast<std::size_t>(len));
  *pos += len;
  return s;
}

template <typename T>
void put_scalar(Bytes& out, T value, bool swap) {
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  if (swap) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(raw[i], raw[sizeof(T) - 1 - i]);
    }
  }
  out.insert(out.end(), raw, raw + sizeof(T));
}

template <typename T>
T get_scalar(ByteView in, std::size_t* pos, bool swap) {
  if (*pos + sizeof(T) > in.size()) {
    throw DecodeError("pbio: truncated scalar field");
  }
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  if (swap) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(raw[i], raw[sizeof(T) - 1 - i]);
    }
  }
  T value;
  std::memcpy(&value, raw, sizeof(T));
  return value;
}

}  // namespace

std::string_view field_type_name(FieldType type) noexcept {
  switch (type) {
    case FieldType::kInt32:
      return "int32";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kUInt32:
      return "uint32";
    case FieldType::kUInt64:
      return "uint64";
    case FieldType::kFloat32:
      return "float32";
    case FieldType::kFloat64:
      return "float64";
    case FieldType::kString:
      return "string";
    case FieldType::kBytes:
      return "bytes";
  }
  return "unknown";
}

RecordFormat::RecordFormat(std::string name, std::vector<FieldDesc> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  if (name_.empty()) throw ConfigError("pbio: format name must not be empty");
  std::unordered_set<std::string_view> seen;
  for (const auto& f : fields_) {
    if (f.name.empty()) {
      throw ConfigError("pbio: field name must not be empty");
    }
    if (!seen.insert(f.name).second) {
      throw ConfigError("pbio: duplicate field name: " + f.name);
    }
  }
}

std::size_t RecordFormat::field_index(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  throw ConfigError("pbio: no field named " + std::string(name));
}

FieldType value_type(const Value& v) noexcept {
  return static_cast<FieldType>(v.index());
}

Record::Record(const RecordFormat& format)
    : Record(std::make_shared<const RecordFormat>(format)) {}

Record::Record(std::shared_ptr<const RecordFormat> format)
    : format_(std::move(format)), values_(format_->field_count()) {
  const RecordFormat& fmt = *format_;
  // Default-construct each value to its field's type so a freshly built
  // record is already encodable (zeros / empty strings).
  for (std::size_t i = 0; i < values_.size(); ++i) {
    switch (fmt.fields()[i].type) {
      case FieldType::kInt32:
        values_[i] = std::int32_t{0};
        break;
      case FieldType::kInt64:
        values_[i] = std::int64_t{0};
        break;
      case FieldType::kUInt32:
        values_[i] = std::uint32_t{0};
        break;
      case FieldType::kUInt64:
        values_[i] = std::uint64_t{0};
        break;
      case FieldType::kFloat32:
        values_[i] = 0.0f;
        break;
      case FieldType::kFloat64:
        values_[i] = 0.0;
        break;
      case FieldType::kString:
        values_[i] = std::string{};
        break;
      case FieldType::kBytes:
        values_[i] = Bytes{};
        break;
    }
  }
}

void Record::set(std::string_view field, Value value) {
  set(format_->field_index(field), std::move(value));
}

void Record::set(std::size_t index, Value value) {
  if (index >= values_.size()) throw ConfigError("pbio: field index range");
  const FieldType expected = format_->fields()[index].type;
  if (value_type(value) != expected) {
    throw ConfigError("pbio: type mismatch for field '" +
                      format_->fields()[index].name + "': expected " +
                      std::string(field_type_name(expected)) + ", got " +
                      std::string(field_type_name(value_type(value))));
  }
  values_[index] = std::move(value);
}

const Value& Record::get(std::string_view field) const {
  return get(format_->field_index(field));
}

const Value& Record::get(std::size_t index) const {
  if (index >= values_.size()) throw ConfigError("pbio: field index range");
  return values_[index];
}

void Record::throw_type_mismatch(std::string_view field) const {
  throw ConfigError("pbio: typed access mismatch on field '" +
                    std::string(field) + "'");
}

ByteOrder host_order() noexcept {
  return std::endian::native == std::endian::big ? ByteOrder::kBig
                                                 : ByteOrder::kLittle;
}

Encoder::Encoder(RecordFormat format, ByteOrder order)
    : format_(std::move(format)), order_(order) {
  if (format_.field_count() == 0) {
    throw ConfigError("pbio: format needs at least one field");
  }
}

void Encoder::encode_format(Bytes& out) const {
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(order_));
  put_string(out, format_.name());
  put_varint(out, format_.field_count());
  for (const auto& f : format_.fields()) {
    out.push_back(static_cast<std::uint8_t>(f.type));
    put_string(out, f.name);
  }
}

void Encoder::encode_record(const Record& record, Bytes& out) const {
  if (&record.format() != &format_ && !(record.format() == format_)) {
    throw ConfigError("pbio: record belongs to a different format");
  }
  const bool swap = order_ != host_order();
  for (std::size_t i = 0; i < format_.field_count(); ++i) {
    const Value& v = record.get(i);
    switch (format_.fields()[i].type) {
      case FieldType::kInt32:
        put_scalar(out, std::get<std::int32_t>(v), swap);
        break;
      case FieldType::kInt64:
        put_scalar(out, std::get<std::int64_t>(v), swap);
        break;
      case FieldType::kUInt32:
        put_scalar(out, std::get<std::uint32_t>(v), swap);
        break;
      case FieldType::kUInt64:
        put_scalar(out, std::get<std::uint64_t>(v), swap);
        break;
      case FieldType::kFloat32:
        put_scalar(out, std::get<float>(v), swap);
        break;
      case FieldType::kFloat64:
        put_scalar(out, std::get<double>(v), swap);
        break;
      case FieldType::kString:
        put_string(out, std::get<std::string>(v));
        break;
      case FieldType::kBytes: {
        const Bytes& b = std::get<Bytes>(v);
        put_varint(out, b.size());
        out.insert(out.end(), b.begin(), b.end());
        break;
      }
    }
  }
}

Decoder Decoder::open(ByteView stream, std::size_t* pos) {
  if (*pos + 4 > stream.size()) throw DecodeError("pbio: truncated header");
  if (stream[*pos] != kMagic0 || stream[*pos + 1] != kMagic1) {
    throw DecodeError("pbio: bad magic");
  }
  if (stream[*pos + 2] != kVersion) throw DecodeError("pbio: bad version");
  const std::uint8_t order_byte = stream[*pos + 3];
  if (order_byte > 1) throw DecodeError("pbio: bad byte-order flag");
  *pos += 4;

  std::string name = get_string(stream, pos);
  const std::uint64_t field_count = get_varint(stream, pos);
  if (field_count == 0 || field_count > kMaxFields) {
    throw DecodeError("pbio: invalid field count");
  }
  std::vector<FieldDesc> fields;
  fields.reserve(static_cast<std::size_t>(field_count));
  for (std::uint64_t i = 0; i < field_count; ++i) {
    if (*pos >= stream.size()) throw DecodeError("pbio: truncated schema");
    const std::uint8_t type_byte = stream[(*pos)++];
    if (type_byte > static_cast<std::uint8_t>(FieldType::kBytes)) {
      throw DecodeError("pbio: unknown field type");
    }
    FieldDesc desc;
    desc.type = static_cast<FieldType>(type_byte);
    desc.name = get_string(stream, pos);
    fields.push_back(std::move(desc));
  }
  try {
    return Decoder(RecordFormat(std::move(name), std::move(fields)),
                   static_cast<ByteOrder>(order_byte));
  } catch (const ConfigError& e) {
    throw DecodeError(std::string("pbio: invalid schema: ") + e.what());
  }
}

Record Decoder::decode_record(ByteView stream, std::size_t* pos) const {
  const bool swap = order_ != host_order();
  Record record(format_);
  for (std::size_t i = 0; i < format_->field_count(); ++i) {
    switch (format_->fields()[i].type) {
      case FieldType::kInt32:
        record.set(i, get_scalar<std::int32_t>(stream, pos, swap));
        break;
      case FieldType::kInt64:
        record.set(i, get_scalar<std::int64_t>(stream, pos, swap));
        break;
      case FieldType::kUInt32:
        record.set(i, get_scalar<std::uint32_t>(stream, pos, swap));
        break;
      case FieldType::kUInt64:
        record.set(i, get_scalar<std::uint64_t>(stream, pos, swap));
        break;
      case FieldType::kFloat32:
        record.set(i, get_scalar<float>(stream, pos, swap));
        break;
      case FieldType::kFloat64:
        record.set(i, get_scalar<double>(stream, pos, swap));
        break;
      case FieldType::kString:
        record.set(i, get_string(stream, pos));
        break;
      case FieldType::kBytes: {
        const std::uint64_t len = get_varint(stream, pos);
        if (*pos + len > stream.size()) {
          throw DecodeError("pbio: truncated bytes field");
        }
        const auto body = stream.subspan(*pos, static_cast<std::size_t>(len));
        *pos += static_cast<std::size_t>(len);
        record.set(i, Bytes(body.begin(), body.end()));
        break;
      }
    }
  }
  return record;
}

Bytes encode_stream(const Encoder& encoder,
                    const std::vector<Record>& records) {
  Bytes out;
  encoder.encode_format(out);
  for (const auto& r : records) encoder.encode_record(r, out);
  return out;
}

std::vector<Record> decode_stream(ByteView stream) {
  std::size_t pos = 0;
  const Decoder decoder = Decoder::open(stream, &pos);
  std::vector<Record> records;
  while (pos < stream.size()) {
    records.push_back(decoder.decode_record(stream, &pos));
  }
  return records;
}

}  // namespace acex::pbio
