#include "pbio/columnar.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::pbio {
namespace {

/// Packed on-wire width of a fixed-size field; 0 for variable-size kinds.
std::size_t field_width(FieldType type) noexcept {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kUInt32:
    case FieldType::kFloat32:
      return 4;
    case FieldType::kInt64:
    case FieldType::kUInt64:
    case FieldType::kFloat64:
      return 8;
    case FieldType::kString:
    case FieldType::kBytes:
      return 0;
  }
  return 0;
}

struct Layout {
  std::size_t header_size = 0;   // bytes of the format header
  std::size_t record_size = 0;   // packed bytes per record
  std::vector<std::size_t> widths;
  std::vector<FieldDesc> fields;
};

Layout parse_layout(ByteView stream) {
  std::size_t pos = 0;
  const Decoder decoder = Decoder::open(stream, &pos);
  Layout layout;
  layout.header_size = pos;
  for (const auto& field : decoder.format().fields()) {
    const std::size_t width = field_width(field.type);
    if (width == 0) {
      throw ConfigError("columnar: field '" + field.name +
                        "' has variable size; stream is not transposable");
    }
    layout.widths.push_back(width);
    layout.record_size += width;
    layout.fields.push_back(field);
  }
  return layout;
}

}  // namespace

bool is_columnar_eligible(const RecordFormat& format) noexcept {
  for (const auto& field : format.fields()) {
    if (field_width(field.type) == 0) return false;
  }
  return format.field_count() > 0;
}

Bytes columnar_shuffle(ByteView stream) {
  const Layout layout = parse_layout(stream);
  const std::size_t body = stream.size() - layout.header_size;
  if (body % layout.record_size != 0) {
    throw DecodeError("columnar: truncated record in stream");
  }
  const std::size_t records = body / layout.record_size;

  Bytes out;
  out.reserve(stream.size() + 8);
  out.insert(out.end(), stream.begin(),
             stream.begin() + static_cast<std::ptrdiff_t>(layout.header_size));
  put_varint(out, records);

  // One pass per field: gather that field's bytes across all records.
  const std::uint8_t* base = stream.data() + layout.header_size;
  std::size_t field_offset = 0;
  for (const std::size_t width : layout.widths) {
    for (std::size_t r = 0; r < records; ++r) {
      const std::uint8_t* src = base + r * layout.record_size + field_offset;
      out.insert(out.end(), src, src + width);
    }
    field_offset += width;
  }
  return out;
}

Bytes columnar_unshuffle(ByteView shuffled) {
  const Layout layout = parse_layout(shuffled);
  std::size_t pos = layout.header_size;
  const std::uint64_t records = get_varint(shuffled, &pos);
  const std::size_t body = shuffled.size() - pos;
  if (body % layout.record_size != 0 ||
      records != body / layout.record_size) {
    throw DecodeError("columnar: record count inconsistent with body size");
  }

  Bytes out;
  out.reserve(shuffled.size());
  out.insert(out.end(), shuffled.begin(),
             shuffled.begin() + static_cast<std::ptrdiff_t>(layout.header_size));
  out.resize(layout.header_size + body);

  std::uint8_t* base = out.data() + layout.header_size;
  const std::uint8_t* src = shuffled.data() + pos;
  std::size_t field_offset = 0;
  for (const std::size_t width : layout.widths) {
    for (std::uint64_t r = 0; r < records; ++r) {
      std::uint8_t* dst = base + r * layout.record_size + field_offset;
      std::copy(src, src + width, dst);
      src += width;
    }
    field_offset += width;
  }
  return out;
}

ColumnSlices column_slices(ByteView shuffled) {
  const Layout layout = parse_layout(shuffled);
  std::size_t pos = layout.header_size;
  const std::uint64_t records = get_varint(shuffled, &pos);
  const std::size_t body = shuffled.size() - pos;
  if (layout.record_size == 0 || body % layout.record_size != 0 ||
      records != body / layout.record_size) {
    throw DecodeError("columnar: record count inconsistent with body size");
  }

  ColumnSlices slices;
  slices.header_size = layout.header_size;
  slices.body_offset = pos;
  slices.records = records;
  std::size_t offset = pos;
  for (std::size_t i = 0; i < layout.widths.size(); ++i) {
    ColumnSlice slice;
    slice.name = layout.fields[i].name;
    slice.type = layout.fields[i].type;
    slice.width = layout.widths[i];
    slice.offset = offset;
    slice.size = static_cast<std::size_t>(records) * layout.widths[i];
    offset += slice.size;
    slices.columns.push_back(std::move(slice));
  }
  return slices;
}

}  // namespace acex::pbio
