#include "transport/sim_transport.hpp"

#include "util/error.hpp"

namespace acex::transport {

void SimHalf::send(ByteView message) {
  last_ = link_->transmit(message.size(), clock_->now());
  clock_->advance_to(last_.delivered);  // blocking semantics: wait for accept
  bytes_sent_ += message.size();
  peer_->inbox_.emplace_back(message.begin(), message.end());
}

std::optional<Bytes> SimHalf::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes front = std::move(inbox_.front());
  inbox_.pop_front();
  return front;
}

SimDuplex::SimDuplex(netsim::SimLink& forward, netsim::SimLink& reverse,
                     VirtualClock& clock) {
  if (&forward == &reverse) {
    throw ConfigError(
        "SimDuplex: use distinct links for the two directions");
  }
  a_.link_ = &forward;
  b_.link_ = &reverse;
  a_.clock_ = b_.clock_ = &clock;
  a_.peer_ = &b_;
  b_.peer_ = &a_;
}

}  // namespace acex::transport
