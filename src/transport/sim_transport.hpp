#pragma once

#include <deque>

#include "netsim/link.hpp"
#include "transport/transport.hpp"

namespace acex::transport {

/// One direction of a SimDuplex: sending pushes into the peer's inbox after
/// emulating the link, advancing the shared VirtualClock to the delivery
/// instant (blocking-send semantics). receive() drains the local inbox and
/// never blocks — simulation is single-threaded.
class SimHalf final : public Transport {
 public:
  void send(ByteView message) override;
  std::optional<Bytes> receive() override;
  const Clock& clock() const override { return *clock_; }

  /// Total payload bytes this endpoint pushed through its link.
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

  /// Link-level statistics of this endpoint's most recent send.
  const netsim::TransferResult& last_transfer() const noexcept {
    return last_;
  }

  std::size_t pending() const noexcept { return inbox_.size(); }

 private:
  friend class SimDuplex;
  SimHalf() = default;

  netsim::SimLink* link_ = nullptr;
  VirtualClock* clock_ = nullptr;
  SimHalf* peer_ = nullptr;
  std::deque<Bytes> inbox_;
  netsim::TransferResult last_{};
  std::uint64_t bytes_sent_ = 0;
};

/// A bidirectional emulated connection: endpoint a() sends over `forward`,
/// endpoint b() sends over `reverse`, both on one VirtualClock. A Fig. 8
/// experiment simulating 160 s of a loaded 100 Mb link completes in
/// wall-milliseconds and is fully deterministic.
///
/// Links and clock must outlive the duplex. Use distinct links for the two
/// directions — sharing one SimLink would falsely serialize data against
/// control traffic.
class SimDuplex {
 public:
  SimDuplex(netsim::SimLink& forward, netsim::SimLink& reverse,
            VirtualClock& clock);

  SimDuplex(const SimDuplex&) = delete;
  SimDuplex& operator=(const SimDuplex&) = delete;

  SimHalf& a() noexcept { return a_; }
  SimHalf& b() noexcept { return b_; }

 private:
  SimHalf a_, b_;
};

}  // namespace acex::transport
