#include "transport/retransmit.hpp"

#include "util/error.hpp"

namespace acex::transport {

RetransmitRing::RetransmitRing(std::size_t capacity, int max_retries)
    : capacity_(capacity), max_retries_(max_retries) {
  if (capacity == 0 || max_retries <= 0) {
    throw ConfigError("retransmit ring: capacity and retries must be positive");
  }
}

void RetransmitRing::store(std::uint64_t seq, Bytes wire) {
  if (slots_.size() == capacity_) {
    slots_.pop_front();
    ++evictions_;
  }
  slots_.push_back(Slot{seq, std::move(wire), 0});
}

const Bytes* RetransmitRing::replay(std::uint64_t seq) {
  for (auto& slot : slots_) {
    if (slot.seq != seq) continue;
    if (slot.retries >= max_retries_) {
      ++refusals_;
      return nullptr;
    }
    ++slot.retries;
    ++replays_;
    return &slot.wire;
  }
  ++refusals_;
  return nullptr;
}

}  // namespace acex::transport
