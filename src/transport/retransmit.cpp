#include "transport/retransmit.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::transport {
namespace {

struct RingMetrics {
  obs::Counter& stores;
  obs::Counter& replays;
  obs::Counter& evictions;
  obs::Counter& refusals;
};

RingMetrics& ring_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static RingMetrics m{r.counter("acex.transport.ring.stores"),
                       r.counter("acex.transport.ring.replays"),
                       r.counter("acex.transport.ring.evictions"),
                       r.counter("acex.transport.ring.refusals")};
  return m;
}

}  // namespace

RetransmitRing::RetransmitRing(std::size_t capacity, int max_retries)
    : capacity_(capacity), max_retries_(max_retries) {
  if (capacity == 0 || max_retries <= 0) {
    throw ConfigError("retransmit ring: capacity and retries must be positive");
  }
}

void RetransmitRing::store(std::uint64_t seq, Bytes wire) {
  if (slots_.size() == capacity_) {
    slots_.pop_front();
    ++evictions_;
    ring_metrics().evictions.add(1);
  }
  slots_.push_back(Slot{seq, std::move(wire), 0});
  ring_metrics().stores.add(1);
}

const Bytes* RetransmitRing::replay(std::uint64_t seq) {
  for (auto& slot : slots_) {
    if (slot.seq != seq) continue;
    if (slot.retries >= max_retries_) {
      ++refusals_;
      ring_metrics().refusals.add(1);
      return nullptr;
    }
    ++slot.retries;
    ++replays_;
    ring_metrics().replays.add(1);
    return &slot.wire;
  }
  ++refusals_;
  ring_metrics().refusals.add(1);
  return nullptr;
}

}  // namespace acex::transport
