#include "transport/retransmit.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::transport {
namespace {

struct RingMetrics {
  obs::Counter& stores;
  obs::Counter& replays;
  obs::Counter& evictions;
  obs::Counter& refusals;
  obs::Gauge& bytes;
};

RingMetrics& ring_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static RingMetrics m{r.counter("acex.transport.ring.stores"),
                       r.counter("acex.transport.ring.replays"),
                       r.counter("acex.transport.ring.evictions"),
                       r.counter("acex.transport.ring.refusals"),
                       r.gauge("acex.transport.ring.bytes")};
  return m;
}

}  // namespace

RetransmitRing::RetransmitRing(std::size_t capacity, int max_retries,
                               std::size_t max_bytes)
    : capacity_(capacity), max_retries_(max_retries), max_bytes_(max_bytes) {
  if (capacity == 0 || max_retries <= 0) {
    throw ConfigError("retransmit ring: capacity and retries must be positive");
  }
}

RetransmitRing::~RetransmitRing() { release_gauge(); }

RetransmitRing::RetransmitRing(RetransmitRing&& other) noexcept
    : capacity_(other.capacity_),
      max_retries_(other.max_retries_),
      max_bytes_(other.max_bytes_),
      slots_(std::move(other.slots_)),
      bytes_(other.bytes_),
      replays_(other.replays_),
      evictions_(other.evictions_),
      refusals_(other.refusals_) {
  other.slots_.clear();
  other.bytes_ = 0;
}

RetransmitRing& RetransmitRing::operator=(RetransmitRing&& other) noexcept {
  if (this == &other) return *this;
  release_gauge();
  capacity_ = other.capacity_;
  max_retries_ = other.max_retries_;
  max_bytes_ = other.max_bytes_;
  slots_ = std::move(other.slots_);
  bytes_ = other.bytes_;
  replays_ = other.replays_;
  evictions_ = other.evictions_;
  refusals_ = other.refusals_;
  other.slots_.clear();
  other.bytes_ = 0;
  return *this;
}

void RetransmitRing::release_gauge() noexcept {
  if (bytes_ > 0) {
    ring_metrics().bytes.sub(static_cast<std::int64_t>(bytes_));
    bytes_ = 0;
  }
}

void RetransmitRing::evict_front() {
  bytes_ -= slots_.front().wire.size();
  ring_metrics().bytes.sub(
      static_cast<std::int64_t>(slots_.front().wire.size()));
  slots_.pop_front();
  ++evictions_;
  ring_metrics().evictions.add(1);
}

void RetransmitRing::store(std::uint64_t seq, BufferView wire) {
  const std::size_t incoming = wire.size();
  slots_.push_back(Slot{seq, std::move(wire), 0});
  bytes_ += incoming;
  ring_metrics().bytes.add(static_cast<std::int64_t>(incoming));
  ring_metrics().stores.add(1);
  while (slots_.size() > 1 &&
         (slots_.size() > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    evict_front();
  }
}

const BufferView* RetransmitRing::replay(std::uint64_t seq) {
  for (auto& slot : slots_) {
    if (slot.seq != seq) continue;
    if (slot.retries >= max_retries_) {
      ++refusals_;
      ring_metrics().refusals.add(1);
      return nullptr;
    }
    ++slot.retries;
    ++replays_;
    ring_metrics().replays.add(1);
    return &slot.wire;
  }
  ++refusals_;
  ring_metrics().refusals.add(1);
  return nullptr;
}

std::size_t RetransmitRing::bytes_unique(std::set<const void*>& seen) const {
  std::size_t total = 0;
  for (const auto& slot : slots_) {
    const void* key = slot.wire.owner_key();
    if (key != nullptr && !seen.insert(key).second) continue;
    total += slot.wire.size();
  }
  return total;
}

const BufferView* RetransmitRing::peek(std::uint64_t seq) const {
  for (const auto& slot : slots_) {
    if (slot.seq == seq) return &slot.wire;
  }
  return nullptr;
}

}  // namespace acex::transport
