#include "transport/rate_limit.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace acex::transport {

RateLimitedTransport::RateLimitedTransport(Transport& inner,
                                           double bytes_per_second,
                                           std::size_t burst_bytes)
    : inner_(&inner),
      rate_(bytes_per_second),
      burst_(static_cast<double>(burst_bytes)),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(inner.clock().now()) {
  if (!(bytes_per_second > 0)) {
    throw ConfigError("rate limit: bytes_per_second must be positive");
  }
  if (burst_bytes == 0) {
    throw ConfigError("rate limit: burst_bytes must be positive");
  }
}

void RateLimitedTransport::send(ByteView message) {
  // Deficit bucket: a send may drive the balance arbitrarily negative (so
  // messages larger than the burst still progress), but the next send
  // waits until the deficit refills — the long-run average is exactly
  // `rate_`, with at most one `burst_` of slack.
  for (;;) {
    const Seconds now = inner_->clock().now();
    tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
    last_refill_ = now;
    if (tokens_ >= 0) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(-tokens_ / rate_, 0.05)));
  }
  tokens_ -= static_cast<double>(message.size());
  inner_->send(message);
}

}  // namespace acex::transport
