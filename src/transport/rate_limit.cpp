#include "transport/rate_limit.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::transport {
namespace {

struct LimiterMetrics {
  obs::Counter& bytes;        ///< payload bytes admitted
  obs::Counter& throttles;    ///< sends that had to wait for refill
  obs::Counter& throttle_us;  ///< cumulative modeled wait charged to senders
};

LimiterMetrics& limiter_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static LimiterMetrics m{r.counter("acex.transport.limit.bytes"),
                          r.counter("acex.transport.limit.throttles"),
                          r.counter("acex.transport.limit.throttle_us")};
  return m;
}

}  // namespace

RateLimitedTransport::RateLimitedTransport(Transport& inner,
                                           double bytes_per_second,
                                           std::size_t burst_bytes)
    : inner_(&inner),
      rate_(bytes_per_second),
      burst_(static_cast<double>(burst_bytes)),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(inner.clock().now()) {
  if (!(bytes_per_second > 0)) {
    throw ConfigError("rate limit: bytes_per_second must be positive");
  }
  if (burst_bytes == 0) {
    throw ConfigError("rate limit: burst_bytes must be positive");
  }
}

void RateLimitedTransport::send(ByteView message) {
  // Deficit bucket: a send may drive the balance arbitrarily negative (so
  // messages larger than the burst still progress), but the next send
  // waits until the deficit refills — the long-run average is exactly
  // `rate_`, with at most one `burst_` of slack.
  const Seconds wait_start = inner_->clock().now();
  bool throttled = false;
  for (;;) {
    const Seconds now = inner_->clock().now();
    tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
    last_refill_ = now;
    if (tokens_ >= 0) break;
    throttled = true;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(-tokens_ / rate_, 0.05)));
  }
  tokens_ -= static_cast<double>(message.size());
  LimiterMetrics& metrics = limiter_metrics();
  metrics.bytes.add(message.size());
  if (throttled) {
    metrics.throttles.add(1);
    metrics.throttle_us.add(static_cast<std::uint64_t>(
        (inner_->clock().now() - wait_start) * 1e6));
  }
  inner_->send(message);
}

}  // namespace acex::transport
