#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <utility>

#include "util/buffer_view.hpp"
#include "util/bytes.hpp"

namespace acex::transport {

/// Bounded history of recently sent wire messages, keyed by sequence
/// number, from which a sender answers NACKs. The ring holds the last
/// `capacity` messages (older ones are evicted — a NACK for them fails,
/// like any ARQ scheme whose window has moved on) and caps how many times
/// one sequence may be replayed, so a hopeless receiver cannot pin the
/// sender in a retransmit loop. An optional byte bound (`max_bytes`)
/// evicts on memory pressure as well: a fixed frame cap alone lets large
/// blocks blow past any sane memory envelope.
///
/// Shared by AdaptiveSender (frame replay) and echo::ChannelSender (event
/// replay); both store fully encoded wire bytes so a replay is a plain
/// re-send with no re-encoding. Entries are BufferViews: on the fan-out
/// path sixty-four subscribers' rings all reference ONE shared frame
/// buffer (or shm slab) instead of sixty-four private copies — a session
/// resume replays the very bytes the egress shipped, copy-free.
class RetransmitRing {
 public:
  explicit RetransmitRing(std::size_t capacity = 64, int max_retries = 3,
                          std::size_t max_bytes = 0);
  ~RetransmitRing();

  // The ring owns a share of the process-wide `acex.transport.ring.bytes`
  // gauge; moves must transfer that share rather than double-count it.
  RetransmitRing(RetransmitRing&& other) noexcept;
  RetransmitRing& operator=(RetransmitRing&& other) noexcept;
  RetransmitRing(const RetransmitRing&) = delete;
  RetransmitRing& operator=(const RetransmitRing&) = delete;

  /// Remember `wire` as the bytes sent for `seq`, evicting the oldest
  /// entries while over the frame cap or the byte cap. The entry just
  /// stored is never evicted, even when it alone exceeds `max_bytes`.
  /// Sequences are expected to arrive in increasing order (they are the
  /// sender's own counter). The view's bytes are retained, not copied —
  /// a shared buffer stays shared.
  void store(std::uint64_t seq, BufferView wire);
  void store(std::uint64_t seq, Bytes wire) {
    store(seq, BufferView::own(std::move(wire)));
  }

  /// The wire bytes for `seq` if still held and its retry budget is not
  /// exhausted; counts one retry. Returns nullptr when the entry was
  /// evicted or already replayed max_retries times.
  const BufferView* replay(std::uint64_t seq);

  /// The wire bytes for `seq` if still held, with no retry accounting:
  /// a session resume replaying `[last_acked, head]` is not a NACK and
  /// must not eat into the per-sequence retry budget.
  const BufferView* peek(std::uint64_t seq) const;

  std::size_t capacity() const noexcept { return capacity_; }
  int max_retries() const noexcept { return max_retries_; }
  std::size_t size() const noexcept { return slots_.size(); }
  /// Wire bytes currently held. Bounded by max_bytes() when nonzero.
  /// Counts every slot at full size even when slots share one backing
  /// buffer — the de-duplicated process-wide view is bytes_unique().
  std::size_t bytes() const noexcept { return bytes_; }

  /// Share-aware byte accounting: sums each slot whose backing buffer is
  /// not already in `seen` (registering it as a side effect). Threading
  /// one `seen` set through every ring and egress queue charges a frame
  /// shared by N subscribers once, not N times — the memory-budget probe's
  /// view under zero-copy fan-out.
  std::size_t bytes_unique(std::set<const void*>& seen) const;
  /// Byte cap; 0 means bounded by frame count only.
  std::size_t max_bytes() const noexcept { return max_bytes_; }

  std::uint64_t replays() const noexcept { return replays_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  /// NACKs that could not be honoured (evicted or out of retries).
  std::uint64_t refusals() const noexcept { return refusals_; }

 private:
  struct Slot {
    std::uint64_t seq;
    BufferView wire;
    int retries = 0;
  };

  void evict_front();
  void release_gauge() noexcept;

  std::size_t capacity_;
  int max_retries_;
  std::size_t max_bytes_;
  std::deque<Slot> slots_;
  std::size_t bytes_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t refusals_ = 0;
};

}  // namespace acex::transport
