#pragma once

#include <cstdint>
#include <string>

#include "transport/transport.hpp"

namespace acex::transport {

/// RAII wrapper over a connected TCP socket carrying length-prefixed
/// messages (4-byte little-endian size + body). Wall-clock timed.
///
/// Used by the examples and integration tests to demonstrate the same
/// adaptive pipeline over a real kernel network stack; benches use
/// SimTransport so results are deterministic.
class TcpTransport final : public Transport {
 public:
  /// Adopt an already-connected socket descriptor.
  explicit TcpTransport(int fd);

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;
  TcpTransport(TcpTransport&& other) noexcept;
  TcpTransport& operator=(TcpTransport&& other) noexcept;
  ~TcpTransport() override;

  void send(ByteView message) override;
  std::optional<Bytes> receive() override;
  const Clock& clock() const override { return clock_; }

  /// Close the sending side so the peer's receive() returns nullopt.
  void shutdown_send() noexcept;

 private:
  int fd_ = -1;
  MonotonicClock clock_;
};

/// Listening socket bound to 127.0.0.1:`port` (0 = ephemeral).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// The port actually bound (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Block until a client connects.
  TcpTransport accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:`port`.
TcpTransport tcp_connect(std::uint16_t port);

/// An in-process connected socket pair (AF_UNIX), handy for tests that
/// want real kernel I/O without ports.
std::pair<TcpTransport, TcpTransport> socket_pair();

}  // namespace acex::transport
