#include "transport/fault_transport.hpp"

#include <algorithm>

namespace acex::transport {

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultConfig config)
    : inner_(&inner), config_(config), rng_(config.seed) {}

void FaultInjectingTransport::deliver(ByteView message) {
  inner_->send(message);
  if (held_) {
    // A reordered predecessor rides out right behind its successor —
    // adjacent swap, the common case on multipath networks.
    const Bytes late = std::move(*held_);
    held_.reset();
    inner_->send(late);
  }
}

void FaultInjectingTransport::send(ByteView message) {
  ++counters_.messages;

  if (rng_.chance(config_.drop_prob)) {
    ++counters_.drops;
    return;
  }
  if (!held_ && rng_.chance(config_.reorder_prob)) {
    ++counters_.reorders;
    held_.emplace(message.begin(), message.end());
    return;
  }
  if (rng_.chance(config_.duplicate_prob)) {
    ++counters_.duplicates;
    deliver(message);
    inner_->send(message);
    return;
  }
  if (rng_.chance(config_.bit_flip_prob) && !message.empty()) {
    ++counters_.bit_flips;
    Bytes damaged(message.begin(), message.end());
    const int flips =
        1 + static_cast<int>(rng_.below(
                static_cast<std::uint64_t>(std::max(config_.max_bit_flips, 1))));
    for (int i = 0; i < flips; ++i) {
      damaged[rng_.below(damaged.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.below(8));
    }
    deliver(damaged);
    return;
  }
  if (rng_.chance(config_.truncate_prob) && !message.empty()) {
    ++counters_.truncations;
    Bytes damaged(message.begin(), message.end());
    damaged.resize(rng_.below(damaged.size()));
    deliver(damaged);
    return;
  }

  ++counters_.clean;
  deliver(message);
}

std::optional<Bytes> FaultInjectingTransport::receive() {
  return inner_->receive();
}

void FaultInjectingTransport::flush() {
  if (!held_) return;
  const Bytes late = std::move(*held_);
  held_.reset();
  inner_->send(late);
}

}  // namespace acex::transport
