#include "transport/fault_transport.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace acex::transport {
namespace {

/// Mirrors FaultCounters one-for-one onto the metrics registry so a
/// snapshot can be cross-checked against the injector's own tallies
/// (acexstat does exactly that). Process-wide across injector instances.
struct FaultMetrics {
  obs::Counter& messages;
  obs::Counter& drops;
  obs::Counter& reorders;
  obs::Counter& duplicates;
  obs::Counter& bit_flips;
  obs::Counter& truncations;
  obs::Counter& clean;
};

FaultMetrics& fault_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static FaultMetrics m{r.counter("acex.transport.fault.messages"),
                        r.counter("acex.transport.fault.drops"),
                        r.counter("acex.transport.fault.reorders"),
                        r.counter("acex.transport.fault.duplicates"),
                        r.counter("acex.transport.fault.bit_flips"),
                        r.counter("acex.transport.fault.truncations"),
                        r.counter("acex.transport.fault.clean")};
  return m;
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultConfig config)
    : inner_(&inner), config_(config), rng_(config.seed) {}

void FaultInjectingTransport::deliver(ByteView message) {
  inner_->send(message);
  if (held_) {
    // A reordered predecessor rides out right behind its successor —
    // adjacent swap, the common case on multipath networks.
    const Bytes late = std::move(*held_);
    held_.reset();
    inner_->send(late);
  }
}

void FaultInjectingTransport::send(ByteView message) {
  FaultMetrics& metrics = fault_metrics();
  ++counters_.messages;
  metrics.messages.add(1);

  if (rng_.chance(config_.drop_prob)) {
    ++counters_.drops;
    metrics.drops.add(1);
    return;
  }
  if (!held_ && rng_.chance(config_.reorder_prob)) {
    ++counters_.reorders;
    metrics.reorders.add(1);
    held_.emplace(message.begin(), message.end());
    return;
  }
  if (rng_.chance(config_.duplicate_prob)) {
    ++counters_.duplicates;
    metrics.duplicates.add(1);
    deliver(message);
    inner_->send(message);
    return;
  }
  if (rng_.chance(config_.bit_flip_prob) && !message.empty()) {
    ++counters_.bit_flips;
    metrics.bit_flips.add(1);
    Bytes damaged(message.begin(), message.end());
    const int flips =
        1 + static_cast<int>(rng_.below(
                static_cast<std::uint64_t>(std::max(config_.max_bit_flips, 1))));
    for (int i = 0; i < flips; ++i) {
      damaged[rng_.below(damaged.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.below(8));
    }
    deliver(damaged);
    return;
  }
  if (rng_.chance(config_.truncate_prob) && !message.empty()) {
    ++counters_.truncations;
    metrics.truncations.add(1);
    Bytes damaged(message.begin(), message.end());
    damaged.resize(rng_.below(damaged.size()));
    deliver(damaged);
    return;
  }

  ++counters_.clean;
  metrics.clean.add(1);
  deliver(message);
}

std::optional<Bytes> FaultInjectingTransport::receive() {
  return inner_->receive();
}

void FaultInjectingTransport::flush() {
  if (!held_) return;
  const Bytes late = std::move(*held_);
  held_.reset();
  inner_->send(late);
}

}  // namespace acex::transport
