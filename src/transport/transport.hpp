#pragma once

#include <optional>

#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace acex::transport {

/// Message-oriented, reliable, ordered byte transport — the contract the
/// middleware's channel bridge and the adaptive sender are written against.
///
/// `send` blocks until the peer has *accepted* the message, because the
/// paper's algorithm keys off exactly that end-to-end time ("the speed with
/// which compressed blocks are accepted by receivers"): a send that returns
/// immediately would hide the congestion signal the selector needs.
///
/// Implementations: SimTransport (emulated link, virtual time, single
/// process) and TcpTransport (real sockets, wall-clock time).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one message to the peer; blocks until accepted.
  /// Throws IoError if the connection is gone.
  virtual void send(ByteView message) = 0;

  /// Receive the next message, or std::nullopt when the peer closed (or,
  /// for simulated transports, when no message is pending).
  virtual std::optional<Bytes> receive() = 0;

  /// The clock this transport's timings are measured on. Callers time
  /// their sends against this clock, never against wall time directly, so
  /// the same code runs in simulation and production.
  virtual const Clock& clock() const = 0;
};

}  // namespace acex::transport
