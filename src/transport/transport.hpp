#pragma once

#include <optional>
#include <utility>

#include "util/buffer_view.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace acex::transport {

/// Message-oriented, reliable, ordered byte transport — the contract the
/// middleware's channel bridge and the adaptive sender are written against.
///
/// `send` blocks until the peer has *accepted* the message, because the
/// paper's algorithm keys off exactly that end-to-end time ("the speed with
/// which compressed blocks are accepted by receivers"): a send that returns
/// immediately would hide the congestion signal the selector needs.
///
/// Implementations: SimTransport (emulated link, virtual time, single
/// process) and TcpTransport (real sockets, wall-clock time).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one message to the peer; blocks until accepted.
  /// Throws IoError if the connection is gone.
  virtual void send(ByteView message) = 0;

  /// Zero-copy send: like send(), but the message arrives as a
  /// span-with-owner the transport may RETAIN (queue, ring-buffer, share)
  /// without copying. The default forwards to send() — byte-for-byte
  /// identical on the wire — so implementations only override when they
  /// can exploit the shared ownership: the egress queue keeps the view
  /// instead of a private copy, and the shm transport recognizes views
  /// already backed by its own slab ring and ships only a descriptor.
  virtual void send_buffer(const BufferView& message) { send(message); }

  /// Receive the next message, or std::nullopt when the peer closed (or,
  /// for simulated transports, when no message is pending).
  virtual std::optional<Bytes> receive() = 0;

  /// Zero-copy receive: the returned view may alias transport-owned
  /// storage (a shared-memory slab a subscriber maps in place) kept alive
  /// by the view's owner handle. The default wraps receive() in an owned
  /// view, so every transport supports it.
  virtual std::optional<BufferView> receive_buffer() {
    std::optional<Bytes> message = receive();
    if (!message) return std::nullopt;
    return BufferView::own(std::move(*message));
  }

  /// The clock this transport's timings are measured on. Callers time
  /// their sends against this clock, never against wall time directly, so
  /// the same code runs in simulation and production.
  virtual const Clock& clock() const = 0;
};

}  // namespace acex::transport
