#pragma once

#include "transport/transport.hpp"

namespace acex::transport {

/// Token-bucket rate limiter over any wall-clock Transport — an in-process
/// analogue of `tc ... netem rate` for real-socket tests and demos, and a
/// stand-in for the rate-coordinated transports the paper's middleware
/// plugs in ([14], IQ-RUDP).
///
/// send() blocks (sleeps) until the bucket holds enough tokens for the
/// message, then forwards it; bytes refill at `bytes_per_second` up to
/// `burst_bytes`. receive() passes through untouched.
///
/// Only meaningful over transports timed by a real clock (TcpTransport):
/// the limiter sleeps the calling thread, which a VirtualClock cannot
/// observe.
class RateLimitedTransport final : public Transport {
 public:
  /// `inner` must outlive the limiter.
  RateLimitedTransport(Transport& inner, double bytes_per_second,
                       std::size_t burst_bytes = 64 * 1024);

  void send(ByteView message) override;
  std::optional<Bytes> receive() override { return inner_->receive(); }
  const Clock& clock() const override { return inner_->clock(); }

  double rate_Bps() const noexcept { return rate_; }

 private:
  Transport* inner_;
  double rate_;
  double burst_;
  double tokens_;
  Seconds last_refill_;
};

}  // namespace acex::transport
