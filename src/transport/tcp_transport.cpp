#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace acex::transport {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}

void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Read exactly `len` bytes. Returns false on clean EOF at a message
/// boundary (len bytes means mid-message EOF, which throws).
bool recv_all(int fd, std::uint8_t* data, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw IoError("recv: peer closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  if (fd < 0) throw ConfigError("TcpTransport: invalid descriptor");
}

TcpTransport::TcpTransport(TcpTransport&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpTransport& TcpTransport::operator=(TcpTransport&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::send(ByteView message) {
  if (fd_ < 0) throw IoError("send on closed transport");
  if (message.size() > 0xFFFFFFFFull) {
    throw ConfigError("TcpTransport: message exceeds 4 GiB framing limit");
  }
  std::uint8_t header[4];
  const auto size = static_cast<std::uint32_t>(message.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
  send_all(fd_, header, sizeof header);
  send_all(fd_, message.data(), message.size());
}

std::optional<Bytes> TcpTransport::receive() {
  if (fd_ < 0) return std::nullopt;
  std::uint8_t header[4];
  if (!recv_all(fd_, header, sizeof header, /*eof_ok=*/true)) {
    return std::nullopt;
  }
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  Bytes body(size);
  if (size > 0) recv_all(fd_, body.data(), size, /*eof_ok=*/false);
  return body;
}

void TcpTransport::shutdown_send() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 8) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("listen");
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpTransport TcpListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) throw_errno("accept");
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpTransport(client);
}

TcpTransport tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpTransport(fd);
}

std::pair<TcpTransport, TcpTransport> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw_errno("socketpair");
  }
  return {TcpTransport(fds[0]), TcpTransport(fds[1])};
}

}  // namespace acex::transport
