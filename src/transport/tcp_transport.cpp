#include "transport/tcp_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "net/socket.hpp"
#include "util/error.hpp"

// All raw socket I/O — EINTR-safe full read/write loops, the 4-byte
// little-endian message framing, loopback listen/connect — is shared with
// the acexd daemon through net/socket.hpp (DESIGN.md §13).

namespace acex::transport {

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  if (fd < 0) throw ConfigError("TcpTransport: invalid descriptor");
}

TcpTransport::TcpTransport(TcpTransport&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpTransport& TcpTransport::operator=(TcpTransport&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::send(ByteView message) {
  if (fd_ < 0) throw IoError("send on closed transport");
  net::send_message(fd_, message);
}

std::optional<Bytes> TcpTransport::receive() {
  if (fd_ < 0) return std::nullopt;
  return net::recv_message(fd_);
}

void TcpTransport::shutdown_send() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = net::listen_loopback(port, /*backlog=*/8, &port_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpTransport TcpListener::accept() {
  // listen_loopback hands back a non-blocking listener (the daemon's event
  // loop requires it); this API promises a blocking accept, so wait for
  // readability first.
  for (;;) {
    net::wait_readable(fd_, -1);
    const int client = net::accept_client(fd_);
    if (client >= 0) return TcpTransport(client);
  }
}

TcpTransport tcp_connect(std::uint16_t port) {
  return TcpTransport(net::connect_loopback(port));
}

std::pair<TcpTransport, TcpTransport> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    net::throw_errno("socketpair");
  }
  return {TcpTransport(fds[0]), TcpTransport(fds[1])};
}

}  // namespace acex::transport
