#pragma once

#include <optional>

#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace acex::transport {

/// Per-message fault probabilities of a FaultInjectingTransport. All
/// probabilities are independent Bernoulli draws from one deterministic
/// Rng; at most one fault is applied per message, tried in the order
/// drop > reorder > duplicate > bit flip > truncate.
struct FaultConfig {
  double drop_prob = 0;        ///< message vanishes entirely
  double reorder_prob = 0;     ///< message swaps with the next one sent
  double duplicate_prob = 0;   ///< message delivered twice
  double bit_flip_prob = 0;    ///< 1..max_bit_flips random bits flipped
  double truncate_prob = 0;    ///< tail cut at a random offset
  int max_bit_flips = 4;       ///< upper bound of flips per damaged message
  std::uint64_t seed = 42;     ///< Rng seed — identical runs, identical faults
};

/// How many messages each fault class has claimed, plus the clean count.
/// `messages == drops + reorders + duplicates + bit_flips + truncations +
/// clean` always holds (a reordered message is still delivered, late).
struct FaultCounters {
  std::uint64_t messages = 0;
  std::uint64_t drops = 0;
  std::uint64_t reorders = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t truncations = 0;
  std::uint64_t clean = 0;
};

/// Transport decorator that damages the send path on purpose — the hostile
/// network every robustness test needs and DESIGN.md §6 promises decoders
/// survive. Wrap whichever endpoint should experience the bad link:
///
///   FaultInjectingTransport lossy(duplex.a(), {.drop_prob = 0.01});
///   AdaptiveSender sender(lossy);          // frames now really get lost
///
/// Faults are applied per *message* on send(); receive() and clock() pass
/// straight through to the inner transport. Determinism: the same seed and
/// the same message sequence produce the same faults, so every test failure
/// replays exactly.
class FaultInjectingTransport final : public Transport {
 public:
  explicit FaultInjectingTransport(Transport& inner, FaultConfig config = {});

  void send(ByteView message) override;
  std::optional<Bytes> receive() override;
  const Clock& clock() const override { return inner_->clock(); }

  /// Deliver a message still held back by a pending reorder (call when the
  /// stream ends, mirroring a real network flushing its queues).
  void flush();

  /// Replace the fault knobs mid-stream (e.g. heal the link before a
  /// retransmit round). Counters and Rng state are preserved.
  void set_config(const FaultConfig& config) noexcept { config_ = config; }

  const FaultConfig& config() const noexcept { return config_; }
  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  void deliver(ByteView message);

  Transport* inner_;
  FaultConfig config_;
  FaultCounters counters_;
  Rng rng_;
  std::optional<Bytes> held_;  ///< message delayed by a reorder fault
};

}  // namespace acex::transport
