#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace acex::obs {

/// Serialize a snapshot as JSON lines: one self-contained JSON object per
/// instrument, ordered by full name. Machine-diffable — two snapshots of
/// the same registry diff line-by-line, which is what the BENCH_*.json
/// trajectory consumes. Doubles are printed with %.17g so values survive a
/// parse round-trip bit-exactly.
std::string to_json_lines(const MetricsSnapshot& snapshot);

/// Serialize spans as JSON lines (one span per line), oldest first.
std::string to_json_lines(const std::vector<SpanEvent>& spans);

/// Parse to_json_lines(MetricsSnapshot) output back into a snapshot.
/// Strict about the fields this library emits, tolerant of extra keys.
/// Throws DecodeError on malformed input. Together with to_json_lines this
/// round-trips: parse(export(s)) compares equal to s, point for point.
MetricsSnapshot parse_json_lines(std::string_view text);

/// Render a snapshot in the Prometheus text exposition format. Dotted
/// names are sanitized to underscores; histograms become cumulative
/// `_bucket{le="..."}` series (empty buckets elided) plus `_sum` and
/// `_count`. The same snapshot always renders the same text, so the
/// JSON-lines and Prometheus exporters can be cross-checked against each
/// other.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// `name` with every character outside [a-zA-Z0-9_:] replaced by '_' — the
/// Prometheus metric-name alphabet.
std::string prometheus_name(std::string_view name);

/// Human-oriented rendering of a snapshot: counters and gauges aligned,
/// histograms as count/mean/p50/p90/p99/max rows. What `acexstat` and
/// `acexpack --stats` print.
std::string to_text(const MetricsSnapshot& snapshot);

}  // namespace acex::obs
