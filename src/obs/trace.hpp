#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace acex::obs {

/// The stations a block passes through end to end. Sender side: plan
/// (serial selector), encode (worker thread), finish (driver bookkeeping),
/// transmit (the transport send). Receiver side: decode, deliver.
enum class Stage : std::uint8_t {
  kPlan = 0,
  kEncode,
  kFinish,
  kTransmit,
  kDecode,
  kDeliver,
};

std::string_view stage_name(Stage stage) noexcept;

/// Worker identity for span attribution. Thread pools call
/// set_current_worker(index) from each worker thread; code that records
/// spans reads current_worker() without needing to know which pool (if
/// any) it runs on. -1 means "not a pool worker" (driver, receiver, main).
std::int32_t current_worker() noexcept;
void set_current_worker(std::int32_t index) noexcept;

/// One closed span: a block spent [start_us, end_us] in `stage`. Times are
/// steady-clock microseconds relative to the tracer's epoch, so spans from
/// different threads share one timeline. `worker` is the pool worker index
/// that ran the stage, or -1 off-pool (driver/receiver threads).
struct SpanEvent {
  std::uint64_t block = 0;  ///< frame sequence number
  Stage stage = Stage::kPlan;
  std::int32_t worker = -1;
  double start_us = 0;
  double end_us = 0;

  double duration_us() const noexcept { return end_us - start_us; }
};

/// Bounded ring of block-lifecycle spans. record() takes a short critical
/// section (one mutex, a slot write) — spans fire per block-stage, orders
/// of magnitude rarer than counter increments, so simplicity wins over a
/// lock-free ring here; the TSan stress run is the referee. When the ring
/// is full the oldest span is overwritten and `dropped()` counts it, so a
/// long run degrades to "most recent history" instead of growing.
class BlockTracer {
 public:
  explicit BlockTracer(std::size_t capacity = 4096);

  /// Microseconds since this tracer's epoch on the steady clock — the
  /// timestamp base every span uses.
  double now_us() const noexcept;

  /// Record a closed span. No-op while disabled.
  void record(std::uint64_t block, Stage stage, double start_us, double end_us,
              std::int32_t worker = -1);

  /// Spans currently held, oldest first.
  std::vector<SpanEvent> snapshot() const;

  std::uint64_t recorded() const;  ///< spans accepted since construction
  std::uint64_t dropped() const;   ///< spans overwritten by ring wrap

  void set_enabled(bool on);
  bool enabled() const;

  /// Forget every span (counters included); capacity is kept.
  void clear();

  std::size_t capacity() const noexcept { return capacity_; }

  /// The tracer the built-in layers record into.
  static BlockTracer& global();

 private:
  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> ring_;
  std::size_t head_ = 0;        ///< next slot to write once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
};

/// RAII span: times its own scope on the tracer's clock and records on
/// destruction. The block sequence may be bound late (set_block) for
/// stages that only learn it mid-flight (plan assigns the sequence at its
/// end).
class ScopedSpan {
 public:
  ScopedSpan(BlockTracer& tracer, std::uint64_t block, Stage stage,
             std::int32_t worker = -1)
      : tracer_(&tracer),
        block_(block),
        stage_(stage),
        worker_(worker),
        start_us_(tracer.now_us()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    tracer_->record(block_, stage_, start_us_, tracer_->now_us(), worker_);
  }

  void set_block(std::uint64_t block) noexcept { block_ = block; }

 private:
  BlockTracer* tracer_;
  std::uint64_t block_;
  Stage stage_;
  std::int32_t worker_;
  double start_us_;
};

}  // namespace acex::obs
