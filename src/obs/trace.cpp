#include "obs/trace.hpp"

#include "util/error.hpp"

namespace acex::obs {

std::string_view stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kPlan:
      return "plan";
    case Stage::kEncode:
      return "encode";
    case Stage::kFinish:
      return "finish";
    case Stage::kTransmit:
      return "transmit";
    case Stage::kDecode:
      return "decode";
    case Stage::kDeliver:
      return "deliver";
  }
  return "unknown";
}

namespace {
thread_local std::int32_t t_current_worker = -1;
}  // namespace

std::int32_t current_worker() noexcept { return t_current_worker; }
void set_current_worker(std::int32_t index) noexcept {
  t_current_worker = index;
}

BlockTracer::BlockTracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {
  if (capacity_ == 0) {
    throw ConfigError("obs: tracer capacity must be positive");
  }
  ring_.reserve(capacity_);
}

double BlockTracer::now_us() const noexcept {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void BlockTracer::record(std::uint64_t block, Stage stage, double start_us,
                         double end_us, std::int32_t worker) {
  SpanEvent span;
  span.block = block;
  span.stage = stage;
  span.worker = worker;
  span.start_us = start_us;
  span.end_us = end_us;

  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
    return;
  }
  ring_[head_] = span;  // wrap: overwrite the oldest span
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanEvent> BlockTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [head_, end) then [0, head_).
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

std::uint64_t BlockTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t BlockTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void BlockTracer::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = on;
}

bool BlockTracer::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void BlockTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

BlockTracer& BlockTracer::global() {
  static BlockTracer* tracer = new BlockTracer(4096);  // never destroyed
  return *tracer;
}

}  // namespace acex::obs
