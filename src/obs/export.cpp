#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace acex::obs {
namespace {

/// %.17g: enough digits that a double parses back bit-exact.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void append_label_field(std::string& out, const MetricPoint& p) {
  if (p.label_key.empty()) return;
  out += ",\"label\":{";
  append_json_string(out, p.label_key);
  out += ':';
  append_json_string(out, p.label_value);
  out += '}';
}

// ---- minimal JSON reader for the lines this library writes ------------

struct JsonValue {
  enum class Type { kNumber, kString, kArray, kObject } type = Type::kNumber;
  double number = 0;
  std::string string;
  std::vector<double> array;  ///< arrays of numbers only
  std::map<std::string, JsonValue> object;
};

class JsonLineParser {
 public:
  explicit JsonLineParser(std::string_view text) : text_(text) {}

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace(key, parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue value;
    if (c == '"') {
      value.type = JsonValue::Type::kString;
      value.string = parse_string();
    } else if (c == '{') {
      value = parse_object();
    } else if (c == '[') {
      value.type = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.array.push_back(parse_number());
        skip_ws();
        const char sep = next();
        if (sep == ']') break;
        if (sep != ',') fail("expected ',' or ']'");
        skip_ws();
      }
    } else {
      value.type = JsonValue::Type::kNumber;
      value.number = parse_number();
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        if (e == 'n') {
          out += '\n';
        } else if (e == '"' || e == '\\') {
          out += e;
        } else {
          fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == 'i' ||
            text_[pos_] == 'n' || text_[pos_] == 'f' || text_[pos_] == 'a')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    return v;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of line");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    skip_ws();
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw DecodeError("obs json: " + why);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& field(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    throw DecodeError("obs json: missing field '" + key + "'");
  }
  return it->second;
}

MetricPoint point_from_json(const JsonValue& obj) {
  MetricPoint p;
  const std::string& type = field(obj, "type").string;
  p.name = field(obj, "name").string;
  if (const auto it = obj.object.find("label"); it != obj.object.end()) {
    if (it->second.object.size() != 1) {
      throw DecodeError("obs json: label must hold exactly one pair");
    }
    p.label_key = it->second.object.begin()->first;
    p.label_value = it->second.object.begin()->second.string;
  }
  if (type == "counter") {
    p.kind = MetricPoint::Kind::kCounter;
    p.counter = static_cast<std::uint64_t>(field(obj, "value").number);
  } else if (type == "gauge") {
    p.kind = MetricPoint::Kind::kGauge;
    p.gauge = static_cast<std::int64_t>(field(obj, "value").number);
  } else if (type == "histogram") {
    p.kind = MetricPoint::Kind::kHistogram;
    p.hist.count = static_cast<std::uint64_t>(field(obj, "count").number);
    p.hist.sum = field(obj, "sum").number;
    p.hist.min = field(obj, "min").number;
    p.hist.max = field(obj, "max").number;
    for (const double b : field(obj, "buckets").array) {
      p.hist.buckets.push_back(static_cast<std::uint64_t>(b));
    }
  } else {
    throw DecodeError("obs json: unknown point type '" + type + "'");
  }
  return p;
}

}  // namespace

std::string to_json_lines(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricPoint& p : snapshot.points) {
    switch (p.kind) {
      case MetricPoint::Kind::kCounter:
        out += "{\"type\":\"counter\",\"name\":";
        append_json_string(out, p.name);
        append_label_field(out, p);
        out += ",\"value\":" + std::to_string(p.counter) + "}\n";
        break;
      case MetricPoint::Kind::kGauge:
        out += "{\"type\":\"gauge\",\"name\":";
        append_json_string(out, p.name);
        append_label_field(out, p);
        out += ",\"value\":" + std::to_string(p.gauge) + "}\n";
        break;
      case MetricPoint::Kind::kHistogram: {
        out += "{\"type\":\"histogram\",\"name\":";
        append_json_string(out, p.name);
        append_label_field(out, p);
        out += ",\"count\":" + std::to_string(p.hist.count);
        out += ",\"sum\":" + fmt_double(p.hist.sum);
        out += ",\"min\":" + fmt_double(p.hist.min);
        out += ",\"max\":" + fmt_double(p.hist.max);
        // Derived quantiles ride along for consumers that just want
        // numbers; parse ignores them (recomputed from buckets).
        out += ",\"p50\":" + fmt_double(p.hist.p50());
        out += ",\"p90\":" + fmt_double(p.hist.p90());
        out += ",\"p99\":" + fmt_double(p.hist.p99());
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < p.hist.buckets.size(); ++i) {
          if (i) out += ',';
          out += std::to_string(p.hist.buckets[i]);
        }
        out += "]}\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json_lines(const std::vector<SpanEvent>& spans) {
  std::string out;
  for (const SpanEvent& s : spans) {
    out += "{\"type\":\"span\",\"block\":" + std::to_string(s.block);
    out += ",\"stage\":";
    append_json_string(out, stage_name(s.stage));
    out += ",\"worker\":" + std::to_string(s.worker);
    out += ",\"start_us\":" + fmt_double(s.start_us);
    out += ",\"end_us\":" + fmt_double(s.end_us) + "}\n";
  }
  return out;
}

MetricsSnapshot parse_json_lines(std::string_view text) {
  MetricsSnapshot snapshot;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    JsonLineParser parser(line);
    const JsonValue obj = parser.parse_object();
    const auto type_it = obj.object.find("type");
    if (type_it != obj.object.end() && type_it->second.string != "counter" &&
        type_it->second.string != "gauge" &&
        type_it->second.string != "histogram") {
      // Non-metric lines (spans, bench headers) may be interleaved in the
      // same file; metrics parsing skips them. Structural damage on any
      // line still throws above.
      continue;
    }
    snapshot.points.push_back(point_from_json(obj));
  }
  return snapshot;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed;  // emit one # TYPE line per metric family
  const auto type_line = [&](const std::string& name, const char* kind) {
    if (name == last_typed) return;
    out += "# TYPE " + name + " " + kind + "\n";
    last_typed = name;
  };
  const auto label = [](const MetricPoint& p,
                        const std::string& extra = {}) -> std::string {
    std::string inner;
    if (!p.label_key.empty()) {
      inner += prometheus_name(p.label_key) + "=\"" + p.label_value + "\"";
    }
    if (!extra.empty()) {
      if (!inner.empty()) inner += ',';
      inner += extra;
    }
    return inner.empty() ? "" : "{" + inner + "}";
  };

  for (const MetricPoint& p : snapshot.points) {
    const std::string name = prometheus_name(p.name);
    switch (p.kind) {
      case MetricPoint::Kind::kCounter:
        type_line(name, "counter");
        out += name + label(p) + " " + std::to_string(p.counter) + "\n";
        break;
      case MetricPoint::Kind::kGauge:
        type_line(name, "gauge");
        out += name + label(p) + " " + std::to_string(p.gauge) + "\n";
        break;
      case MetricPoint::Kind::kHistogram: {
        type_line(name, "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < p.hist.buckets.size(); ++i) {
          if (p.hist.buckets[i] == 0) continue;  // elide empty buckets
          cumulative += p.hist.buckets[i];
          const double upper = i + 1 < p.hist.buckets.size()
                                   ? Histogram::bucket_lower(i + 1)
                                   : std::numeric_limits<double>::infinity();
          const std::string le =
              std::isinf(upper) ? "+Inf" : fmt_double(upper);
          out += name + "_bucket" + label(p, "le=\"" + le + "\"") + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" + label(p, "le=\"+Inf\"") + " " +
               std::to_string(p.hist.count) + "\n";
        out += name + "_sum" + label(p) + " " + fmt_double(p.hist.sum) + "\n";
        out += name + "_count" + label(p) + " " +
               std::to_string(p.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[256];
  bool any_hist = false;
  for (const MetricPoint& p : snapshot.points) {
    if (p.kind == MetricPoint::Kind::kHistogram) {
      any_hist = true;
      continue;
    }
    const char* kind =
        p.kind == MetricPoint::Kind::kCounter ? "counter" : "gauge  ";
    const long long v = p.kind == MetricPoint::Kind::kCounter
                            ? static_cast<long long>(p.counter)
                            : static_cast<long long>(p.gauge);
    std::snprintf(buf, sizeof buf, "%s  %-52s %12lld\n", kind,
                  p.full_name().c_str(), v);
    out += buf;
  }
  if (any_hist) {
    std::snprintf(buf, sizeof buf, "%-61s %8s %10s %10s %10s %10s %10s\n",
                  "histogram", "count", "mean", "p50", "p90", "p99", "max");
    out += buf;
    for (const MetricPoint& p : snapshot.points) {
      if (p.kind != MetricPoint::Kind::kHistogram) continue;
      std::snprintf(buf, sizeof buf,
                    "%-61s %8" PRIu64 " %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                    p.full_name().c_str(), p.hist.count, p.hist.mean(),
                    p.hist.p50(), p.hist.p90(), p.hist.p99(), p.hist.max);
      out += buf;
    }
  }
  return out;
}

}  // namespace acex::obs
