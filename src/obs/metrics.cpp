#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace acex::obs {

// ---- Histogram -------------------------------------------------------

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // NaN and sub-unit values share the floor bucket
  const auto i =
      static_cast<std::size_t>(1.0 + std::floor(2.0 * std::log2(v)));
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  return std::exp2(static_cast<double>(i - 1) / 2.0);
}

void Histogram::record(double v) noexcept {
  if (!enabled()) return;
  if (std::isnan(v) || v < 0) v = 0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  // min_ idles at +inf so concurrent first samples race cleanly; an empty
  // histogram reports 0, not inf.
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && buckets[i] > 0) {
      // Geometric midpoint of the bucket, clamped to the observed range so
      // quantiles never stray outside [min, max].
      const double lo = Histogram::bucket_lower(i);
      const double hi = i + 1 < buckets.size()
                            ? Histogram::bucket_lower(i + 1)
                            : max;
      const double mid = lo > 0 ? std::sqrt(lo * std::max(hi, lo))
                                : hi / 2.0;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

// ---- MetricPoint / MetricsSnapshot -----------------------------------

std::string MetricPoint::full_name() const {
  if (label_key.empty()) return name;
  return name + "{" + label_key + "=\"" + label_value + "\"}";
}

const MetricPoint* MetricsSnapshot::find(
    std::string_view full_name) const noexcept {
  for (const MetricPoint& p : points) {
    if (p.full_name() == full_name) return &p;
  }
  return nullptr;
}

// ---- MetricsRegistry -------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(
    MetricPoint::Kind kind, std::string_view name, std::string_view label_key,
    std::string_view label_value) {
  if (name.empty()) throw ConfigError("obs: instrument name must not be empty");
  MetricPoint id;
  id.name = std::string(name);
  id.label_key = std::string(label_key);
  id.label_value = std::string(label_value);
  const std::string key = id.full_name();

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.name = std::move(id.name);
    entry.label_key = std::move(id.label_key);
    entry.label_value = std::move(id.label_value);
    switch (kind) {
      case MetricPoint::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricPoint::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricPoint::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw ConfigError("obs: instrument '" + key +
                      "' already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value) {
  return *entry_for(MetricPoint::Kind::kCounter, name, label_key, label_value)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value) {
  return *entry_for(MetricPoint::Kind::kGauge, name, label_key, label_value)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view label_key,
                                      std::string_view label_value) {
  return *entry_for(MetricPoint::Kind::kHistogram, name, label_key,
                    label_value)
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.points.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricPoint p;
    p.kind = entry.kind;
    p.name = entry.name;
    p.label_key = entry.label_key;
    p.label_value = entry.label_value;
    switch (entry.kind) {
      case MetricPoint::Kind::kCounter:
        p.counter = entry.counter->value();
        break;
      case MetricPoint::Kind::kGauge:
        p.gauge = entry.gauge->value();
        break;
      case MetricPoint::Kind::kHistogram:
        p.hist = entry.histogram->snapshot();
        break;
    }
    snap.points.push_back(std::move(p));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case MetricPoint::Kind::kCounter:
        entry.counter->reset();
        break;
      case MetricPoint::Kind::kGauge:
        entry.gauge->reset();
        break;
      case MetricPoint::Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace acex::obs
