#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace acex::obs {

/// Process-wide kill switch for every instrument. Checked with one relaxed
/// load on each hot-path operation, so disabling observability reduces an
/// increment to a branch — the overhead-budget test in test_obs.cpp holds
/// both states to a cycle budget (DESIGN.md §9).
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

/// Lock-free add for doubles (std::atomic<double>::fetch_add is C++20 but
/// spotty across toolchains; the CAS loop is portable and equivalent).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count. add() is one relaxed atomic RMW — safe from any
/// thread, never locks. Callers cache the reference returned by
/// MetricsRegistry::counter() so the registry lookup is paid once, not per
/// increment (handle caching).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, window occupancy, modeled bandwidth).
/// Signed so transient imbalances in add/sub pairs cannot wrap.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Everything a histogram knows at one instant, extracted under no lock
/// (each field is a relaxed atomic read; a snapshot taken during concurrent
/// recording is a consistent-enough view for monitoring, not an exact cut).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when empty
  double max = 0;
  std::vector<std::uint64_t> buckets;

  /// Approximate quantile (0 <= q <= 1) from log-scale bucket midpoints.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }
  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket log-scale histogram for non-negative values (latencies in
/// microseconds, sizes in bytes). record() is wait-free: a log2, then
/// relaxed atomic RMWs — no locks, safe from any thread.
///
/// Buckets are half-octaves: bucket 0 holds [0, 1), bucket i holds
/// [2^((i-1)/2), 2^(i/2)), and the last bucket catches everything from
/// 2^31 up (~36 minutes when recording microseconds). Half-octave
/// resolution bounds the quantile error at a factor of sqrt(2) — plenty to
/// tell a 50 us encode from a 5 ms one, which is the job.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double v) noexcept;

  /// Lower edge of bucket `i` (0 for the first bucket).
  static double bucket_lower(std::size_t i) noexcept;
  /// Index of the bucket `v` lands in.
  static std::size_t bucket_index(double v) noexcept;

  HistogramSnapshot snapshot() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0};
};

/// One exported sample: an instrument's identity plus its value at
/// snapshot time. `label_key`/`label_value` carry the optional single
/// dimension (e.g. method="lempel-ziv") the registry supports.
struct MetricPoint {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string label_key;
  std::string label_value;
  std::uint64_t counter = 0;  ///< kCounter
  std::int64_t gauge = 0;     ///< kGauge
  HistogramSnapshot hist;     ///< kHistogram

  /// "name" or "name{key=\"value\"}" — the registry's unique key.
  std::string full_name() const;
};

/// A self-consistent view of every instrument, ordered by full name so two
/// snapshots of the same registry diff cleanly (the JSON-lines exporter
/// relies on this for the bench trajectory).
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Lookup by full name; nullptr when absent.
  const MetricPoint* find(std::string_view full_name) const noexcept;
};

/// Process-wide instrument directory. Lookup by name takes a mutex;
/// instruments live for the registry's lifetime at stable addresses, so
/// every caller does the lookup once (static local or member) and then
/// increments lock-free forever after. reset_values() zeroes instruments
/// in place — cached references stay valid — which is how the CLI tools
/// and tests scope measurements to one run.
class MetricsRegistry {
 public:
  /// The singleton every built-in layer records into. Separate registries
  /// can be constructed for isolation (tests, embedded use).
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The same (name, label) always returns the same
  /// instrument; a name already registered as a different kind throws
  /// ConfigError. Names use dotted lowercase ("acex.engine.queue_depth");
  /// the Prometheus exporter sanitizes on the way out.
  Counter& counter(std::string_view name, std::string_view label_key = {},
                   std::string_view label_value = {});
  Gauge& gauge(std::string_view name, std::string_view label_key = {},
               std::string_view label_value = {});
  Histogram& histogram(std::string_view name, std::string_view label_key = {},
                       std::string_view label_value = {});

  MetricsSnapshot snapshot() const;

  /// Zero every instrument's value, keeping the instruments (and every
  /// cached reference to them) alive.
  void reset_values();

  std::size_t size() const;

 private:
  struct Entry {
    MetricPoint::Kind kind;
    std::string name, label_key, label_value;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(MetricPoint::Kind kind, std::string_view name,
                   std::string_view label_key, std::string_view label_value);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< key = MetricPoint::full_name()
};

}  // namespace acex::obs
