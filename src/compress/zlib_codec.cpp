#include "compress/zlib_codec.hpp"

#include "util/error.hpp"
#include "util/varint.hpp"

#ifdef ACEX_HAVE_ZLIB
#include <zlib.h>
#endif

namespace acex {

bool zlib_available() noexcept {
#ifdef ACEX_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

#ifdef ACEX_HAVE_ZLIB

ZlibCodec::ZlibCodec(int level) : level_(level) {
  if (level < 1 || level > 9) throw ConfigError("zlib level must be 1..9");
}

Bytes ZlibCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  const std::size_t header = out.size();
  out.resize(header + bound);
  const int rc =
      compress2(out.data() + header, &bound, input.data(),
                static_cast<uLong>(input.size()), level_);
  if (rc != Z_OK) throw Error("zlib compress2 failed");
  out.resize(header + bound);
  return out;
}

Bytes ZlibCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  if (size > (std::uint64_t{1} << 40)) {
    throw DecodeError("zlib: implausible original size");
  }
  Bytes out(size);
  uLongf out_len = static_cast<uLongf>(size);
  const int rc = uncompress(out.data(), &out_len, input.data() + pos,
                            static_cast<uLong>(input.size() - pos));
  if (rc != Z_OK || out_len != size) {
    throw DecodeError("zlib: corrupt stream");
  }
  return out;
}

#endif  // ACEX_HAVE_ZLIB

}  // namespace acex
