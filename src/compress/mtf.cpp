#include "compress/mtf.hpp"

#include <array>
#include <numeric>

namespace acex::mtf {
namespace {

std::array<std::uint8_t, 256> initial_list() {
  std::array<std::uint8_t, 256> list{};
  std::iota(list.begin(), list.end(), 0);
  return list;
}

}  // namespace

Bytes encode(ByteView input) {
  auto list = initial_list();
  Bytes out;
  out.reserve(input.size());
  for (const std::uint8_t byte : input) {
    unsigned pos = 0;
    while (list[pos] != byte) ++pos;
    out.push_back(static_cast<std::uint8_t>(pos));
    // Shift the prefix down one slot and move `byte` to the front.
    for (unsigned i = pos; i > 0; --i) list[i] = list[i - 1];
    list[0] = byte;
  }
  return out;
}

Bytes decode(ByteView input) {
  auto list = initial_list();
  Bytes out;
  out.reserve(input.size());
  for (const std::uint8_t pos : input) {
    const std::uint8_t byte = list[pos];
    out.push_back(byte);
    for (unsigned i = pos; i > 0; --i) list[i] = list[i - 1];
    list[0] = byte;
  }
  return out;
}

}  // namespace acex::mtf
