#include "compress/lzw.hpp"

#include <bit>
#include <unordered_map>
#include <vector>

#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

constexpr std::uint32_t kClear = 256;      // dictionary reset marker
constexpr std::uint32_t kFirstCode = 257;  // first phrase code
constexpr std::uint32_t kCap = 1u << LzwCodec::kMaxCodeBits;
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCompressed = 1;

/// Width of the next code on the wire, given the next code to be assigned.
/// Purely a function of `next`, so encoder and decoder cannot drift.
unsigned code_width(std::uint32_t next) noexcept {
  const unsigned bits = std::bit_width(next - 1);
  return bits < LzwCodec::kMinCodeBits ? LzwCodec::kMinCodeBits : bits;
}

}  // namespace

Bytes LzwCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  BitWriter bw;
  std::unordered_map<std::uint32_t, std::uint32_t> dict;
  dict.reserve(1 << 15);
  std::uint32_t next = kFirstCode;

  const auto reset = [&] {
    dict.clear();
    next = kFirstCode;
  };

  std::uint32_t cur = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint8_t c = input[i];
    const std::uint32_t key = (cur << 8) | c;
    const auto it = dict.find(key);
    if (it != dict.end()) {
      cur = it->second;
      continue;
    }
    bw.write(cur, code_width(next));
    dict.emplace(key, next);
    ++next;
    if (next == kCap) {
      // Dictionary full: reset both sides via the clear marker.
      bw.write(kClear, code_width(next));
      reset();
    }
    cur = c;
  }
  bw.write(cur, code_width(next));
  const Bytes payload = bw.take();

  if (payload.size() + 1 >= input.size()) {
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
  } else {
    out.push_back(kModeCompressed);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Bytes LzwCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  // Each code emits at least one byte and costs at least kMinCodeBits.
  if (size > (input.size() + 8) * 8 * kCap / kMinCodeBits) {
    throw DecodeError("lzw: declared size exceeds payload capacity");
  }
  if (pos >= input.size()) throw DecodeError("lzw: missing mode byte");
  const std::uint8_t mode = input[pos++];
  if (mode == kModeStored) {
    if (input.size() - pos != size) {
      throw DecodeError("lzw: stored size mismatch");
    }
    const auto body = input.subspan(pos);
    return Bytes(body.begin(), body.end());
  }
  if (mode != kModeCompressed) throw DecodeError("lzw: unknown mode byte");

  BitReader br(input.subspan(pos));
  std::vector<std::uint32_t> prefix(kCap, 0);
  std::vector<std::uint8_t> suffix(kCap, 0);
  std::uint32_t next = kFirstCode;
  bool fresh = true;              // no pending phrase to complete
  std::uint32_t prev = 0;
  std::uint8_t prev_first = 0;    // first byte of prev's expansion

  Bytes out;
  out.reserve(size);
  std::vector<std::uint8_t> stack;
  stack.reserve(256);

  while (out.size() < size) {
    // The encoder adds an entry immediately after each emission, so at the
    // moment it emits the code we are about to read, its dictionary is one
    // entry ahead of ours (except right after a reset). Width is a pure
    // function of the ENCODER's next code.
    const std::uint32_t wire_next =
        fresh ? next : std::min(next + 1, kCap);
    const std::uint32_t code =
        static_cast<std::uint32_t>(br.read(code_width(wire_next)));
    if (code == kClear) {
      next = kFirstCode;
      fresh = true;
      continue;
    }
    if (code > next || (code == next && fresh)) {
      throw DecodeError("lzw: code beyond dictionary");
    }

    // Expand `code` (or the KwKwK self-reference) onto the stack.
    std::uint8_t first;
    if (code == next) {
      // Phrase defined by this very step: prev + first(prev).
      stack.push_back(prev_first);
      std::uint32_t walk = prev;
      while (walk >= kFirstCode) {
        stack.push_back(suffix[walk]);
        walk = prefix[walk];
      }
      stack.push_back(static_cast<std::uint8_t>(walk));
      first = static_cast<std::uint8_t>(walk);
    } else {
      std::uint32_t walk = code;
      while (walk >= kFirstCode) {
        stack.push_back(suffix[walk]);
        walk = prefix[walk];
      }
      stack.push_back(static_cast<std::uint8_t>(walk));
      first = static_cast<std::uint8_t>(walk);
    }
    if (out.size() + stack.size() > size) {
      throw DecodeError("lzw: output overruns declared size");
    }
    for (std::size_t i = stack.size(); i-- > 0;) out.push_back(stack[i]);
    stack.clear();

    // Complete the entry the encoder created when it emitted `code`.
    if (!fresh && next < kCap) {
      prefix[next] = prev;
      suffix[next] = first;
      ++next;
      if (next == kCap) {
        // Encoder resets right after filling; expect its clear marker.
        // (Handled naturally: the next read uses max width and the code
        // will be kClear.)
      }
    }
    fresh = false;
    prev = code;
    prev_first = first;
  }
  return out;
}

}  // namespace acex
