#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/bytes.hpp"

namespace acex {

/// Identifiers for the compression methods the paper evaluates (§2), plus
/// the "no compression" choice its selection algorithm can make and an
/// optional zlib comparator used only in benches.
///
/// The numeric values are wire-stable: they appear in frame headers and in
/// the quality attributes that consumers use to request a method change.
enum class MethodId : std::uint8_t {
  kNone = 0,            ///< pass-through ("Don't Compress" branch of §2.5)
  kHuffman = 1,         ///< §2.1 canonical static Huffman
  kArithmetic = 2,      ///< §2.2 adaptive order-0 arithmetic coding
  kLempelZiv = 3,       ///< §2.3 LZ77 with Huffman-coded pointers
  kBurrowsWheeler = 4,  ///< §2.4 chunked BWT -> MTF -> RLE -> joint Huffman
  kLzw = 5,             ///< LZ78/LZW comparator ([24]'s branch of §2.3)
  kZlib = 100,          ///< comparator only; not part of the paper's set
  /// Application-registered (>= 128, §5's application-specific codecs):
  /// id 128 is the lossy FloatQuantCodec (quant_codec.hpp); id 129 is the
  /// per-column pipeline codec (src/colpipe/). Neither is part of
  /// with_builtins() — both sides must register explicitly (§3.2).
  kColumnar = 129,      ///< colpipe::ColumnarCodec per-column pipelines
};

/// Short stable lowercase name ("huffman", "lz", ...), for logs and tables.
std::string_view method_name(MethodId id) noexcept;

/// Parse the result of method_name back; throws ConfigError on unknown names.
MethodId method_from_name(std::string_view name);

/// A lossless whole-buffer compressor/decompressor.
///
/// Codecs are stateless across calls (each compress() is self-contained) but
/// may keep scratch buffers, so instances are cheap to reuse and NOT
/// thread-safe; create one per thread.
///
/// Concurrency contract (audited for the parallel engine, DESIGN.md §8):
/// no built-in codec touches global or static mutable state from
/// compress()/decompress() — every built-in's members are configuration
/// fixed at construction (chunk size, LZ params, quantization precision).
/// Two *different* instances may therefore run concurrently without any
/// synchronization, and construction is cheap enough that workers simply
/// create one per block via CodecRegistry::create(). Custom codecs
/// registered by applications must uphold the same rule to be usable on
/// the parallel path.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual MethodId id() const noexcept = 0;

  /// Human-readable method name.
  std::string_view name() const noexcept { return method_name(id()); }

  /// Compress `input` into a self-contained payload (no outer frame).
  virtual Bytes compress(ByteView input) = 0;

  /// Invert compress(). Throws DecodeError on malformed input.
  virtual Bytes decompress(ByteView input) = 0;
};

using CodecPtr = std::unique_ptr<Codec>;

}  // namespace acex
