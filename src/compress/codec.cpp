#include "compress/codec.hpp"

#include "util/error.hpp"

namespace acex {

std::string_view method_name(MethodId id) noexcept {
  switch (id) {
    case MethodId::kNone:
      return "none";
    case MethodId::kHuffman:
      return "huffman";
    case MethodId::kArithmetic:
      return "arithmetic";
    case MethodId::kLempelZiv:
      return "lempel-ziv";
    case MethodId::kBurrowsWheeler:
      return "burrows-wheeler";
    case MethodId::kLzw:
      return "lzw";
    case MethodId::kZlib:
      return "zlib";
    case MethodId::kColumnar:
      return "colpipe";
  }
  return "unknown";
}

MethodId method_from_name(std::string_view name) {
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kLzw,
        MethodId::kZlib, MethodId::kColumnar}) {
    if (method_name(id) == name) return id;
  }
  throw ConfigError("unknown compression method name: " + std::string(name));
}

}  // namespace acex
