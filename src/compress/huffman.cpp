#include "compress/huffman.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <queue>

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::huff {
namespace {

/// One pass of Huffman tree construction returning the depth of each used
/// symbol. Depths are unbounded here; the caller enforces the length limit.
std::vector<std::uint8_t> tree_depths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t freq;
    int left;   // < 0: leaf for symbol ~left
    int right;  // only valid for internal nodes
  };
  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);

  using Entry = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back({freqs[s], ~static_cast<int>(s), 0});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }

  std::vector<std::uint8_t> depths(freqs.size(), 0);
  if (heap.empty()) return depths;
  if (heap.size() == 1) {
    depths[static_cast<std::size_t>(~nodes[0].left)] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, a, b});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Iterative depth assignment from the root.
  std::vector<std::pair<int, std::uint8_t>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    // Leaves were created with left = ~symbol (< 0); internal nodes always
    // hold two valid child indices (>= 0).
    if (n.left < 0) {
      depths[static_cast<std::size_t>(~n.left)] = depth == 0 ? 1 : depth;
    } else {
      stack.push_back({n.left, static_cast<std::uint8_t>(depth + 1)});
      stack.push_back({n.right, static_cast<std::uint8_t>(depth + 1)});
    }
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> freqs, unsigned max_bits) {
  if (max_bits == 0 || max_bits > kMaxBits) {
    throw ConfigError("huffman: max_bits out of range");
  }
  std::vector<std::uint64_t> work(freqs.begin(), freqs.end());
  for (;;) {
    const auto depths = tree_depths(work);
    const auto deepest = *std::max_element(depths.begin(), depths.end());
    if (deepest <= max_bits) return depths;
    // Flatten the distribution and retry; converges because frequencies
    // approach equality, which yields a balanced (shallow) tree.
    for (auto& f : work) {
      if (f != 0) f = f / 2 + 1;
    }
  }
}

std::vector<Code> canonical_codes(std::span<const std::uint8_t> lengths) {
  std::array<std::uint32_t, kMaxBits + 1> count{};
  for (const auto len : lengths) {
    if (len > kMaxBits) throw DecodeError("huffman: code length > 15");
    ++count[len];
  }
  count[0] = 0;
  // Kraft check: sum of 2^(max-len) over used symbols must fit.
  std::uint64_t kraft = 0;
  for (unsigned len = 1; len <= kMaxBits; ++len) {
    kraft += static_cast<std::uint64_t>(count[len]) << (kMaxBits - len);
  }
  if (kraft > (std::uint64_t{1} << kMaxBits)) {
    throw DecodeError("huffman: oversubscribed code");
  }
  std::array<std::uint16_t, kMaxBits + 2> next{};
  std::uint16_t code = 0;
  for (unsigned len = 1; len <= kMaxBits; ++len) {
    code = static_cast<std::uint16_t>((code + count[len - 1]) << 1);
    next[len] = code;
  }
  std::vector<Code> codes(lengths.size());
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    codes[s] = Code{next[lengths[s]]++, lengths[s]};
  }
  return codes;
}

void write_lengths(BitWriter& out, std::span<const std::uint8_t> lengths) {
  for (const auto len : lengths) out.write(len, 4);
}

std::vector<std::uint8_t> read_lengths(BitReader& in, std::size_t count) {
  std::vector<std::uint8_t> lengths(count);
  for (auto& len : lengths) len = static_cast<std::uint8_t>(in.read(4));
  return lengths;
}

Encoder::Encoder(std::span<const std::uint8_t> lengths)
    : codes_(canonical_codes(lengths)) {}

void Encoder::encode(BitWriter& out, unsigned symbol) const {
  const Code& c = codes_[symbol];
  if (c.len == 0) throw ConfigError("huffman: symbol missing from code");
  out.write(c.bits, c.len);
}

std::uint64_t Encoder::cost_bits(std::span<const std::uint64_t> freqs) const {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < freqs.size() && s < codes_.size(); ++s) {
    bits += freqs[s] * codes_[s].len;
  }
  return bits;
}

Decoder::Decoder(std::span<const std::uint8_t> lengths) {
  const auto codes = canonical_codes(lengths);  // validates Kraft
  for (const auto& c : codes) max_len_ = std::max<unsigned>(max_len_, c.len);
  if (max_len_ == 0) return;  // empty code: decode() always throws
  table_.assign(std::size_t{1} << max_len_, 0);
  for (std::size_t s = 0; s < codes.size(); ++s) {
    const Code& c = codes[s];
    if (c.len == 0) continue;
    // Every table slot whose top c.len bits equal the codeword maps to s.
    const unsigned fill = max_len_ - c.len;
    const std::size_t base = static_cast<std::size_t>(c.bits) << fill;
    const std::uint32_t entry =
        (static_cast<std::uint32_t>(s) << 4) | c.len;
    for (std::size_t i = 0; i < (std::size_t{1} << fill); ++i) {
      table_[base + i] = entry;
    }
  }
}

unsigned Decoder::decode(BitReader& in) const {
  if (max_len_ == 0) throw DecodeError("huffman: empty code");
  const auto window = static_cast<std::size_t>(in.peek(max_len_));
  const std::uint32_t entry = table_[window];
  const unsigned len = entry & 0xF;
  if (len == 0 || len > in.bits_left()) {
    throw DecodeError("huffman: invalid codeword or truncated stream");
  }
  in.skip(len);
  return entry >> 4;
}

}  // namespace acex::huff

namespace acex {

Bytes HuffmanCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  std::array<std::uint64_t, 256> freqs{};
  for (const auto b : input) ++freqs[b];

  const auto lengths = huff::build_code_lengths(freqs);
  BitWriter bw;
  huff::write_lengths(bw, lengths);
  const huff::Encoder enc(lengths);
  for (const auto b : input) enc.encode(bw, b);
  bw.take_into(out);
  return out;
}

Bytes HuffmanCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  // Every symbol costs at least one bit, so the declared size cannot
  // exceed the number of payload bits; reject corrupt headers early.
  if (size > (input.size() - pos) * 8) {
    throw DecodeError("huffman: declared size exceeds payload capacity");
  }
  BitReader br(input.subspan(pos));
  const auto lengths = huff::read_lengths(br, 256);
  const huff::Decoder dec(lengths);
  Bytes out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::uint8_t>(dec.decode(br)));
  }
  return out;
}

}  // namespace acex
