#include "compress/bwt_codec.hpp"

#include <array>
#include <atomic>
#include <future>

#include "compress/bwt.hpp"
#include "compress/huffman.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCompressed = 1;
constexpr std::uint8_t kSentinel = rle::kSentinel;  // 255

/// Fixed-width base-128 integer: four bytes, each holding 7 value bits, all
/// in 0..127 — provably sentinel-free. Covers values up to 2^28 - 1, ample
/// for chunk lengths and primary indices (chunks are capped at 1 MiB).
void put_b128(Bytes& out, std::uint32_t v) {
  for (int shift = 21; shift >= 0; shift -= 7) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0x7f));
  }
}

std::uint32_t get_b128(ByteView in, std::size_t* pos) {
  if (*pos + 4 > in.size()) throw DecodeError("bwt: truncated chunk header");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint8_t b = in[(*pos)++];
    if (b > 0x7f) throw DecodeError("bwt: invalid chunk header byte");
    v = (v << 7) | b;
  }
  return v;
}

/// Decode one staged chunk starting at `*pos` (which must point at its
/// header). Advances past the terminating sentinel. Returns the original
/// chunk bytes.
Bytes parse_chunk(ByteView staged, std::size_t* pos) {
  const std::uint32_t orig_len = get_b128(staged, pos);
  const std::uint32_t primary = get_b128(staged, pos);
  if (orig_len > (1u << 20)) throw DecodeError("bwt: chunk length too large");
  // Payload runs to the next sentinel, which rle::encode never emits.
  std::size_t end = *pos;
  while (end < staged.size() && staged[end] != kSentinel) ++end;
  if (end == staged.size()) throw DecodeError("bwt: missing chunk sentinel");
  const ByteView payload = staged.subspan(*pos, end - *pos);
  *pos = end + 1;  // consume the sentinel

  const Bytes mtf_stream = rle::decode(payload);
  const Bytes last_column = mtf::decode(mtf_stream);
  if (last_column.size() != orig_len) {
    throw DecodeError("bwt: chunk length mismatch");
  }
  return bwt::inverse(last_column, primary);
}

}  // namespace

BurrowsWheelerCodec::BurrowsWheelerCodec(std::size_t chunk_size,
                                         unsigned parallelism)
    : chunk_size_(chunk_size), parallelism_(parallelism) {
  if (chunk_size < 64 || chunk_size > (std::size_t{1} << 20)) {
    throw ConfigError("bwt: chunk_size must be in [64, 1 MiB]");
  }
  if (parallelism == 0 || parallelism > 64) {
    throw ConfigError("bwt: parallelism must be in [1, 64]");
  }
}

Bytes BurrowsWheelerCodec::stage_chunks(ByteView input) const {
  // Each chunk's pipeline is independent; produce the staged body of every
  // chunk (header + RLE stream, sans sentinel), optionally in parallel.
  const std::size_t chunk_count =
      (input.size() + chunk_size_ - 1) / chunk_size_;
  const auto stage_one = [&](std::size_t index) {
    const std::size_t off = index * chunk_size_;
    const std::size_t len = std::min(chunk_size_, input.size() - off);
    const auto transformed = bwt::forward(input.subspan(off, len));
    const Bytes rle_stream = rle::encode(mtf::encode(transformed.last_column));
    Bytes body;
    body.reserve(rle_stream.size() + 8);
    put_b128(body, static_cast<std::uint32_t>(len));
    put_b128(body, transformed.primary);
    body.insert(body.end(), rle_stream.begin(), rle_stream.end());
    return body;
  };

  std::vector<Bytes> bodies(chunk_count);
  if (parallelism_ <= 1 || chunk_count <= 1) {
    for (std::size_t i = 0; i < chunk_count; ++i) bodies[i] = stage_one(i);
  } else {
    std::vector<std::future<void>> workers;
    std::atomic<std::size_t> next{0};
    const unsigned lanes =
        std::min<unsigned>(parallelism_, static_cast<unsigned>(chunk_count));
    workers.reserve(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      workers.push_back(std::async(std::launch::async, [&] {
        for (std::size_t i = next.fetch_add(1); i < chunk_count;
             i = next.fetch_add(1)) {
          bodies[i] = stage_one(i);
        }
      }));
    }
    for (auto& w : workers) w.get();
  }

  Bytes staged;
  staged.reserve(input.size() + input.size() / 16 + 16);
  for (const auto& body : bodies) {
    staged.insert(staged.end(), body.begin(), body.end());
    staged.push_back(kSentinel);
  }
  return staged;
}

Bytes BurrowsWheelerCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  const Bytes staged = stage_chunks(input);
  HuffmanCodec huffman;  // §2.4: "all of the chunks are compressed jointly"
  Bytes packed = huffman.compress(staged);

  if (packed.size() + 1 >= input.size()) {
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
  } else {
    out.push_back(kModeCompressed);
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return out;
}

Bytes BurrowsWheelerCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  // Staged bytes are bounded by the inner Huffman payload (8 per byte) and
  // each staged RLE unit expands to at most ~51 source bytes.
  if (size > (input.size() + 8) * 8 * 64) {
    throw DecodeError("bwt: declared size exceeds payload capacity");
  }
  if (pos >= input.size()) throw DecodeError("bwt: missing mode byte");
  const std::uint8_t mode = input[pos++];
  if (mode == kModeStored) {
    if (input.size() - pos != size) {
      throw DecodeError("bwt: stored size mismatch");
    }
    const auto body = input.subspan(pos);
    return Bytes(body.begin(), body.end());
  }
  if (mode != kModeCompressed) throw DecodeError("bwt: unknown mode byte");

  HuffmanCodec huffman;
  const Bytes staged = huffman.decompress(input.subspan(pos));

  // Chunk boundaries are the sentinels, so the per-chunk inverse pipelines
  // can run independently (and in parallel when configured).
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // [begin, end)
  std::size_t begin = 0;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (staged[i] == kSentinel) {
      spans.emplace_back(begin, i + 1);
      begin = i + 1;
    }
  }
  if (begin != staged.size()) {
    throw DecodeError("bwt: missing chunk sentinel");
  }

  std::vector<Bytes> chunks(spans.size());
  const auto decode_one = [&](std::size_t index) {
    std::size_t spos = spans[index].first;
    chunks[index] = parse_chunk(staged, &spos);
    if (spos != spans[index].second) {
      throw DecodeError("bwt: chunk parse overrun");
    }
  };
  if (parallelism_ <= 1 || spans.size() <= 1) {
    for (std::size_t i = 0; i < spans.size(); ++i) decode_one(i);
  } else {
    std::vector<std::future<void>> workers;
    std::atomic<std::size_t> next{0};
    const unsigned lanes = std::min<unsigned>(
        parallelism_, static_cast<unsigned>(spans.size()));
    workers.reserve(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      workers.push_back(std::async(std::launch::async, [&] {
        for (std::size_t i = next.fetch_add(1); i < spans.size();
             i = next.fetch_add(1)) {
          decode_one(i);
        }
      }));
    }
    for (auto& w : workers) w.get();  // rethrows any DecodeError
  }

  Bytes out;
  out.reserve(size);
  for (const auto& chunk : chunks) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  if (out.size() != size) throw DecodeError("bwt: reassembled size mismatch");
  return out;
}

std::vector<Bytes> BurrowsWheelerCodec::recover_from_bit(
    ByteView compressed, std::uint64_t bit_offset) {
  // Walk the frame prelude to find the Huffman payload.
  std::size_t pos = 0;
  (void)get_varint(compressed, &pos);
  if (pos >= compressed.size()) throw DecodeError("bwt: missing mode byte");
  if (compressed[pos++] != kModeCompressed) {
    throw DecodeError("bwt: recovery requires a compressed-mode frame");
  }
  const ByteView packed = compressed.subspan(pos);

  // HuffmanCodec payload = varint size + 256-nibble length header + bits.
  std::size_t hpos = 0;
  const std::uint64_t staged_size = get_varint(packed, &hpos);
  BitReader br(packed.subspan(hpos));
  const huff::Decoder dec(huff::read_lengths(br, 256));
  const std::uint64_t header_bits = br.bit_pos();

  // Clamp the requested offset into the symbol stream, then decode bytes —
  // possibly garbage at first — until the code self-synchronizes.
  br.seek(std::max<std::uint64_t>(bit_offset, header_bits));
  Bytes staged_tail;
  staged_tail.reserve(static_cast<std::size_t>(staged_size));
  try {
    while (staged_tail.size() < staged_size) {
      staged_tail.push_back(static_cast<std::uint8_t>(dec.decode(br)));
    }
  } catch (const DecodeError&) {
    // Expected: the tail of a mid-stream decode rarely ends on a symbol
    // boundary. Work with what was recovered.
  }

  // The stream's zero padding can decode into spurious symbols after the
  // final sentinel; anything beyond the last sentinel cannot be a complete
  // chunk, so drop it before parsing.
  while (!staged_tail.empty() && staged_tail.back() != kSentinel) {
    staged_tail.pop_back();
  }

  // Each sentinel is a candidate chunk boundary; try to parse the suffix
  // after each one until a consistent parse emerges.
  std::vector<Bytes> chunks;
  const ByteView tail(staged_tail);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    if (tail[i] != kSentinel) continue;
    std::size_t spos = i + 1;
    chunks.clear();
    try {
      while (spos < tail.size()) {
        chunks.push_back(parse_chunk(tail, &spos));
      }
      if (!chunks.empty()) return chunks;
    } catch (const DecodeError&) {
      // Mis-synchronized candidate; try the next sentinel.
    }
  }
  return {};
}

}  // namespace acex
