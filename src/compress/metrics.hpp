#pragma once

#include "compress/codec.hpp"
#include "util/clock.hpp"

namespace acex {

/// One measured compression run — the quantities the paper's figures are
/// built from.
struct CompressionMeasurement {
  MethodId method = MethodId::kNone;
  std::size_t original_size = 0;
  std::size_t compressed_size = 0;
  Seconds compress_time = 0;    ///< wall time of compress()
  Seconds decompress_time = 0;  ///< wall time of decompress() (optional pass)

  /// Compressed size as a percentage of the original — the y-axis of
  /// Figs. 2 and 6 ("percents of compression"; lower is better).
  double ratio_percent() const noexcept {
    return original_size == 0
               ? 100.0
               : 100.0 * static_cast<double>(compressed_size) /
                     static_cast<double>(original_size);
  }

  /// Bytes removed from the stream per second of compression work — the
  /// paper's "reducing speed" (Fig. 4), the core quantity its selection
  /// algorithm compares against link speed. Zero when compression expands.
  double reducing_speed() const noexcept {
    if (compress_time <= 0 || compressed_size >= original_size) return 0.0;
    return static_cast<double>(original_size - compressed_size) /
           compress_time;
  }

  /// Compression throughput in bytes consumed per second.
  double compress_throughput() const noexcept {
    return compress_time > 0
               ? static_cast<double>(original_size) / compress_time
               : 0.0;
  }
};

/// Run `codec` over `data` under `clock`, optionally timing the inverse
/// direction too, and verify the round-trip (throws Error on mismatch —
/// a measurement of a broken codec is worthless).
CompressionMeasurement measure_codec(Codec& codec, ByteView data,
                                     const Clock& clock,
                                     bool include_decompress = true);

}  // namespace acex
