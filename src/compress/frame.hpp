#pragma once

#include <cstdint>

#include "compress/codec.hpp"
#include "compress/registry.hpp"

namespace acex {

/// Self-describing wire envelope around a codec payload. A receiver can
/// decode any frame knowing only the registry — the frame carries the
/// method id — and detects corruption anywhere along the path via a CRC of
/// the *original* (decompressed) bytes.
///
/// Layout:
///   magic "AX" | version (1) | method id (1) | varint payload size |
///   payload | crc32 of original data, little-endian (4)
struct Frame {
  MethodId method = MethodId::kNone;
  Bytes payload;               ///< codec output (compressed bytes)
  std::uint32_t crc = 0;       ///< CRC-32 of the original data
};

inline constexpr std::uint8_t kFrameVersion = 1;

/// Compress `data` with `codec` and wrap the result in a frame.
Bytes frame_compress(Codec& codec, ByteView data);

/// Parse a frame without decompressing. Throws DecodeError on malformed or
/// truncated envelopes.
Frame frame_parse(ByteView framed);

/// Parse, look the codec up in `registry`, decompress, and verify the CRC.
Bytes frame_decompress(ByteView framed, const CodecRegistry& registry);

/// Size in bytes of the envelope around a payload of `payload_size` bytes.
std::size_t frame_overhead(std::size_t payload_size) noexcept;

}  // namespace acex
