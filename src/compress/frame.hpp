#pragma once

#include <cstdint>

#include "compress/codec.hpp"
#include "compress/registry.hpp"
#include "util/buffer_view.hpp"

namespace acex {

/// Self-describing wire envelope around a codec payload. A receiver can
/// decode any frame knowing only the registry — the frame carries the
/// method id — and detects corruption anywhere along the path via a CRC of
/// the *original* (decompressed) bytes.
///
/// Two layouts exist on the wire:
///
///   v1:  magic "AX" | version=1 (1) | method id (1) |
///        varint payload size | payload | crc32 of original data, LE (4)
///
///   v2:  magic "AX" | version=2 (1) | method id (1) | varint sequence |
///        varint payload size | header checksum (1) | payload |
///        crc32 of original data, LE (4)
///
/// v2 adds a per-stream sequence number — making drops, duplicates and
/// reorders detectable by the receiver — and a 1-byte XOR checksum over
/// every header byte before it, so a corrupted header is rejected before
/// any decoder runs (and before a damaged varint size can misdirect
/// parsing). frame_parse() accepts both versions; v1 frames produced by
/// older senders decode unchanged.
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::uint8_t kFrameVersionSeq = 2;

struct Frame {
  std::uint8_t version = kFrameVersion;
  MethodId method = MethodId::kNone;
  /// Codec output (compressed bytes). A span-with-owner: frame_parse over
  /// a plain ByteView copies (the historical contract — the Frame outlives
  /// its wire buffer), while the BufferView overload aliases the wire
  /// bytes in place and shares their owner, so a frame mapped out of a
  /// shared-memory slab is decoded with zero payload copies.
  BufferView payload;
  std::uint32_t crc = 0;       ///< CRC-32 of the original data
  std::uint64_t sequence = 0;  ///< v2 stream sequence number
  bool has_sequence = false;   ///< true iff the frame was v2
};

/// Compress `data` with `codec` and wrap the result in a v1 frame.
Bytes frame_compress(Codec& codec, ByteView data);

/// Compress `data` with `codec` and wrap the result in a v2 frame carrying
/// `sequence`.
Bytes frame_compress_seq(Codec& codec, ByteView data, std::uint64_t sequence);

/// Wrap an ALREADY-COMPRESSED payload in a v2 frame. `original_crc` must be
/// the CRC-32 of the original (uncompressed) data, exactly as
/// frame_compress_seq would compute it. This is the shared-encode
/// primitive: one codec run can be framed once per subscriber, each with
/// its own sequence number, without recompressing — the resulting bytes
/// are identical to frame_compress_seq for the same (payload, sequence).
Bytes frame_build_seq(MethodId method, ByteView payload,
                      std::uint32_t original_crc, std::uint64_t sequence);

/// frame_build_seq written straight into caller storage (byte-identical
/// output): `dst` must hold frame_overhead_seq(payload.size(), sequence) +
/// payload.size() bytes. Returns the bytes written. This is the staging
/// primitive of the shm transport — the frame is materialized directly
/// inside a shared-memory slab, so the payload is copied exactly once.
std::size_t frame_build_seq_into(std::uint8_t* dst, MethodId method,
                                 ByteView payload, std::uint32_t original_crc,
                                 std::uint64_t sequence);

/// Parse a frame (either version) without decompressing. Throws DecodeError
/// on malformed or truncated envelopes, including header-checksum failures.
/// The payload is COPIED out of `framed` (the parsed Frame outlives the
/// wire buffer) — receivers on the zero-copy path use the BufferView
/// overload below instead.
Frame frame_parse(ByteView framed);

/// Zero-copy parse: identical validation, but the returned Frame's payload
/// ALIASES `framed`'s bytes and shares its owner, so no payload copy is
/// made and the wire buffer (heap block or mapped slab) stays alive for as
/// long as the Frame does. This is the receiver hot path: decode reads the
/// compressed bytes straight out of transport-owned storage.
Frame frame_parse(const BufferView& framed);

/// Parse, look the codec up in `registry`, decompress, and verify the CRC.
/// A method id the registry does not know is corrupt wire data, not caller
/// misuse, so it surfaces as DecodeError.
Bytes frame_decompress(ByteView framed, const CodecRegistry& registry);

/// Decompress an already-parsed frame (skips re-parsing; used by receivers
/// that need the header before deciding how to recover).
Bytes frame_decode(const Frame& frame, const CodecRegistry& registry);

/// Size in bytes of the v1 envelope around a payload of `payload_size`.
std::size_t frame_overhead(std::size_t payload_size) noexcept;

/// Size in bytes of the v2 envelope around a payload of `payload_size`
/// with sequence number `sequence`.
std::size_t frame_overhead_seq(std::size_t payload_size,
                               std::uint64_t sequence) noexcept;

}  // namespace acex
