#pragma once

#include <cstdint>
#include <cstddef>

#include "util/bytes.hpp"

namespace acex::bwt {

/// Result of the forward Burrows–Wheeler transform: the last column of the
/// sorted rotation matrix plus the row index of the original string, which
/// the inverse transform needs to re-anchor.
struct Transformed {
  Bytes last_column;
  std::uint32_t primary = 0;
};

/// Forward BWT over all cyclic rotations of `block` (§2.4 step 1).
///
/// Rotation order is established with prefix doubling (Manber–Myers on the
/// cyclic string): O(n log^2 n) with std::sort — deliberately the "slow,
/// strong" method of the paper; its cost is what Figs. 3/4 measure.
Transformed forward(ByteView block);

/// Inverse BWT via LF-mapping (counting sort + backwards walk), O(n).
/// Throws DecodeError if `primary` is out of range.
Bytes inverse(ByteView last_column, std::uint32_t primary);

}  // namespace acex::bwt
