#pragma once

#include <cstdint>
#include <vector>

#include "compress/codec.hpp"
#include "util/bytes.hpp"

namespace acex {

namespace lz {

/// Matching parameters. Defaults mirror gzip-class behaviour: 64 KiB window,
/// lazy (one-step) match deferral, bounded hash-chain walks.
struct Params {
  unsigned window_bits = 16;  ///< window size = 2^window_bits, max 16
  unsigned max_chain = 96;    ///< hash-chain positions examined per match
  bool lazy = true;           ///< defer a match if the next byte matches longer
};

inline constexpr unsigned kMinMatch = 3;
inline constexpr unsigned kMaxMatch = 258;

/// One LZ77 token: either a literal byte (`dist == 0`) or a back-reference
/// "go back `dist` bytes, copy `len`" — the (100,7)-style pointer of §2.3.
struct Token {
  std::uint32_t dist = 0;
  std::uint16_t len = 0;
  std::uint8_t literal = 0;

  bool is_literal() const noexcept { return dist == 0; }
};

/// Factor `input` into literals and back-references using hash chains with
/// greedy parsing plus optional one-step lazy matching.
std::vector<Token> tokenize(ByteView input, const Params& params = {});

/// Expand tokens back into bytes (the decompressor's copy loop). Throws
/// DecodeError if a token points before the start of output.
Bytes reconstruct(const std::vector<Token>& tokens);

/// Bucketing of match lengths and distances into Huffman symbols with extra
/// bits — "most pointers point to close destinations ... represented by
/// Huffman codes, which give shorter representation for small numbers".
/// Small values get dedicated symbols; larger ones share geometric buckets.
struct Bucket {
  unsigned symbol;       ///< Huffman symbol within the bucket alphabet
  unsigned extra_bits;   ///< raw bits following the symbol
  std::uint32_t extra;   ///< value of those bits
};

/// Number of length-bucket symbols (match length 3..258).
inline constexpr unsigned kLenSymbols = 18;
/// Number of distance-bucket symbols (distance 1..65536).
inline constexpr unsigned kDistSymbols = 32;
/// Literal/length alphabet: 256 literals followed by kLenSymbols buckets.
inline constexpr unsigned kLitLenSymbols = 256 + kLenSymbols;

Bucket length_bucket(unsigned len) noexcept;      ///< len in [3, 258]
Bucket distance_bucket(std::uint32_t d) noexcept; ///< d in [1, 65536]

/// Inverse mappings used by the decoder: given a bucket symbol and its extra
/// bits, recover the value. Throw DecodeError on out-of-range symbols.
unsigned length_base(unsigned symbol, unsigned* extra_bits);
std::uint32_t distance_base(unsigned symbol, unsigned* extra_bits);

}  // namespace lz

/// §2.3 Lempel–Ziv codec: LZ77 tokens entropy-coded with two canonical
/// Huffman codes (one over literals+length buckets, one over distance
/// buckets), i.e. "a version of Lempel-Ziv that compresses these pointers by
/// Huffman coding".
///
/// Wire format: varint original size, mode byte (0 = stored when compression
/// would expand, 1 = compressed), then either raw bytes or the two packed
/// code-length headers followed by the token bitstream.
class LempelZivCodec final : public Codec {
 public:
  explicit LempelZivCodec(lz::Params params = {}) : params_(params) {}

  MethodId id() const noexcept override { return MethodId::kLempelZiv; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;

 private:
  lz::Params params_;
};

}  // namespace acex
