#pragma once

#include "compress/codec.hpp"

namespace acex {

/// The "Don't Compress" branch of the §2.5 selection algorithm: a verbatim
/// pass-through so the adaptive path can treat every choice uniformly.
class NullCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kNone; }

  Bytes compress(ByteView input) override {
    return Bytes(input.begin(), input.end());
  }

  Bytes decompress(ByteView input) override {
    return Bytes(input.begin(), input.end());
  }
};

}  // namespace acex
