#include "compress/rle.hpp"

#include "util/error.hpp"

namespace acex::rle {
namespace {

/// Map arbitrary bytes into the sentinel-free alphabet 0..254.
Bytes escape(ByteView input) {
  Bytes out;
  out.reserve(input.size() + input.size() / 64);
  for (const std::uint8_t b : input) {
    if (b >= kEscape) {
      out.push_back(kEscape);
      out.push_back(static_cast<std::uint8_t>(b - kEscape));  // 0 or 1
    } else {
      out.push_back(b);
    }
  }
  return out;
}

Bytes unescape(ByteView input) {
  Bytes out;
  out.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t b = input[i];
    if (b == kSentinel) throw DecodeError("rle: sentinel inside payload");
    if (b == kEscape) {
      if (++i >= input.size()) throw DecodeError("rle: truncated escape");
      const std::uint8_t which = input[i];
      if (which > 1) throw DecodeError("rle: invalid escape payload");
      out.push_back(static_cast<std::uint8_t>(kEscape + which));
    } else {
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace

Bytes encode(ByteView input) {
  const Bytes esc = escape(input);
  Bytes out;
  out.reserve(esc.size());
  std::size_t i = 0;
  while (i < esc.size()) {
    const std::uint8_t b = esc[i];
    std::size_t run = 1;
    while (i + run < esc.size() && esc[i + run] == b) ++run;
    i += run;
    while (run > 0) {
      if (run >= kRunTrigger) {
        const std::size_t extra =
            std::min<std::size_t>(run - kRunTrigger, kMaxExtra);
        out.insert(out.end(), kRunTrigger, b);
        out.push_back(static_cast<std::uint8_t>(extra));
        run -= kRunTrigger + extra;
      } else {
        out.insert(out.end(), run, b);
        run = 0;
      }
    }
  }
  return out;
}

Bytes decode(ByteView input) {
  Bytes escaped;
  escaped.reserve(input.size());
  std::size_t consecutive = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t b = input[i];
    if (b == kSentinel) throw DecodeError("rle: sentinel inside payload");
    if (consecutive == kRunTrigger) {
      // `b` is the extra-repeat count for the run just seen.
      if (b > kMaxExtra) throw DecodeError("rle: run count out of range");
      const std::uint8_t run_byte = escaped.back();  // copy: insert may realloc
      escaped.insert(escaped.end(), b, run_byte);
      consecutive = 0;
      continue;
    }
    if (!escaped.empty() && escaped.back() == b) {
      ++consecutive;
    } else {
      consecutive = 1;
    }
    escaped.push_back(b);
  }
  if (consecutive == kRunTrigger) {
    throw DecodeError("rle: truncated run count");
  }
  return unescape(escaped);
}

}  // namespace acex::rle
