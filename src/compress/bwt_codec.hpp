#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "compress/codec.hpp"
#include "util/bytes.hpp"

namespace acex {

/// §2.4 Burrows–Wheeler codec, with the paper's chunked adaptation:
///
///   1. the input is split into fixed-size chunks;
///   2. each chunk independently goes through BWT -> move-to-front ->
///      capped run-length coding (whose output provably never contains
///      byte 255);
///   3. each chunk's header (original length, BWT primary index, both in a
///      255-free base-128 encoding) and payload are terminated by the
///      sentinel byte 255;
///   4. **all chunks are compressed jointly by a single Huffman code**, whose
///      self-synchronizing property lets a receiver that starts reading
///      mid-stream recover every chunk after the first sentinel it finds
///      (`recover_from_bit`).
///
/// Wire format: varint original size, mode byte (0 stored / 1 compressed),
/// then either raw bytes or a HuffmanCodec payload of the staged chunk
/// stream described above.
class BurrowsWheelerCodec final : public Codec {
 public:
  /// `chunk_size` trades compression (bigger is better) against transform
  /// time and recovery granularity. Must be in [64, 2^20].
  ///
  /// `parallelism` > 1 runs the per-chunk pipelines (BWT/MTF/RLE and their
  /// inverses) on that many std::async tasks — possible precisely because
  /// the paper's adaptation made chunks independent (§2.4, and its ref
  /// [31] on parallel Huffman decoding). The wire format is identical; the
  /// default stays serial so single-core timing measurements (Figs. 3/4)
  /// mean what they say.
  explicit BurrowsWheelerCodec(std::size_t chunk_size = 128 * 1024,
                               unsigned parallelism = 1);

  MethodId id() const noexcept override { return MethodId::kBurrowsWheeler; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;

  /// Mid-stream recovery (§2.4: "we can decode the compressed file from any
  /// arbitrary point"). Starts Huffman-decoding the *compressed* payload of
  /// a kModeCompressed frame at `bit_offset`, discards bytes until a chunk
  /// sentinel is plausible, and returns every complete chunk that decodes
  /// cleanly after it. Returns an empty vector when nothing downstream of
  /// the offset could be recovered. Best effort: the canonical Huffman code
  /// usually resynchronizes within a few symbols.
  std::vector<Bytes> recover_from_bit(ByteView compressed,
                                      std::uint64_t bit_offset);

  std::size_t chunk_size() const noexcept { return chunk_size_; }
  unsigned parallelism() const noexcept { return parallelism_; }

 private:
  Bytes stage_chunks(ByteView input) const;

  std::size_t chunk_size_;
  unsigned parallelism_;
};

}  // namespace acex
