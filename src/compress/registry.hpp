#pragma once

#include <functional>
#include <map>
#include <vector>

#include "compress/codec.hpp"

namespace acex {

/// Construct a fresh codec for one of the built-in methods. Throws
/// ConfigError for MethodId::kZlib when zlib support was not compiled in.
CodecPtr make_codec(MethodId id);

/// The four methods the paper's selection algorithm chooses among, in the
/// order Figs. 2–4 report them.
const std::vector<MethodId>& paper_methods();

/// Runtime codec registry. Mirrors the middleware property §3.2 relies on:
/// "a new compression method can be introduced at any time during a
/// system's operation" — receivers look codecs up by wire id, and
/// applications may register additional factories under ids >= 128.
class CodecRegistry {
 public:
  /// A registry pre-populated with every built-in method.
  static CodecRegistry with_builtins();

  /// Register (or replace) a factory for `id`.
  void register_factory(MethodId id, std::function<CodecPtr()> factory);

  /// Instantiate a codec; throws ConfigError for unregistered ids.
  CodecPtr create(MethodId id) const;

  bool contains(MethodId id) const noexcept;

  /// All registered method ids, ascending.
  std::vector<MethodId> methods() const;

 private:
  std::map<MethodId, std::function<CodecPtr()>> factories_;
};

}  // namespace acex
