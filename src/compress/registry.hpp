#pragma once

#include <functional>
#include <map>
#include <vector>

#include "compress/codec.hpp"

namespace acex {

/// Construct a fresh codec for one of the built-in methods. Throws
/// ConfigError for MethodId::kZlib when zlib support was not compiled in.
CodecPtr make_codec(MethodId id);

/// The four methods the paper's selection algorithm chooses among, in the
/// order Figs. 2–4 report them.
const std::vector<MethodId>& paper_methods();

/// Runtime codec registry. Mirrors the middleware property §3.2 relies on:
/// "a new compression method can be introduced at any time during a
/// system's operation" — receivers look codecs up by wire id, and
/// applications may register additional factories under ids >= 128.
///
/// Thread safety: the registry is a read-mostly structure. create(),
/// contains() and methods() are const reads and safe to call from any
/// number of threads concurrently, PROVIDED no register_factory() runs at
/// the same time. The parallel engine enforces that statically: it calls
/// freeze() before fanning encode work out to workers, after which
/// register_factory() throws ConfigError instead of racing the readers.
/// Factories themselves must be thread-safe to invoke concurrently (the
/// built-ins just heap-allocate a fresh codec, which is).
class CodecRegistry {
 public:
  /// A registry pre-populated with every built-in method (not frozen —
  /// applications may still add their own codecs).
  static CodecRegistry with_builtins();

  /// Register (or replace) a factory for `id`. Throws ConfigError once the
  /// registry is frozen.
  void register_factory(MethodId id, std::function<CodecPtr()> factory);

  /// Instantiate a codec; throws ConfigError for unregistered ids.
  /// Safe for concurrent callers once frozen (or, more generally, whenever
  /// no register_factory() is in flight).
  CodecPtr create(MethodId id) const;

  bool contains(MethodId id) const noexcept;

  /// All registered method ids, ascending.
  std::vector<MethodId> methods() const;

  /// Make the registry immutable: every later register_factory() throws,
  /// which is what makes handing `const CodecRegistry&` to concurrent
  /// workers sound. Irreversible; idempotent.
  void freeze() noexcept { frozen_ = true; }

  bool frozen() const noexcept { return frozen_; }

 private:
  std::map<MethodId, std::function<CodecPtr()>> factories_;
  bool frozen_ = false;
};

}  // namespace acex
