#include "compress/lz77.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "compress/huffman.hpp"
#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace lz {
namespace {

constexpr unsigned kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
constexpr std::int32_t kNil = -1;

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  const std::uint32_t v = (static_cast<std::uint32_t>(p[0]) << 16) |
                          (static_cast<std::uint32_t>(p[1]) << 8) | p[2];
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Hash-chain index over the input. head_ maps a 3-byte hash to the most
/// recent position; prev_ chains positions with equal hashes backwards.
class Matcher {
 public:
  Matcher(ByteView input, const Params& params)
      : in_(input),
        window_(std::size_t{1} << std::min(params.window_bits, 16u)),
        max_chain_(params.max_chain),
        head_(kHashSize, kNil),
        prev_(input.size(), kNil) {}

  /// Register position `i` in the chains (requires i + 3 <= input size).
  void insert(std::size_t i) noexcept {
    const std::uint32_t h = hash3(in_.data() + i);
    prev_[i] = head_[h];
    head_[h] = static_cast<std::int32_t>(i);
  }

  /// Longest match for position `i` among previously inserted positions
  /// within the window. Returns length 0 when no match of >= kMinMatch.
  Token best(std::size_t i) const noexcept {
    const std::size_t n = in_.size();
    if (i + kMinMatch > n) return {};
    const std::size_t max_len = std::min<std::size_t>(kMaxMatch, n - i);
    const std::size_t lowest = i > window_ ? i - window_ : 0;

    Token bestTok{};
    std::size_t best_len = kMinMatch - 1;
    unsigned chain = max_chain_;
    for (std::int32_t cand = head_[hash3(in_.data() + i)];
         cand != kNil && static_cast<std::size_t>(cand) >= lowest && chain > 0;
         cand = prev_[static_cast<std::size_t>(cand)], --chain) {
      const std::size_t c = static_cast<std::size_t>(cand);
      if (c >= i) continue;  // self or stale entry for this position
      const std::uint8_t* a = in_.data() + i;
      const std::uint8_t* b = in_.data() + c;
      // Quick reject: match must beat the current best at its last byte.
      if (b[best_len] != a[best_len]) continue;
      std::size_t len = 0;
      while (len < max_len && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        bestTok = Token{static_cast<std::uint32_t>(i - c),
                        static_cast<std::uint16_t>(len), 0};
        if (len == max_len) break;
      }
    }
    return bestTok;
  }

 private:
  ByteView in_;
  std::size_t window_;
  unsigned max_chain_;
  std::vector<std::int32_t> head_;
  std::vector<std::int32_t> prev_;
};

}  // namespace

std::vector<Token> tokenize(ByteView input, const Params& params) {
  std::vector<Token> out;
  const std::size_t n = input.size();
  if (n == 0) return out;
  out.reserve(n / 4);

  Matcher m(input, params);
  std::size_t i = 0;
  Token prev{};             // candidate match found at position i-1
  bool pending = false;     // true when position i-1 awaits resolution

  while (i < n) {
    Token cur{};
    if (i + kMinMatch <= n) {
      cur = m.best(i);
      m.insert(i);
    }
    if (pending && prev.len >= kMinMatch &&
        (!params.lazy || prev.len >= cur.len)) {
      // The match starting at i-1 wins; it also covers position i.
      out.push_back(prev);
      const std::size_t end = i - 1 + prev.len;
      for (std::size_t j = i + 1; j < end && j + kMinMatch <= n; ++j) {
        m.insert(j);
      }
      i = end;
      pending = false;
    } else {
      if (pending) out.push_back(Token{0, 0, input[i - 1]});
      prev = cur;
      pending = true;
      ++i;
    }
  }
  // Any still-pending position is within kMinMatch of the end, so its match
  // length is < kMinMatch and it resolves to a literal.
  if (pending) out.push_back(Token{0, 0, input[n - 1]});
  return out;
}

Bytes reconstruct(const std::vector<Token>& tokens) {
  Bytes out;
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      out.push_back(t.literal);
      continue;
    }
    if (t.dist == 0 || t.dist > out.size()) {
      throw DecodeError("lz: back-reference before start of data");
    }
    // Byte-wise copy: overlapping references (dist < len) replicate runs.
    std::size_t src = out.size() - t.dist;
    for (unsigned k = 0; k < t.len; ++k) out.push_back(out[src + k]);
  }
  return out;
}

Bucket length_bucket(unsigned len) noexcept {
  assert(len >= kMinMatch && len <= kMaxMatch);
  const unsigned v = len - kMinMatch;  // 0..255
  if (v < 8) return Bucket{v, 0, 0};
  const unsigned k = std::bit_width(v) - 1;  // 3..7
  const unsigned sym = 8 + (k - 3) * 2 + ((v >> (k - 1)) & 1);
  const unsigned eb = k - 1;
  return Bucket{sym, eb, v & ((1u << eb) - 1)};
}

Bucket distance_bucket(std::uint32_t d) noexcept {
  assert(d >= 1 && d <= 65536);
  const std::uint32_t v = d - 1;  // 0..65535
  if (v < 4) return Bucket{v, 0, 0};
  const unsigned k = std::bit_width(v) - 1;  // 2..15
  const unsigned sym = 4 + (k - 2) * 2 + ((v >> (k - 1)) & 1);
  const unsigned eb = k - 1;
  return Bucket{sym, eb, v & ((1u << eb) - 1)};
}

unsigned length_base(unsigned symbol, unsigned* extra_bits) {
  if (symbol >= kLenSymbols) throw DecodeError("lz: bad length symbol");
  if (symbol < 8) {
    *extra_bits = 0;
    return kMinMatch + symbol;
  }
  const unsigned t = symbol - 8;
  const unsigned k = 3 + t / 2;
  const unsigned half = t & 1;
  *extra_bits = k - 1;
  return kMinMatch + (1u << k) + half * (1u << (k - 1));
}

std::uint32_t distance_base(unsigned symbol, unsigned* extra_bits) {
  if (symbol >= kDistSymbols) throw DecodeError("lz: bad distance symbol");
  if (symbol < 4) {
    *extra_bits = 0;
    return 1 + symbol;
  }
  const unsigned t = symbol - 4;
  const unsigned k = 2 + t / 2;
  const unsigned half = t & 1;
  *extra_bits = k - 1;
  return 1 + (1u << k) + half * (1u << (k - 1));
}

}  // namespace lz

namespace {

constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCompressed = 1;

}  // namespace

Bytes LempelZivCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  const auto tokens = lz::tokenize(input, params_);

  // Gather symbol statistics for the two codes.
  std::vector<std::uint64_t> litlen_freq(lz::kLitLenSymbols, 0);
  std::vector<std::uint64_t> dist_freq(lz::kDistSymbols, 0);
  for (const auto& t : tokens) {
    if (t.is_literal()) {
      ++litlen_freq[t.literal];
    } else {
      ++litlen_freq[256 + lz::length_bucket(t.len).symbol];
      ++dist_freq[lz::distance_bucket(t.dist).symbol];
    }
  }
  const auto litlen_lengths = huff::build_code_lengths(litlen_freq);
  const auto dist_lengths = huff::build_code_lengths(dist_freq);

  BitWriter bw;
  huff::write_lengths(bw, litlen_lengths);
  huff::write_lengths(bw, dist_lengths);
  const huff::Encoder lit_enc(litlen_lengths);
  const huff::Encoder dist_enc(dist_lengths);
  for (const auto& t : tokens) {
    if (t.is_literal()) {
      lit_enc.encode(bw, t.literal);
    } else {
      const auto lb = lz::length_bucket(t.len);
      lit_enc.encode(bw, 256 + lb.symbol);
      bw.write(lb.extra, lb.extra_bits);
      const auto db = lz::distance_bucket(t.dist);
      dist_enc.encode(bw, db.symbol);
      bw.write(db.extra, db.extra_bits);
    }
  }

  Bytes payload = bw.take();
  if (payload.size() + 1 >= input.size()) {
    // Compression expands (random data, tiny inputs): store verbatim.
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
  } else {
    out.push_back(kModeCompressed);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Bytes LempelZivCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  // A token needs >= 2 bits and emits <= 258 bytes, bounding expansion at
  // ~1032 bytes per payload byte; reject corrupt size headers beyond that.
  if (size > (input.size() + 8) * 1100) {
    throw DecodeError("lz: declared size exceeds payload capacity");
  }
  if (pos >= input.size()) throw DecodeError("lz: missing mode byte");
  const std::uint8_t mode = input[pos++];

  if (mode == kModeStored) {
    if (input.size() - pos != size) throw DecodeError("lz: stored size mismatch");
    const auto body = input.subspan(pos);
    return Bytes(body.begin(), body.end());
  }
  if (mode != kModeCompressed) throw DecodeError("lz: unknown mode byte");

  BitReader br(input.subspan(pos));
  const huff::Decoder lit_dec(huff::read_lengths(br, lz::kLitLenSymbols));
  const huff::Decoder dist_dec(huff::read_lengths(br, lz::kDistSymbols));

  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const unsigned sym = lit_dec.decode(br);
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    unsigned len_eb = 0;
    const unsigned len =
        lz::length_base(sym - 256, &len_eb) +
        static_cast<unsigned>(br.read(len_eb));
    unsigned dist_eb = 0;
    const std::uint32_t dist =
        lz::distance_base(dist_dec.decode(br), &dist_eb) +
        static_cast<std::uint32_t>(br.read(dist_eb));
    if (dist > out.size()) {
      throw DecodeError("lz: back-reference before start of data");
    }
    if (out.size() + len > size) {
      throw DecodeError("lz: output overruns declared size");
    }
    std::size_t src = out.size() - dist;
    for (unsigned k = 0; k < len; ++k) out.push_back(out[src + k]);
  }
  return out;
}

}  // namespace acex
