#pragma once

#include <cstdint>

#include "compress/codec.hpp"
#include "compress/registry.hpp"

namespace acex {

/// First MethodId value reserved for application-registered codecs. Built-in
/// ids stay below; middleware deployments hand these out per application.
inline constexpr std::uint8_t kFirstApplicationMethodId = 128;

/// Application-specific LOSSY codec for float32 streams — the extension the
/// paper's conclusions call for: "permitting end users to integrate their
/// own, application-specific, lossy compression techniques into data
/// streaming middleware" (§5), motivated by the molecular coordinates that
/// defeat every lossless method (Fig. 6).
///
/// Scheme: each float is quantized to a grid of `precision` (bounding the
/// absolute error by precision/2), delta-coded against its predecessor —
/// trajectories and neighboring atoms are correlated — and the resulting
/// zigzag varints are compressed with the Lempel-Ziv codec.
///
/// The input must be a whole number of float32 values (typical for PBIO
/// fixed-layout payloads); anything else throws ConfigError, because
/// silently treating structured floats as bytes would corrupt science.
///
/// Registered under MethodId 128 by convention (see register_float_quant),
/// demonstrating §3.2's "a new compression method can be introduced at any
/// time during a system's operation".
class FloatQuantCodec final : public Codec {
 public:
  static constexpr MethodId kId =
      static_cast<MethodId>(kFirstApplicationMethodId);

  /// `precision` is the quantization grid (maximum absolute error is half
  /// of it). Must be positive and finite.
  explicit FloatQuantCodec(double precision = 1e-3);

  MethodId id() const noexcept override { return kId; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;

  double precision() const noexcept { return precision_; }

 private:
  double precision_;
};

/// Convenience: register a FloatQuantCodec factory under its conventional
/// id in `registry` (both sender and receiver must do this — the §3.2
/// deployment handshake).
void register_float_quant(CodecRegistry& registry, double precision = 1e-3);

}  // namespace acex
