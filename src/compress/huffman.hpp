#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/codec.hpp"
#include "util/bitstream.hpp"
#include "util/bytes.hpp"

namespace acex::huff {

/// Upper bound on code length. 15 bits keeps the decoder's full lookup table
/// at 2^15 entries and the 4-bit packed length header representable.
inline constexpr unsigned kMaxBits = 15;

/// A canonical Huffman codeword: the low `len` bits of `bits`, MSB first.
struct Code {
  std::uint16_t bits = 0;
  std::uint8_t len = 0;
};

/// Compute optimal code lengths for `freqs` (one entry per symbol; zero means
/// the symbol does not occur), length-limited to `max_bits` by iterative
/// frequency rescaling. Result has the same size as `freqs`; unused symbols
/// get length 0. An input with a single used symbol gets length 1.
std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> freqs, unsigned max_bits = kMaxBits);

/// Assign canonical codes (increasing within each length, shorter lengths
/// first) to the given lengths. Throws ConfigError if lengths exceed
/// kMaxBits, DecodeError if they oversubscribe the Kraft budget.
std::vector<Code> canonical_codes(std::span<const std::uint8_t> lengths);

/// Serialize code lengths as packed 4-bit nibbles (alphabet size is implied
/// by the caller; both sides must agree on it).
void write_lengths(BitWriter& out, std::span<const std::uint8_t> lengths);

/// Inverse of write_lengths for an alphabet of `count` symbols.
std::vector<std::uint8_t> read_lengths(BitReader& in, std::size_t count);

/// Encodes symbols with a fixed canonical code.
class Encoder {
 public:
  explicit Encoder(std::span<const std::uint8_t> lengths);

  void encode(BitWriter& out, unsigned symbol) const;

  /// Codeword for `symbol` (len == 0 means the symbol was not in the code).
  const Code& code(unsigned symbol) const { return codes_[symbol]; }

  /// Exact number of bits this code spends on `freqs` (header excluded).
  std::uint64_t cost_bits(std::span<const std::uint64_t> freqs) const;

 private:
  std::vector<Code> codes_;
};

/// Table-driven canonical decoder: one full lookup table of 2^max_len
/// entries, so decode() is a single peek + skip.
class Decoder {
 public:
  /// Throws DecodeError if `lengths` do not form a valid prefix code
  /// (oversubscribed Kraft sum) — wire data is untrusted.
  explicit Decoder(std::span<const std::uint8_t> lengths);

  /// Decode one symbol; throws DecodeError on an invalid codeword or
  /// exhausted input.
  unsigned decode(BitReader& in) const;

 private:
  std::vector<std::uint32_t> table_;  // (symbol << 4) | len per prefix
  unsigned max_len_ = 0;
};

}  // namespace acex::huff

namespace acex {

/// §2.1 whole-buffer Huffman codec over the byte alphabet.
///
/// Wire format: varint original size, then (if nonzero) a packed 256-nibble
/// code-length header and the MSB-first codeword stream. No EOF symbol is
/// needed because the original size is explicit.
class HuffmanCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kHuffman; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;
};

}  // namespace acex
