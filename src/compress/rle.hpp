#pragma once

#include "util/bytes.hpp"

namespace acex::rle {

/// Capped run-length coding (§2.4 step 3, with the paper's adaptation).
///
/// The paper reserves byte 255 as an end-of-chunk sentinel by capping run
/// lengths at 254. That alone is not sufficient for arbitrary inputs — an
/// MTF index of 255 can legitimately occur — so this implementation first
/// escapes the values 254/255 through a 254-prefix (254,0 -> 254; 254,1 ->
/// 255) and only then run-length codes. The guarantee callers rely on:
/// **encode() output never contains byte 255**, so 255 can frame chunks.
///
/// Run coding: four identical consecutive bytes are followed by one count
/// byte (0..250) of additional repeats, bounding any run's encoded extent
/// at 254 source bytes per unit, per the paper.
inline constexpr std::uint8_t kSentinel = 255;
inline constexpr std::uint8_t kEscape = 254;
inline constexpr unsigned kRunTrigger = 4;
inline constexpr unsigned kMaxExtra = 250;

/// Encode; output is sentinel-free (never contains 255).
Bytes encode(ByteView input);

/// Decode; throws DecodeError on malformed escapes, truncated runs, or a
/// stray sentinel byte inside the payload.
Bytes decode(ByteView input);

}  // namespace acex::rle
