#include "compress/frame.hpp"

#include <algorithm>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

constexpr std::uint8_t kMagic0 = 'A';
constexpr std::uint8_t kMagic1 = 'X';

// Minimum well-formed sizes: v1 is magic(2)+version(1)+method(1)+
// varint size(>=1)+crc(4) = 9; v2 adds varint sequence(>=1) and the
// header checksum byte = 11.
constexpr std::size_t kMinFrameV1 = 9;
constexpr std::size_t kMinFrameV2 = 11;

// XOR checksum of the v2 header bytes [0, end). Seeded with a non-zero
// constant so an all-zero header does not trivially checksum to zero.
std::uint8_t header_checksum(ByteView framed, std::size_t end) noexcept {
  std::uint8_t sum = 0x5A;
  for (std::size_t i = 0; i < end; ++i) sum ^= framed[i];
  return sum;
}

void append_crc(Bytes& out, std::uint32_t crc) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
}

}  // namespace

Bytes frame_compress(Codec& codec, ByteView data) {
  const std::uint32_t crc = crc32(data);
  const Bytes payload = codec.compress(data);

  Bytes out;
  out.reserve(payload.size() + 16);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(codec.id()));
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  append_crc(out, crc);
  return out;
}

Bytes frame_compress_seq(Codec& codec, ByteView data, std::uint64_t sequence) {
  const std::uint32_t crc = crc32(data);
  const Bytes payload = codec.compress(data);
  return frame_build_seq(codec.id(), payload, crc, sequence);
}

Bytes frame_build_seq(MethodId method, ByteView payload,
                      std::uint32_t original_crc, std::uint64_t sequence) {
  Bytes out;
  out.reserve(payload.size() + 24);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFrameVersionSeq);
  out.push_back(static_cast<std::uint8_t>(method));
  put_varint(out, sequence);
  put_varint(out, payload.size());
  out.push_back(header_checksum(out, out.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  append_crc(out, original_crc);
  return out;
}

std::size_t frame_build_seq_into(std::uint8_t* dst, MethodId method,
                                 ByteView payload, std::uint32_t original_crc,
                                 std::uint64_t sequence) {
  // The header is tiny (<= 25 bytes); building it in a scratch vector and
  // writing payload + trailer straight into `dst` keeps this byte-identical
  // to frame_build_seq while making only ONE pass over the payload — the
  // copy into the destination (a shared-memory slab on the shm path).
  Bytes head;
  head.reserve(32);
  head.push_back(kMagic0);
  head.push_back(kMagic1);
  head.push_back(kFrameVersionSeq);
  head.push_back(static_cast<std::uint8_t>(method));
  put_varint(head, sequence);
  put_varint(head, payload.size());
  head.push_back(header_checksum(ByteView(head.data(), head.size()),
                                 head.size()));
  std::copy(head.begin(), head.end(), dst);
  std::copy(payload.begin(), payload.end(), dst + head.size());
  std::uint8_t* trailer = dst + head.size() + payload.size();
  for (int i = 0; i < 4; ++i) {
    trailer[i] = static_cast<std::uint8_t>(original_crc >> (8 * i));
  }
  return head.size() + payload.size() + 4;
}

namespace {

/// Shared validation body of both frame_parse overloads. The returned
/// frame's payload BORROWS `framed`; each public overload fixes the
/// lifetime up to its own contract (copy vs shared alias).
Frame frame_parse_borrowed(ByteView framed) {
  if (framed.size() < kMinFrameV1) throw DecodeError("frame: too short");
  if (framed[0] != kMagic0 || framed[1] != kMagic1) {
    throw DecodeError("frame: bad magic");
  }

  Frame frame;
  frame.version = framed[2];
  frame.method = static_cast<MethodId>(framed[3]);
  std::size_t pos = 4;

  if (frame.version == kFrameVersionSeq) {
    if (framed.size() < kMinFrameV2) throw DecodeError("frame: too short");
    frame.sequence = get_varint(framed, &pos);
    frame.has_sequence = true;
  } else if (frame.version != kFrameVersion) {
    throw DecodeError("frame: bad version");
  }

  const std::uint64_t payload_size = get_varint(framed, &pos);

  if (frame.version == kFrameVersionSeq) {
    // Validate the header before trusting any of it: a flipped bit in the
    // sequence or size varints must not send us off into the payload.
    if (pos >= framed.size()) throw DecodeError("frame: too short");
    if (framed[pos] != header_checksum(framed, pos)) {
      throw DecodeError("frame: header checksum mismatch");
    }
    ++pos;
  }

  // Overflow-safe size check: get_varint guarantees pos <= framed.size(),
  // so `remaining` cannot wrap — unlike `pos + payload_size + 4`, which an
  // adversarial varint can overflow past SIZE_MAX.
  const std::size_t remaining = framed.size() - pos;
  if (remaining < 4 || remaining - 4 != payload_size) {
    throw DecodeError("frame: size mismatch");
  }
  frame.payload = BufferView::borrow(framed.subspan(pos, payload_size));
  pos += payload_size;
  frame.crc = 0;
  for (int i = 0; i < 4; ++i) {
    frame.crc |= static_cast<std::uint32_t>(framed[pos + i]) << (8 * i);
  }
  return frame;
}

}  // namespace

Frame frame_parse(ByteView framed) {
  Frame frame = frame_parse_borrowed(framed);
  // Historical contract: the parsed Frame outlives the wire buffer.
  frame.payload = BufferView::copy(frame.payload);
  return frame;
}

Frame frame_parse(const BufferView& framed) {
  Frame frame = frame_parse_borrowed(framed.view());
  // Re-anchor the borrowed payload on the wire buffer's owner so it stays
  // valid for the Frame's whole lifetime — zero copies.
  const std::size_t offset =
      static_cast<std::size_t>(frame.payload.data() - framed.data());
  frame.payload = framed.subview(offset, frame.payload.size());
  return frame;
}

Bytes frame_decode(const Frame& frame, const CodecRegistry& registry) {
  // An unknown method id off the wire is corrupt data (or a peer speaking a
  // newer dialect), not caller misuse: report it as a decode failure so
  // recovery policies treat the frame like any other damaged one.
  if (!registry.contains(frame.method)) {
    throw DecodeError("frame: unknown method id " +
                      std::to_string(static_cast<int>(frame.method)));
  }
  const CodecPtr codec = registry.create(frame.method);
  Bytes data = codec->decompress(frame.payload);
  if (crc32(data) != frame.crc) {
    throw DecodeError("frame: CRC mismatch after decompression");
  }
  return data;
}

Bytes frame_decompress(ByteView framed, const CodecRegistry& registry) {
  return frame_decode(frame_parse(framed), registry);
}

std::size_t frame_overhead(std::size_t payload_size) noexcept {
  return 2 + 1 + 1 + varint_size(payload_size) + 4;
}

std::size_t frame_overhead_seq(std::size_t payload_size,
                               std::uint64_t sequence) noexcept {
  return 2 + 1 + 1 + varint_size(sequence) + varint_size(payload_size) + 1 + 4;
}

}  // namespace acex
