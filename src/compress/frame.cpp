#include "compress/frame.hpp"

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

constexpr std::uint8_t kMagic0 = 'A';
constexpr std::uint8_t kMagic1 = 'X';

}  // namespace

Bytes frame_compress(Codec& codec, ByteView data) {
  const std::uint32_t crc = crc32(data);
  const Bytes payload = codec.compress(data);

  Bytes out;
  out.reserve(payload.size() + 16);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(codec.id()));
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

Frame frame_parse(ByteView framed) {
  if (framed.size() < 8) throw DecodeError("frame: too short");
  if (framed[0] != kMagic0 || framed[1] != kMagic1) {
    throw DecodeError("frame: bad magic");
  }
  if (framed[2] != kFrameVersion) throw DecodeError("frame: bad version");

  Frame frame;
  frame.method = static_cast<MethodId>(framed[3]);
  std::size_t pos = 4;
  const std::uint64_t payload_size = get_varint(framed, &pos);
  if (pos + payload_size + 4 != framed.size()) {
    throw DecodeError("frame: size mismatch");
  }
  const auto payload = framed.subspan(pos, payload_size);
  frame.payload.assign(payload.begin(), payload.end());
  pos += payload_size;
  frame.crc = 0;
  for (int i = 0; i < 4; ++i) {
    frame.crc |= static_cast<std::uint32_t>(framed[pos + i]) << (8 * i);
  }
  return frame;
}

Bytes frame_decompress(ByteView framed, const CodecRegistry& registry) {
  const Frame frame = frame_parse(framed);
  const CodecPtr codec = registry.create(frame.method);
  Bytes data = codec->decompress(frame.payload);
  if (crc32(data) != frame.crc) {
    throw DecodeError("frame: CRC mismatch after decompression");
  }
  return data;
}

std::size_t frame_overhead(std::size_t payload_size) noexcept {
  return 2 + 1 + 1 + varint_size(payload_size) + 4;
}

}  // namespace acex
