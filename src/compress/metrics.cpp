#include "compress/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acex {

CompressionMeasurement measure_codec(Codec& codec, ByteView data,
                                     const Clock& clock,
                                     bool include_decompress) {
  CompressionMeasurement m;
  m.method = codec.id();
  m.original_size = data.size();

  Stopwatch sw(clock);
  const Bytes compressed = codec.compress(data);
  m.compress_time = sw.elapsed();
  m.compressed_size = compressed.size();

  if (include_decompress) {
    sw.restart();
    const Bytes restored = codec.decompress(compressed);
    m.decompress_time = sw.elapsed();
    if (restored.size() != data.size() ||
        !std::equal(restored.begin(), restored.end(), data.begin())) {
      throw Error("measure_codec: codec failed to round-trip");
    }
  }
  return m;
}

}  // namespace acex
