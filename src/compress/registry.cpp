#include "compress/registry.hpp"

#include "compress/arith.hpp"
#include "compress/bwt_codec.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "compress/lzw.hpp"
#include "compress/null_codec.hpp"
#include "compress/zlib_codec.hpp"
#include "util/error.hpp"

namespace acex {

CodecPtr make_codec(MethodId id) {
  switch (id) {
    case MethodId::kNone:
      return std::make_unique<NullCodec>();
    case MethodId::kHuffman:
      return std::make_unique<HuffmanCodec>();
    case MethodId::kArithmetic:
      return std::make_unique<ArithmeticCodec>();
    case MethodId::kLempelZiv:
      return std::make_unique<LempelZivCodec>();
    case MethodId::kBurrowsWheeler:
      return std::make_unique<BurrowsWheelerCodec>();
    case MethodId::kLzw:
      return std::make_unique<LzwCodec>();
    case MethodId::kZlib:
#ifdef ACEX_HAVE_ZLIB
      return std::make_unique<ZlibCodec>();
#else
      throw ConfigError("zlib codec not compiled in");
#endif
    case MethodId::kColumnar:
      throw ConfigError(
          "colpipe is application-registered: call "
          "colpipe::register_columnar(registry) on both ends");
  }
  throw ConfigError("unknown method id");
}

const std::vector<MethodId>& paper_methods() {
  static const std::vector<MethodId> kMethods = {
      MethodId::kBurrowsWheeler, MethodId::kLempelZiv, MethodId::kArithmetic,
      MethodId::kHuffman};
  return kMethods;
}

CodecRegistry CodecRegistry::with_builtins() {
  CodecRegistry reg;
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kLzw}) {
    reg.register_factory(id, [id] { return make_codec(id); });
  }
  if (zlib_available()) {
    reg.register_factory(MethodId::kZlib,
                         [] { return make_codec(MethodId::kZlib); });
  }
  return reg;
}

void CodecRegistry::register_factory(MethodId id,
                                     std::function<CodecPtr()> factory) {
  if (!factory) throw ConfigError("codec factory must not be empty");
  if (frozen_) {
    throw ConfigError(
        "codec registry is frozen (concurrent readers may exist); register "
        "codecs before the first parallel send");
  }
  factories_[id] = std::move(factory);
}

CodecPtr CodecRegistry::create(MethodId id) const {
  const auto it = factories_.find(id);
  if (it == factories_.end()) {
    throw ConfigError("no codec registered for id " +
                      std::to_string(static_cast<int>(id)));
  }
  return it->second();
}

bool CodecRegistry::contains(MethodId id) const noexcept {
  return factories_.find(id) != factories_.end();
}

std::vector<MethodId> CodecRegistry::methods() const {
  std::vector<MethodId> out;
  out.reserve(factories_.size());
  for (const auto& [id, factory] : factories_) out.push_back(id);
  return out;
}

}  // namespace acex
