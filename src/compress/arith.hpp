#pragma once

#include <cstdint>
#include <vector>

#include "compress/codec.hpp"
#include "util/bitstream.hpp"

namespace acex {

namespace arith {

/// Adaptive order-0 byte model shared by the arithmetic encoder and decoder.
/// Frequencies start uniform and are bumped after every symbol; both sides
/// perform identical updates, so no model data is transmitted.
///
/// Cumulative counts are kept in a Fenwick tree: O(log n) update, O(log n)
/// symbol lookup during decode.
class AdaptiveByteModel {
 public:
  AdaptiveByteModel();

  /// cum(symbol): total frequency of symbols strictly below `symbol`.
  std::uint32_t cum_below(unsigned symbol) const noexcept;

  std::uint32_t freq(unsigned symbol) const noexcept;
  std::uint32_t total() const noexcept { return total_; }

  /// Largest symbol with cum_below(symbol) <= target.
  unsigned find(std::uint32_t target) const noexcept;

  /// Record one occurrence of `symbol`, halving all counts when the total
  /// would exceed the coder's precision budget.
  void update(unsigned symbol) noexcept;

 private:
  void rebuild(const std::vector<std::uint32_t>& freqs) noexcept;

  std::vector<std::uint32_t> tree_;  // Fenwick over 256 symbols
  std::uint32_t total_ = 0;
};

}  // namespace arith

/// §2.2 adaptive arithmetic codec (Witten–Neal–Cleary style, 32-bit code
/// values, E3 underflow handling). Fraction-of-a-bit codewords give it the
/// best ratio on low-entropy data among the order-0 coders, at the cost of
/// per-symbol model updates — exactly the trade-off Figs. 2–4 report.
///
/// Wire format: varint original size followed by the arithmetic bitstream.
class ArithmeticCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kArithmetic; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;
};

}  // namespace acex
