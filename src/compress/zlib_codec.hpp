#pragma once

#include "compress/codec.hpp"

namespace acex {

#ifdef ACEX_HAVE_ZLIB

/// Thin wrapper over zlib's deflate, used ONLY as an external comparator in
/// benches (it is not one of the paper's methods; see DESIGN.md §1). Lets
/// EXPERIMENTS.md sanity-check our from-scratch LZ against a production
/// implementation of the same family.
class ZlibCodec final : public Codec {
 public:
  /// `level` is zlib's 1..9 compression level.
  explicit ZlibCodec(int level = 6);

  MethodId id() const noexcept override { return MethodId::kZlib; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;

 private:
  int level_;
};

#endif  // ACEX_HAVE_ZLIB

/// True when this build can instantiate MethodId::kZlib.
bool zlib_available() noexcept;

}  // namespace acex
