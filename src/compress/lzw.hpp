#pragma once

#include <cstdint>

#include "compress/codec.hpp"

namespace acex {

/// LZ78-family codec (§2.3 cites both Lempel-Ziv papers [23,24]; this is
/// the 1978 branch, in its LZW form — the algorithm behind Unix compress):
/// parser and coder share a growing dictionary of phrases, each output
/// code naming the longest known phrase plus implicitly extending the
/// dictionary by one symbol.
///
/// Codes are emitted at the current dictionary's bit width (9 bits growing
/// to kMaxCodeBits); when the dictionary fills it is reset, which doubles
/// as adaptation to shifting data. Included as a comparator — the paper's
/// selection set uses the LZ77 variant, whose Huffman-coded pointers
/// compress better on its workloads — and as the second point of the
/// LZ77/LZ78 design space the paper references.
///
/// Wire format: varint original size, mode byte (0 stored / 1 compressed),
/// then the growing-width code stream.
class LzwCodec final : public Codec {
 public:
  static constexpr unsigned kMinCodeBits = 9;
  static constexpr unsigned kMaxCodeBits = 16;
  /// Wire-stable id, after the four paper methods.
  static constexpr MethodId kId = static_cast<MethodId>(5);

  MethodId id() const noexcept override { return kId; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;
};

}  // namespace acex
