#include "compress/arith.hpp"

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace arith {
namespace {

constexpr unsigned kSymbols = 256;
constexpr std::uint32_t kIncrement = 24;
/// Keep total < 2^16 so range * total fits comfortably in 64 bits with
/// 32-bit code values.
constexpr std::uint32_t kMaxTotal = 1u << 16;

}  // namespace

AdaptiveByteModel::AdaptiveByteModel() : tree_(kSymbols + 1, 0) {
  std::vector<std::uint32_t> uniform(kSymbols, 1);
  rebuild(uniform);
}

void AdaptiveByteModel::rebuild(
    const std::vector<std::uint32_t>& freqs) noexcept {
  std::fill(tree_.begin(), tree_.end(), 0u);
  total_ = 0;
  for (unsigned s = 0; s < kSymbols; ++s) {
    total_ += freqs[s];
    for (unsigned i = s + 1; i <= kSymbols; i += i & (0u - i)) {
      tree_[i] += freqs[s];
    }
  }
}

std::uint32_t AdaptiveByteModel::cum_below(unsigned symbol) const noexcept {
  std::uint32_t sum = 0;
  for (unsigned i = symbol; i > 0; i -= i & (0u - i)) sum += tree_[i];
  return sum;
}

std::uint32_t AdaptiveByteModel::freq(unsigned symbol) const noexcept {
  return cum_below(symbol + 1) - cum_below(symbol);
}

unsigned AdaptiveByteModel::find(std::uint32_t target) const noexcept {
  // Fenwick binary descend: locate the last prefix whose sum <= target.
  unsigned pos = 0;
  std::uint32_t remaining = target;
  for (unsigned step = 256; step > 0; step >>= 1) {
    const unsigned next = pos + step;
    if (next <= kSymbols && tree_[next] <= remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return pos < kSymbols ? pos : kSymbols - 1;
}

void AdaptiveByteModel::update(unsigned symbol) noexcept {
  if (total_ + kIncrement >= kMaxTotal) {
    // Halve every frequency, keeping each at least 1, then rebuild.
    std::vector<std::uint32_t> freqs(kSymbols);
    for (unsigned s = 0; s < kSymbols; ++s) {
      freqs[s] = (freq(s) + 1) / 2;
      if (freqs[s] == 0) freqs[s] = 1;
    }
    rebuild(freqs);
  }
  for (unsigned i = symbol + 1; i <= kSymbols; i += i & (0u - i)) {
    tree_[i] += kIncrement;
  }
  total_ += kIncrement;
}

namespace {

constexpr std::uint64_t kTop = 0xFFFFFFFFull;        // 2^32 - 1
constexpr std::uint64_t kHalf = 0x80000000ull;       // 2^31
constexpr std::uint64_t kQuarter = 0x40000000ull;    // 2^30
constexpr std::uint64_t kThreeQuarters = kHalf + kQuarter;

class Encoder {
 public:
  explicit Encoder(BitWriter& out) : out_(&out) {}

  void encode(std::uint32_t cum_lo, std::uint32_t cum_hi,
              std::uint32_t total) {
    const std::uint64_t range = high_ - low_ + 1;
    high_ = low_ + range * cum_hi / total - 1;
    low_ = low_ + range * cum_lo / total;
    for (;;) {
      if (high_ < kHalf) {
        emit(0);
      } else if (low_ >= kHalf) {
        emit(1);
        low_ -= kHalf;
        high_ -= kHalf;
      } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
        ++pending_;
        low_ -= kQuarter;
        high_ -= kQuarter;
      } else {
        break;
      }
      low_ <<= 1;
      high_ = (high_ << 1) | 1;
    }
  }

  void finish() {
    // Disambiguate the final interval with one more bit plus its pending
    // opposites; the decoder's zero-fill past end covers the rest.
    ++pending_;
    emit(low_ >= kQuarter ? 1 : 0);
  }

 private:
  void emit(int bit) {
    out_->write_bit(bit != 0);
    while (pending_ > 0) {
      out_->write_bit(bit == 0);
      --pending_;
    }
  }

  BitWriter* out_;
  std::uint64_t low_ = 0;
  std::uint64_t high_ = kTop;
  unsigned pending_ = 0;
};

class Decoder {
 public:
  explicit Decoder(BitReader& in) : in_(&in) {
    for (int i = 0; i < 32; ++i) value_ = (value_ << 1) | next_bit();
  }

  std::uint32_t target(std::uint32_t total) const {
    const std::uint64_t range = high_ - low_ + 1;
    return static_cast<std::uint32_t>(
        ((value_ - low_ + 1) * total - 1) / range);
  }

  void consume(std::uint32_t cum_lo, std::uint32_t cum_hi,
               std::uint32_t total) {
    const std::uint64_t range = high_ - low_ + 1;
    high_ = low_ + range * cum_hi / total - 1;
    low_ = low_ + range * cum_lo / total;
    for (;;) {
      if (high_ < kHalf) {
        // nothing
      } else if (low_ >= kHalf) {
        low_ -= kHalf;
        high_ -= kHalf;
        value_ -= kHalf;
      } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
        low_ -= kQuarter;
        high_ -= kQuarter;
        value_ -= kQuarter;
      } else {
        break;
      }
      low_ <<= 1;
      high_ = (high_ << 1) | 1;
      value_ = (value_ << 1) | next_bit();
    }
  }

 private:
  /// The encoder's tail is implicitly zero-padded; reading past the end of
  /// the stored stream yields 0 bits, matching BitWriter's byte alignment.
  std::uint64_t next_bit() {
    if (in_->bits_left() == 0) return 0;
    return in_->read(1);
  }

  BitReader* in_;
  std::uint64_t low_ = 0;
  std::uint64_t high_ = kTop;
  std::uint64_t value_ = 0;
};

}  // namespace
}  // namespace arith

Bytes ArithmeticCodec::compress(ByteView input) {
  Bytes out;
  put_varint(out, input.size());
  if (input.empty()) return out;

  arith::AdaptiveByteModel model;
  BitWriter bw;
  arith::Encoder enc(bw);
  for (const std::uint8_t byte : input) {
    const std::uint32_t lo = model.cum_below(byte);
    const std::uint32_t hi = lo + model.freq(byte);
    enc.encode(lo, hi, model.total());
    model.update(byte);
  }
  enc.finish();
  bw.take_into(out);
  return out;
}

Bytes ArithmeticCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t size = get_varint(input, &pos);
  if (size == 0) return {};
  // The adaptive model's top symbol probability is bounded, so expansion
  // cannot exceed ~1500 decoded bytes per compressed byte; a corrupt size
  // header past that bound would otherwise loop on zero-filled tail bits.
  if (size > (input.size() - pos + 8) * 2000) {
    throw DecodeError("arith: declared size exceeds payload capacity");
  }
  BitReader br(input.subspan(pos));
  arith::AdaptiveByteModel model;
  arith::Decoder dec(br);
  Bytes out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint32_t t = dec.target(model.total());
    const unsigned sym = model.find(t);
    const std::uint32_t lo = model.cum_below(sym);
    const std::uint32_t hi = lo + model.freq(sym);
    dec.consume(lo, hi, model.total());
    model.update(sym);
    out.push_back(static_cast<std::uint8_t>(sym));
  }
  return out;
}

}  // namespace acex
