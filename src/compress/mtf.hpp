#pragma once

#include "util/bytes.hpp"

namespace acex::mtf {

/// Move-to-front transform (§2.4 step 2): each byte is replaced by its
/// current position in a 256-entry recency list, which is then rotated to
/// put that byte at position 0. Localized data (like BWT output) becomes a
/// stream dominated by small values.
Bytes encode(ByteView input);

/// Inverse move-to-front.
Bytes decode(ByteView input);

}  // namespace acex::mtf
