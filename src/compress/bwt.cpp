#include "compress/bwt.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace acex::bwt {

Transformed forward(ByteView block) {
  const std::size_t n = block.size();
  Transformed result;
  if (n == 0) return result;
  if (n == 1) {
    result.last_column.assign(block.begin(), block.end());
    result.primary = 0;
    return result;
  }

  // Prefix doubling over cyclic rotations with radix (counting) sorts:
  // after round k, `rank[i]` orders rotations by their first 2^k
  // characters. O(n log n) total — this is the codec's hot loop.
  std::vector<std::uint32_t> idx(n), rank(n), next_rank(n), shifted(n);
  std::vector<std::uint32_t> counts(std::max<std::size_t>(n, 256) + 1, 0);

  // Round 0: counting sort by first character.
  for (std::size_t i = 0; i < n; ++i) ++counts[block[i] + 1];
  for (std::size_t c = 1; c <= 256; ++c) counts[c] += counts[c - 1];
  for (std::size_t i = 0; i < n; ++i) {
    idx[counts[block[i]]++] = static_cast<std::uint32_t>(i);
  }
  rank[idx[0]] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    rank[idx[i]] = rank[idx[i - 1]] + (block[idx[i]] != block[idx[i - 1]]);
  }

  for (std::size_t k = 1; rank[idx[n - 1]] != n - 1 && k < n; k <<= 1) {
    // Sorting pairs (rank[i], rank[(i+k) mod n]). `idx` is sorted by rank;
    // shifting every position back by k yields the order sorted by the
    // SECOND pair element, so one stable counting sort by the first
    // element finishes the job.
    for (std::size_t j = 0; j < n; ++j) {
      shifted[j] = (idx[j] + static_cast<std::uint32_t>(n) -
                    static_cast<std::uint32_t>(k % n)) %
                   static_cast<std::uint32_t>(n);
    }
    const std::size_t classes = rank[idx[n - 1]] + 1;
    std::fill(counts.begin(), counts.begin() + classes + 1, 0u);
    for (std::size_t i = 0; i < n; ++i) ++counts[rank[i] + 1];
    for (std::size_t c = 1; c <= classes; ++c) counts[c] += counts[c - 1];
    for (std::size_t j = 0; j < n; ++j) {
      idx[counts[rank[shifted[j]]]++] = shifted[j];
    }
    // Re-rank by (first, second) pair equality.
    const auto second = [&](std::uint32_t i) {
      return rank[(i + k) % n];
    };
    next_rank[idx[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const bool differs = rank[idx[i]] != rank[idx[i - 1]] ||
                           second(idx[i]) != second(idx[i - 1]);
      next_rank[idx[i]] = next_rank[idx[i - 1]] + differs;
    }
    rank.swap(next_rank);
  }

  result.last_column.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t start = idx[i];
    result.last_column[i] = block[start == 0 ? n - 1 : start - 1];
    if (start == 0) result.primary = static_cast<std::uint32_t>(i);
  }
  return result;
}

Bytes inverse(ByteView last_column, std::uint32_t primary) {
  const std::size_t n = last_column.size();
  if (n == 0) return {};
  if (primary >= n) throw DecodeError("bwt: primary index out of range");

  // C[c] = number of characters in L strictly smaller than c;
  // occ[i] = rank of L[i] among equal characters in L[0..i].
  std::array<std::uint32_t, 256> counts{};
  for (const auto c : last_column) ++counts[c];
  std::array<std::uint32_t, 256> before{};
  std::uint32_t sum = 0;
  for (unsigned c = 0; c < 256; ++c) {
    before[c] = sum;
    sum += counts[c];
  }
  std::vector<std::uint32_t> lf(n);
  std::array<std::uint32_t, 256> seen{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t c = last_column[i];
    lf[i] = before[c] + seen[c]++;
  }

  Bytes out(n);
  std::uint32_t row = primary;
  for (std::size_t k = n; k-- > 0;) {
    out[k] = last_column[row];
    row = lf[row];
  }
  return out;
}

}  // namespace acex::bwt
