#include "compress/quant_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "compress/lz77.hpp"
#include "compress/registry.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t z) noexcept {
  return static_cast<std::int64_t>((z >> 1) ^ (0 - (z & 1)));
}

}  // namespace

FloatQuantCodec::FloatQuantCodec(double precision) : precision_(precision) {
  if (!(precision > 0) || !std::isfinite(precision)) {
    throw ConfigError("quant: precision must be positive and finite");
  }
}

Bytes FloatQuantCodec::compress(ByteView input) {
  if (input.size() % 4 != 0) {
    throw ConfigError(
        "quant: input must be a whole number of float32 values");
  }
  const std::size_t count = input.size() / 4;

  // Quantize + delta + zigzag into a varint stream.
  Bytes deltas;
  deltas.reserve(count * 2);
  std::int64_t previous = 0;
  for (std::size_t i = 0; i < count; ++i) {
    float v;
    std::memcpy(&v, input.data() + i * 4, 4);
    double scaled = static_cast<double>(v) / precision_;
    if (!std::isfinite(scaled)) scaled = 0.0;  // NaN/inf quantize to zero
    // Clamp so pathological values cannot overflow the integer grid.
    scaled = std::clamp(scaled, -9.0e15, 9.0e15);
    const auto q = static_cast<std::int64_t>(std::llround(scaled));
    put_varint(deltas, zigzag(q - previous));
    previous = q;
  }

  LempelZivCodec lz;
  const Bytes packed = lz.compress(deltas);

  Bytes out;
  put_varint(out, count);
  std::uint64_t precision_bits;
  static_assert(sizeof precision_bits == sizeof precision_);
  std::memcpy(&precision_bits, &precision_, sizeof precision_bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(precision_bits >> (8 * i)));
  }
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

Bytes FloatQuantCodec::decompress(ByteView input) {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(input, &pos);
  if (count > (std::uint64_t{1} << 34)) {
    throw DecodeError("quant: implausible value count");
  }
  if (pos + 8 > input.size()) throw DecodeError("quant: truncated header");
  std::uint64_t precision_bits = 0;
  for (int i = 0; i < 8; ++i) {
    precision_bits |= static_cast<std::uint64_t>(input[pos + i]) << (8 * i);
  }
  pos += 8;
  double precision;
  std::memcpy(&precision, &precision_bits, sizeof precision);
  if (!(precision > 0) || !std::isfinite(precision)) {
    throw DecodeError("quant: corrupt precision field");
  }

  LempelZivCodec lz;
  const Bytes deltas = lz.decompress(input.subspan(pos));

  Bytes out;
  out.reserve(static_cast<std::size_t>(count) * 4);
  std::size_t dpos = 0;
  std::int64_t q = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    q += unzigzag(get_varint(deltas, &dpos));
    const auto v = static_cast<float>(static_cast<double>(q) * precision);
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    for (int k = 0; k < 4; ++k) {
      out.push_back(static_cast<std::uint8_t>(bits >> (8 * k)));
    }
  }
  if (dpos != deltas.size()) {
    throw DecodeError("quant: trailing delta bytes");
  }
  return out;
}

void register_float_quant(CodecRegistry& registry, double precision) {
  FloatQuantCodec validate(precision);  // reject bad precision eagerly
  registry.register_factory(FloatQuantCodec::kId, [precision] {
    return CodecPtr(new FloatQuantCodec(precision));
  });
}

}  // namespace acex
