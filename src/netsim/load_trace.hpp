#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace acex::netsim {

/// A piecewise-constant time series of network load, in "number of
/// connections" — the unit of the MBone session-membership traces the paper
/// uses (§4.2, Fig. 7): "load is stated as the number of connections over
/// time".
class LoadTrace {
 public:
  struct Point {
    double time;   ///< seconds from trace start
    double value;  ///< connections active from this time onward
  };

  LoadTrace() = default;

  /// Points must be in strictly increasing time order; throws ConfigError
  /// otherwise.
  explicit LoadTrace(std::vector<Point> points);

  /// Load at time `t`: the value of the latest point at or before `t`;
  /// 0 before the first point. Values hold beyond the last point.
  double value_at(double t) const noexcept;

  /// Trace length: time of the last point (0 for an empty trace).
  double duration() const noexcept;

  double peak() const noexcept;

  const std::vector<Point>& points() const noexcept { return points_; }

  /// A new trace with every value multiplied by `factor` — the paper's
  /// "raw MBone numbers multiplied by a factor of 4 in order to adjust it
  /// to the capacities of the 100MBits links".
  LoadTrace scaled(double factor) const;

  /// A new trace with every TIME multiplied by `factor` (< 1 compresses
  /// the trace). Lets benches replay the 160 s MBone scenario in a shorter
  /// virtual window at identical load shape.
  LoadTrace time_scaled(double factor) const;

  /// Parse a whitespace-separated "time value" per line text body.
  /// Lines starting with '#' are comments. Throws ConfigError on syntax
  /// errors or unsorted times.
  static LoadTrace parse(const std::string& text);

 private:
  std::vector<Point> points_;
};

/// The built-in MBone-derived trace reproducing Fig. 7's shape: ~160 s,
/// quiet start, ramp to a peak of ~17 connections around t = 60–100 s, then
/// decay. One point per ~2 s. (Substitute for the captured traces of [36];
/// see DESIGN.md §2.)
const LoadTrace& mbone_trace();

}  // namespace acex::netsim
