#pragma once

#include <cstdint>

#include "netsim/link.hpp"

namespace acex::netsim::rudp {

/// Parameters of a reliable-UDP-style bulk transfer ([14], IQ-RUDP: the
/// large-data transport the paper's middleware coordinates with). Unlike
/// SimLink — which folds loss into an aggregate delay — this simulates the
/// protocol at packet granularity: segmentation, a sliding window,
/// cumulative ACKs, timeout retransmission.
struct RudpParams {
  std::size_t packet_bytes = 1400;   ///< payload per data packet (MTU-ish)
  std::size_t ack_bytes = 40;        ///< ACK packet size on the reverse path
  unsigned window = 32;              ///< packets in flight
  double data_loss = 0.0;            ///< forward-path drop probability
  double ack_loss = 0.0;             ///< reverse-path drop probability
  /// Retransmission timeout as a multiple of the measured base RTT
  /// (serialization + both latencies); 0 picks a sane default (4x).
  double rto_rtt_multiple = 4.0;
};

/// Outcome of one simulated transfer.
struct RudpResult {
  Seconds completion = 0;        ///< virtual time from start to last ACK
  std::uint64_t data_packets = 0;      ///< total data packets sent
  std::uint64_t retransmissions = 0;   ///< of which were resends
  std::uint64_t acks_sent = 0;
  double goodput_Bps = 0;        ///< payload bytes / completion
  double efficiency = 0;         ///< payload bytes / all forward bytes
};

/// Simulate transferring `payload_bytes` reliably over a forward/reverse
/// link pair starting at virtual time `start`. Both links' queues advance
/// (so consecutive transfers see a busy pipe), and loss draws come from
/// `rng`, making runs reproducible.
///
/// The simulation is event-driven and exact for the model: data packets
/// serialize FIFO on the forward link and are dropped with `data_loss`;
/// the receiver cumulatively ACKs each arrival on the reverse link (ACKs
/// drop with `ack_loss`); the sender keeps `window` packets in flight and
/// retransmits on RTO expiry. Throws ConfigError on invalid parameters.
RudpResult simulate_transfer(std::size_t payload_bytes, SimLink& forward,
                             SimLink& reverse, Seconds start, Rng& rng,
                             const RudpParams& params = {});

}  // namespace acex::netsim::rudp
