#include "netsim/bandwidth.hpp"

#include <algorithm>

namespace acex::netsim {

BandwidthEstimator::BandwidthEstimator(double alpha, std::size_t window)
    : ewma_(alpha), window_(window) {}

void BandwidthEstimator::record(std::size_t bytes, Seconds elapsed) noexcept {
  if (elapsed <= 0) return;
  const double rate = static_cast<double>(bytes) / elapsed;
  ewma_.add(rate);
  window_.add(rate);
  ++samples_;
}

double BandwidthEstimator::estimate_or(double fallback) const noexcept {
  if (!ewma_.has_value()) return fallback;
  return std::min(ewma_.value_or(fallback), window_.mean());
}

void BandwidthEstimator::reset() noexcept {
  ewma_.reset();
  window_ = SlidingWindow(8);
  samples_ = 0;
}

}  // namespace acex::netsim
