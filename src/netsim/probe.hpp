#pragma once

#include "netsim/link.hpp"

namespace acex::netsim {

/// Result of one packet-pair probing session.
struct ProbeResult {
  double bandwidth_Bps = 0;  ///< median pair-spacing estimate
  Seconds finished = 0;      ///< virtual time when the last probe landed
  unsigned pairs = 0;        ///< pairs actually measured
};

/// Packet-pair available-bandwidth probing in the style of the measurement
/// work the paper's middleware plugs in ([12,13]: Jain & Dovrolis): two
/// back-to-back packets leave the bottleneck spaced by packet_size /
/// bottleneck_rate, so the receiver-side spacing of each pair estimates the
/// link's current rate without moving payload-scale data.
///
/// The architecture point (§3): network measurement is a pluggable layer —
/// the adaptive machinery accepts any bandwidth source. This probe is an
/// alternative to the passive per-block estimator in BandwidthEstimator.
///
/// `probe_size` defaults to an MTU-ish 1500 bytes; `pairs` are spaced
/// `gap` seconds apart so the session samples, not floods.
ProbeResult packet_pair_probe(SimLink& link, Seconds now,
                              std::size_t probe_size = 1500,
                              unsigned pairs = 5, Seconds gap = 0.01);

}  // namespace acex::netsim
