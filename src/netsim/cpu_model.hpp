#pragma once

#include <string>
#include <vector>

#include "compress/metrics.hpp"

namespace acex::netsim {

/// A relative CPU-speed profile. The paper measured reducing speeds on two
/// hosts (Fig. 4: a Sun-Fire-280R / UltraSPARC-III and an Ultra-Sparc /
/// UltraSPARC-II). We cannot run on those machines, so benches measure on
/// the build host and scale by a fixed per-profile factor — Fig. 4's
/// content is the *ratio* between methods and between hosts, which scaling
/// preserves (DESIGN.md §2).
struct CpuModel {
  std::string name;
  double speed_factor = 1.0;  ///< relative to the build host

  /// Rescale a measurement as if it ran on this CPU: times divide by the
  /// speed factor; sizes are unchanged.
  CompressionMeasurement apply(CompressionMeasurement m) const noexcept {
    m.compress_time /= speed_factor;
    m.decompress_time /= speed_factor;
    return m;
  }
};

/// The faster of the paper's two hosts, taken as the baseline profile.
inline CpuModel sun_fire_280r() { return {"Sun-Fire-280R", 1.0}; }

/// The slower host. Fig. 4 shows its reducing speeds at roughly 0.45x the
/// Sun-Fire's across methods.
inline CpuModel ultra_sparc() { return {"Ultra-Sparc", 0.45}; }

inline std::vector<CpuModel> figure4_cpus() {
  return {sun_fire_280r(), ultra_sparc()};
}

}  // namespace acex::netsim
