#include "netsim/rudp.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace acex::netsim::rudp {
namespace {

enum class EventKind { kDataArrival, kAckArrival, kTimeout };

struct Event {
  Seconds time;
  EventKind kind;
  std::uint64_t seq;    // data/timeout: packet seq; ack: cumulative seq + 1
  std::uint64_t epoch;  // timeout staleness guard

  bool operator>(const Event& other) const noexcept {
    return time > other.time;
  }
};

}  // namespace

RudpResult simulate_transfer(std::size_t payload_bytes, SimLink& forward,
                             SimLink& reverse, Seconds start, Rng& rng,
                             const RudpParams& params) {
  if (params.packet_bytes == 0 || params.ack_bytes == 0 ||
      params.window == 0) {
    throw ConfigError("rudp: packet, ack, and window sizes must be positive");
  }
  if (params.data_loss < 0 || params.data_loss >= 1 || params.ack_loss < 0 ||
      params.ack_loss >= 1) {
    throw ConfigError("rudp: loss probabilities must be in [0, 1)");
  }

  RudpResult result;
  if (payload_bytes == 0) return result;

  const std::uint64_t total =
      (payload_bytes + params.packet_bytes - 1) / params.packet_bytes;
  const auto packet_size = [&](std::uint64_t seq) {
    const std::size_t last = payload_bytes % params.packet_bytes;
    return (seq + 1 == total && last != 0) ? last : params.packet_bytes;
  };

  // Fixed RTO from the links' unloaded characteristics: one data
  // serialization + both latencies + one ACK serialization, times the
  // configured multiple. (A production RUDP adapts its RTO; a fixed one
  // keeps the simulation interpretable.)
  const double base_rtt =
      static_cast<double>(params.packet_bytes) / forward.params().bandwidth_Bps +
      forward.params().latency_s +
      static_cast<double>(params.ack_bytes) / reverse.params().bandwidth_Bps +
      reverse.params().latency_s;
  const double multiple =
      params.rto_rtt_multiple > 0 ? params.rto_rtt_multiple : 4.0;
  const Seconds rto = std::max(multiple * base_rtt, 1e-6);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::vector<std::uint64_t> epoch(total, 0);
  std::vector<bool> received(total, false);
  std::uint64_t base = 0;       // lowest unACKed seq
  std::uint64_t next_new = 0;   // next never-sent seq
  std::uint64_t cum = 0;        // receiver: count of in-order packets
  std::uint64_t forward_bytes = 0;
  Seconds now = start;
  Seconds done_at = start;

  const auto send_packet = [&](std::uint64_t seq, bool resend) {
    const auto r = forward.transmit(packet_size(seq), now);
    ++result.data_packets;
    forward_bytes += packet_size(seq);
    if (resend) ++result.retransmissions;
    ++epoch[seq];
    if (!rng.chance(params.data_loss)) {
      events.push({r.delivered, EventKind::kDataArrival, seq, 0});
    }
    events.push({r.started + rto, EventKind::kTimeout, seq, epoch[seq]});
  };

  const auto fill_window = [&] {
    while (next_new < total && next_new < base + params.window) {
      send_packet(next_new++, /*resend=*/false);
    }
  };

  fill_window();
  std::uint64_t steps = 0;
  while (base < total) {
    if (events.empty() || ++steps > 20'000'000) {
      throw Error("rudp: simulation failed to converge");
    }
    const Event ev = events.top();
    events.pop();
    now = std::max(now, ev.time);

    switch (ev.kind) {
      case EventKind::kDataArrival: {
        if (!received[ev.seq]) {
          received[ev.seq] = true;
          while (cum < total && received[cum]) ++cum;
        }
        // Cumulative ACK (also for duplicates: recovers lost ACKs).
        ++result.acks_sent;
        const auto r = reverse.transmit(params.ack_bytes, now);
        if (!rng.chance(params.ack_loss)) {
          events.push({r.delivered, EventKind::kAckArrival, cum, 0});
        }
        break;
      }
      case EventKind::kAckArrival: {
        if (ev.seq > base) {
          base = ev.seq;
          if (base >= total) {
            done_at = now;
          } else {
            fill_window();
          }
        }
        break;
      }
      case EventKind::kTimeout: {
        if (ev.seq >= base && ev.epoch == epoch[ev.seq]) {
          send_packet(ev.seq, /*resend=*/true);
        }
        break;
      }
    }
  }

  result.completion = done_at - start;
  result.goodput_Bps = result.completion > 0
                           ? static_cast<double>(payload_bytes) /
                                 result.completion
                           : 0.0;
  result.efficiency =
      forward_bytes > 0
          ? static_cast<double>(payload_bytes) /
                static_cast<double>(forward_bytes)
          : 0.0;
  return result;
}

}  // namespace acex::netsim::rudp
