#include "netsim/probe.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace acex::netsim {

ProbeResult packet_pair_probe(SimLink& link, Seconds now,
                              std::size_t probe_size, unsigned pairs,
                              Seconds gap) {
  if (probe_size == 0 || pairs == 0 || gap < 0) {
    throw ConfigError("probe: invalid packet-pair parameters");
  }
  ProbeResult result;
  std::vector<double> estimates;
  estimates.reserve(pairs);

  Seconds t = now;
  for (unsigned p = 0; p < pairs; ++p) {
    const TransferResult first = link.transmit(probe_size, t);
    const TransferResult second = link.transmit(probe_size, first.started);
    const Seconds spacing = second.delivered - first.delivered;
    if (spacing > 0) {
      estimates.push_back(static_cast<double>(probe_size) / spacing);
    }
    result.finished = second.delivered;
    t = second.delivered + gap;
  }

  result.pairs = static_cast<unsigned>(estimates.size());
  if (!estimates.empty()) {
    // Median: robust against a single jitter outlier, the standard
    // packet-pair filtering step.
    std::sort(estimates.begin(), estimates.end());
    result.bandwidth_Bps = estimates[estimates.size() / 2];
  }
  return result;
}

}  // namespace acex::netsim
