#pragma once

#include <optional>
#include <string>

#include "netsim/load_trace.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace acex::netsim {

/// Static description of an emulated network path. Bandwidth figures are
/// the *end-to-end application-visible* speeds (what Fig. 5 reports), not
/// nominal wire rates, because the paper's algorithm only ever observes
/// end-to-end block-accept times.
struct LinkParams {
  std::string name = "link";
  double bandwidth_Bps = 1e6;  ///< payload bytes per second, unloaded
  double latency_s = 0.0;      ///< one-way propagation + stack latency
  double jitter_frac = 0.0;    ///< relative std-dev of per-transfer speed
  double loss_rate = 0.0;      ///< probability a transfer must be resent

  /// Background utilization contributed by one traced connection, as a
  /// fraction of capacity (0.01 = each connection eats 1% of the link).
  double share_per_connection = 0.01;
};

/// Fig. 5 link presets with the paper's measured speeds and variability.
LinkParams gigabit_link();        ///< 26.32 MB/s, 0.78 % std-dev
LinkParams fast_ethernet_link();  ///< 7.52 MB/s, 8.95 % std-dev
LinkParams megabit_link();        ///< 0.147 MB/s, 1.17 % std-dev
LinkParams international_link();  ///< 0.109 MB/s, 46.02 % std-dev (GaTech <-> Bar-Ilan)

/// All four presets in Fig. 5 order.
const std::vector<LinkParams>& figure5_links();

/// Outcome of one emulated transfer.
struct TransferResult {
  Seconds started = 0;    ///< when the link began serializing this payload
  Seconds delivered = 0;  ///< when the last byte reached the receiver
  double effective_Bps = 0;  ///< speed experienced by this transfer
  unsigned retransmissions = 0;

  Seconds duration(Seconds submitted) const noexcept {
    return delivered - submitted;
  }
};

/// netem-style single-queue link emulator, virtual-time based.
///
/// Transfers serialize FIFO: a payload submitted while the link is busy
/// waits for the queue to drain. The effective speed of each transfer is
/// the unloaded bandwidth reduced by trace-driven background load, with
/// multiplicative Gaussian jitter, so measured speeds reproduce both the
/// means and the standard deviations of Fig. 5. Deterministic given the
/// seed.
class SimLink {
 public:
  explicit SimLink(LinkParams params, std::uint64_t seed = 1);

  const LinkParams& params() const noexcept { return params_; }

  /// Attach a background-load trace (e.g. mbone_trace().scaled(4)). The
  /// trace's value at the *start* of each transfer discounts its bandwidth;
  /// load never pushes the effective speed below floor_frac * bandwidth.
  void set_background(const LoadTrace* trace, double floor_frac = 0.05);

  /// Emulate sending `bytes` at virtual time `now`. Never fails: losses
  /// surface as retransmission delay, matching the reliable transports the
  /// middleware runs over.
  TransferResult transmit(std::size_t bytes, Seconds now);

  /// Effective bandwidth (bytes/s) the link would offer a transfer starting
  /// at `now`, before jitter.
  double effective_bandwidth(Seconds now) const noexcept;

  /// Virtual time at which the link's queue drains.
  Seconds busy_until() const noexcept { return busy_until_; }

  void reset() noexcept;

 private:
  LinkParams params_;
  Rng rng_;
  const LoadTrace* background_ = nullptr;
  double floor_frac_ = 0.05;
  Seconds busy_until_ = 0;
};

}  // namespace acex::netsim
