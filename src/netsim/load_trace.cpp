#include "netsim/load_trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace acex::netsim {

LoadTrace::LoadTrace(std::vector<Point> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (!(points_[i].time > points_[i - 1].time)) {
      throw ConfigError("LoadTrace: times must be strictly increasing");
    }
  }
  for (const auto& p : points_) {
    if (p.value < 0) throw ConfigError("LoadTrace: negative load");
  }
}

double LoadTrace::value_at(double t) const noexcept {
  if (points_.empty() || t < points_.front().time) return 0.0;
  // Last point with time <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const Point& rhs) { return lhs < rhs.time; });
  return std::prev(it)->value;
}

double LoadTrace::duration() const noexcept {
  return points_.empty() ? 0.0 : points_.back().time;
}

double LoadTrace::peak() const noexcept {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

LoadTrace LoadTrace::scaled(double factor) const {
  std::vector<Point> scaled_points = points_;
  for (auto& p : scaled_points) p.value *= factor;
  return LoadTrace(std::move(scaled_points));
}

LoadTrace LoadTrace::time_scaled(double factor) const {
  if (!(factor > 0)) throw ConfigError("LoadTrace: time factor must be > 0");
  std::vector<Point> scaled_points = points_;
  for (auto& p : scaled_points) p.time *= factor;
  return LoadTrace(std::move(scaled_points));
}

LoadTrace LoadTrace::parse(const std::string& text) {
  std::vector<Point> points;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Point p{};
    if (!(fields >> p.time >> p.value)) {
      throw ConfigError("LoadTrace: malformed line: " + line);
    }
    points.push_back(p);
  }
  return LoadTrace(std::move(points));
}

const LoadTrace& mbone_trace() {
  // Synthesized to match Fig. 7: 0–160 s, near-zero start, a shoulder
  // around t = 30–55 s, peak of ~17 connections at t = 60–100 s, decay with
  // small rebounds. Piecewise-constant at ~2 s steps like membership
  // snapshots.
  static const LoadTrace kTrace = [] {
    std::vector<LoadTrace::Point> pts;
    const auto shape = [](double t) -> double {
      if (t < 10) return 0.0;
      if (t < 20) return 1.0 + (t - 10) * 0.2;   // trickle of joins
      if (t < 40) return 3.0 + (t - 20) * 0.25;  // shoulder
      if (t < 60) return 8.0 + (t - 40) * 0.35;  // steep ramp
      if (t < 80) return 15.0 + std::sin((t - 60) * 0.4) * 2.0;  // peak
      if (t < 100) return 16.0 + std::sin((t - 80) * 0.5) * 1.5;
      if (t < 120) return 12.0 - (t - 100) * 0.3;  // session ends
      if (t < 140) return 6.0 - (t - 120) * 0.15;
      return std::max(0.0, 3.0 - (t - 140) * 0.15);
    };
    for (double t = 0; t <= 160.0; t += 2.0) {
      pts.push_back({t, std::round(std::max(0.0, shape(t)))});
    }
    return LoadTrace(std::move(pts));
  }();
  return kTrace;
}

}  // namespace acex::netsim
