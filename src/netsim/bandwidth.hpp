#pragma once

#include <cstddef>

#include "util/clock.hpp"
#include "util/stats.hpp"

namespace acex::netsim {

/// End-to-end throughput estimator. §2.5: "Also continually measured is
/// the speed with which compressed blocks are accepted by receivers,
/// thereby assessing both current network bandwidth and receiver speed."
///
/// Every delivered block contributes one sample (bytes / seconds). The
/// estimate blends an EWMA (fast reaction to load changes) with a short
/// sliding window (robustness to single-outlier jitter): the *minimum* of
/// the two, because over-estimating bandwidth makes the selector skip
/// compression exactly when it is needed most.
class BandwidthEstimator {
 public:
  /// `alpha`: EWMA weight of the newest sample; `window`: sliding-window
  /// sample count.
  explicit BandwidthEstimator(double alpha = 0.35, std::size_t window = 8);

  /// Record that `bytes` were accepted by the receiver in `elapsed`
  /// seconds. Non-positive durations are ignored.
  void record(std::size_t bytes, Seconds elapsed) noexcept;

  /// Current estimate in bytes/second, or `fallback` before any sample.
  double estimate_or(double fallback) const noexcept;

  bool has_estimate() const noexcept { return ewma_.has_value(); }

  std::size_t sample_count() const noexcept { return samples_; }

  void reset() noexcept;

 private:
  Ewma ewma_;
  SlidingWindow window_;
  std::size_t samples_ = 0;
};

}  // namespace acex::netsim
