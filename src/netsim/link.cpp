#include "netsim/link.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::netsim {
namespace {

constexpr double kMB = 1e6;  // Fig. 5 reports decimal megabytes/second

struct LinkMetrics {
  obs::Counter& transfers;
  obs::Counter& bytes;
  obs::Counter& retransmissions;
  obs::Gauge& modeled_bandwidth_Bps;  ///< last sampled effective speed
  obs::Histogram& queue_wait_us;      ///< modeled wait behind earlier transfers
};

LinkMetrics& link_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static LinkMetrics m{r.counter("acex.netsim.link.transfers"),
                       r.counter("acex.netsim.link.bytes"),
                       r.counter("acex.netsim.link.retransmissions"),
                       r.gauge("acex.netsim.link.modeled_bandwidth_Bps"),
                       r.histogram("acex.netsim.link.queue_wait_us")};
  return m;
}

}  // namespace

LinkParams gigabit_link() {
  LinkParams p;
  p.name = "1Gb";
  p.bandwidth_Bps = 26.32094622 * kMB;
  p.latency_s = 0.0002;
  p.jitter_frac = 0.0078;
  p.share_per_connection = 0.001;  // hard to load a 1 Gb intranet link
  return p;
}

LinkParams fast_ethernet_link() {
  LinkParams p;
  p.name = "100Mb";
  p.bandwidth_Bps = 7.520270348 * kMB;
  p.latency_s = 0.0005;
  p.jitter_frac = 0.0895;
  p.share_per_connection = 0.01;  // MBone x4 peak (~68 conns) -> ~68 % load
  return p;
}

LinkParams megabit_link() {
  LinkParams p;
  p.name = "1Mb";
  p.bandwidth_Bps = 0.146907607 * kMB;
  p.latency_s = 0.01;
  p.jitter_frac = 0.0117;
  p.share_per_connection = 0.02;
  return p;
}

LinkParams international_link() {
  LinkParams p;
  p.name = "international";
  p.bandwidth_Bps = 0.10891426 * kMB;
  p.latency_s = 0.09;  // GaTech <-> Bar-Ilan RTT/2 ballpark
  p.jitter_frac = 0.4602;
  p.loss_rate = 0.01;
  p.share_per_connection = 0.02;
  return p;
}

const std::vector<LinkParams>& figure5_links() {
  static const std::vector<LinkParams> kLinks = {
      gigabit_link(), fast_ethernet_link(), megabit_link(),
      international_link()};
  return kLinks;
}

SimLink::SimLink(LinkParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  if (params_.bandwidth_Bps <= 0) {
    throw ConfigError("SimLink: bandwidth must be positive");
  }
  if (params_.latency_s < 0 || params_.jitter_frac < 0 ||
      params_.loss_rate < 0 || params_.loss_rate >= 1 ||
      params_.share_per_connection < 0) {
    throw ConfigError("SimLink: invalid parameter");
  }
}

void SimLink::set_background(const LoadTrace* trace, double floor_frac) {
  if (floor_frac <= 0 || floor_frac > 1) {
    throw ConfigError("SimLink: floor_frac must be in (0, 1]");
  }
  background_ = trace;
  floor_frac_ = floor_frac;
}

double SimLink::effective_bandwidth(Seconds now) const noexcept {
  double available = 1.0;
  if (background_ != nullptr) {
    const double used =
        background_->value_at(now) * params_.share_per_connection;
    available = std::max(floor_frac_, 1.0 - used);
  }
  return params_.bandwidth_Bps * available;
}

TransferResult SimLink::transmit(std::size_t bytes, Seconds now) {
  TransferResult result;
  result.started = std::max(now, busy_until_);

  // Sample this transfer's speed: trace-discounted bandwidth with
  // multiplicative Gaussian jitter (truncated so speed stays positive).
  const double base = effective_bandwidth(result.started);
  double factor = 1.0 + rng_.gaussian() * params_.jitter_frac;
  factor = std::clamp(factor, 0.05, 3.0);
  result.effective_Bps = base * factor;

  double serialize = static_cast<double>(bytes) / result.effective_Bps;
  while (rng_.chance(params_.loss_rate)) {
    ++result.retransmissions;
    serialize += static_cast<double>(bytes) / result.effective_Bps;
  }

  result.delivered = result.started + serialize + params_.latency_s;
  busy_until_ = result.started + serialize;  // latency overlaps pipelining

  LinkMetrics& metrics = link_metrics();
  metrics.transfers.add(1);
  metrics.bytes.add(bytes);
  metrics.retransmissions.add(
      static_cast<std::uint64_t>(result.retransmissions));
  metrics.modeled_bandwidth_Bps.set(
      static_cast<std::int64_t>(result.effective_Bps));
  metrics.queue_wait_us.record((result.started - now) * 1e6);
  return result;
}

void SimLink::reset() noexcept {
  busy_until_ = 0;
}

}  // namespace acex::netsim
