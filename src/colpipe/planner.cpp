#include "colpipe/planner.hpp"

#include <algorithm>
#include <set>

#include "compress/zlib_codec.hpp"
#include "util/error.hpp"

namespace acex::colpipe {
namespace {

using pbio::FieldType;

/// Fixed weights for the transform stages: rough CPU expense relative to a
/// memcpy of the column. They only need to be *ordered* sensibly — the
/// entropy tail dominates real cost — and, critically, they are constants,
/// so planning stays deterministic.
double transform_weight(StageId id) noexcept {
  switch (id) {
    case StageId::kDelta:
    case StageId::kZigzag:
    case StageId::kXorDelta:
      return 0.02;
    case StageId::kBytePlane:
      return 0.05;
    case StageId::kDict:
      return 0.10;
    case StageId::kMtf:
    case StageId::kRle:
      return 0.15;
    case StageId::kHuffman:
    case StageId::kArithmetic:
    case StageId::kZlib:
    case StageId::kLz:
      break;
  }
  return 0.0;
}

double rating_weight(adaptive::Rating r) noexcept {
  switch (r) {
    case adaptive::Rating::kExcellent:
      return 0.05;
    case adaptive::Rating::kGood:
      return 0.15;
    case adaptive::Rating::kSatisfactory:
      return 0.40;
    case adaptive::Rating::kPoor:
      return 1.00;
  }
  return 1.00;
}

/// Entropy tails inherit Fig. 1's time ratings: compress time in full (the
/// sender pays it inline) plus half the decompress time (the receiver's
/// share of "Global Time"). zlib is not in the paper's table; rate it like
/// the Good/Good LZ row it approximates.
double entropy_weight(StageId id) noexcept {
  MethodId method = MethodId::kNone;
  switch (id) {
    case StageId::kHuffman:
      method = MethodId::kHuffman;
      break;
    case StageId::kArithmetic:
      method = MethodId::kArithmetic;
      break;
    case StageId::kLz:
    case StageId::kZlib:
      method = MethodId::kLempelZiv;
      break;
    default:
      return 0.0;
  }
  for (const adaptive::MethodProfile& row : adaptive::figure1_table()) {
    if (row.method == method) {
      return rating_weight(row.compress_time) +
             0.5 * rating_weight(row.decompress_time);
    }
  }
  return 1.0;
}

double stage_weight(StageId id) noexcept {
  const double entropy = entropy_weight(id);
  return entropy > 0.0 ? entropy : transform_weight(id);
}

bool is_integer(FieldType type) noexcept {
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kUInt32:
    case FieldType::kInt64:
    case FieldType::kUInt64:
      return true;
    case FieldType::kFloat32:
    case FieldType::kFloat64:
    case FieldType::kString:
    case FieldType::kBytes:
      return false;
  }
  return false;
}

std::vector<StageSpec> entropy_tails() {
  std::vector<StageSpec> tails = {{StageId::kHuffman, 0},
                                  {StageId::kArithmetic, 0},
                                  {StageId::kLz, 0}};
  if (zlib_available()) tails.push_back({StageId::kZlib, 0});
  return tails;
}

/// Sampled cardinality of W-byte elements, capped at `limit + 1` so the
/// scan stops early on high-cardinality columns.
std::size_t sample_cardinality(ByteView sample, std::size_t width,
                               std::size_t limit) {
  std::set<Bytes> seen;
  for (std::size_t i = 0; i + width <= sample.size(); i += width) {
    seen.emplace(sample.begin() + static_cast<std::ptrdiff_t>(i),
                 sample.begin() + static_cast<std::ptrdiff_t>(i + width));
    if (seen.size() > limit) break;
  }
  return seen.size();
}

}  // namespace

void PlannerConfig::validate() const {
  decision.validate();
  if (cpu_lambda < 0.0) {
    throw ConfigError("colpipe: cpu_lambda must be non-negative");
  }
  if (dict_sample_cardinality == 0 || dict_sample_cardinality > 256) {
    throw ConfigError("colpipe: dict_sample_cardinality must be in [1, 256]");
  }
}

double effective_cpu_lambda(const PlannerConfig& config) noexcept {
  switch (config.decision.policy) {
    case adaptive::DecisionPolicy::kCpuEfficiency:
      return config.cpu_lambda * 4.0;
    case adaptive::DecisionPolicy::kEnergyProxy:
    case adaptive::DecisionPolicy::kTargetRate:
      return config.cpu_lambda * 2.0;
    case adaptive::DecisionPolicy::kBandwidth:
      break;
  }
  return config.cpu_lambda;
}

double pipeline_cost_weight(const Pipeline& pipeline) {
  double weight = 0.0;
  for (const StageSpec& spec : pipeline.specs()) {
    weight += stage_weight(spec.id);
  }
  return weight;
}

PipelinePlanner::PipelinePlanner(PlannerConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

/// The type-aware transform prefixes a column of this shape proposes.
static std::vector<std::vector<StageSpec>> transform_prefixes(
    FieldType type,
                                                       std::size_t width,
                                                       bool low_cardinality) {
  std::vector<std::vector<StageSpec>> prefixes;
  prefixes.push_back({});  // entropy tail alone (and with it, "store")
  if (is_integer(type)) {
    prefixes.push_back({{StageId::kDelta, width}, {StageId::kZigzag, width}});
    prefixes.push_back({{StageId::kBytePlane, width}});
    prefixes.push_back({{StageId::kDelta, width},
                        {StageId::kZigzag, width},
                        {StageId::kBytePlane, width}});
    if (low_cardinality) prefixes.push_back({{StageId::kDict, width}});
  } else if (type == FieldType::kFloat32 || type == FieldType::kFloat64) {
    prefixes.push_back(
        {{StageId::kXorDelta, width}, {StageId::kBytePlane, width}});
    prefixes.push_back({{StageId::kXorDelta, width}});
  }
  return prefixes;
}

std::vector<Pipeline> PipelinePlanner::candidates(FieldType type,
                                                  std::size_t width,
                                                  bool low_cardinality) const {
  const std::vector<std::vector<StageSpec>> prefixes =
      transform_prefixes(type, width, low_cardinality);
  std::vector<Pipeline> out;
  const std::vector<StageSpec> tails = entropy_tails();
  for (const std::vector<StageSpec>& prefix : prefixes) {
    out.emplace_back(prefix);  // no entropy tail
    for (const StageSpec& tail : tails) {
      std::vector<StageSpec> specs = prefix;
      specs.push_back(tail);
      out.emplace_back(std::move(specs));
    }
  }
  return out;
}

ColumnChoice PipelinePlanner::choose(
    ByteView sample, const std::vector<Pipeline>& options) const {
  ColumnChoice best;  // empty pipeline: raw bytes + 5-byte header
  best.sampled_ratio_percent = 100.0;
  double best_score = static_cast<double>(sample.size()) +
                      static_cast<double>(Pipeline{}.header_size());
  for (const Pipeline& option : options) {
    if (option.empty()) continue;  // already the baseline
    std::size_t encoded = 0;
    try {
      encoded = option.encode(sample).size();
    } catch (const ConfigError&) {
      continue;  // candidate does not apply (e.g. dict overflow)
    }
    const double cost = pipeline_cost_weight(option);
    const double score = static_cast<double>(encoded) *
                         (1.0 + effective_cpu_lambda(config_) * cost);
    if (score < best_score) {
      best_score = score;
      best.pipeline = option;
      best.cost_weight = cost;
      best.sampled_ratio_percent =
          sample.empty() ? 100.0
                         : 100.0 * static_cast<double>(encoded) /
                               static_cast<double>(sample.size());
    }
  }
  return best;
}

ColumnChoice PipelinePlanner::choose_structured(
    ByteView sample, const std::vector<std::vector<StageSpec>>& prefixes,
    const std::vector<StageSpec>& tails) const {
  ColumnChoice best;  // empty pipeline: raw bytes + 5-byte header
  best.sampled_ratio_percent = 100.0;
  double best_score = static_cast<double>(sample.size()) +
                      static_cast<double>(Pipeline{}.header_size());

  // Phase 1: apply each transform prefix to the sample once and rank the
  // prefixes by the cheap Huffman proxy tail. The expensive tails only
  // ever see the winning prefix, so planning costs P proxy encodes plus T
  // tail encodes instead of P x T tail encodes.
  const StagePtr proxy = make_stage(StageId::kHuffman, 0);
  const std::vector<StageSpec>* win_prefix = nullptr;
  Bytes win_transformed;
  double win_score = 0.0;
  for (const std::vector<StageSpec>& prefix : prefixes) {
    Bytes transformed(sample.begin(), sample.end());
    double prefix_cost = 0.0;
    try {
      for (const StageSpec& spec : prefix) {
        transformed = make_stage(spec.id, spec.param)->encode(transformed);
        prefix_cost += stage_weight(spec.id);
      }
    } catch (const ConfigError&) {
      continue;  // prefix does not apply (e.g. dict overflow)
    }
    const double proxy_score =
        static_cast<double>(proxy->encode(transformed).size()) *
        (1.0 + effective_cpu_lambda(config_) * prefix_cost);
    if (win_prefix == nullptr || proxy_score < win_score) {
      win_prefix = &prefix;
      win_transformed = std::move(transformed);
      win_score = proxy_score;
    }
  }
  if (win_prefix == nullptr) return best;  // no prefix applied

  // Phase 2: the winning prefix bare, then under every entropy tail.
  const auto consider = [&](std::vector<StageSpec> specs,
                            std::size_t payload) {
    Pipeline pipeline{std::move(specs)};
    const double cost = pipeline_cost_weight(pipeline);
    const std::size_t encoded = payload + pipeline.header_size();
    const double score = static_cast<double>(encoded) *
                         (1.0 + effective_cpu_lambda(config_) * cost);
    if (score < best_score) {
      best_score = score;
      best.cost_weight = cost;
      best.sampled_ratio_percent =
          sample.empty() ? 100.0
                         : 100.0 * static_cast<double>(encoded) /
                               static_cast<double>(sample.size());
      best.pipeline = std::move(pipeline);
    }
  };
  if (!win_prefix->empty()) consider(*win_prefix, win_transformed.size());
  for (const StageSpec& tail : tails) {
    std::size_t tail_payload = 0;
    try {
      tail_payload =
          make_stage(tail.id, tail.param)->encode(win_transformed).size();
    } catch (const ConfigError&) {
      continue;
    }
    std::vector<StageSpec> specs = *win_prefix;
    specs.push_back(tail);
    consider(std::move(specs), tail_payload);
  }
  return best;
}

ColumnPlan PipelinePlanner::plan_columns(
    ByteView shuffled, const pbio::ColumnSlices& slices) const {
  const std::size_t sample_cap = config_.column_sample != 0
                                     ? config_.column_sample
                                     : config_.decision.sample_size;
  const std::vector<StageSpec> tails = entropy_tails();
  ColumnPlan plan;
  plan.columns.reserve(slices.columns.size());
  for (std::size_t i = 0; i < slices.columns.size(); ++i) {
    const pbio::ColumnSlice& col = slices.columns[i];
    ByteView column = slices.column(shuffled, i);

    // The §2.5 sampling rule, per column: score on a prefix, aligned down
    // to whole elements so width-sensitive stages apply cleanly.
    std::size_t sample_len = std::min(column.size(), sample_cap);
    if (col.width > 0) sample_len -= sample_len % col.width;
    ByteView sample = column.first(sample_len);

    const bool low_card =
        col.width > 0 && is_integer(col.type) &&
        sample_cardinality(sample, col.width, config_.dict_sample_cardinality)
                <= config_.dict_sample_cardinality &&
        !sample.empty();
    plan.columns.push_back(choose_structured(
        sample, transform_prefixes(col.type, col.width, low_card), tails));
  }
  return plan;
}

ColumnChoice PipelinePlanner::plan_opaque(ByteView data) const {
  ByteView sample = data.first(std::min(data.size(),
                                        config_.decision.sample_size));
  std::vector<Pipeline> options;
  options.emplace_back(std::vector<StageSpec>{{StageId::kHuffman, 0}});
  options.emplace_back(std::vector<StageSpec>{{StageId::kLz, 0}});
  return choose(sample, options);
}

}  // namespace acex::colpipe
