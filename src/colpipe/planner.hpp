#pragma once

#include <vector>

#include "adaptive/decision.hpp"
#include "colpipe/stage.hpp"
#include "pbio/columnar.hpp"

namespace acex::colpipe {

/// Column-aware pipeline planner (DESIGN.md §14).
///
/// The §2.5 selector samples a 4 KiB prefix and scores whole-block methods;
/// the planner applies the same sample-then-score discipline PER COLUMN of a
/// shuffled PBIO block, over composed stage pipelines instead of single
/// codecs. Candidate pipelines are derived from the column's declared type
/// (delta/zigzag for integers, xor-of-consecutive for floats, dictionary for
/// low-cardinality data, byte-plane splits for both), each finished with an
/// entropy tail.
///
/// Scoring must be a pure function of the bytes: the adaptive stack requires
/// compress() to be deterministic (the broker's shared-encode cache and the
/// serial/parallel byte-identity guarantee both depend on it), so the CPU
/// term uses static weights derived from Fig. 1's compress/decompress-time
/// ratings — the same MethodProfile data the whole-block selector trusts —
/// never wall-clock measurements.
struct PlannerConfig {
  /// Reused for its sample_size (the §2.5 "first 4KB" prefix rule).
  adaptive::DecisionParams decision{};

  /// Weight of the CPU-cost term: score = bytes x (1 + lambda x cost).
  /// 0 plans purely for ratio; larger values favour cheaper pipelines.
  double cpu_lambda = 0.25;

  /// Columns whose sampled cardinality is at or below this propose a
  /// dictionary stage (the wire dict stage itself allows up to 256).
  std::size_t dict_sample_cardinality = 64;

  /// Per-column planning sample cap, in bytes. A column is homogeneous, so
  /// scoring needs far less context than the §2.5 whole-block 4 KiB
  /// prefix; 0 falls back to decision.sample_size. (plan_opaque always
  /// uses decision.sample_size — it scores a whole block.)
  std::size_t column_sample = 2048;

  void validate() const;
};

/// The λ the planner actually scores with: `cpu_lambda` scaled by the
/// decision policy's CPU aversion. kBandwidth keeps λ as configured;
/// kCpuEfficiency quadruples it (cheap pipelines or nothing), kEnergyProxy
/// and kTargetRate double it (CPU is a first-class cost, minimum CPU among
/// qualifiers). Static multipliers, not measurements — planning stays a
/// pure function of the bytes.
double effective_cpu_lambda(const PlannerConfig& config) noexcept;

/// The planner's verdict for one column.
struct ColumnChoice {
  Pipeline pipeline;                    ///< winning composition (may be empty)
  double sampled_ratio_percent = 100.0; ///< encoded/raw on the sample, percent
  double cost_weight = 0.0;             ///< static CPU weight of the pipeline
};

/// Per-block plan: one choice per column, in schema declaration order.
struct ColumnPlan {
  std::vector<ColumnChoice> columns;
};

/// Static CPU weight of a pipeline: transform stages carry small fixed
/// weights; entropy tails inherit Fig. 1's time ratings. Deterministic.
double pipeline_cost_weight(const Pipeline& pipeline);

class PipelinePlanner {
 public:
  explicit PipelinePlanner(PlannerConfig config = {});

  const PlannerConfig& config() const noexcept { return config_; }

  /// Score candidate pipelines against each column's sample prefix and pick
  /// the cheapest score (encoded bytes x cost multiplier) per column.
  /// `shuffled` must be the buffer `slices` was computed from.
  ColumnPlan plan_columns(ByteView shuffled,
                          const pbio::ColumnSlices& slices) const;

  /// Plan a single pipeline for an opaque (non-PBIO) buffer: store,
  /// Huffman, or LZ — the degenerate one-column case.
  ColumnChoice plan_opaque(ByteView data) const;

  /// The candidate stage compositions considered for a column of the given
  /// type and width (exposed for tests and the bench grid).
  std::vector<Pipeline> candidates(pbio::FieldType type, std::size_t width,
                                   bool low_cardinality) const;

 private:
  ColumnChoice choose(ByteView sample,
                      const std::vector<Pipeline>& options) const;

  /// Two-phase search over prefixes x tails: rank transform prefixes with
  /// the cheap Huffman proxy tail, then score every entropy tail (and no
  /// tail) on the winning prefix only. Cuts planning from P x T entropy
  /// encodes of the sample to P cheap + T expensive ones, with the same
  /// determinism guarantees as the exhaustive form.
  ColumnChoice choose_structured(ByteView sample,
                                 const std::vector<std::vector<StageSpec>>&
                                     prefixes,
                                 const std::vector<StageSpec>& tails) const;

  PlannerConfig config_;
};

}  // namespace acex::colpipe
