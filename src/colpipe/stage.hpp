#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace acex::colpipe {

/// Composable per-column compression stages (DESIGN.md §14).
///
/// §5 of the paper invites "application-specific compression methods"; Fig. 6
/// shows that the fields of one record compress wildly differently. A stage
/// pipeline makes that exploitable: a column is pushed through zero or more
/// type-aware TRANSFORMS (delta, zigzag, xor-of-consecutive, byte-plane
/// split, dictionary, MTF, RLE) and finished with one ENTROPY tail (Huffman,
/// arithmetic, LZ, zlib — or nothing). Every pipeline is self-describing on
/// the wire, so a receiver that has never seen the planner can still invert
/// it, and an unknown stage id degrades to DecodeError, never to garbage.

/// Wire-stable stage identifiers (varint-coded in the pipeline header).
/// Transforms live below 16, entropy tails at 16 and above; the split is a
/// documentation aid, not a wire rule.
enum class StageId : std::uint32_t {
  kDelta = 1,      ///< element-wise delta, param = element width (1/2/4/8)
  kZigzag = 2,     ///< signed->unsigned zigzag, param = element width
  kXorDelta = 3,   ///< byte[i] ^= byte[i-W], param = lag W (float trick)
  kBytePlane = 4,  ///< N x W -> W x N byte-plane transpose, param = width
  kDict = 5,       ///< low-cardinality dictionary, param = element width
  kMtf = 6,        ///< move-to-front (§2.4 step 2), param unused
  kRle = 7,        ///< capped run-length (§2.4 step 3), param unused
  kHuffman = 16,     ///< §2.1 canonical Huffman tail
  kArithmetic = 17,  ///< §2.2 adaptive arithmetic tail
  kZlib = 18,        ///< zlib comparator tail (only if zlib_available())
  kLz = 19,          ///< §2.3 LZ77+Huffman tail
};

/// Maximum stages in one pipeline; decode rejects deeper headers so a
/// corrupt count cannot make decode allocate without bound.
inline constexpr std::size_t kMaxStages = 8;

/// Short stable name ("delta", "huffman", ...) for logs and bench tables.
std::string_view stage_name(StageId id) noexcept;

/// One stage of a pipeline. Stages are immutable after construction and
/// keep no mutable state across calls, matching the Codec concurrency
/// contract (codec.hpp): distinct instances may run concurrently.
class Stage {
 public:
  virtual ~Stage() = default;

  virtual StageId id() const noexcept = 0;

  /// The wire parameter (element width or lag; 0 when unused).
  virtual std::uint64_t param() const noexcept = 0;

  /// Forward transform. Throws ConfigError when the input shape does not
  /// fit the stage (e.g. size not a multiple of the element width) — the
  /// planner treats that as "candidate unavailable", not data corruption.
  virtual Bytes encode(ByteView input) const = 0;

  /// Inverse of encode(). Throws DecodeError on malformed stage payloads.
  virtual Bytes decode(ByteView input) const = 0;
};

using StagePtr = std::unique_ptr<Stage>;

/// Construct a stage from its wire identity. Throws DecodeError on unknown
/// ids or invalid params (decode paths call this on untrusted headers).
StagePtr make_stage(StageId id, std::uint64_t param);

/// A stage's wire identity, used to spell out pipelines compactly.
struct StageSpec {
  StageId id;
  std::uint64_t param = 0;

  bool operator==(const StageSpec&) const = default;
};

/// An ordered stage composition with a self-describing wire form.
///
/// Wire layout:
///   varint stage_count
///   stage_count x (varint stage_id, varint param)
///   crc32 of all preceding header bytes, LE (4 bytes)
///   payload (the stages' composed output)
///
/// encode() applies stages front to back; decode() verifies the CRC,
/// instantiates each stage (unknown id -> DecodeError) and inverts them
/// back to front. An empty pipeline is the identity ("null" tail).
class Pipeline {
 public:
  Pipeline() = default;

  /// Throws ConfigError when specs exceed kMaxStages or name an unknown
  /// stage (the specs are caller-built, not wire data).
  explicit Pipeline(std::vector<StageSpec> specs);

  const std::vector<StageSpec>& specs() const noexcept { return specs_; }
  bool empty() const noexcept { return specs_.empty(); }

  /// Header + transformed payload, self-contained for decode().
  Bytes encode(ByteView input) const;

  /// Invert any pipeline blob produced by encode(); no planner state
  /// needed. Throws DecodeError on truncation, CRC mismatch, unknown
  /// stage ids, or depth over kMaxStages.
  static Bytes decode(ByteView blob);

  /// Human-readable composition, e.g. "delta(4)|zigzag(4)|huffman".
  std::string describe() const;

  /// Wire size of the header this pipeline emits.
  std::size_t header_size() const noexcept;

  bool operator==(const Pipeline&) const = default;

 private:
  std::vector<StageSpec> specs_;
  std::vector<StagePtr> build() const;
};

}  // namespace acex::colpipe
