#include "colpipe/columnar_codec.hpp"

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::colpipe {
namespace {

constexpr std::uint8_t kModeOpaque = 0x00;
constexpr std::uint8_t kModeColumnar = 0x01;

/// A corrupt header cannot ask for more columns than PBIO schemas allow.
constexpr std::uint64_t kMaxColumns = 4096;

/// When a planned pipeline refuses the full column (the dictionary stage
/// may overflow on data whose sample looked low-cardinality), degrade
/// deterministically: keep only the entropy tail, or store.
Pipeline entropy_tail_of(const Pipeline& planned) {
  const auto& specs = planned.specs();
  if (!specs.empty() &&
      static_cast<std::uint32_t>(specs.back().id) >=
          static_cast<std::uint32_t>(StageId::kHuffman)) {
    return Pipeline{{specs.back()}};
  }
  return Pipeline{};
}

Bytes encode_column(const Pipeline& planned, ByteView column) {
  try {
    return planned.encode(column);
  } catch (const ConfigError&) {
    return entropy_tail_of(planned).encode(column);
  }
}

}  // namespace

ColumnarCodec::ColumnarCodec(PlannerConfig config)
    : planner_(std::move(config)) {}

Bytes ColumnarCodec::compress(ByteView input) {
  Bytes shuffled;
  pbio::ColumnSlices slices;
  bool columnar = false;
  try {
    shuffled = pbio::columnar_shuffle(input);
    slices = pbio::column_slices(ByteView(shuffled.data(), shuffled.size()));
    columnar = !slices.columns.empty();
  } catch (const Error&) {
    columnar = false;
  }

  Bytes out;
  if (!columnar) {
    out.push_back(kModeOpaque);
    const ColumnChoice choice = planner_.plan_opaque(input);
    const Bytes blob = choice.pipeline.encode(input);
    out.insert(out.end(), blob.begin(), blob.end());
    return out;
  }

  const ByteView view(shuffled.data(), shuffled.size());
  const ColumnPlan plan = planner_.plan_columns(view, slices);
  out.push_back(kModeColumnar);
  put_varint(out, slices.body_offset);
  out.insert(out.end(), shuffled.begin(),
             shuffled.begin() + static_cast<std::ptrdiff_t>(slices.body_offset));
  put_varint(out, slices.columns.size());
  for (std::size_t i = 0; i < slices.columns.size(); ++i) {
    const Bytes blob =
        encode_column(plan.columns[i].pipeline, slices.column(view, i));
    put_varint(out, blob.size());
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

Bytes ColumnarCodec::decompress(ByteView input) {
  if (input.empty()) throw DecodeError("colpipe: empty payload");
  const std::uint8_t mode = input[0];
  std::size_t pos = 1;

  if (mode == kModeOpaque) {
    return Pipeline::decode(input.subspan(pos));
  }
  if (mode != kModeColumnar) {
    throw DecodeError("colpipe: unknown payload mode " + std::to_string(mode));
  }

  const std::uint64_t preamble_len = get_varint(input, &pos);
  if (input.size() - pos < preamble_len) {
    throw DecodeError("colpipe: truncated columnar preamble");
  }
  Bytes shuffled(input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() +
                     static_cast<std::ptrdiff_t>(pos + preamble_len));
  pos += static_cast<std::size_t>(preamble_len);

  const std::uint64_t ncols = get_varint(input, &pos);
  if (ncols > kMaxColumns) {
    throw DecodeError("colpipe: column count out of range");
  }
  std::vector<Bytes> columns;
  columns.reserve(static_cast<std::size_t>(ncols));
  for (std::uint64_t i = 0; i < ncols; ++i) {
    const std::uint64_t len = get_varint(input, &pos);
    if (input.size() - pos < len) {
      throw DecodeError("colpipe: truncated column blob");
    }
    columns.push_back(Pipeline::decode(
        input.subspan(pos, static_cast<std::size_t>(len))));
    pos += static_cast<std::size_t>(len);
  }
  if (pos != input.size()) {
    throw DecodeError("colpipe: trailing bytes after last column");
  }

  for (const Bytes& column : columns) {
    shuffled.insert(shuffled.end(), column.begin(), column.end());
  }
  const ByteView view(shuffled.data(), shuffled.size());
  pbio::ColumnSlices slices;
  try {
    slices = pbio::column_slices(view);
  } catch (const ConfigError& err) {
    // A variable-width schema can never have been shuffled by compress().
    throw DecodeError(err.what());
  }
  if (slices.columns.size() != columns.size()) {
    throw DecodeError("colpipe: column count does not match the schema");
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].size() != slices.columns[i].size) {
      throw DecodeError("colpipe: decoded column size mismatch");
    }
  }
  return pbio::columnar_unshuffle(view);
}

void register_columnar(CodecRegistry& registry, PlannerConfig config) {
  registry.register_factory(ColumnarCodec::kId, [config] {
    return std::make_unique<ColumnarCodec>(config);
  });
}

}  // namespace acex::colpipe
