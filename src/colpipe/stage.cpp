#include "colpipe/stage.hpp"

#include <algorithm>
#include <unordered_map>

#include "compress/arith.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "compress/zlib_codec.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::colpipe {
namespace {

bool valid_width(std::uint64_t w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

std::uint64_t read_le(const std::uint8_t* p, std::size_t width) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void write_le(std::uint8_t* p, std::uint64_t v, std::size_t width) noexcept {
  for (std::size_t i = 0; i < width; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t width_mask(std::size_t width) noexcept {
  return width == 8 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (8 * width)) - 1;
}

void require_multiple(ByteView input, std::size_t width, bool trusted) {
  if (input.size() % width == 0) return;
  const std::string what = "colpipe: input size " +
                           std::to_string(input.size()) +
                           " not a multiple of element width " +
                           std::to_string(width);
  if (trusted) throw ConfigError(what);
  throw DecodeError(what);
}

/// Element-wise difference of consecutive values, modulo the element width.
/// Monotonic columns (sequence numbers, timestamps) become near-zero runs —
/// the same idea WisentCpp applies before its LZ77 pass.
class DeltaStage final : public Stage {
 public:
  explicit DeltaStage(std::size_t width) : width_(width) {}

  StageId id() const noexcept override { return StageId::kDelta; }
  std::uint64_t param() const noexcept override { return width_; }

  Bytes encode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/true);
    Bytes out(input.size());
    const std::uint64_t mask = width_mask(width_);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < input.size(); i += width_) {
      const std::uint64_t cur = read_le(input.data() + i, width_);
      write_le(out.data() + i, (cur - prev) & mask, width_);
      prev = cur;
    }
    return out;
  }

  Bytes decode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/false);
    Bytes out(input.size());
    const std::uint64_t mask = width_mask(width_);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < input.size(); i += width_) {
      prev = (prev + read_le(input.data() + i, width_)) & mask;
      write_le(out.data() + i, prev, width_);
    }
    return out;
  }

 private:
  std::size_t width_;
};

/// Zigzag-fold signed elements so small negatives (as deltas produce) become
/// small unsigned values with many leading zero bytes.
class ZigzagStage final : public Stage {
 public:
  explicit ZigzagStage(std::size_t width) : width_(width) {}

  StageId id() const noexcept override { return StageId::kZigzag; }
  std::uint64_t param() const noexcept override { return width_; }

  Bytes encode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/true);
    Bytes out(input.size());
    for (std::size_t i = 0; i < input.size(); i += width_) {
      const std::int64_t n = sign_extend(read_le(input.data() + i, width_));
      const std::uint64_t z = (static_cast<std::uint64_t>(n) << 1) ^
                              static_cast<std::uint64_t>(n >> 63);
      write_le(out.data() + i, z & width_mask(width_), width_);
    }
    return out;
  }

  Bytes decode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/false);
    Bytes out(input.size());
    for (std::size_t i = 0; i < input.size(); i += width_) {
      const std::uint64_t z = read_le(input.data() + i, width_);
      const std::uint64_t n = (z >> 1) ^ (~(z & 1) + 1);
      write_le(out.data() + i, n & width_mask(width_), width_);
    }
    return out;
  }

 private:
  std::int64_t sign_extend(std::uint64_t v) const noexcept {
    if (width_ == 8) return static_cast<std::int64_t>(v);
    const std::uint64_t sign_bit = std::uint64_t{1} << (8 * width_ - 1);
    return static_cast<std::int64_t>((v ^ sign_bit) - sign_bit);
  }

  std::size_t width_;
};

/// XOR each byte with the byte one element earlier. For floats whose
/// exponent and high mantissa bytes barely move between consecutive samples
/// (MD trajectories), this zeroes the stable bytes without any integer
/// interpretation — and it works on any input length.
class XorDeltaStage final : public Stage {
 public:
  explicit XorDeltaStage(std::size_t lag) : lag_(lag) {}

  StageId id() const noexcept override { return StageId::kXorDelta; }
  std::uint64_t param() const noexcept override { return lag_; }

  Bytes encode(ByteView input) const override {
    Bytes out(input.begin(), input.end());
    for (std::size_t i = out.size(); i-- > lag_;) out[i] ^= out[i - lag_];
    return out;
  }

  Bytes decode(ByteView input) const override {
    Bytes out(input.begin(), input.end());
    for (std::size_t i = lag_; i < out.size(); ++i) out[i] ^= out[i - lag_];
    return out;
  }

 private:
  std::size_t lag_;
};

/// Transpose N elements of W bytes into W planes of N bytes, grouping the
/// high (often near-constant) bytes of every element together.
class BytePlaneStage final : public Stage {
 public:
  explicit BytePlaneStage(std::size_t width) : width_(width) {}

  StageId id() const noexcept override { return StageId::kBytePlane; }
  std::uint64_t param() const noexcept override { return width_; }

  Bytes encode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/true);
    return transpose(input, /*forward=*/true);
  }

  Bytes decode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/false);
    return transpose(input, /*forward=*/false);
  }

 private:
  Bytes transpose(ByteView input, bool forward) const {
    const std::size_t n = input.size() / width_;
    Bytes out(input.size());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t p = 0; p < width_; ++p) {
        if (forward) {
          out[p * n + i] = input[i * width_ + p];
        } else {
          out[i * width_ + p] = input[p * n + i];
        }
      }
    }
    return out;
  }

  std::size_t width_;
};

/// Dictionary-code low-cardinality columns (airport codes, enum statuses):
/// up to 255 distinct W-byte values become one index byte per element.
/// Encoding a high-cardinality column throws ConfigError, which the planner
/// and codec treat as "this candidate does not apply".
class DictStage final : public Stage {
 public:
  explicit DictStage(std::size_t width) : width_(width) {}

  StageId id() const noexcept override { return StageId::kDict; }
  std::uint64_t param() const noexcept override { return width_; }

  Bytes encode(ByteView input) const override {
    require_multiple(input, width_, /*trusted=*/true);
    const std::size_t n = input.size() / width_;
    std::unordered_map<std::uint64_t, std::uint8_t> index;
    std::vector<std::uint64_t> entries;
    Bytes codes;
    codes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = read_le(input.data() + i * width_, width_);
      auto [it, inserted] = index.try_emplace(
          v, static_cast<std::uint8_t>(entries.size()));
      if (inserted) {
        if (entries.size() >= 256) {
          throw ConfigError("colpipe: dict stage saw more than 256 values");
        }
        entries.push_back(v);
      }
      codes.push_back(it->second);
    }
    Bytes out;
    out.reserve(1 + entries.size() * width_ + codes.size());
    put_varint(out, entries.size());
    for (const std::uint64_t v : entries) {
      const std::size_t at = out.size();
      out.resize(at + width_);
      write_le(out.data() + at, v, width_);
    }
    out.insert(out.end(), codes.begin(), codes.end());
    return out;
  }

  Bytes decode(ByteView input) const override {
    std::size_t pos = 0;
    const std::uint64_t count = get_varint(input, &pos);
    if (count > 256) throw DecodeError("colpipe: dict table too large");
    if (input.size() - pos < count * width_) {
      throw DecodeError("colpipe: truncated dict table");
    }
    const std::size_t codes_at = pos + count * width_;
    const std::size_t n = input.size() - codes_at;
    Bytes out(n * width_);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t code = input[codes_at + i];
      if (code >= count) throw DecodeError("colpipe: dict index out of range");
      std::copy_n(input.data() + pos + code * width_, width_,
                  out.data() + i * width_);
    }
    return out;
  }

 private:
  std::size_t width_;
};

class MtfStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kMtf; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override { return mtf::encode(input); }
  Bytes decode(ByteView input) const override { return mtf::decode(input); }
};

class RleStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kRle; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override { return rle::encode(input); }
  Bytes decode(ByteView input) const override { return rle::decode(input); }
};

/// Entropy tails reuse the whole-buffer codecs; instances are created per
/// call because codecs are cheap to build and not const-callable.
class HuffmanStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kHuffman; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override {
    return HuffmanCodec{}.compress(input);
  }
  Bytes decode(ByteView input) const override {
    return HuffmanCodec{}.decompress(input);
  }
};

class ArithmeticStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kArithmetic; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override {
    return ArithmeticCodec{}.compress(input);
  }
  Bytes decode(ByteView input) const override {
    return ArithmeticCodec{}.decompress(input);
  }
};

class LzStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kLz; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override {
    return LempelZivCodec{}.compress(input);
  }
  Bytes decode(ByteView input) const override {
    return LempelZivCodec{}.decompress(input);
  }
};

#ifdef ACEX_HAVE_ZLIB
class ZlibStage final : public Stage {
 public:
  StageId id() const noexcept override { return StageId::kZlib; }
  std::uint64_t param() const noexcept override { return 0; }
  Bytes encode(ByteView input) const override {
    return ZlibCodec{}.compress(input);
  }
  Bytes decode(ByteView input) const override {
    return ZlibCodec{}.decompress(input);
  }
};
#endif

/// Upper bound on a useful xor lag; wide enough for any packed element yet
/// small enough that a corrupt header cannot request absurd work.
constexpr std::uint64_t kMaxXorLag = 64;

}  // namespace

std::string_view stage_name(StageId id) noexcept {
  switch (id) {
    case StageId::kDelta:
      return "delta";
    case StageId::kZigzag:
      return "zigzag";
    case StageId::kXorDelta:
      return "xor";
    case StageId::kBytePlane:
      return "byteplane";
    case StageId::kDict:
      return "dict";
    case StageId::kMtf:
      return "mtf";
    case StageId::kRle:
      return "rle";
    case StageId::kHuffman:
      return "huffman";
    case StageId::kArithmetic:
      return "arithmetic";
    case StageId::kZlib:
      return "zlib";
    case StageId::kLz:
      return "lz";
  }
  return "unknown";
}

StagePtr make_stage(StageId id, std::uint64_t param) {
  const auto need_width = [&]() -> std::size_t {
    if (!valid_width(param)) {
      throw DecodeError("colpipe: stage '" + std::string(stage_name(id)) +
                        "' has invalid element width " +
                        std::to_string(param));
    }
    return static_cast<std::size_t>(param);
  };
  const auto no_param = [&] {
    if (param != 0) {
      throw DecodeError("colpipe: stage '" + std::string(stage_name(id)) +
                        "' takes no parameter");
    }
  };
  switch (id) {
    case StageId::kDelta:
      return std::make_unique<DeltaStage>(need_width());
    case StageId::kZigzag:
      return std::make_unique<ZigzagStage>(need_width());
    case StageId::kXorDelta:
      if (param == 0 || param > kMaxXorLag) {
        throw DecodeError("colpipe: xor stage lag out of range");
      }
      return std::make_unique<XorDeltaStage>(
          static_cast<std::size_t>(param));
    case StageId::kBytePlane:
      return std::make_unique<BytePlaneStage>(need_width());
    case StageId::kDict:
      return std::make_unique<DictStage>(need_width());
    case StageId::kMtf:
      no_param();
      return std::make_unique<MtfStage>();
    case StageId::kRle:
      no_param();
      return std::make_unique<RleStage>();
    case StageId::kHuffman:
      no_param();
      return std::make_unique<HuffmanStage>();
    case StageId::kArithmetic:
      no_param();
      return std::make_unique<ArithmeticStage>();
    case StageId::kZlib:
      no_param();
#ifdef ACEX_HAVE_ZLIB
      return std::make_unique<ZlibStage>();
#else
      throw DecodeError("colpipe: zlib stage not compiled in");
#endif
    case StageId::kLz:
      no_param();
      return std::make_unique<LzStage>();
  }
  throw DecodeError("colpipe: unknown stage id " +
                    std::to_string(static_cast<std::uint32_t>(id)));
}

Pipeline::Pipeline(std::vector<StageSpec> specs) : specs_(std::move(specs)) {
  if (specs_.size() > kMaxStages) {
    throw ConfigError("colpipe: pipeline depth exceeds kMaxStages");
  }
  try {
    for (const StageSpec& spec : specs_) make_stage(spec.id, spec.param);
  } catch (const DecodeError& err) {
    // Specs are caller-built, not wire data: misuse, not corruption.
    throw ConfigError(err.what());
  }
}

std::vector<StagePtr> Pipeline::build() const {
  std::vector<StagePtr> stages;
  stages.reserve(specs_.size());
  for (const StageSpec& spec : specs_) {
    stages.push_back(make_stage(spec.id, spec.param));
  }
  return stages;
}

Bytes Pipeline::encode(ByteView input) const {
  Bytes out;
  out.reserve(header_size() + input.size());
  put_varint(out, specs_.size());
  for (const StageSpec& spec : specs_) {
    put_varint(out, static_cast<std::uint64_t>(spec.id));
    put_varint(out, spec.param);
  }
  const std::uint32_t crc = crc32(ByteView(out.data(), out.size()));
  for (unsigned shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(crc >> shift));
  }

  Bytes payload(input.begin(), input.end());
  for (const StagePtr& stage : build()) {
    payload = stage->encode(ByteView(payload.data(), payload.size()));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes Pipeline::decode(ByteView blob) {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(blob, &pos);
  if (count > kMaxStages) {
    throw DecodeError("colpipe: pipeline depth exceeds kMaxStages");
  }
  std::vector<StageSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    StageSpec spec;
    spec.id = static_cast<StageId>(get_varint(blob, &pos));
    spec.param = get_varint(blob, &pos);
    specs.push_back(spec);
  }
  if (blob.size() - pos < 4) {
    throw DecodeError("colpipe: truncated pipeline header CRC");
  }
  const std::uint32_t stored =
      static_cast<std::uint32_t>(blob[pos]) |
      (static_cast<std::uint32_t>(blob[pos + 1]) << 8) |
      (static_cast<std::uint32_t>(blob[pos + 2]) << 16) |
      (static_cast<std::uint32_t>(blob[pos + 3]) << 24);
  if (crc32(blob.first(pos)) != stored) {
    throw DecodeError("colpipe: pipeline header CRC mismatch");
  }
  pos += 4;

  std::vector<StagePtr> stages;
  stages.reserve(specs.size());
  for (const StageSpec& spec : specs) {
    stages.push_back(make_stage(spec.id, spec.param));
  }
  Bytes payload(blob.begin() + static_cast<std::ptrdiff_t>(pos), blob.end());
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    payload = (*it)->decode(ByteView(payload.data(), payload.size()));
  }
  return payload;
}

std::string Pipeline::describe() const {
  if (specs_.empty()) return "null";
  std::string out;
  for (const StageSpec& spec : specs_) {
    if (!out.empty()) out += '|';
    out += stage_name(spec.id);
    if (spec.param != 0) {
      out += '(' + std::to_string(spec.param) + ')';
    }
  }
  return out;
}

std::size_t Pipeline::header_size() const noexcept {
  std::size_t size = varint_size(specs_.size()) + 4;
  for (const StageSpec& spec : specs_) {
    size += varint_size(static_cast<std::uint64_t>(spec.id)) +
            varint_size(spec.param);
  }
  return size;
}

}  // namespace acex::colpipe
