#pragma once

#include "colpipe/planner.hpp"
#include "compress/registry.hpp"

namespace acex::colpipe {

/// Application-registered codec (MethodId::kColumnar = 129) that compresses
/// PBIO blocks column by column with planned stage pipelines — §5's
/// "application-specific compression method", layered on the generic
/// adaptive machinery exactly as DESIGN.md §14 describes.
///
/// Wire format (payload inside the ordinary frame):
///   mode byte 0x01 (columnar):
///     varint preamble_len | preamble (format header + record-count varint)
///     varint column_count
///     column_count x (varint blob_len | pipeline blob)
///   mode byte 0x00 (opaque):
///     one pipeline blob covering the whole input
///
/// compress() shuffles the block (pbio::columnar_shuffle), plans one
/// pipeline per column, and falls back to the opaque mode when the input is
/// not a transposable PBIO stream. Determinism: the planner scores with
/// static cost weights, so compress() is a pure function of the input —
/// required by the broker's shared-encode cache and the serial/parallel
/// byte-identity guarantee.
///
/// decompress() needs no planner state: every pipeline blob is
/// self-describing. Unknown stage ids, CRC mismatches, truncation, or
/// column/record inconsistencies raise DecodeError.
class ColumnarCodec final : public Codec {
 public:
  static constexpr MethodId kId = MethodId::kColumnar;

  explicit ColumnarCodec(PlannerConfig config = {});

  MethodId id() const noexcept override { return kId; }
  Bytes compress(ByteView input) override;
  Bytes decompress(ByteView input) override;

  const PipelinePlanner& planner() const noexcept { return planner_; }

 private:
  PipelinePlanner planner_;
};

/// Register the columnar codec under MethodId::kColumnar. Like the
/// FloatQuantCodec, it is NOT part of CodecRegistry::with_builtins(); both
/// peers must opt in (and the handshake only negotiates it when both sides
/// offer it).
void register_columnar(CodecRegistry& registry, PlannerConfig config = {});

}  // namespace acex::colpipe
