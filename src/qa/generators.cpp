#include "qa/generators.hpp"

#include "echo/event.hpp"
#include "util/rng.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex::qa {
namespace {

Bytes low_entropy(std::size_t size, Rng& rng) {
  Bytes out(size);
  for (auto& b : out) {
    const double u = rng.uniform();
    if (u < 0.55) {
      b = 'e';
    } else if (u < 0.8) {
      b = static_cast<std::uint8_t>('a' + rng.below(4));
    } else {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return out;
}

Bytes long_runs(std::size_t size, Rng& rng) {
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const auto b = static_cast<std::uint8_t>(rng.below(4));
    const std::size_t run = 1 + rng.below(600);
    out.insert(out.end(), std::min(run, size - out.size()), b);
  }
  return out;
}

Bytes high_bytes(std::size_t size, Rng& rng) {
  // 253..255 everywhere: the RLE escape/sentinel machinery's worst case.
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(253 + rng.below(3));
  return out;
}

Bytes periodic(std::size_t size, Rng& rng) {
  const std::size_t period = 1 + rng.below(7);
  const Bytes unit = rng.bytes(period);
  Bytes out;
  out.reserve(size + period);
  while (out.size() < size) {
    out.insert(out.end(), unit.begin(), unit.end());
  }
  out.resize(size);
  return out;
}

}  // namespace

std::vector<SeedInput> seed_payloads(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  workloads::TransactionGenerator transactions(seed);
  workloads::MolecularConfig mc;
  mc.atom_count = std::max<std::size_t>(16, size / 12);  // 12 B per coord row
  mc.seed = seed;
  workloads::MolecularGenerator molecular(mc);

  std::vector<SeedInput> inputs;
  inputs.push_back({"text", transactions.text_block(size)});
  inputs.push_back({"low_entropy", low_entropy(size, rng)});
  inputs.push_back({"runs", long_runs(size, rng)});
  inputs.push_back({"high_bytes", high_bytes(size, rng)});
  inputs.push_back({"periodic", periodic(size, rng)});
  inputs.push_back({"random", rng.bytes(size)});
  Bytes floats = molecular.coordinates_bytes();
  if (floats.size() > size) floats.resize(size);
  inputs.push_back({"float_like", std::move(floats)});
  return inputs;
}

Bytes seed_pbio_stream(std::uint64_t seed) {
  workloads::MolecularConfig config;
  config.atom_count = 64;
  config.seed = seed;
  workloads::MolecularGenerator gen(config);
  return gen.pbio_snapshot();
}

Bytes seed_event_wire(std::uint64_t seed) {
  Rng rng(seed);
  echo::Event event(rng.bytes(256 + rng.below(256)));
  event.attributes.set_int("seq", static_cast<std::int64_t>(seed));
  event.attributes.set_double("quality", 3.48);
  event.attributes.set_string("channel", "qa-fuzz");
  event.attributes.set_bytes("blob", rng.bytes(48));
  return serialize_event(event);
}

}  // namespace acex::qa
