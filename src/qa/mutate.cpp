#include "qa/mutate.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>

namespace acex::qa {
namespace {

/// Bounded LEB128 scan: value + encoded length at `pos`, or nullopt when
/// no well-formed varint starts there. Never throws — mutators must keep
/// working on buffers that are already damaged.
struct ScannedVarint {
  std::uint64_t value = 0;
  std::size_t length = 0;
};

std::optional<ScannedVarint> scan_varint(const Bytes& in,
                                         std::size_t pos) noexcept {
  std::uint64_t value = 0;
  int shift = 0;
  for (std::size_t i = pos; i < in.size() && shift < 64; ++i, shift += 7) {
    const std::uint8_t byte = in[i];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return ScannedVarint{value, i - pos + 1};
  }
  return std::nullopt;
}

void append_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Values that straddle every LEB128 width boundary, plus the extremes.
constexpr std::uint64_t kVarintBoundaries[] = {
    0,
    1,
    0x7F,
    0x80,
    0x3FFF,
    0x4000,
    0x1FFFFF,
    0x200000,
    0xFFFFFFF,
    0x10000000,
    0xFFFFFFFFull,
    0x100000000ull,
    0xFFFFFFFFFFFFull,
    0xFFFFFFFFFFFFFFFFull,
};

void flip_random_bit(Bytes& out, Rng& rng) {
  if (out.empty()) return;
  out[rng.below(out.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
}

// ---------------------------------------------------------- frame layout

constexpr std::size_t kFrameMethodPos = 3;  // "AX" + version byte

/// Header geometry of a (possibly damaged) frame buffer. Positions are
/// byte offsets into the buffer; `checksum_pos` is meaningful for v2 only.
struct FrameLayout {
  std::uint8_t version = 0;
  std::size_t seq_pos = 0;       ///< v2 sequence varint (0 for v1)
  std::size_t size_pos = 0;      ///< payload-size varint
  std::size_t checksum_pos = 0;  ///< v2 header-checksum byte (0 for v1)
  std::size_t payload_pos = 0;   ///< first payload byte
};

std::optional<FrameLayout> scan_frame(const Bytes& framed) noexcept {
  if (framed.size() < 5 || framed[0] != 'A' || framed[1] != 'X') {
    return std::nullopt;
  }
  FrameLayout layout;
  layout.version = framed[2];
  std::size_t pos = kFrameMethodPos + 1;
  if (layout.version == 2) {
    layout.seq_pos = pos;
    const auto seq = scan_varint(framed, pos);
    if (!seq) return std::nullopt;
    pos += seq->length;
  } else if (layout.version != 1) {
    return std::nullopt;
  }
  layout.size_pos = pos;
  const auto size = scan_varint(framed, pos);
  if (!size) return std::nullopt;
  pos += size->length;
  if (layout.version == 2) {
    layout.checksum_pos = pos++;
  }
  if (pos > framed.size()) return std::nullopt;
  layout.payload_pos = pos;
  return layout;
}

/// Recompute the v2 header checksum (XOR of every byte before it) after a
/// field edit, so the mutation reaches the layers behind the gate.
void fix_header_checksum(Bytes& framed) {
  const auto layout = scan_frame(framed);
  if (!layout || layout->version != 2 ||
      layout->checksum_pos >= framed.size()) {
    return;
  }
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < layout->checksum_pos; ++i) sum ^= framed[i];
  framed[layout->checksum_pos] = sum;
}

}  // namespace

Bytes mutate(const Bytes& input, Rng& rng) {
  Bytes out = input;
  switch (rng.below(5)) {
    case 0:  // bit flips
      for (std::uint64_t i = 0, n = 1 + rng.below(8); i < n && !out.empty();
           ++i) {
        out[rng.below(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    case 1:  // truncate
      out.resize(rng.below(out.size() + 1));
      break;
    case 2:  // splice random bytes
      if (!out.empty()) {
        const std::size_t at = rng.below(out.size());
        const Bytes junk = rng.bytes(1 + rng.below(16));
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   junk.begin(), junk.end());
      }
      break;
    case 3: {  // overwrite a window
      if (!out.empty()) {
        const std::size_t at = rng.below(out.size());
        const std::size_t len = std::min<std::size_t>(
            1 + rng.below(32), out.size() - at);
        const Bytes junk = rng.bytes(len);
        std::copy(junk.begin(), junk.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(at));
      }
      break;
    }
    case 4:  // duplicate a window (confuses varint/sentinel scanners)
      if (out.size() > 4) {
        const std::size_t at = rng.below(out.size() - 4);
        out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(at),
                   out.begin() + static_cast<std::ptrdiff_t>(at + 4));
      }
      break;
  }
  return out;
}

Bytes mutate_varint_at(const Bytes& input, std::size_t pos, Rng& rng) {
  const auto existing = scan_varint(input, pos);
  if (!existing) return input;
  Bytes replacement;
  switch (rng.below(4)) {
    case 0:  // width-boundary neighbour
      append_varint(replacement,
                    kVarintBoundaries[rng.below(std::size(kVarintBoundaries))]);
      break;
    case 1:  // random value, random width
      append_varint(replacement, rng() >> rng.below(64));
      break;
    case 2: {  // overlong encoding of the original value
      std::uint64_t v = existing->value;
      do {
        replacement.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
      } while (v != 0);
      replacement.push_back(0x00);  // redundant terminator
      break;
    }
    case 3:  // never-terminating varint
      replacement.assign(10 + rng.below(4), 0xFF);
      break;
  }
  Bytes out = input;
  out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos),
            out.begin() + static_cast<std::ptrdiff_t>(pos + existing->length));
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
             replacement.begin(), replacement.end());
  return out;
}

Bytes mutate_frame(const Bytes& framed, Rng& rng) {
  const auto layout = scan_frame(framed);
  if (!layout) return mutate(framed, rng);
  Bytes out = framed;
  switch (rng.below(8)) {
    case 0:  // magic
      out[rng.below(2)] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // version: the other dialect, or an unknown one
      out[2] = rng.chance(0.5) ? static_cast<std::uint8_t>(3 - out[2])
                               : static_cast<std::uint8_t>(rng.below(256));
      break;
    case 2: {  // method id: a different valid one, or garbage
      static constexpr std::uint8_t kIds[] = {0, 1, 2, 3, 4, 5, 77, 100, 200,
                                              255};
      out[kFrameMethodPos] = kIds[rng.below(std::size(kIds))];
      break;
    }
    case 3:  // sequence varint (v2); v1 has none — mutate the size instead
      out = mutate_varint_at(
          out, layout->version == 2 ? layout->seq_pos : layout->size_pos, rng);
      break;
    case 4:  // payload-size varint
      out = mutate_varint_at(out, layout->size_pos, rng);
      break;
    case 5:  // header checksum byte (v2) / first payload byte (v1)
      if (layout->version == 2 && layout->checksum_pos < out.size()) {
        out[layout->checksum_pos] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      } else {
        flip_random_bit(out, rng);
      }
      break;
    case 6:  // payload byte
      if (layout->payload_pos < out.size()) {
        out[layout->payload_pos +
            rng.below(out.size() - layout->payload_pos)] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    case 7:  // CRC trailer
      if (out.size() >= 4) {
        out[out.size() - 1 - rng.below(4)] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
  }
  // Half the time, make the forged header self-consistent again so the
  // mutation penetrates past the checksum gate to the deeper layers.
  if (rng.chance(0.5)) fix_header_checksum(out);
  return out;
}

Bytes mutate_pbio(const Bytes& stream,
                  Bytes (*fallback)(const Bytes&, Rng&), Rng& rng) {
  // Header: 'P' 'B' | version | byte order | name string (varint len +
  // bytes) | field-count varint | per field: name string + type byte.
  if (stream.size() < 6 || stream[0] != 'P' || stream[1] != 'B') {
    return fallback(stream, rng);
  }
  Bytes out = stream;
  const std::size_t name_pos = 4;
  const auto name_len = scan_varint(out, name_pos);
  switch (rng.below(6)) {
    case 0:  // magic / version / byte-order flag
      out[rng.below(4)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    case 1:  // format-name length varint
      out = mutate_varint_at(out, name_pos, rng);
      break;
    case 2: {  // field-count varint
      if (!name_len) return fallback(stream, rng);
      const std::size_t count_pos =
          name_pos + name_len->length +
          static_cast<std::size_t>(name_len->value);
      if (count_pos >= out.size()) return fallback(stream, rng);
      out = mutate_varint_at(out, count_pos, rng);
      break;
    }
    case 3: {  // a field-type tag inside the schema region
      if (!name_len) return fallback(stream, rng);
      std::size_t pos = name_pos + name_len->length +
                        static_cast<std::size_t>(name_len->value);
      const auto count = scan_varint(out, pos);
      if (!count || count->value == 0 || count->value > 64) {
        return fallback(stream, rng);
      }
      pos += count->length;
      const std::uint64_t target = rng.below(count->value);
      for (std::uint64_t f = 0; f <= target; ++f) {
        const auto field_name = scan_varint(out, pos);
        if (!field_name) return fallback(stream, rng);
        pos += field_name->length +
               static_cast<std::size_t>(field_name->value);
        if (pos >= out.size()) return fallback(stream, rng);
        if (f == target) {
          out[pos] = static_cast<std::uint8_t>(rng.below(16));  // type tag
          return out;
        }
        ++pos;  // skip the type byte
      }
      break;
    }
    case 4: {  // record body, past the schema
      if (!name_len) return fallback(stream, rng);
      const std::size_t body_floor =
          std::min(out.size() - 1, name_pos + name_len->length +
                                       static_cast<std::size_t>(
                                           name_len->value));
      const std::size_t at = body_floor + rng.below(out.size() - body_floor);
      out[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    }
    case 5:
      return fallback(stream, rng);
  }
  return out;
}

namespace {

// ------------------------------------------------- colpipe payload layout

/// Geometry of a (possibly damaged) ColumnarCodec payload: where each
/// pipeline blob starts and how long it claims to be. Lenient scan —
/// returns nullopt rather than throwing on buffers already out of shape.
struct ColpipeLayout {
  std::uint8_t mode = 0;
  std::size_t preamble_pos = 0;  ///< preamble-length varint (columnar mode)
  std::size_t ncols_pos = 0;     ///< column-count varint (columnar mode)
  std::vector<std::size_t> len_pos;   ///< each blob-length varint
  std::vector<std::size_t> blob_pos;  ///< each pipeline blob's first byte
  std::vector<std::size_t> blob_len;
};

std::optional<ColpipeLayout> scan_colpipe(const Bytes& packed) noexcept {
  if (packed.empty() || (packed[0] != 0x00 && packed[0] != 0x01)) {
    return std::nullopt;
  }
  ColpipeLayout layout;
  layout.mode = packed[0];
  if (layout.mode == 0x00) {  // opaque: one blob spanning the rest
    layout.blob_pos.push_back(1);
    layout.blob_len.push_back(packed.size() - 1);
    return layout;
  }
  layout.preamble_pos = 1;
  const auto preamble = scan_varint(packed, layout.preamble_pos);
  if (!preamble) return std::nullopt;
  std::size_t pos = layout.preamble_pos + preamble->length +
                    static_cast<std::size_t>(preamble->value);
  if (pos >= packed.size()) return std::nullopt;
  layout.ncols_pos = pos;
  const auto ncols = scan_varint(packed, pos);
  if (!ncols || ncols->value > 4096) return std::nullopt;
  pos += ncols->length;
  for (std::uint64_t i = 0; i < ncols->value; ++i) {
    layout.len_pos.push_back(pos);
    const auto len = scan_varint(packed, pos);
    if (!len) return std::nullopt;
    pos += len->length;
    if (packed.size() - pos < len->value) return std::nullopt;
    layout.blob_pos.push_back(pos);
    layout.blob_len.push_back(static_cast<std::size_t>(len->value));
    pos += static_cast<std::size_t>(len->value);
  }
  if (layout.blob_pos.empty()) return std::nullopt;
  return layout;
}

/// Extent of a pipeline header (stage-count varint + per-stage id/param
/// varints) starting at `at`; nullopt when it does not scan.
std::optional<std::size_t> scan_pipeline_header(const Bytes& buf,
                                                std::size_t at) noexcept {
  const auto count = scan_varint(buf, at);
  if (!count || count->value > 64) return std::nullopt;
  std::size_t pos = at + count->length;
  for (std::uint64_t i = 0; i < count->value; ++i) {
    const auto id = scan_varint(buf, pos);
    if (!id) return std::nullopt;
    pos += id->length;
    const auto param = scan_varint(buf, pos);
    if (!param) return std::nullopt;
    pos += param->length;
  }
  return pos - at;  // header length, CRC excluded
}

/// Recompute the 4-byte pipeline-header CRC at `at` after a field edit, so
/// the mutation reaches the stage decoders behind the gate.
void fix_pipeline_crc(Bytes& buf, std::size_t at) {
  const auto header_len = scan_pipeline_header(buf, at);
  if (!header_len || buf.size() - at < *header_len + 4) return;
  std::uint32_t crc = 0xFFFFFFFFu;
  // One-off CRC-32 (IEEE) over the header bytes; mirrors util/crc32 so the
  // qa library keeps its pure-(input, Rng) mutator contract visible here.
  for (std::size_t i = at; i < at + *header_len; ++i) {
    crc ^= buf[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  crc ^= 0xFFFFFFFFu;
  for (unsigned shift = 0; shift < 32; shift += 8) {
    buf[at + *header_len + (shift / 8)] =
        static_cast<std::uint8_t>(crc >> shift);
  }
}

}  // namespace

Bytes mutate_colpipe(const Bytes& packed, Rng& rng) {
  const auto layout = scan_colpipe(packed);
  if (!layout) return mutate(packed, rng);
  Bytes out = packed;
  const std::size_t pick = rng.below(layout->blob_pos.size());
  const std::size_t blob = layout->blob_pos[pick];
  switch (rng.below(8)) {
    case 0:  // mode byte: the other mode, or an unknown one
      out[0] = rng.chance(0.5) ? static_cast<std::uint8_t>(1 - out[0])
                               : static_cast<std::uint8_t>(2 + rng.below(254));
      break;
    case 1:  // preamble-length varint (columnar) / stage count (opaque)
      out = mutate_varint_at(
          out, layout->mode == 0x01 ? layout->preamble_pos : blob, rng);
      break;
    case 2:  // column-count varint (columnar) / stage count (opaque)
      out = mutate_varint_at(
          out, layout->mode == 0x01 ? layout->ncols_pos : blob, rng);
      break;
    case 3:  // a blob-length varint (columnar only)
      if (layout->mode == 0x01) {
        out = mutate_varint_at(out, layout->len_pos[pick], rng);
        break;
      }
      [[fallthrough]];
    case 4: {  // forge a stage id — including ids no decoder knows
      const auto count = scan_varint(out, blob);
      if (!count || count->value == 0) {
        out = mutate_varint_at(out, blob, rng);
        break;
      }
      std::size_t pos = blob + count->length;
      const std::uint64_t target = rng.below(count->value);
      bool edited = false;
      for (std::uint64_t i = 0; i <= target && !edited; ++i) {
        const auto id = scan_varint(out, pos);
        if (!id) break;
        if (i == target) {
          static constexpr std::uint64_t kForgedIds[] = {0,  8,  9,  15,
                                                         20, 77, 200, 1u << 20};
          Bytes forged;
          append_varint(forged, kForgedIds[rng.below(std::size(kForgedIds))]);
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos),
                    out.begin() + static_cast<std::ptrdiff_t>(pos + id->length));
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                     forged.begin(), forged.end());
          edited = true;
          break;
        }
        pos += id->length;
        const auto param = scan_varint(out, pos);
        if (!param) break;
        pos += param->length;
      }
      if (!edited) out = mutate_varint_at(out, blob, rng);
      break;
    }
    case 5: {  // a stage-param varint
      const auto count = scan_varint(out, blob);
      if (count && count->value > 0) {
        const auto id = scan_varint(out, blob + count->length);
        if (id) {
          out = mutate_varint_at(out, blob + count->length + id->length, rng);
          break;
        }
      }
      out = mutate_varint_at(out, blob, rng);
      break;
    }
    case 6: {  // a header-CRC byte
      const auto header_len = scan_pipeline_header(out, blob);
      if (header_len && out.size() - blob >= *header_len + 4) {
        out[blob + *header_len + rng.below(4)] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      } else {
        flip_random_bit(out, rng);
      }
      break;
    }
    case 7:  // a stage-payload byte, past the header
      if (blob < out.size()) {
        out[blob + rng.below(out.size() - blob)] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
  }
  // Half the time, re-seal the pipeline header so the forged fields pass
  // the CRC gate and exercise make_stage / the stage decoders.
  if (rng.chance(0.5) && blob < out.size()) fix_pipeline_crc(out, blob);
  return out;
}

Bytes mutate_container(const Bytes& packed, Rng& rng) {
  if (packed.size() < 4 || !rng.chance(0.5)) return mutate(packed, rng);
  // Every built-in codec keeps its container bookkeeping (sizes, chunk
  // counts, tree descriptions) up front; aim there.
  Bytes out = packed;
  const std::size_t header = std::min<std::size_t>(out.size(), 16);
  const std::size_t at = rng.below(header);
  if (rng.chance(0.5)) {
    out[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
  } else {
    out = mutate_varint_at(out, at, rng);
  }
  return out;
}

int fuzz_iterations(int fallback) noexcept {
  const char* env = std::getenv("ACEX_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed <= 0 || parsed > 1000000000L) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace acex::qa
