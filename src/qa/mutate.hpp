#pragma once

// Mutation engine of the QA subsystem (DESIGN.md §10). Two layers:
//
//   * generic mutators — bit flips, truncation, splices, window overwrite,
//     window duplication. Format-blind; the historical test_fuzz.cpp
//     helper, now the single source of truth every suite shares.
//
//   * structure-aware mutators — parse just enough of a frame v1/v2
//     envelope, a PBIO stream, or a varint to mutate *fields* rather than
//     bytes: swap the version, forge a sequence varint at a width
//     boundary, stretch a size varint, retarget the method id — and,
//     crucially, optionally re-fix the v2 header checksum afterwards so
//     the corruption penetrates past the first integrity gate and lands on
//     the deeper parsing layers that generic bit flips rarely reach.
//
// Every mutator is a pure function of (input, Rng): the same seed replays
// the same mutation stream forever, which is what makes acexfuzz --replay
// bit-exact.

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::qa {

/// Apply one generic mutation: bit flips, truncation, random-byte splice,
/// window overwrite, or window duplication (the latter confuses
/// varint/sentinel scanners). Format-blind.
Bytes mutate(const Bytes& input, Rng& rng);

/// Structure-aware frame mutator. Treats `framed` as a v1/v2 frame and
/// mutates one header field (magic, version, method id, sequence varint,
/// size varint, header checksum, payload byte, CRC trailer); with
/// probability ~1/2 the v2 header checksum is recomputed after the edit so
/// the damage survives the checksum gate. Falls back to mutate() when the
/// buffer is too short to address header fields.
Bytes mutate_frame(const Bytes& framed, Rng& rng);

/// Structure-aware PBIO mutator: targets the stream header (magic,
/// version, byte-order flag), the schema region (format-name length,
/// field-count varint, a field-type tag) or a record body, instead of
/// uniformly random offsets. Falls back to mutate() on tiny buffers.
Bytes mutate_pbio(const Bytes& stream, Bytes (*fallback)(const Bytes&,
                                                         Rng&),
                  Rng& rng);
inline Bytes mutate_pbio(const Bytes& stream, Rng& rng) {
  return mutate_pbio(stream, &mutate, rng);
}

/// Structure-aware colpipe-payload mutator. Treats `packed` as a
/// ColumnarCodec payload (mode byte, columnar preamble, per-column
/// pipeline blobs) and mutates *fields*: the mode byte, the preamble/
/// column-count/blob-length varints, a pipeline header's stage-count or
/// stage-id varint (including forging UNKNOWN stage ids), a header CRC
/// byte, or stage payload bytes. With probability ~1/2 the pipeline
/// header CRC is recomputed after the edit so the damage penetrates the
/// CRC gate and lands on the stage decoders. Falls back to mutate() when
/// the buffer does not scan as a colpipe payload.
Bytes mutate_colpipe(const Bytes& packed, Rng& rng);

/// Codec-container mutator: biases half of all mutations into the first
/// few bytes of `packed` — where every built-in codec keeps its container
/// header (sizes, chunk counts, tree descriptions) — and applies generic
/// mutations elsewhere the rest of the time.
Bytes mutate_container(const Bytes& packed, Rng& rng);

/// Overwrite the LEB128 varint starting at `pos` (if one can be decoded
/// there) with an adversarial value: a width-boundary neighbour (127/128,
/// 16383/16384, ...), UINT64_MAX, zero, or an overlong encoding. Returns
/// the input unchanged when no varint starts at `pos`.
Bytes mutate_varint_at(const Bytes& input, std::size_t pos, Rng& rng);

/// Fuzz depth knob: the ACEX_FUZZ_ITERS environment variable when set to a
/// positive integer, otherwise `fallback`. Lets CI nightlies and local
/// deep runs crank the same suites ctest keeps short.
int fuzz_iterations(int fallback) noexcept;

}  // namespace acex::qa
