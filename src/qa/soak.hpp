#pragma once

// Invariant-soak driver (DESIGN.md §10): runs the full stack — ECho
// channel bridge AND parallel engine, each over its own fault-injecting
// emulated link — for a wall-clock budget or a fixed round count, and
// continuously checks the invariants the subsystem promises:
//
//   * delivery ordering / at-most-once: no event or block is delivered
//     twice, and every delivered payload matches what was published;
//   * gap-window bounds: the missing-sequence sets on both halves never
//     exceed the configured gap window;
//   * observability honesty: the obs counter deltas for the fault
//     injectors equal the injectors' own ground-truth counters;
//   * retransmit-ring convergence: once the links heal, finitely many
//     NACK rounds reach a fixed point where every sequence is either
//     recovered or explicitly abandoned — nothing stays in limbo.
//
// Everything is a pure function of SoakConfig::seed, so a violation
// reproduces by re-running with the same config.

#include <cstdint>
#include <string>
#include <vector>

namespace acex::qa {

struct SoakConfig {
  /// Wall-clock budget in seconds; 0 runs exactly `rounds` rounds instead
  /// (the deterministic mode ctest uses).
  double seconds = 0;
  std::size_t rounds = 20;

  std::uint64_t seed = 1;
  std::size_t workers = 4;           ///< parallel-engine worker threads
  std::size_t events_per_round = 12; ///< pub/sub events published per round
  std::size_t blocks_per_round = 6;  ///< engine blocks streamed per round
  std::size_t block_size = 2048;

  double drop_prob = 0.04;
  double reorder_prob = 0.05;
  double duplicate_prob = 0.03;
  double bit_flip_prob = 0.03;
  double truncate_prob = 0.02;

  std::uint64_t gap_window = 512;
  int nack_retry_cap = 4;

  /// Broker half: fan one block stream out to this many subscribers, each
  /// over its own faulted link with independent NACK recovery. 0 disables
  /// the scenario entirely — the default budgets are unchanged.
  std::size_t broker_subscribers = 0;
  /// With the broker scenario on: every N rounds the oldest subscriber is
  /// unsubscribed (its accounting settled) and a fresh one joins, so the
  /// soak exercises mid-stream churn. 0 keeps the subscriber set fixed.
  std::size_t broker_churn_every = 3;
};

struct SoakReport {
  std::size_t rounds = 0;

  std::uint64_t events_published = 0;
  std::uint64_t events_delivered = 0;   ///< unique events at the consumer
  std::uint64_t events_unrecovered = 0; ///< abandoned after the retry cap
  std::uint64_t event_retransmits = 0;

  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_recovered = 0;   ///< unique blocks, CRC-verified
  std::uint64_t blocks_abandoned = 0;
  std::uint64_t block_retransmits = 0;

  std::uint64_t broker_blocks = 0;       ///< blocks published to the broker
  std::uint64_t broker_recovered = 0;    ///< unique frames, CRC-verified
  std::uint64_t broker_abandoned = 0;    ///< given up (churn or retry cap)
  std::uint64_t broker_retransmits = 0;
  std::uint64_t broker_encodes = 0;      ///< actual codec runs (cache misses)
  std::uint64_t broker_cache_hits = 0;   ///< frames served by shared encodes

  std::uint64_t faults_injected = 0;    ///< non-clean messages, both links

  /// Human-readable invariant violations; empty means the soak passed.
  std::vector<std::string> violations;

  bool ok() const noexcept { return violations.empty(); }
};

/// Run the soak. Never throws for invariant violations (they are collected
/// in the report); throws only on configuration errors.
SoakReport run_soak(const SoakConfig& config);

}  // namespace acex::qa
