#pragma once

// On-disk corpus of crash/interesting fuzz inputs (DESIGN.md §10). A
// corpus entry is the raw input bytes, nothing else — replaying is just
// feeding the file back through the oracle battery, so entries survive
// tool versions and need no sidecar metadata. Filenames are
// content-addressed (<tag>-<crc32>.bin): saving the same bytes twice is a
// no-op, and the name doubles as an integrity check.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace acex::qa {

/// A directory of persisted fuzz inputs. The directory is created lazily
/// on the first save; a Corpus over a non-existent directory lists empty.
class Corpus {
 public:
  explicit Corpus(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// Persist `input` under a content-addressed name; returns the path.
  /// Saving identical bytes under the same tag reuses the existing file.
  std::string save(std::string_view tag, ByteView input);

  /// Every entry path in the corpus directory, sorted (deterministic
  /// regression order).
  std::vector<std::string> files() const;

  /// Read one entry (any file) back; throws IoError when unreadable.
  static Bytes load(const std::string& path);

 private:
  std::string dir_;
};

/// Greedy chunk-removal minimization: repeatedly delete chunks (halving
/// the chunk size down to one byte) while `still_interesting` keeps
/// returning true, yielding a locally minimal input that preserves the
/// property. The predicate is called O(n log n / chunk) times; it must be
/// deterministic for the result to be.
Bytes minimize(Bytes input,
               const std::function<bool(const Bytes&)>& still_interesting);

}  // namespace acex::qa
