#include "qa/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace acex::qa {
namespace fs = std::filesystem;

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw ConfigError("corpus: directory must be non-empty");
}

std::string Corpus::save(std::string_view tag, ByteView input) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw IoError("corpus: cannot create " + dir_ + ": " + ec.message());

  char name[64];
  std::snprintf(name, sizeof name, "-%08x.bin", crc32(input));
  const std::string path =
      (fs::path(dir_) / (std::string(tag) + name)).string();
  if (fs::exists(path)) return path;  // content-addressed: already saved

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("corpus: cannot create " + path);
  out.write(reinterpret_cast<const char*>(input.data()),
            static_cast<std::streamsize>(input.size()));
  if (!out) throw IoError("corpus: failed writing " + path);
  return path;
}

std::vector<std::string> Corpus::files() const {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Bytes Corpus::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("corpus: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(data.data()), size);
    if (!in) throw IoError("corpus: failed reading " + path);
  }
  return data;
}

Bytes minimize(Bytes input,
               const std::function<bool(const Bytes&)>& still_interesting) {
  if (!still_interesting(input)) return input;  // nothing to preserve
  for (std::size_t chunk = std::max<std::size_t>(input.size() / 2, 1);
       chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any && !input.empty()) {
      removed_any = false;
      for (std::size_t at = 0; at < input.size();) {
        const std::size_t len = std::min(chunk, input.size() - at);
        Bytes candidate;
        candidate.reserve(input.size() - len);
        candidate.insert(candidate.end(), input.begin(),
                         input.begin() + static_cast<std::ptrdiff_t>(at));
        candidate.insert(
            candidate.end(),
            input.begin() + static_cast<std::ptrdiff_t>(at + len),
            input.end());
        if (still_interesting(candidate)) {
          input = std::move(candidate);
          removed_any = true;  // retry from the same offset, input shrank
        } else {
          at += len;
        }
      }
    }
    if (chunk == 1) break;
  }
  return input;
}

}  // namespace acex::qa
