#include "qa/oracles.hpp"

#include <vector>

#include "adaptive/pipeline.hpp"
#include "colpipe/columnar_codec.hpp"
#include "compress/frame.hpp"
#include "compress/zlib_codec.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "pbio/pbio.hpp"
#include "echo/event.hpp"
#include "transport/sim_transport.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::qa {
namespace {

std::string method_tag(MethodId id) {
  return std::string(method_name(id));
}

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

adaptive::AdaptiveConfig engine_config(std::size_t workers,
                                       std::size_t block_size) {
  adaptive::AdaptiveConfig config;
  config.async_sampling = false;  // deterministic
  config.decision.block_size = block_size;
  config.decision.sample_size = std::min<std::size_t>(1024, block_size);
  config.worker_threads = workers;
  return config;
}

/// Drain every raw message pending at a SimHalf.
std::vector<Bytes> drain_wire(transport::SimHalf& endpoint) {
  std::vector<Bytes> messages;
  while (auto message = endpoint.receive()) {
    messages.push_back(std::move(*message));
  }
  return messages;
}

}  // namespace

Verdict codec_roundtrip(MethodId id, ByteView data) {
  try {
    const CodecPtr codec = make_codec(id);
    const Bytes packed = codec->compress(data);
    const Bytes restored = codec->decompress(packed);
    if (restored.size() != data.size() ||
        !std::equal(restored.begin(), restored.end(), data.begin())) {
      return Verdict::fail(method_tag(id) + ": round-trip diverged at " +
                           std::to_string(data.size()) + " bytes");
    }
    if (codec->compress(data) != packed) {
      return Verdict::fail(method_tag(id) + ": compress not deterministic");
    }
  } catch (const Error& e) {
    return Verdict::fail(method_tag(id) +
                         ": threw on clean input: " + e.what());
  }
  return Verdict::pass();
}

Verdict decoder_bounds(MethodId id, const Bytes& mutated,
                       std::size_t original_hint) {
  // The decoder bound mirrors test_fuzz's: garbage output is fine (outer
  // CRC layers reject it), unbounded output is the finding. Arithmetic
  // coding's documented expansion guard dominates the constant.
  const std::size_t bound =
      (mutated.size() + original_hint + 64) * 2100;
  try {
    const CodecPtr codec = make_codec(id);
    const Bytes out = codec->decompress(mutated);
    if (out.size() > bound) {
      return Verdict::fail(method_tag(id) + ": unbounded decode, " +
                           std::to_string(out.size()) + " bytes from " +
                           std::to_string(mutated.size()));
    }
  } catch (const Error&) {
    // Detected corruption: the contract we promise.
  }
  return Verdict::pass();
}

Verdict frame_survives(const Bytes& mutated, const CodecRegistry& registry) {
  try {
    const Frame frame = frame_parse(mutated);
    // An accepted header must be internally consistent with the buffer.
    if (frame.version != kFrameVersion && frame.version != kFrameVersionSeq) {
      return Verdict::fail("frame_parse accepted unknown version " +
                           std::to_string(frame.version));
    }
    if (frame.payload.size() + frame_overhead(0) > mutated.size() + 16) {
      return Verdict::fail("frame_parse payload larger than the buffer");
    }
    try {
      const Bytes out = frame_decompress(mutated, registry);
      // frame_decompress verifies the original-data CRC itself; delivering
      // bytes whose CRC disagrees with the header would be a finding.
      if (crc32(out) != frame.crc) {
        return Verdict::fail("frame_decompress delivered CRC-mismatched data");
      }
    } catch (const DecodeError&) {
      // Payload or method damage caught after the header parsed: fine.
    }
  } catch (const DecodeError&) {
    // Rejected up front: the common, correct outcome for mutated frames.
  } catch (const Error& e) {
    return Verdict::fail(std::string("frame path raised non-decode error: ") +
                         e.what());
  }
  return Verdict::pass();
}

Verdict frame_cross_version(MethodId id, ByteView data,
                            std::uint64_t sequence,
                            const CodecRegistry& registry) {
  try {
    const CodecPtr codec_v1 = registry.create(id);
    const CodecPtr codec_v2 = registry.create(id);
    const Bytes v1 = frame_compress(*codec_v1, data);
    const Bytes v2 = frame_compress_seq(*codec_v2, data, sequence);

    const Frame f1 = frame_parse(v1);
    const Frame f2 = frame_parse(v2);
    if (f1.has_sequence || !f2.has_sequence || f2.sequence != sequence) {
      return Verdict::fail(method_tag(id) + ": sequence flags wrong across versions");
    }
    if (f1.method != f2.method || f1.payload != f2.payload ||
        f1.crc != f2.crc) {
      return Verdict::fail(method_tag(id) +
                           ": v1/v2 envelopes carry different codec output");
    }
    const std::size_t expected_extra = varint_size(sequence) + 1;  // + checksum
    if (v2.size() != v1.size() + expected_extra) {
      return Verdict::fail(method_tag(id) + ": v2 overhead is " +
                           std::to_string(v2.size() - v1.size()) +
                           " bytes, expected " +
                           std::to_string(expected_extra));
    }
    const Bytes out1 = frame_decompress(v1, registry);
    const Bytes out2 = frame_decompress(v2, registry);
    if (out1 != out2 || out1.size() != data.size() ||
        !std::equal(out1.begin(), out1.end(), data.begin())) {
      return Verdict::fail(method_tag(id) +
                           ": v1/v2 frames decode to different payloads");
    }
  } catch (const Error& e) {
    return Verdict::fail(method_tag(id) +
                         ": cross-version path threw: " + e.what());
  }
  return Verdict::pass();
}

Verdict pbio_survives(const Bytes& mutated) {
  try {
    const auto records = pbio::decode_stream(mutated);
    if (records.size() > 100000u) {
      return Verdict::fail("pbio decoded " + std::to_string(records.size()) +
                           " records from " + std::to_string(mutated.size()) +
                           " bytes");
    }
  } catch (const Error&) {
  }
  return Verdict::pass();
}

Verdict event_survives(const Bytes& mutated) {
  try {
    (void)echo::deserialize_event(mutated);
  } catch (const Error&) {
  }
  return Verdict::pass();
}

Verdict colpipe_roundtrip(ByteView data) {
  try {
    colpipe::ColumnarCodec codec;
    const Bytes packed = codec.compress(data);
    const Bytes restored = codec.decompress(packed);
    if (restored.size() != data.size() ||
        !std::equal(restored.begin(), restored.end(), data.begin())) {
      return Verdict::fail("colpipe: round-trip diverged at " +
                           std::to_string(data.size()) + " bytes");
    }
    if (codec.compress(data) != packed) {
      return Verdict::fail("colpipe: compress not deterministic");
    }
  } catch (const Error& e) {
    return Verdict::fail(std::string("colpipe: threw on clean input: ") +
                         e.what());
  }
  return Verdict::pass();
}

Verdict colpipe_survives(const Bytes& mutated, std::size_t original_hint) {
  const std::size_t bound = (mutated.size() + original_hint + 64) * 2100;
  try {
    colpipe::ColumnarCodec codec;
    const Bytes out = codec.decompress(mutated);
    if (out.size() > bound) {
      return Verdict::fail("colpipe: unbounded decode, " +
                           std::to_string(out.size()) + " bytes from " +
                           std::to_string(mutated.size()));
    }
  } catch (const Error&) {
    // Detected corruption: the contract we promise.
  }
  return Verdict::pass();
}

Verdict serial_parallel_identity(ByteView data, MethodId method,
                                 std::size_t workers, std::size_t block_size,
                                 std::size_t* blocks_out) {
  // Serial reference wire stream.
  VirtualClock serial_clock;
  netsim::SimLink sf(flat_link(1e8), 1), sr(flat_link(1e9), 2);
  transport::SimDuplex serial_duplex(sf, sr, serial_clock);
  adaptive::AdaptiveSender serial(serial_duplex.a(),
                                  engine_config(1, block_size));
  colpipe::register_columnar(serial.registry());
  serial.send_all_fixed(data, method);
  const std::vector<Bytes> serial_wire = drain_wire(serial_duplex.b());

  // Parallel wire stream over an identical emulated link.
  VirtualClock parallel_clock;
  netsim::SimLink pf(flat_link(1e8), 1), pr(flat_link(1e9), 2);
  transport::SimDuplex parallel_duplex(pf, pr, parallel_clock);
  engine::ParallelSender parallel(parallel_duplex.a(),
                                  engine_config(workers, block_size));
  colpipe::register_columnar(parallel.sender().registry());
  parallel.send_all_fixed(data, method);
  const std::vector<Bytes> parallel_wire = drain_wire(parallel_duplex.b());

  if (blocks_out != nullptr) *blocks_out = serial_wire.size();
  if (serial_wire.size() != parallel_wire.size()) {
    return Verdict::fail(method_tag(method) + ": serial sent " +
                         std::to_string(serial_wire.size()) +
                         " frames, parallel " +
                         std::to_string(parallel_wire.size()));
  }
  CodecRegistry registry = CodecRegistry::with_builtins();
  colpipe::register_columnar(registry);
  Bytes reassembled;
  reassembled.reserve(data.size());
  for (std::size_t i = 0; i < serial_wire.size(); ++i) {
    if (serial_wire[i] != parallel_wire[i]) {
      return Verdict::fail(method_tag(method) + ": frame " +
                           std::to_string(i) + "/" +
                           std::to_string(serial_wire.size()) +
                           " differs between serial and " +
                           std::to_string(workers) + "-worker runs");
    }
    const Bytes block = frame_decompress(parallel_wire[i], registry);
    reassembled.insert(reassembled.end(), block.begin(), block.end());
  }
  if (reassembled.size() != data.size() ||
      !std::equal(reassembled.begin(), reassembled.end(), data.begin())) {
    return Verdict::fail(method_tag(method) +
                         ": reassembled payload diverged from the input");
  }
  return Verdict::pass();
}

Verdict serial_parallel_adaptive(ByteView data, std::size_t workers,
                                 std::size_t block_size) {
  VirtualClock serial_clock;
  netsim::SimLink sf(flat_link(1e8), 1), sr(flat_link(1e9), 2);
  transport::SimDuplex serial_duplex(sf, sr, serial_clock);
  adaptive::AdaptiveSender serial(serial_duplex.a(),
                                  engine_config(1, block_size));
  serial.send_all(data);
  adaptive::AdaptiveReceiver serial_rx(serial_duplex.b());
  const Bytes serial_payload = serial_rx.receive_available();

  VirtualClock parallel_clock;
  netsim::SimLink pf(flat_link(1e8), 1), pr(flat_link(1e9), 2);
  transport::SimDuplex parallel_duplex(pf, pr, parallel_clock);
  engine::ParallelSender parallel(parallel_duplex.a(),
                                  engine_config(workers, block_size));
  parallel.send_all(data);
  adaptive::AdaptiveReceiver parallel_rx(parallel_duplex.b());
  const Bytes parallel_payload = parallel_rx.receive_available();

  if (serial_payload != parallel_payload) {
    return Verdict::fail("adaptive delivered payload diverged at " +
                         std::to_string(workers) + " workers");
  }
  if (serial_payload.size() != data.size() ||
      !std::equal(serial_payload.begin(), serial_payload.end(),
                  data.begin())) {
    return Verdict::fail("adaptive delivered payload is not the input");
  }
  return Verdict::pass();
}

Verdict zlib_agreement(ByteView data) {
  if (!zlib_available() || data.empty()) return Verdict::pass();
  try {
    const CodecPtr zlib = make_codec(MethodId::kZlib);
    const Bytes z = zlib->compress(data);
    if (zlib->decompress(z) != Bytes(data.begin(), data.end())) {
      return Verdict::fail("zlib comparator failed its own round-trip");
    }
    const CodecPtr lz = make_codec(MethodId::kLempelZiv);
    const double rz =
        static_cast<double>(z.size()) / static_cast<double>(data.size());
    const double rlz = static_cast<double>(lz->compress(data).size()) /
                       static_cast<double>(data.size());
    // Loose compressibility agreement: data one LZ-family implementation
    // finds highly compressible, the other must not find incompressible.
    if (rz < 0.4 && rlz > 0.95) {
      return Verdict::fail("zlib ratio " + std::to_string(rz) +
                           " but our LZ ratio " + std::to_string(rlz));
    }
    if (rlz < 0.4 && rz > 0.95) {
      return Verdict::fail("our LZ ratio " + std::to_string(rlz) +
                           " but zlib ratio " + std::to_string(rz));
    }
  } catch (const Error& e) {
    return Verdict::fail(std::string("zlib comparator threw: ") + e.what());
  }
  return Verdict::pass();
}

}  // namespace acex::qa
