#pragma once

// Differential and robustness oracles (DESIGN.md §10). Each oracle states
// one system invariant as a total function: feed it any input — clean or
// mutated — and it returns a Verdict instead of crashing. A clean
// acex::Error from a decoder is SUCCESS (corruption detected); only a
// crash, an unbounded output, or a cross-implementation disagreement is a
// finding.
//
// The headline oracle is serial_parallel_identity: the paper's central
// claim (any codec swaps into the exchange path without changing delivered
// bytes) extended across worker counts — the serial sender and the
// N-worker engine must put byte-identical frames on the wire.

#include <cstdint>
#include <string>

#include "compress/codec.hpp"
#include "compress/registry.hpp"
#include "util/bytes.hpp"

namespace acex::qa {

/// One oracle's outcome. ok==true means the invariant held (including the
/// "decoder cleanly rejected corrupt input" case); detail explains a
/// failure in replay-able terms.
struct Verdict {
  bool ok = true;
  std::string detail;

  explicit operator bool() const noexcept { return ok; }

  static Verdict pass() { return {}; }
  static Verdict fail(std::string why) { return {false, std::move(why)}; }
};

/// compress ∘ decompress == identity, and compress is deterministic.
Verdict codec_roundtrip(MethodId id, ByteView data);

/// decompress(mutated) must throw acex::Error or return bounded output —
/// never crash, hang, or allocate unboundedly. `original_hint` sizes the
/// bound (pass the pre-mutation payload size, or 0 for a generic bound).
Verdict decoder_bounds(MethodId id, const Bytes& mutated,
                       std::size_t original_hint);

/// frame_parse/frame_decompress on arbitrary bytes: throw DecodeError or
/// deliver a CRC-verified payload. An accepted frame whose method id the
/// registry lacks, or whose payload failed the CRC, is a finding.
Verdict frame_survives(const Bytes& mutated, const CodecRegistry& registry);

/// Cross-version differential: the same payload framed v1 and v2 must
/// carry identical codec output and decode to identical bytes, and the v2
/// envelope must cost exactly varint(sequence) + 1 checksum byte more.
Verdict frame_cross_version(MethodId id, ByteView data,
                            std::uint64_t sequence,
                            const CodecRegistry& registry);

/// pbio::decode_stream on arbitrary bytes: throw or return bounded records.
Verdict pbio_survives(const Bytes& mutated);

/// Columnar-pipeline differential oracle: ColumnarCodec must round-trip
/// `data` byte-identically (columnar or opaque path alike) and compress
/// deterministically. The colpipe analogue of codec_roundtrip for an id
/// make_codec() cannot build.
Verdict colpipe_roundtrip(ByteView data);

/// ColumnarCodec::decompress on arbitrary bytes: throw DecodeError (or any
/// acex::Error) or return bounded output — never crash, hang, or allocate
/// unboundedly. Truncations, forged stage ids, and CRC-resealed header
/// damage from mutate_colpipe all land here.
Verdict colpipe_survives(const Bytes& mutated, std::size_t original_hint);

/// echo::deserialize_event / AttributeMap::deserialize on arbitrary bytes.
Verdict event_survives(const Bytes& mutated);

/// Differential engine oracle: stream `data` through the serial
/// AdaptiveSender and through an N-worker ParallelSender, both fixed on
/// `method` over identical emulated links, and require the two wire
/// streams to be byte-identical frame by frame AND to decode back to
/// `data`. Returns the block count through `blocks_out` when non-null.
Verdict serial_parallel_identity(ByteView data, MethodId method,
                                 std::size_t workers, std::size_t block_size,
                                 std::size_t* blocks_out = nullptr);

/// Adaptive-path variant: method choices may legitimately differ between
/// serial and parallel runs (staler feedback), so only the *delivered
/// payload* must be byte-identical, not the wire stream.
Verdict serial_parallel_adaptive(ByteView data, std::size_t workers,
                                 std::size_t block_size);

/// zlib comparator agreement: when the comparator is compiled in, our LZ
/// and zlib must agree on compressibility within loose bounds (data one
/// finds highly compressible the other must not find incompressible), and
/// zlib must round-trip. Trivially passes when zlib is absent.
Verdict zlib_agreement(ByteView data);

}  // namespace acex::qa
