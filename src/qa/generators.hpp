#pragma once

// Deterministic seed inputs for the fuzzing subsystem: every statistical
// regime the paper distinguishes (string repetitions, skewed byte
// distributions, incompressible noise, runs, binary floats) plus the two
// structured encodings the exchange path carries (PBIO record streams and
// framed codec payloads). Everything is a pure function of the seed, so a
// corpus entry or a --replay invocation regenerates bit-exactly.

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace acex::qa {

/// One named deterministic payload regime.
struct SeedInput {
  const char* tag;  ///< stable short name ("text", "runs", ...)
  Bytes data;
};

/// Raw application payloads across regimes, each about `size` bytes.
std::vector<SeedInput> seed_payloads(std::size_t size, std::uint64_t seed);

/// A PBIO stream (format header + records) from the molecular workload.
Bytes seed_pbio_stream(std::uint64_t seed);

/// A serialized echo::Event carrying typed attributes and a payload.
Bytes seed_event_wire(std::uint64_t seed);

}  // namespace acex::qa
