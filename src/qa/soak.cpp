#include "qa/soak.hpp"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "adaptive/pipeline.hpp"
#include "broker/broker.hpp"
#include "echo/bridge.hpp"
#include "echo/channel.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "obs/metrics.hpp"
#include "qa/generators.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace acex::qa {
namespace {

constexpr std::size_t kMaxViolations = 64;

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

/// The obs mirror of FaultCounters, read from the global registry.
struct ObsFault {
  std::uint64_t messages, drops, reorders, duplicates, bit_flips,
      truncations, clean;

  static ObsFault read() {
    auto& r = obs::MetricsRegistry::global();
    return {r.counter("acex.transport.fault.messages").value(),
            r.counter("acex.transport.fault.drops").value(),
            r.counter("acex.transport.fault.reorders").value(),
            r.counter("acex.transport.fault.duplicates").value(),
            r.counter("acex.transport.fault.bit_flips").value(),
            r.counter("acex.transport.fault.truncations").value(),
            r.counter("acex.transport.fault.clean").value()};
  }
};

/// Broker half of the soak: one FanoutBroker fanning every published block
/// out to N subscribers, each over its own faulted SimDuplex with a kNack
/// receiver. Subscribers churn mid-stream; ground truth is the global
/// `crcs` vector, and a subscriber that joined at global index J maps its
/// local sequence s to block J + s (broker sequences start at 0 at
/// subscribe time).
struct BrokerSoak {
  struct Sub {
    std::unique_ptr<netsim::SimLink> forward;
    std::unique_ptr<netsim::SimLink> reverse;
    std::unique_ptr<transport::SimDuplex> duplex;
    std::unique_ptr<transport::FaultInjectingTransport> lossy;
    std::unique_ptr<adaptive::AdaptiveReceiver> rx;
    broker::SubscriberId id = 0;
    std::size_t joined_at = 0;  ///< crcs.size() at subscribe time
    std::map<std::uint64_t, std::uint32_t> recovered;  ///< local seq -> crc
  };

  const SoakConfig& config;
  std::function<void(std::string)> violate;

  VirtualClock clock;  ///< shared by every subscriber link
  broker::FanoutBroker broker;
  std::vector<std::unique_ptr<Sub>> subs;
  std::vector<std::uint32_t> crcs;     ///< ground truth per published block
  std::uint64_t planned_frames = 0;    ///< Σ live subscribers per publish
  std::uint64_t retransmits = 0;
  std::uint64_t settled_recovered = 0;  ///< from churned-out subscribers
  std::uint64_t settled_abandoned = 0;
  transport::FaultCounters faults;  ///< accumulated over ALL injectors
  std::uint64_t next_endpoint = 0;
  Rng rng;

  BrokerSoak(const SoakConfig& cfg, std::function<void(std::string)> v)
      : config(cfg),
        violate(std::move(v)),
        broker(broker_config(cfg)),
        rng(cfg.seed + 71) {
    for (std::size_t i = 0; i < cfg.broker_subscribers; ++i) {
      add_subscriber();
    }
  }

  static broker::BrokerConfig broker_config(const SoakConfig& cfg) {
    broker::BrokerConfig bc;
    bc.worker_threads = cfg.workers == 0 ? 1 : cfg.workers;
    bc.sample_prefix = std::min<std::size_t>(1024, cfg.block_size);
    return bc;
  }

  void add_subscriber() {
    auto sub = std::make_unique<Sub>();
    const std::uint64_t n = ++next_endpoint;
    sub->forward = std::make_unique<netsim::SimLink>(flat_link(2e7),
                                                     config.seed * 131 + n * 2);
    sub->reverse = std::make_unique<netsim::SimLink>(
        flat_link(2e8), config.seed * 131 + n * 2 + 1);
    sub->duplex = std::make_unique<transport::SimDuplex>(*sub->forward,
                                                         *sub->reverse, clock);
    transport::FaultConfig fc;
    fc.drop_prob = config.drop_prob;
    fc.reorder_prob = config.reorder_prob;
    fc.duplicate_prob = config.duplicate_prob;
    fc.bit_flip_prob = config.bit_flip_prob;
    fc.truncate_prob = config.truncate_prob;
    fc.seed =
        config.seed ^ (0x165667B19E3779F9ull + n * 0x27D4EB2F165667C5ull);
    sub->lossy = std::make_unique<transport::FaultInjectingTransport>(
        sub->duplex->a(), fc);

    adaptive::ReceiverConfig rc;
    rc.policy = adaptive::RecoveryPolicy::kNack;
    rc.nack_retry_cap = config.nack_retry_cap;
    rc.gap_window = config.gap_window;
    sub->rx =
        std::make_unique<adaptive::AdaptiveReceiver>(sub->duplex->b(), rc);

    broker::SubscriberConfig sc;
    sc.name = "qa-sub-" + std::to_string(n);
    sc.adaptive.decision.block_size = config.block_size;
    sc.adaptive.decision.sample_size =
        std::min<std::size_t>(1024, config.block_size);
    sc.adaptive.retransmit_capacity = config.blocks_per_round * 6 + 64;
    sc.adaptive.retransmit_max_retries = config.nack_retry_cap;
    sc.egress_capacity = config.blocks_per_round * 6 + 64;
    // kDropOldest: the soak pumps on the publishing thread, so kBlock
    // would self-deadlock on overflow; evictions are NACK-recoverable.
    sc.policy = broker::SlowConsumerPolicy::kDropOldest;
    sub->joined_at = crcs.size();
    sub->id = broker.subscribe(*sub->lossy, sc);
    subs.push_back(std::move(sub));
  }

  void publish(ByteView block) {
    std::size_t live = 0;
    for (const auto& sub : subs) {
      if (!broker.disconnected(sub->id)) ++live;
    }
    planned_frames += live;
    crcs.push_back(crc32(block));
    broker.publish(block);
  }

  void drain(Sub& sub) {
    const adaptive::ReceiveReport r = sub.rx->receive_report();
    if (r.gaps.size() > config.gap_window) {
      violate("broker: " + std::to_string(r.gaps.size()) +
              " gaps exceed the gap window of " +
              std::to_string(config.gap_window));
    }
    for (const auto& frame : r.frames) {
      if (frame.status != adaptive::FrameOutcome::Status::kOk) continue;
      if (!frame.has_sequence) {
        violate("broker: intact frame delivered without a sequence");
        continue;
      }
      const std::uint64_t global = sub.joined_at + frame.sequence;
      if (global >= crcs.size()) {
        violate("broker: delivered sequence " +
                std::to_string(frame.sequence) +
                " maps past the published stream");
        continue;
      }
      const std::uint32_t got = crc32(frame.data);
      if (!sub.recovered.emplace(frame.sequence, got).second) {
        violate("broker: frame " + std::to_string(frame.sequence) +
                " delivered twice to one subscriber");
      } else if (got != crcs[static_cast<std::size_t>(global)]) {
        violate("broker: frame " + std::to_string(frame.sequence) +
                " payload diverged from block " + std::to_string(global));
      }
    }
  }

  void pump_and_drain(Sub& sub) {
    broker.pump(sub.id);
    sub.lossy->flush();
    drain(sub);
  }

  bool nack_cycle(Sub& sub, int extra_passes) {
    for (int pass = 0; pass < config.nack_retry_cap + extra_passes; ++pass) {
      const std::vector<std::uint64_t> nacks = sub.rx->take_nacks();
      if (nacks.empty()) return true;
      retransmits += broker.retransmit(sub.id, nacks);
      pump_and_drain(sub);
    }
    return sub.rx->take_nacks().empty();
  }

  void round(std::size_t round_index) {
    const std::size_t round_bytes =
        config.blocks_per_round * config.block_size;
    auto regimes = seed_payloads(round_bytes, config.seed + 53 * round_index);
    const Bytes& data = regimes[round_index % regimes.size()].data;
    for (std::size_t at = 0; at < data.size(); at += config.block_size) {
      const std::size_t len = std::min(config.block_size, data.size() - at);
      publish(ByteView(data.data() + at, len));
    }
    for (auto& sub : subs) {
      pump_and_drain(*sub);
      nack_cycle(*sub, 2);
      if (broker.disconnected(sub->id)) {
        violate("broker: subscriber " + std::to_string(sub->id) +
                " disconnected unexpectedly");
      }
    }
  }

  /// Fault-counter identity for one injector, folded into the running sum
  /// (the obs mirror check in run_soak needs the broker's share too).
  void accumulate_faults(const Sub& sub) {
    const transport::FaultCounters& c = sub.lossy->counters();
    if (c.messages != c.drops + c.reorders + c.duplicates + c.bit_flips +
                          c.truncations + c.clean) {
      violate("broker: fault counter identity broken");
    }
    faults.messages += c.messages;
    faults.drops += c.drops;
    faults.reorders += c.reorders;
    faults.duplicates += c.duplicates;
    faults.bit_flips += c.bit_flips;
    faults.truncations += c.truncations;
    faults.clean += c.clean;
  }

  /// Settle the oldest subscriber's accounting and replace it with a fresh
  /// endpoint: the churn the broker promises to survive mid-stream.
  void maybe_churn(std::size_t completed_rounds) {
    if (config.broker_churn_every == 0 || subs.empty()) return;
    if (completed_rounds % config.broker_churn_every != 0) return;
    Sub& leaving = *subs.front();
    nack_cycle(leaving, 2);
    const std::uint64_t published_while = crcs.size() - leaving.joined_at;
    if (leaving.recovered.size() > published_while) {
      violate("broker: subscriber recovered more frames than were published "
              "while it was subscribed");
      settled_recovered += published_while;
    } else {
      settled_recovered += leaving.recovered.size();
      settled_abandoned += published_while - leaving.recovered.size();
    }
    accumulate_faults(leaving);
    broker.unsubscribe(leaving.id);
    subs.erase(subs.begin());
    add_subscriber();
  }

  /// Heal every link, push a sentinel block past any tail drops, replay to
  /// a fixed point, then check the accounting and shared-encode identities.
  void finish(SoakReport& report) {
    transport::FaultConfig clean;
    for (auto& sub : subs) sub->lossy->set_config(clean);
    if (!subs.empty()) {
      const Bytes sentinel = rng.bytes(config.block_size);
      publish(sentinel);
      for (auto& sub : subs) {
        pump_and_drain(*sub);
        if (!nack_cycle(*sub, 4)) {
          violate("broker: NACK traffic did not converge on a healed link");
        }
      }
    }

    std::uint64_t live_recovered = 0;
    std::uint64_t live_abandoned = 0;
    for (auto& sub : subs) {
      const std::uint64_t published_while = crcs.size() - sub->joined_at;
      const std::size_t gaps = sub->rx->receive_report().gaps.size();
      if (sub->recovered.size() + gaps != published_while) {
        violate("broker: accounting leak: " +
                std::to_string(sub->recovered.size()) + " recovered + " +
                std::to_string(gaps) + " gaps != " +
                std::to_string(published_while) +
                " published while subscribed");
      }
      live_recovered += sub->recovered.size();
      live_abandoned += gaps;
      accumulate_faults(*sub);
    }

    report.broker_blocks = crcs.size();
    report.broker_recovered = settled_recovered + live_recovered;
    report.broker_abandoned = settled_abandoned + live_abandoned;
    report.broker_retransmits = retransmits;
    const broker::BrokerStats bs = broker.stats();
    report.broker_encodes = bs.encodes;
    report.broker_cache_hits = bs.cache_hits;
    if (bs.blocks != crcs.size()) {
      violate("broker: publish count diverges from ground truth");
    }
    if (bs.cache_misses != bs.encodes) {
      violate("broker: encode-cache misses diverge from actual codec runs");
    }
    if (bs.cache_hits + bs.cache_misses != planned_frames) {
      violate("broker: cache hits + misses != frames planned "
              "(shared-encode accounting leak)");
    }
  }
};

}  // namespace

SoakReport run_soak(const SoakConfig& config) {
  if (config.block_size == 0) {
    throw ConfigError("soak: block_size must be positive");
  }
  if (config.events_per_round == 0 && config.blocks_per_round == 0) {
    throw ConfigError("soak: nothing to soak (no events, no blocks)");
  }
  if (config.seconds <= 0 && config.rounds == 0) {
    throw ConfigError("soak: either seconds or rounds must be positive");
  }

  SoakReport report;
  auto violate = [&report](std::string why) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(std::move(why));
    }
  };

  const ObsFault obs_before = ObsFault::read();

  // ---- pub/sub half: ECho channels bridged over a faulted link ---------
  VirtualClock pub_clock;
  netsim::SimLink pub_fwd(flat_link(2e7), config.seed * 4 + 1);
  netsim::SimLink pub_rev(flat_link(2e8), config.seed * 4 + 2);
  transport::SimDuplex pub_duplex(pub_fwd, pub_rev, pub_clock);
  transport::FaultConfig pub_faults;
  pub_faults.drop_prob = config.drop_prob;
  pub_faults.reorder_prob = config.reorder_prob;
  pub_faults.duplicate_prob = config.duplicate_prob;
  pub_faults.bit_flip_prob = config.bit_flip_prob;
  pub_faults.truncate_prob = config.truncate_prob;
  pub_faults.seed = config.seed ^ 0x9E3779B97F4A7C15ull;
  transport::FaultInjectingTransport pub_lossy(pub_duplex.a(), pub_faults);

  echo::EventChannel producer("qa.soak.producer");
  echo::EventChannel consumer("qa.soak.consumer");
  const std::size_t ring_capacity = config.events_per_round * 4 + 64;
  echo::ChannelSender bridge_tx(producer, pub_lossy, ring_capacity,
                                config.nack_retry_cap);
  echo::ChannelReceiver bridge_rx(consumer, pub_duplex.b(),
                                  config.nack_retry_cap, config.gap_window);

  // Published ground truth, indexed by the app-level sequence (== the
  // bridge sequence: this producer channel carries soak events only).
  std::vector<std::uint32_t> published_crc;
  std::map<std::uint64_t, std::size_t> delivered;  // seq -> delivery count
  consumer.subscribe([&](const echo::Event& event) {
    const auto seq = event.attributes.get_int("qa.seq");
    if (!seq || *seq < 0 ||
        static_cast<std::size_t>(*seq) >= published_crc.size()) {
      violate("pubsub: delivered event carries an unknown qa.seq attribute");
      return;
    }
    const auto count = ++delivered[static_cast<std::uint64_t>(*seq)];
    if (count > 1) {
      violate("pubsub: event " + std::to_string(*seq) + " delivered " +
              std::to_string(count) + " times");
    } else if (crc32(event.payload) !=
               published_crc[static_cast<std::size_t>(*seq)]) {
      violate("pubsub: event " + std::to_string(*seq) +
              " payload diverged from what was published");
    }
  });

  // ---- engine half: parallel sender + NACK receiver over a faulted link
  VirtualClock eng_clock;
  netsim::SimLink eng_fwd(flat_link(5e7), config.seed * 4 + 3);
  netsim::SimLink eng_rev(flat_link(5e8), config.seed * 4 + 4);
  transport::SimDuplex eng_duplex(eng_fwd, eng_rev, eng_clock);
  transport::FaultConfig eng_faults = pub_faults;
  eng_faults.seed = config.seed ^ 0xC2B2AE3D27D4EB4Full;
  transport::FaultInjectingTransport eng_lossy(eng_duplex.a(), eng_faults);

  adaptive::AdaptiveConfig eng_config;
  eng_config.async_sampling = false;
  eng_config.decision.block_size = config.block_size;
  eng_config.decision.sample_size =
      std::min<std::size_t>(1024, config.block_size);
  eng_config.worker_threads = config.workers;
  eng_config.retransmit_capacity = config.blocks_per_round * 6 + 64;
  eng_config.retransmit_max_retries = config.nack_retry_cap;
  engine::ParallelSender eng_tx(eng_lossy, eng_config);

  adaptive::ReceiverConfig rx_config;
  rx_config.policy = adaptive::RecoveryPolicy::kNack;
  rx_config.nack_retry_cap = config.nack_retry_cap;
  rx_config.gap_window = config.gap_window;
  adaptive::AdaptiveReceiver eng_rx(eng_duplex.b(), rx_config);

  std::vector<std::uint32_t> block_crc;  // ground truth, indexed by sequence
  std::map<std::uint64_t, std::uint32_t> recovered;
  auto absorb = [&](const adaptive::ReceiveReport& drain) {
    if (drain.frames_ok + drain.frames_corrupt + drain.frames_duplicate !=
        drain.frames.size()) {
      violate("engine: drain outcome counts do not sum to the frame count");
    }
    if (drain.gaps.size() > config.gap_window) {
      violate("engine: " + std::to_string(drain.gaps.size()) +
              " gaps exceed the gap window of " +
              std::to_string(config.gap_window));
    }
    for (const auto& frame : drain.frames) {
      if (frame.status != adaptive::FrameOutcome::Status::kOk) continue;
      if (!frame.has_sequence) {
        violate("engine: intact frame delivered without a sequence");
        continue;
      }
      if (frame.sequence >= block_crc.size()) {
        violate("engine: delivered sequence " +
                std::to_string(frame.sequence) + " was never sent");
        continue;
      }
      const std::uint32_t got = crc32(frame.data);
      if (!recovered.emplace(frame.sequence, got).second) {
        violate("engine: block " + std::to_string(frame.sequence) +
                " delivered twice");
      } else if (got != block_crc[frame.sequence]) {
        violate("engine: block " + std::to_string(frame.sequence) +
                " payload diverged from what was sent");
      }
    }
  };

  auto pubsub_nack_cycle = [&](int extra_passes) {
    for (int pass = 0; pass < config.nack_retry_cap + extra_passes; ++pass) {
      if (bridge_rx.signal_nacks() == 0) return true;
      bridge_tx.pump_control();
      pub_lossy.flush();
      bridge_rx.poll();
    }
    return bridge_rx.signal_nacks() == 0;
  };
  auto engine_nack_cycle = [&](int extra_passes) {
    for (int pass = 0; pass < config.nack_retry_cap + extra_passes; ++pass) {
      const std::vector<std::uint64_t> nacks = eng_rx.take_nacks();
      if (nacks.empty()) return true;
      report.block_retransmits += eng_tx.sender().retransmit(nacks);
      eng_lossy.flush();
      absorb(eng_rx.receive_report());
    }
    return eng_rx.take_nacks().empty();
  };

  // ---- broker half (optional): fan-out with per-subscriber recovery ----
  std::unique_ptr<BrokerSoak> brk;
  if (config.broker_subscribers > 0) {
    brk = std::make_unique<BrokerSoak>(config, violate);
  }

  Rng event_rng(config.seed + 17);

  // ---- the soak loop ---------------------------------------------------
  const auto started = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (report.violations.size() >= kMaxViolations) return false;
    if (config.seconds <= 0) return report.rounds < config.rounds;
    if (report.rounds == 0) return true;  // always run at least one round
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return elapsed < config.seconds;
  };

  while (budget_left()) {
    // Pub/sub round: publish, drain, NACK-replay while still faulty.
    for (std::size_t i = 0; i < config.events_per_round; ++i) {
      Bytes payload = event_rng.bytes(64 + event_rng.below(961));
      echo::Event event(std::move(payload));
      event.attributes.set_int(
          "qa.seq", static_cast<std::int64_t>(published_crc.size()));
      published_crc.push_back(crc32(event.payload));
      producer.submit(std::move(event));
    }
    pub_lossy.flush();
    bridge_rx.poll();
    pubsub_nack_cycle(2);

    if (const auto missing = bridge_rx.missing();
        missing.size() > config.gap_window) {
      violate("pubsub: " + std::to_string(missing.size()) +
              " missing sequences exceed the gap window");
    } else {
      for (const std::uint64_t seq : missing) {
        if (seq >= published_crc.size()) {
          violate("pubsub: missing sequence " + std::to_string(seq) +
                  " was never published");
          break;
        }
      }
    }

    // Engine round: stream one workload regime, drain, NACK-replay.
    if (config.blocks_per_round > 0) {
      const std::size_t round_bytes =
          config.blocks_per_round * config.block_size;
      auto regimes =
          seed_payloads(round_bytes, config.seed + 31 * report.rounds);
      const Bytes& data = regimes[report.rounds % regimes.size()].data;
      std::size_t chunks = 0;
      for (std::size_t at = 0; at < data.size(); at += config.block_size) {
        const std::size_t len =
            std::min(config.block_size, data.size() - at);
        block_crc.push_back(crc32(ByteView(data.data() + at, len)));
        ++chunks;
      }
      const adaptive::StreamReport sent = eng_tx.send_all(data);
      if (sent.blocks.size() != chunks) {
        violate("engine: sender split " + std::to_string(sent.blocks.size()) +
                " blocks where " + std::to_string(chunks) + " were expected");
      }
      eng_lossy.flush();
      absorb(eng_rx.receive_report());
      engine_nack_cycle(2);
    }

    // Broker round: publish the fan-out stream, recover per subscriber,
    // then churn the subscriber set on its cadence.
    if (brk) {
      brk->round(report.rounds);
      brk->maybe_churn(report.rounds + 1);
    }

    ++report.rounds;
  }

  // ---- convergence: heal both links, flush the tails, replay to a fixed
  // point where every sequence is recovered or explicitly abandoned ------
  transport::FaultConfig clean;
  pub_lossy.set_config(clean);
  eng_lossy.set_config(clean);

  {  // Sentinel event: tail drops only become visible gaps once a later
     // sequence arrives, so push one clean event past them.
    Bytes payload = event_rng.bytes(64);
    echo::Event event(std::move(payload));
    event.attributes.set_int("qa.seq",
                             static_cast<std::int64_t>(published_crc.size()));
    published_crc.push_back(crc32(event.payload));
    producer.submit(std::move(event));
    pub_lossy.flush();
    bridge_rx.poll();
    if (!pubsub_nack_cycle(4)) {
      violate("pubsub: NACK traffic did not converge on a healed link");
    }
  }
  if (block_crc.size() > 0) {  // Sentinel block, same reason.
    const Bytes sentinel = event_rng.bytes(config.block_size);
    block_crc.push_back(crc32(sentinel));
    eng_tx.send_all(sentinel);
    eng_lossy.flush();
    absorb(eng_rx.receive_report());
    if (!engine_nack_cycle(4)) {
      violate("engine: retransmit ring did not converge on a healed link");
    }
  }
  if (brk) brk->finish(report);

  // ---- final accounting ------------------------------------------------
  report.events_published = published_crc.size();
  report.events_delivered = delivered.size();
  // Unrecovered = explicitly abandoned (retry cap) + still-visible gaps
  // after convergence (there should be none of the latter on a healed
  // link; the accounting identity below catches any leak either way).
  report.events_unrecovered =
      bridge_rx.events_abandoned() + bridge_rx.missing().size();
  report.event_retransmits = bridge_tx.events_retransmitted();
  if (report.events_delivered + report.events_unrecovered !=
      report.events_published) {
    violate("pubsub: accounting leak: " +
            std::to_string(report.events_delivered) + " delivered + " +
            std::to_string(report.events_unrecovered) + " abandoned != " +
            std::to_string(report.events_published) + " published");
  }

  report.blocks_sent = block_crc.size();
  report.blocks_recovered = recovered.size();
  const adaptive::ReceiveReport final_drain = eng_rx.receive_report();
  report.blocks_abandoned = final_drain.gaps.size();
  if (report.blocks_recovered + report.blocks_abandoned !=
      report.blocks_sent) {
    violate("engine: accounting leak: " +
            std::to_string(report.blocks_recovered) + " recovered + " +
            std::to_string(report.blocks_abandoned) + " abandoned != " +
            std::to_string(report.blocks_sent) + " sent");
  }
  if (eng_rx.nacks_abandoned() < report.blocks_abandoned) {
    violate("engine: a gap survives that never exhausted its retry cap");
  }

  // Fault-counter identity on both injectors, and the obs mirror.
  const auto check_identity = [&](const char* tag,
                                  const transport::FaultCounters& c) {
    if (c.messages != c.drops + c.reorders + c.duplicates + c.bit_flips +
                          c.truncations + c.clean) {
      violate(std::string(tag) + ": fault counter identity broken");
    }
    report.faults_injected +=
        c.drops + c.reorders + c.duplicates + c.bit_flips + c.truncations;
  };
  const transport::FaultCounters& pc = pub_lossy.counters();
  const transport::FaultCounters& ec = eng_lossy.counters();
  check_identity("pubsub", pc);
  check_identity("engine", ec);
  // The broker half checked each injector's identity as it settled; its
  // running sum joins the obs-mirror ground truth below.
  const transport::FaultCounters bc =
      brk ? brk->faults : transport::FaultCounters{};
  report.faults_injected +=
      bc.drops + bc.reorders + bc.duplicates + bc.bit_flips + bc.truncations;

  const ObsFault after = ObsFault::read();
  const auto obs_mirror = [&](const char* field, std::uint64_t before_v,
                              std::uint64_t after_v, std::uint64_t truth) {
    if (after_v - before_v != truth) {
      violate(std::string("obs: fault.") + field + " delta " +
              std::to_string(after_v - before_v) +
              " != injector ground truth " + std::to_string(truth));
    }
  };
  obs_mirror("messages", obs_before.messages, after.messages,
             pc.messages + ec.messages + bc.messages);
  obs_mirror("drops", obs_before.drops, after.drops,
             pc.drops + ec.drops + bc.drops);
  obs_mirror("reorders", obs_before.reorders, after.reorders,
             pc.reorders + ec.reorders + bc.reorders);
  obs_mirror("duplicates", obs_before.duplicates, after.duplicates,
             pc.duplicates + ec.duplicates + bc.duplicates);
  obs_mirror("bit_flips", obs_before.bit_flips, after.bit_flips,
             pc.bit_flips + ec.bit_flips + bc.bit_flips);
  obs_mirror("truncations", obs_before.truncations, after.truncations,
             pc.truncations + ec.truncations + bc.truncations);
  obs_mirror("clean", obs_before.clean, after.clean,
             pc.clean + ec.clean + bc.clean);

  return report;
}

}  // namespace acex::qa
