#include "qa/chaos.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "adaptive/pipeline.hpp"
#include "netsim/link.hpp"
#include "obs/metrics.hpp"
#include "qa/generators.hpp"
#include "session/client.hpp"
#include "session/manager.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace acex::qa {
namespace {

constexpr std::size_t kMaxViolations = 64;

/// Virtual seconds per chaos round; every lifecycle constant below is a
/// multiple of this so the state machine's timing is round-countable.
constexpr Seconds kRoundDt = 0.25;

netsim::LinkParams chaos_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

/// The obs mirror of SessionCounters, read from the global registry.
struct ObsSession {
  std::uint64_t connects, refused, heartbeats, suspects, parks, resumes,
      restarts, expired, shed;

  static ObsSession read() {
    auto& r = obs::MetricsRegistry::global();
    return {r.counter("acex.session.connects").value(),
            r.counter("acex.session.refused").value(),
            r.counter("acex.session.heartbeats").value(),
            r.counter("acex.session.suspects").value(),
            r.counter("acex.session.parks").value(),
            r.counter("acex.session.resumes").value(),
            r.counter("acex.session.restarts").value(),
            r.counter("acex.session.expired").value(),
            r.counter("acex.session.shed").value()};
  }
};

struct ChaosSoak {
  /// One network endpoint incarnation + the durable client riding it. The
  /// endpoint (links, duplex, injector) is replaced wholesale at every
  /// reconnect — a resumed session runs on a genuinely new "socket" — but
  /// the SessionClient and its receiver cursor persist across kills.
  struct Peer {
    std::unique_ptr<netsim::SimLink> forward;
    std::unique_ptr<netsim::SimLink> reverse;
    std::unique_ptr<transport::SimDuplex> duplex;
    std::unique_ptr<transport::FaultInjectingTransport> lossy;
    std::unique_ptr<session::SessionClient> client;
    session::SessionId sid = 0;
    std::size_t joined_at = 0;  ///< crcs.size() at connect of this session
    std::map<std::uint64_t, std::uint32_t> recovered;  ///< local seq -> crc
    bool alive = true;
    std::size_t kills = 0;
    std::size_t revive_round = 0;
    bool overstay = false;  ///< deliberately sleeps past the park grace
  };

  const ChaosConfig& config;
  ChaosReport& report;

  VirtualClock clock;
  session::SessionManager manager;
  std::vector<std::unique_ptr<Peer>> peers;
  std::vector<std::uint32_t> crcs;  ///< ground truth per published block
  std::uint64_t settled_delivered = 0;  ///< from pre-restart incarnations
  std::size_t rounds_cap;
  std::uint64_t next_endpoint = 0;
  Rng rng;

  ChaosSoak(const ChaosConfig& cfg, ChaosReport& rep)
      : config(cfg),
        report(rep),
        manager(clock),
        rounds_cap(cfg.rounds * 4),
        rng(cfg.seed + 97) {
    for (std::size_t i = 0; i < cfg.sessions; ++i) {
      auto peer = std::make_unique<Peer>();
      fresh_endpoint(*peer);
      connect(*peer);
      peers.push_back(std::move(peer));
    }
  }

  void violate(std::string why) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(std::move(why));
    }
  }

  /// Rebuild the peer's network endpoint: new links, new duplex, a new
  /// fault injector with its own deterministic seed. The old endpoint (if
  /// any) is destroyed only after nothing references it — the caller must
  /// rebind broker and receiver first, which resume()/connect() both do
  /// before this incarnation's unique_ptrs are overwritten.
  void fresh_endpoint(Peer& peer) {
    const std::uint64_t n = ++next_endpoint;
    peer.forward = std::make_unique<netsim::SimLink>(
        chaos_link(2e7), config.seed * 131 + n * 2);
    peer.reverse = std::make_unique<netsim::SimLink>(
        chaos_link(2e8), config.seed * 131 + n * 2 + 1);
    peer.duplex = std::make_unique<transport::SimDuplex>(*peer.forward,
                                                         *peer.reverse, clock);
    transport::FaultConfig fc;
    fc.drop_prob = config.drop_prob;
    fc.reorder_prob = config.reorder_prob;
    fc.duplicate_prob = config.duplicate_prob;
    fc.bit_flip_prob = config.bit_flip_prob;
    fc.truncate_prob = config.truncate_prob;
    fc.seed =
        config.seed ^ (0x165667B19E3779F9ull + n * 0x27D4EB2F165667C5ull);
    peer.lossy = std::make_unique<transport::FaultInjectingTransport>(
        peer.duplex->a(), fc);
  }

  session::SessionConfig session_config() const {
    session::SessionConfig sc;
    sc.liveness_timeout = 2 * kRoundDt;
    sc.suspect_grace = kRoundDt;
    sc.park_grace = 4 * kRoundDt;
    sc.heartbeat_interval = kRoundDt;
    sc.subscriber.adaptive.decision.block_size = config.block_size;
    sc.subscriber.adaptive.decision.sample_size =
        std::min<std::size_t>(1024, config.block_size);
    // The ring must cover every block a within-grace resume could need, or
    // resume fidelity degenerates into restart (a different code path).
    const std::size_t span = rounds_cap * config.blocks_per_round + 64;
    sc.subscriber.adaptive.retransmit_capacity = span;
    sc.subscriber.adaptive.retransmit_max_retries = config.nack_retry_cap + 4;
    sc.subscriber.egress_capacity = span;
    // kDropOldest: the chaos harness pumps on the publishing thread, so
    // kBlock would self-deadlock on overflow (same reasoning as BrokerSoak).
    sc.subscriber.policy = broker::SlowConsumerPolicy::kDropOldest;
    return sc;
  }

  void connect(Peer& peer) {
    session::SessionConfig sc = session_config();
    const session::ConnectResult cr = manager.connect(*peer.lossy, sc);
    if (!cr.accepted) {
      violate("chaos: connect refused outside overload: " + cr.reason);
      return;
    }
    peer.sid = cr.session_id;
    peer.joined_at = crcs.size();
    peer.recovered.clear();
    session::ClientConfig cc;
    cc.receiver.nack_retry_cap = config.nack_retry_cap;
    cc.receiver.gap_window = config.gap_window;
    peer.client = std::make_unique<session::SessionClient>(
        clock, cc, config.seed * 977 + cr.session_id);
    peer.client->on_connected(cr.session_id, cr.token, peer.duplex->b(),
                              cr.heartbeat_interval);
    peer.alive = true;
  }

  void publish_round(std::size_t round_index) {
    const std::size_t round_bytes =
        config.blocks_per_round * config.block_size;
    auto regimes = seed_payloads(round_bytes, config.seed + 53 * round_index);
    const Bytes& data = regimes[round_index % regimes.size()].data;
    for (std::size_t at = 0; at < data.size(); at += config.block_size) {
      const std::size_t len = std::min(config.block_size, data.size() - at);
      crcs.push_back(crc32(ByteView(data.data() + at, len)));
      manager.publish(ByteView(data.data() + at, len));
    }
  }

  void drain(Peer& peer) {
    adaptive::AdaptiveReceiver* rx = peer.client->receiver();
    const adaptive::ReceiveReport r = rx->receive_report();
    for (const auto& frame : r.frames) {
      if (frame.status != adaptive::FrameOutcome::Status::kOk) continue;
      if (!frame.has_sequence) {
        violate("chaos: intact frame delivered without a sequence");
        continue;
      }
      const std::uint64_t global = peer.joined_at + frame.sequence;
      if (global >= crcs.size()) {
        violate("chaos: delivered sequence " +
                std::to_string(frame.sequence) +
                " maps past the published stream");
        continue;
      }
      const std::uint32_t got = crc32(frame.data);
      if (!peer.recovered.emplace(frame.sequence, got).second) {
        violate("chaos: frame " + std::to_string(frame.sequence) +
                " delivered twice across a resume (duplication)");
      } else if (got != crcs[static_cast<std::size_t>(global)]) {
        violate("chaos: frame " + std::to_string(frame.sequence) +
                " diverged from block " + std::to_string(global) +
                " after a resume (byte-identity broken)");
      }
    }
  }

  void pump_and_drain(Peer& peer) {
    manager.pump(peer.sid);
    peer.lossy->flush();
    drain(peer);
  }

  bool nack_cycle(Peer& peer, int extra_passes) {
    for (int pass = 0; pass < config.nack_retry_cap + extra_passes; ++pass) {
      const std::vector<std::uint64_t> nacks =
          peer.client->receiver()->take_nacks();
      if (nacks.empty()) return true;
      manager.retransmit(peer.sid, nacks);
      pump_and_drain(peer);
    }
    return peer.client->receiver()->take_nacks().empty();
  }

  void kill(Peer& peer, std::size_t round) {
    peer.alive = false;
    peer.client->on_dropped();
    ++peer.kills;
    ++report.kills;
    peer.overstay = rng.chance(config.expire_prob);
    // A peer that overstays sleeps past liveness + suspect + park grace
    // (7 rounds of silence) so the manager must expire it; a normal crash
    // comes back inside the window.
    const std::size_t away =
        peer.overstay ? 9 : 1 + static_cast<std::size_t>(rng.below(3));
    peer.revive_round = round + away;
  }

  /// Dead peer's half-open socket: whatever is in flight is lost.
  void drop_in_flight(Peer& peer) {
    while (peer.duplex->b().receive()) {
    }
  }

  void revive(Peer& peer) {
    // Pace the attempt through the backoff policy like a real client; the
    // delay itself is virtual so we just consume it.
    if (auto delay = peer.client->next_retry_delay()) {
      clock.advance(std::min<Seconds>(*delay, kRoundDt / 8));
    }
    const std::uint64_t resume_from = peer.client->resume_from();
    // Tear the dead socket down before standing up its replacement (the
    // injector and duplex reference the links, so order matters). Nothing
    // touches the broker-side dangling pointer until resume() swaps it:
    // the session is parked (or parks first thing inside resume) and a
    // parked subscriber's pump bails before dereferencing its transport.
    peer.lossy.reset();
    peer.duplex.reset();
    peer.forward.reset();
    peer.reverse.reset();
    fresh_endpoint(peer);
    const session::ResumeResult rr = manager.resume(
        peer.sid, peer.client->token(), resume_from, *peer.lossy);
    switch (rr.status) {
      case session::ResumeResult::Status::kResumed:
        ++report.resumes;
        peer.client->on_resumed(peer.duplex->b(), peer.client->token());
        peer.alive = true;
        pump_and_drain(peer);
        nack_cycle(peer, 2);
        break;
      case session::ResumeResult::Status::kRestart:
        // Expired (or gap evicted): the old incarnation's deliveries are
        // settled and the client reconnects as a brand-new session.
        ++report.restarts;
        settled_delivered += peer.recovered.size();
        connect(peer);
        break;
      case session::ResumeResult::Status::kRejected:
        violate("chaos: resume rejected for a legitimate session: " +
                rr.reason);
        peer.alive = true;  // avoid wedging the harness on a violation
        break;
    }
  }

  bool all_done() const {
    for (const auto& peer : peers) {
      if (!peer->alive || peer->kills < config.min_kills) return false;
    }
    return true;
  }

  void round(std::size_t round_index) {
    for (auto& peer : peers) {
      if (!peer->alive) continue;
      const bool forced =
          peer->kills < config.min_kills &&
          round_index >= (peer->kills + 1) * config.rounds /
                             (config.min_kills + 1);
      if (forced || rng.chance(config.extra_kill_prob)) {
        kill(*peer, round_index);
      }
    }

    publish_round(round_index);

    for (auto& peer : peers) {
      if (!peer->client) continue;  // connect refused (already a violation)
      if (peer->alive) {
        const Bytes reply = manager.handle_control(peer->client->make_heartbeat());
        const session::ControlMsg ack = session::control_decode(reply);
        if (ack.kind != session::ControlKind::kHeartbeat) {
          violate("chaos: live heartbeat not acknowledged: " + ack.reason);
        }
        ++report.heartbeats;
        pump_and_drain(*peer);
        nack_cycle(*peer, 2);
      } else {
        drop_in_flight(*peer);
        if (round_index >= peer->revive_round) revive(*peer);
      }
    }

    clock.advance(kRoundDt);
    manager.tick();
    ++report.rounds;
  }

  /// Heal the links, revive stragglers, push a sentinel past tail drops,
  /// replay to a fixed point, then check the resume-fidelity identities.
  void finish() {
    for (std::size_t spin = 0; spin < rounds_cap; ++spin) {
      bool any_dead = false;
      for (auto& peer : peers) {
        if (!peer->alive) {
          any_dead = true;
          drop_in_flight(*peer);
          revive(*peer);
        }
      }
      if (!any_dead) break;
      clock.advance(kRoundDt);
      manager.tick();
    }

    transport::FaultConfig clean;
    for (auto& peer : peers) peer->lossy->set_config(clean);
    const Bytes sentinel = rng.bytes(config.block_size);
    crcs.push_back(crc32(sentinel));
    manager.publish(sentinel);

    for (auto& peer : peers) {
      if (!peer->client) continue;  // connect refused (already a violation)
      // Keep heartbeating so the settle passes below never race a park.
      manager.handle_control(peer->client->make_heartbeat());
      ++report.heartbeats;
      pump_and_drain(*peer);
      if (!nack_cycle(*peer, 4)) {
        violate("chaos: NACK traffic did not converge on a healed link");
      }
      const std::uint64_t published_while = crcs.size() - peer->joined_at;
      const std::size_t gaps =
          peer->client->receiver()->receive_report().gaps.size();
      if (peer->recovered.size() + gaps != published_while) {
        violate("chaos: accounting leak: " +
                std::to_string(peer->recovered.size()) + " recovered + " +
                std::to_string(gaps) + " gaps != " +
                std::to_string(published_while) + " published while joined");
      }
      if (gaps != 0) {
        violate("chaos: session ended with " + std::to_string(gaps) +
                " permanent gaps — resume fidelity broken");
      }
      report.delivered += peer->recovered.size();
      if (peer->kills < config.min_kills) {
        violate("chaos: peer only survived " + std::to_string(peer->kills) +
                " kills; the schedule must reach " +
                std::to_string(config.min_kills));
      }
    }
    report.delivered += settled_delivered;
    report.published = crcs.size();

    const session::SessionCounters sc = manager.counters();
    report.expired = sc.expired;
    if (sc.resumes != report.resumes) {
      violate("chaos: manager resume count diverges from harness truth");
    }
    if (sc.restarts != report.restarts) {
      violate("chaos: manager restart count diverges from harness truth");
    }
    if (sc.refused != 0) {
      violate("chaos: sessions refused without overload pressure");
    }
    for (const auto& peer : peers) {
      if (manager.state(peer->sid) != session::SessionState::kLive &&
          manager.state(peer->sid) != session::SessionState::kSuspect) {
        violate("chaos: peer ended the run wedged in state " +
                std::string(session::state_name(manager.state(peer->sid))));
      }
    }
  }
};

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config) {
  if (config.sessions == 0) {
    throw ConfigError("chaos: at least one session is required");
  }
  if (config.blocks_per_round == 0 || config.block_size == 0) {
    throw ConfigError("chaos: blocks_per_round and block_size must be positive");
  }
  if (config.rounds == 0) {
    throw ConfigError("chaos: rounds must be positive");
  }

  ChaosReport report;
  const ObsSession obs_before = ObsSession::read();

  {
    ChaosSoak soak(config, report);
    for (std::size_t r = 0;
         r < soak.rounds_cap && (r < config.rounds || !soak.all_done()); ++r) {
      soak.round(r);
      if (report.violations.size() >= kMaxViolations) break;
    }
    soak.finish();

    // The obs mirror must agree with the manager's ground truth — the
    // deltas absorb whatever earlier in-process tests left in the registry.
    const ObsSession after = ObsSession::read();
    const session::SessionCounters sc = soak.manager.counters();
    auto check_mirror = [&](const char* what, std::uint64_t obs_delta,
                            std::uint64_t truth) {
      if (obs_delta != truth) {
        soak.violate(std::string("chaos: obs mirror acex.session.") + what +
                     " = " + std::to_string(obs_delta) +
                     " diverges from ground truth " + std::to_string(truth));
      }
    };
    check_mirror("connects", after.connects - obs_before.connects,
                 sc.connects);
    check_mirror("heartbeats", after.heartbeats - obs_before.heartbeats,
                 sc.heartbeats);
    check_mirror("parks", after.parks - obs_before.parks, sc.parks);
    check_mirror("resumes", after.resumes - obs_before.resumes, sc.resumes);
    check_mirror("restarts", after.restarts - obs_before.restarts,
                 sc.restarts);
    check_mirror("expired", after.expired - obs_before.expired, sc.expired);
  }

  return report;
}

}  // namespace acex::qa
