#pragma once

// Session-chaos driver (DESIGN.md §12): a SessionManager fans one block
// stream out to N session clients over faulted links, and the harness
// kills each client mid-stream — repeatedly — then reconnects it through
// the resume protocol. Invariants checked:
//
//   * resume fidelity: a session that resumes within its grace window
//     ends the run having delivered EVERY block published since it
//     joined, byte-identical (CRC ground truth), zero duplicated;
//   * expiry honesty: a session that overstays its grace window expires
//     — resume yields a clean restart, never a wedged session — and the
//     `acex.session.*` obs mirror matches the manager's ground truth;
//   * convergence: once the links heal, finitely many NACK rounds reach
//     a fixed point with nothing left in limbo.
//
// Everything is a pure function of ChaosConfig::seed, so a violation
// reproduces by re-running with the same config.

#include <cstdint>
#include <string>
#include <vector>

namespace acex::qa {

struct ChaosConfig {
  /// Target round count. The run extends past it (up to 4x) until every
  /// peer has been killed `min_kills` times and revived, so the headline
  /// guarantee is exercised no matter how the schedule lands.
  std::size_t rounds = 24;

  std::uint64_t seed = 1;
  std::size_t sessions = 16;
  std::size_t blocks_per_round = 4;
  std::size_t block_size = 2048;

  /// Forced kill/reconnect cycles per peer (the acceptance floor).
  std::size_t min_kills = 3;
  /// Probability of an extra, unscheduled kill per alive peer per round.
  double extra_kill_prob = 0.02;
  /// Probability a killed peer overstays its park grace and expires
  /// (exercising the restart-from-scratch path).
  double expire_prob = 0.15;

  double drop_prob = 0.04;
  double reorder_prob = 0.05;
  double duplicate_prob = 0.03;
  double bit_flip_prob = 0.03;
  double truncate_prob = 0.02;

  std::uint64_t gap_window = 512;
  int nack_retry_cap = 6;
};

struct ChaosReport {
  std::size_t rounds = 0;
  std::uint64_t published = 0;   ///< blocks through the manager
  std::uint64_t kills = 0;       ///< peers killed mid-stream
  std::uint64_t resumes = 0;     ///< within-grace resume successes
  std::uint64_t restarts = 0;    ///< expired/evicted -> fresh session
  std::uint64_t expired = 0;     ///< sessions that overstayed the grace
  std::uint64_t delivered = 0;   ///< unique CRC-verified frames, all peers
  std::uint64_t heartbeats = 0;  ///< control round-trips exercised

  /// Human-readable invariant violations; empty means the chaos passed.
  std::vector<std::string> violations;

  bool ok() const noexcept { return violations.empty(); }
};

/// Run the chaos battery. Never throws for invariant violations (they are
/// collected in the report); throws only on configuration errors.
ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace acex::qa
