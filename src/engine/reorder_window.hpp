#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::engine {

/// Bounded resequencing buffer: producers push values tagged with a dense
/// sequence number (0, 1, 2, ... — every sequence pushed exactly once),
/// the consumer pops them back in strictly increasing sequence order.
///
/// The window is the memory bound of the parallel pipeline: a push whose
/// sequence lies `capacity` or more ahead of the next undelivered sequence
/// blocks until the consumer catches up, so at most `capacity` completed
/// blocks are ever buffered no matter how far worker completion order
/// diverges from submission order (backpressure — DESIGN.md §8).
///
/// close() releases blocked producers and turns further pushes into no-ops;
/// the pipeline uses it to unwind safely when the consumer abandons a run
/// mid-stream (e.g. an exception propagating out of the driver loop).
template <typename T>
class ReorderWindow {
 public:
  explicit ReorderWindow(std::size_t capacity)
      : capacity_(capacity),
        occupancy_(
            obs::MetricsRegistry::global().gauge("acex.engine.reorder_occupancy")) {
    if (capacity_ == 0) {
      throw ConfigError("reorder window: capacity must be positive");
    }
  }

  ReorderWindow(const ReorderWindow&) = delete;
  ReorderWindow& operator=(const ReorderWindow&) = delete;

  ~ReorderWindow() {
    // Values still buffered at destruction leave the occupancy gauge.
    occupancy_.sub(static_cast<std::int64_t>(buffer_.size()));
  }

  /// Producer side. Blocks while `sequence` is at least `capacity` ahead of
  /// the next sequence the consumer will pop. After close(), the value is
  /// discarded instead (the producer never blocks on a dead consumer).
  void push(std::uint64_t sequence, T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (sequence < base_) {
      throw ConfigError("reorder window: sequence pushed twice");
    }
    slot_free_.wait(lock, [&] {
      return closed_ || sequence - base_ < capacity_;
    });
    if (closed_) return;
    const bool is_head = sequence == base_;
    if (!buffer_.emplace(sequence, std::move(value)).second) {
      throw ConfigError("reorder window: sequence pushed twice");
    }
    occupancy_.add(1);
    lock.unlock();
    if (is_head) head_ready_.notify_one();
  }

  /// Consumer side: the value for the next sequence, blocking until a
  /// producer delivers it. Sequences advance by one per pop.
  T pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    head_ready_.wait(lock, [&] { return head_ready_locked(); });
    return pop_locked();
  }

  /// Non-blocking pop: true and fills `out` when the next-in-order value
  /// is already buffered.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!head_ready_locked()) return false;
    out = pop_locked();
    return true;
  }

  /// Release blocked producers and drop their values; pushes after this
  /// are silently discarded. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      occupancy_.sub(static_cast<std::int64_t>(buffer_.size()));
      buffer_.clear();
    }
    slot_free_.notify_all();
  }

  /// The sequence the next pop() will return.
  std::uint64_t next_sequence() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return base_;
  }

  /// Completed values currently buffered (in-order head included).
  std::size_t buffered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buffer_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool head_ready_locked() const {
    return !buffer_.empty() && buffer_.begin()->first == base_;
  }

  T pop_locked() {
    T value = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    ++base_;
    occupancy_.sub(1);
    slot_free_.notify_all();
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::condition_variable head_ready_;
  std::map<std::uint64_t, T> buffer_;
  std::uint64_t base_ = 0;
  std::size_t capacity_;
  /// Process-wide occupancy gauge (sum across live windows), adjusted by
  /// delta under this window's lock.
  obs::Gauge& occupancy_;
  bool closed_ = false;
};

}  // namespace acex::engine
