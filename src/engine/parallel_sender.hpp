#pragma once

#include <optional>

#include "adaptive/pipeline.hpp"
#include "engine/thread_pool.hpp"
#include "transport/transport.hpp"

namespace acex::engine {

/// Multi-core front end over the AdaptiveSender (DESIGN.md §8): method
/// selection stays serial on the driver thread (decisions feed on monitor
/// state the previous block just updated), block encode/frame work fans
/// out to a ThreadPool, and completed frames are re-sequenced through a
/// bounded reorder window so they reach the transport in strictly
/// increasing sequence order — PR 1's sequence/NACK machinery on the
/// receiving side is none the wiser.
///
/// Sizing comes from AdaptiveConfig::worker_threads (0 = one per hardware
/// thread). With 1 worker the facade delegates to the serial
/// AdaptiveSender paths outright, so "1 worker" in any comparison IS the
/// serial baseline. Memory stays bounded: at most `window_capacity()`
/// encoded blocks are buffered; beyond that, planning stalls until the
/// oldest outstanding block has shipped (backpressure).
///
/// Consistency vs the serial path: the reassembled payload is
/// byte-identical (every block round-trips through the same codecs and
/// frames), but per-block method choices may differ — with W blocks in
/// flight, the selector sees feedback up to W blocks stale, like
/// send_all_pipelined's "one block staler" but wider.
///
/// The sender's codec registry is frozen on the first parallel send
/// (concurrent workers read it); register custom codecs before that.
/// Not thread-safe itself: one stream, one driver thread.
class ParallelSender {
 public:
  explicit ParallelSender(transport::Transport& transport,
                          adaptive::AdaptiveConfig config = {});

  /// Adaptive stream send, parallel encode, ordered delivery.
  adaptive::StreamReport send_all(ByteView data);

  /// Fixed-method baseline through the same parallel machinery. A codec
  /// failure surfaces on the driver thread in block order (no degradation
  /// on baselines); blocks already in flight behind the failure are
  /// finished by the workers but discarded, never transmitted.
  adaptive::StreamReport send_all_fixed(ByteView data, MethodId method);

  /// The wrapped serial sender: estimators, degradation stats, registry.
  adaptive::AdaptiveSender& sender() noexcept { return sender_; }
  const adaptive::AdaptiveSender& sender() const noexcept { return sender_; }

  std::size_t worker_count() const noexcept { return workers_; }
  std::size_t window_capacity() const noexcept { return window_; }

 private:
  adaptive::StreamReport run(ByteView data, std::optional<MethodId> fixed);

  adaptive::AdaptiveSender sender_;
  std::size_t workers_;
  std::size_t window_;
  std::optional<ThreadPool> pool_;  ///< engaged only when workers_ > 1
};

}  // namespace acex::engine
