#include "engine/parallel_sender.hpp"

#include <algorithm>
#include <utility>

#include "engine/block_pipeline.hpp"

namespace acex::engine {
namespace {

/// One block's journey through the pipeline: the serial plan rides along
/// with the worker's encode result so the collector can finish the block
/// without any side-channel state.
struct ReadyBlock {
  adaptive::BlockPlan plan;
  std::size_t original_size = 0;
  adaptive::EncodeResult encoded;
};

}  // namespace

ParallelSender::ParallelSender(transport::Transport& transport,
                               adaptive::AdaptiveConfig config)
    : sender_(transport, std::move(config)),
      workers_(resolve_worker_threads(sender_.config().worker_threads)),
      // Window of 2x the workers: enough slack that a straggler block does
      // not idle the pool, small enough that buffering stays a handful of
      // blocks. The pool queue matches the window — the driver never
      // outruns either.
      window_(std::max<std::size_t>(2 * workers_, 4)) {
  if (workers_ > 1) pool_.emplace(workers_, window_);
}

adaptive::StreamReport ParallelSender::send_all(ByteView data) {
  return run(data, std::nullopt);
}

adaptive::StreamReport ParallelSender::send_all_fixed(ByteView data,
                                                      MethodId method) {
  return run(data, method);
}

adaptive::StreamReport ParallelSender::run(ByteView data,
                                           std::optional<MethodId> fixed) {
  if (workers_ <= 1) {
    // Serial semantics bit-for-bit: this IS the baseline.
    return fixed ? sender_.send_all_fixed(data, *fixed)
                 : sender_.send_all(data);
  }

  // Workers share the registry read-only from here on; freezing makes a
  // concurrent register_factory() a loud error instead of a data race.
  sender_.registry().freeze();
  const CodecRegistry& registry = sender_.registry();
  const std::size_t slack = sender_.config().expansion_slack_bytes;
  const std::size_t block_size = sender_.config().decision.block_size;

  adaptive::StreamReport stream;
  ParallelBlockPipeline<ReadyBlock> pipeline(*pool_, window_);

  const auto finish = [&](ReadyBlock ready) {
    stream.blocks.push_back(sender_.finish_block(
        ready.plan, ready.original_size, std::move(ready.encoded)));
  };

  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    const ByteView block = data.subspan(off, len);
    const std::size_t next_off = off + len;
    const ByteView next =
        !fixed && next_off < data.size()
            ? data.subspan(next_off,
                           std::min(block_size, data.size() - next_off))
            : ByteView{};

    // Serial: sample + decide (adaptive) or just claim a sequence (fixed).
    const adaptive::BlockPlan plan =
        fixed ? sender_.plan_block_fixed(block, *fixed)
              : sender_.plan_block(block, next);

    // Keep in-flight strictly below the window before submitting: the
    // blocking pop doubles as backpressure on planning, and it guarantees
    // workers never block pushing into the reorder window (every live
    // sequence stays inside it), so the single driver thread cannot
    // deadlock against its own pipeline.
    while (pipeline.in_flight() >= pipeline.window_capacity()) {
      finish(pipeline.collect());
    }
    pipeline.submit([&registry, plan, block, slack] {
      ReadyBlock ready;
      ready.plan = plan;
      ready.original_size = block.size();
      ready.encoded =
          adaptive::encode_block(registry, block, plan.method, plan.sequence,
                                 slack, plan.allow_degrade);
      return ready;
    });

    // Opportunistic drain: ship whatever completed in order while the
    // workers chew on the rest.
    ReadyBlock ready;
    while (pipeline.try_collect(ready)) finish(std::move(ready));
  }
  while (pipeline.in_flight() > 0) finish(pipeline.collect());

  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
  return stream;
}

}  // namespace acex::engine
