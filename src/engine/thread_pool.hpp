#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acex::engine {

/// Fixed-size worker pool over a bounded FIFO task queue — the execution
/// substrate of the parallel compression engine (DESIGN.md §8).
///
/// Two properties matter to the block pipeline built on top:
///
///   * **Bounded memory.** The queue holds at most `queue_capacity` tasks;
///     submit() blocks the producer once it is full, so a fast producer
///     cannot buffer an unbounded backlog (backpressure, not OOM).
///   * **FIFO dispatch.** Workers dequeue in submission order. When tasks
///     are submitted in sequence order, the task for the *lowest*
///     unfinished sequence is always among the ones running — the
///     guarantee the reorder window's progress argument rests on.
///
/// Tasks must not throw: an exception escaping a task would terminate the
/// worker thread (std::terminate). Wrap fallible work and carry the error
/// in the task's result instead (see adaptive::EncodeResult::failure).
class ThreadPool {
 public:
  /// `threads` == 0 asks for one worker per hardware thread (at least 1).
  /// `queue_capacity` == 0 defaults to twice the worker count.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 0);

  /// Joins after finishing every task already accepted; tasks submitted
  /// before destruction are never dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `task`; blocks while the queue is at capacity.
  void submit(std::function<void()> task);

  /// Enqueue `task` only if a queue slot is free right now.
  bool try_submit(std::function<void()> task);

  std::size_t size() const noexcept { return workers_.size(); }
  std::size_t queue_capacity() const noexcept { return capacity_; }

  /// Tasks accepted but not yet finished (queued + running).
  std::size_t outstanding() const;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_;
  std::size_t running_ = 0;  ///< tasks currently executing
  bool stopping_ = false;
};

/// Resolve a user-facing worker-thread knob: 0 means "one per hardware
/// thread" (at least 1), anything else is taken literally.
std::size_t resolve_worker_threads(std::size_t requested) noexcept;

}  // namespace acex::engine
