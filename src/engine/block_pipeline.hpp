#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "engine/reorder_window.hpp"
#include "engine/thread_pool.hpp"

namespace acex::engine {

/// Fans independent per-block jobs out to a ThreadPool and hands their
/// results back to one consumer in submission order: the heart of the
/// parallel compression engine (DESIGN.md §8).
///
/// submit() tags each job with the next sequence number and enqueues it;
/// workers run jobs concurrently and park each result in a bounded
/// ReorderWindow; collect()/try_collect() drain results strictly in
/// sequence order. Total buffering is bounded by the window capacity —
/// when worker completions run ahead of the consumer, producers block
/// (backpressure) instead of accumulating results.
///
/// Deadlock freedom: the pool dispatches FIFO and submit() is called in
/// sequence order, so the job for the lowest in-flight sequence is always
/// running (never stuck behind higher sequences), and its push is by
/// definition inside the window — the head the consumer is waiting on
/// always arrives. A single-threaded driver must still drain results while
/// submitting (collect() once `in_flight()` reaches `window_capacity()`),
/// because a full window can only drain through that same thread.
///
/// Jobs must not throw (see ThreadPool); carry failures inside `T`.
///
/// One consumer thread at a time; submit() and collect() may be the same
/// thread (the usual driver-loop shape) or two different ones.
template <typename T>
class ParallelBlockPipeline {
 public:
  using Job = std::function<T()>;

  /// `window_capacity` bounds completed-but-undelivered results; keep it
  /// at least the pool's worker count or workers will sit idle waiting for
  /// window slots.
  ParallelBlockPipeline(ThreadPool& pool, std::size_t window_capacity)
      : pool_(&pool), window_(window_capacity) {}

  /// Pipelines drain on destruction: any job still queued or running is
  /// finished (its result discarded), so jobs may safely reference state
  /// that outlives the pipeline object itself.
  ~ParallelBlockPipeline() {
    window_.close();
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return completed_ == submitted_; });
  }

  ParallelBlockPipeline(const ParallelBlockPipeline&) = delete;
  ParallelBlockPipeline& operator=(const ParallelBlockPipeline&) = delete;

  /// Enqueue the encode job for the next sequence; returns that sequence.
  /// Blocks while the pool's task queue is full.
  std::uint64_t submit(Job job) {
    std::uint64_t sequence;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sequence = submitted_++;
    }
    pool_->submit([this, sequence, job = std::move(job)]() mutable {
      window_.push(sequence, job());
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
      all_done_.notify_all();
    });
    return sequence;
  }

  /// Next result in sequence order; blocks until it is ready. Call only
  /// when `in_flight() > 0`.
  T collect() {
    T value = window_.pop();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++collected_;
    }
    return value;
  }

  /// Non-blocking collect; true when the next-in-order result was ready.
  bool try_collect(T& out) {
    if (!window_.try_pop(out)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    ++collected_;
    return true;
  }

  /// Jobs submitted but not yet collected (queued, running, or buffered).
  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(submitted_ - collected_);
  }

  std::uint64_t submitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
  }

  std::size_t window_capacity() const noexcept { return window_.capacity(); }

 private:
  ThreadPool* pool_;
  ReorderWindow<T> window_;
  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::uint64_t submitted_ = 0;
  std::uint64_t collected_ = 0;
  std::uint64_t completed_ = 0;  ///< worker-side: result pushed (or dropped)
};

}  // namespace acex::engine
