#include "engine/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace acex::engine {
namespace {

/// Handle-cached instruments (DESIGN.md §9): the registry lookup happens
/// once per process, every increment after that is a relaxed atomic.
/// Process-wide by design — concurrent pools share these series.
struct PoolMetrics {
  obs::Gauge& workers;          ///< live worker threads across all pools
  obs::Gauge& queue_depth;      ///< tasks waiting in pool queues right now
  obs::Counter& tasks;          ///< tasks completed
  obs::Counter& busy_us;        ///< cumulative worker time inside tasks
  obs::Histogram& submit_wait_us;  ///< producer time blocked on a full queue
};

PoolMetrics& pool_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static PoolMetrics m{
      r.gauge("acex.engine.workers"), r.gauge("acex.engine.queue_depth"),
      r.counter("acex.engine.tasks"), r.counter("acex.engine.worker_busy_us"),
      r.histogram("acex.engine.submit_wait_us")};
  return m;
}

double steady_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t resolve_worker_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  const std::size_t count = resolve_worker_threads(threads);
  if (capacity_ == 0) capacity_ = 2 * count;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  pool_metrics().workers.add(static_cast<std::int64_t>(count));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  pool_metrics().workers.sub(static_cast<std::int64_t>(workers_.size()));
}

void ThreadPool::worker_loop(std::size_t index) {
  obs::set_current_worker(static_cast<std::int32_t>(index));
  PoolMetrics& metrics = pool_metrics();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      metrics.queue_depth.sub(1);
    }
    not_full_.notify_one();
    const double start = steady_us();
    task();
    metrics.busy_us.add(static_cast<std::uint64_t>(steady_us() - start));
    metrics.tasks.add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw ConfigError("thread pool: task must not be empty");
  const double start = steady_us();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
    if (stopping_) {
      throw ConfigError("thread pool: submit after shutdown began");
    }
    queue_.push_back(std::move(task));
  }
  PoolMetrics& metrics = pool_metrics();
  metrics.queue_depth.add(1);
  metrics.submit_wait_us.record(steady_us() - start);
  not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  if (!task) throw ConfigError("thread pool: task must not be empty");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  pool_metrics().queue_depth.add(1);
  not_empty_.notify_one();
  return true;
}

std::size_t ThreadPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + running_;
}

}  // namespace acex::engine
