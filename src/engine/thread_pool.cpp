#include "engine/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acex::engine {

std::size_t resolve_worker_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  const std::size_t count = resolve_worker_threads(threads);
  if (capacity_ == 0) capacity_ = 2 * count;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    not_full_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw ConfigError("thread pool: task must not be empty");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
    if (stopping_) {
      throw ConfigError("thread pool: submit after shutdown began");
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  if (!task) throw ConfigError("thread pool: task must not be empty");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

std::size_t ThreadPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + running_;
}

}  // namespace acex::engine
