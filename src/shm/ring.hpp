#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "shm/segment.hpp"
#include "util/buffer_view.hpp"
#include "util/clock.hpp"

namespace acex::shm {

/// A descriptor resolved against a slab whose generation has moved on: the
/// payload it pointed at was force-reclaimed and rewritten. Recoverable —
/// the receiver counts it and lets the NACK path re-request the sequence.
class ShmStaleError : public ShmError {
 public:
  explicit ShmStaleError(const std::string& what) : ShmError(what) {}
};

/// What travels on the wire instead of the payload: where the framed bytes
/// live inside the segment's slab arena, how long they are, and which
/// generation of the slab they belong to. The generation is the integrity
/// anchor — a reclaimed-and-reused slab fails the generation check instead
/// of silently yielding someone else's bytes.
struct SlabDescriptor {
  std::uint64_t offset = 0;        ///< payload start, arena-relative bytes
  std::uint32_t length = 0;        ///< framed message length
  std::uint32_t generation = 0;    ///< slab generation the payload was
                                   ///< published under
};

struct RingConfig {
  std::size_t slab_count = 64;
  std::size_t slab_size = 64 * 1024;
  /// Bounded wait for a free slab before force-reclaiming the oldest
  /// published one (the shm analog of the broker ladder's drop-oldest
  /// stage): a crashed or wedged subscriber holding pins can delay a
  /// producer by at most this long, never stall it.
  Seconds reclaim_wait = 0.05;
  /// Clock the bounded wait is measured on; null = process monotonic.
  const Clock* clock = nullptr;
};

/// Ground truth mirrored into obs by the ring (acexstat --shm cross-checks).
struct RingStats {
  std::size_t slab_count = 0;
  std::size_t slab_size = 0;
  std::size_t slabs_in_use = 0;        ///< refcount > 0 right now
  std::uint64_t acquires = 0;          ///< successful slab claims
  std::uint64_t reclaim_waits = 0;     ///< acquires that had to wait
  std::uint64_t force_reclaims = 0;    ///< pinned slabs reclaimed on expiry
  std::uint64_t stale_releases = 0;    ///< releases ignored (gen moved on)
};

/// Ring of reference-counted payload slabs inside a shared-memory segment
/// (DESIGN.md §16). One producer stages framed messages into slabs; any
/// number of consumers map them in place through SlabDescriptors. All
/// reclamation state lives in the segment itself as lock-free atomics:
///
///   slab state = one atomic u64 packing (generation:32 | refcount:32)
///
/// Claim:    CAS (g, 0)        -> (g+1, 1)   producer owns the slab
/// Share:    CAS (g, n>0)      -> (g, n+1)   descriptor handed to a reader
/// Release:  CAS (g, n>0)      -> (g, n-1)   pin dropped; 0 = reclaimable
/// Reclaim:  CAS (g, n>0)      -> (g+1, 1)   bounded wait expired: the
///           generation bump makes every outstanding descriptor stale
///           (resolve fails typed) and every outstanding release a no-op,
///           so a crashed subscriber can neither stall the producer nor
///           corrupt the refcount of the slab's next life. A reader racing
///           the rewrite sees torn bytes at worst — caught by the frame's
///           end-to-end CRC like any other wire corruption.
///
/// In-process consumers hold pins through BufferView owners: the ring
/// hands out slab-backed views whose owner releases the pin on
/// destruction, and recognizes its own views by owner key so a view that
/// came out of a slab is shipped onward as a descriptor, not bytes.
class SlabRing {
 public:
  /// A claimed, writable slab (refcount 1, held by the producer).
  struct WriteSlab {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
    std::uint8_t* data = nullptr;
    std::size_t capacity = 0;
  };

  /// Segment bytes needed for `config` (header + slab table + arena).
  static std::size_t segment_size(const RingConfig& config) noexcept;

  /// Format a fresh ring inside `segment` (producer side). The segment
  /// must be at least segment_size(config) bytes and must outlive the
  /// ring AND every BufferView the ring hands out.
  SlabRing(ShmSegment& segment, const RingConfig& config);

  /// Attach to a ring someone else formatted (consumer side). Validates
  /// magic, version, and that the segment actually covers the slab table
  /// and arena the header claims — a truncated segment is rejected here
  /// with ShmError, never dereferenced. `runtime` supplies the local
  /// reclaim policy (slab geometry comes from the header).
  SlabRing(ShmSegment& segment, const RingConfig& runtime, bool attach);

  SlabRing(const SlabRing&) = delete;
  SlabRing& operator=(const SlabRing&) = delete;

  /// Claim a free slab able to hold `length` bytes, waiting at most
  /// reclaim_wait before force-reclaiming the oldest published slab.
  /// Throws ShmError when `length` exceeds the slab size.
  WriteSlab acquire(std::size_t length);

  /// Publish a filled slab: stamps its length and recency, then wraps it
  /// in a slab-backed BufferView that adopts the producer's pin (the view
  /// releases it). The view's bytes ARE the slab — zero copies from here
  /// to every consumer.
  BufferView publish(const WriteSlab& slab, std::size_t length);

  /// Abandon a claimed slab without publishing (error unwind).
  void abandon(const WriteSlab& slab) noexcept;

  /// The descriptor for a slab-backed view THIS ring handed out, or
  /// nullopt when the view's bytes live anywhere else. This is how the
  /// transport recognizes "already in shared memory" and ships 16 bytes
  /// instead of the payload.
  std::optional<SlabDescriptor> descriptor_of(const BufferView& view) const;

  /// Add one reference for a descriptor about to travel (transfer-ref
  /// protocol: the sender pins on the receiver's behalf, so the slab can
  /// never die between send and resolve). False when the slab was already
  /// force-reclaimed — the caller falls back to copying.
  bool add_ref(const SlabDescriptor& desc) noexcept;

  /// Turn a received descriptor into a slab-backed view, adopting the
  /// reference add_ref transferred. Throws ShmStaleError when the slab's
  /// generation has moved on (force-reclaimed in flight) and ShmError when
  /// the descriptor's geometry doesn't fit this ring at all.
  BufferView resolve(const SlabDescriptor& desc);

  /// Drop a transferred reference without materializing a view (used when
  /// a queued descriptor is dropped before anyone reads it).
  void drop_ref(const SlabDescriptor& desc) noexcept;

  RingStats stats() const;
  std::size_t slab_size() const noexcept;
  std::size_t slab_count() const noexcept;

 private:
  struct Header;
  struct Slab;
  struct Pin;

  void validate(std::size_t segment_bytes, bool attach,
                const RingConfig& config);
  std::uint64_t next_stamp() noexcept;
  BufferView make_view(std::uint32_t index, std::uint32_t generation,
                       std::size_t length);
  void release(std::uint32_t index, std::uint32_t generation) noexcept;
  void publish_gauges() const noexcept;
  std::uint8_t* slab_data(std::uint32_t index) const noexcept;

  Header* header_ = nullptr;
  Slab* slabs_ = nullptr;
  std::uint8_t* arena_ = nullptr;
  Seconds reclaim_wait_ = 0.05;
  const Clock* clock_ = nullptr;

  /// Owner-key -> (index, generation) for views this ring handed out; how
  /// descriptor_of recognizes its own slabs. Process-local by design: a
  /// view never crosses a process boundary (descriptors do).
  mutable std::mutex pins_mutex_;
  std::unordered_map<const void*, std::pair<std::uint32_t, std::uint32_t>>
      pins_;
};

}  // namespace acex::shm
