#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "compress/frame.hpp"
#include "shm/ring.hpp"
#include "shm/segment.hpp"
#include "transport/transport.hpp"

namespace acex::shm {

/// Wire form of a SlabDescriptor: magic "AD" | varint offset |
/// varint generation | varint length | crc32 of the three varints (LE).
/// ~16 bytes regardless of payload size — this is ALL that travels per
/// message on the shm path; the payload stays in the segment.
Bytes encode_descriptor(const SlabDescriptor& desc);

/// Parse + integrity-check a wire descriptor. Throws DecodeError on bad
/// magic, truncation, or CRC mismatch — a flipped bit in the offset must
/// never be dereferenced into the arena.
SlabDescriptor decode_descriptor(ByteView wire);

struct ShmBusConfig {
  RingConfig ring;
  /// Name for the POSIX segment; empty = anonymous mapping (in-process
  /// fan-out, tests). Named segments follow ShmSegment::create semantics.
  std::string segment_name;
  /// Descriptor-queue depth per endpoint. On overflow the OLDEST queued
  /// descriptor is dropped (its slab reference released) — the same rung
  /// of the slow-consumer ladder the broker's kDropOldest egress uses, so
  /// a subscriber that stops reading loses recoverable history instead of
  /// wedging the producer.
  std::size_t queue_capacity = 256;
};

/// Ground truth mirrored by obs counters (acexstat --shm cross-checks).
struct ShmBusStats {
  std::uint64_t staged = 0;          ///< payloads written into slabs
  std::uint64_t staged_bytes = 0;    ///< bytes those writes moved — the
                                     ///< ENTIRE payload memory traffic of
                                     ///< the shm path (descriptors are
                                     ///< ~16 bytes each); the fan-out
                                     ///< bench's bandwidth denominator
  std::uint64_t copy_fallbacks = 0;  ///< sends that could not ship a
                                     ///< descriptor without copying first
};

class ShmEndpoint;

/// One producer-side shared-memory fan-out domain: the segment, the slab
/// ring inside it, and the per-subscriber descriptor endpoints
/// (DESIGN.md §16). Must outlive every endpoint it hands out and every
/// BufferView its ring backs.
class ShmBus {
 public:
  explicit ShmBus(ShmBusConfig config = {});

  ShmBus(const ShmBus&) = delete;
  ShmBus& operator=(const ShmBus&) = delete;

  SlabRing& ring() noexcept { return ring_; }
  ShmSegment& segment() noexcept { return segment_; }

  /// Copy arbitrary bytes into a fresh slab and return the slab-backed
  /// view — the copy-fallback primitive (counted; zero in steady state
  /// when frames are staged directly by the frame builder).
  BufferView stage(ByteView bytes);

  /// A FanoutBroker frame builder that materializes each shared frame
  /// straight into a slab with frame_build_seq_into — byte-identical to
  /// frame_build_seq, copied exactly once, pinned by the returned view.
  /// Frames larger than a slab degrade to a heap buffer (counted as a
  /// copy fallback; size slabs so this never happens in steady state).
  std::function<BufferView(MethodId, ByteView, std::uint32_t, std::uint64_t)>
  frame_builder();

  /// Create a subscriber endpoint. `clock` times this endpoint's
  /// transport contract (null = the ring's clock source).
  std::unique_ptr<ShmEndpoint> endpoint(const Clock* clock = nullptr);

  ShmBusStats stats() const;

 private:
  friend class ShmEndpoint;
  void note_copy_fallback();

  ShmBusConfig config_;
  ShmSegment segment_;
  SlabRing ring_;

  mutable std::mutex stats_mutex_;
  ShmBusStats stats_;
};

/// Per-endpoint ground truth (acexstat --shm, fuzz assertions).
struct ShmEndpointStats {
  std::uint64_t sent = 0;                ///< messages accepted for delivery
  std::uint64_t zero_copy_sends = 0;     ///< shipped as descriptor only
  std::uint64_t oob_sends = 0;           ///< larger than any slab: delivered
                                         ///< out of band as a heap buffer
  std::uint64_t received = 0;            ///< messages delivered to the app
  std::uint64_t stale_descriptors = 0;   ///< lost to force-reclaim (typed,
                                         ///< recovered via NACK)
  std::uint64_t corrupt_descriptors = 0; ///< failed decode/geometry checks
  std::uint64_t queue_drops = 0;         ///< overflow drops (ladder rung)
};

/// The shared-memory Transport: send() stages bytes into a slab and
/// enqueues a ~16-byte wire descriptor; send_buffer() recognizes views
/// already backed by this bus's ring and ships the descriptor with ZERO
/// payload copies; receive_buffer() resolves descriptors back into
/// slab-backed views the application decodes in place. References travel
/// WITH descriptors (the sender pins on the receiver's behalf), so a slab
/// can never be reclaimed between send and resolve except by the bounded-
/// wait force-reclaim — which resolve detects as ShmStaleError and
/// receive() skips, counting it, exactly like any other recoverable loss.
/// A message larger than any slab (the frame_builder heap fallback, or an
/// oversized send()) is delivered OUT OF BAND: the queue carries the heap
/// buffer itself instead of a descriptor. Delivery degrades to one shared
/// (send_buffer) or one copied (send) heap buffer — it never throws into
/// the broker's pump thread and never silently drops the message.
class ShmEndpoint : public transport::Transport {
 public:
  ShmEndpoint(ShmBus& bus, const Clock& clock, std::size_t queue_capacity);
  ~ShmEndpoint() override;

  void send(ByteView message) override;
  void send_buffer(const BufferView& message) override;
  std::optional<Bytes> receive() override;
  std::optional<BufferView> receive_buffer() override;
  const Clock& clock() const override { return *clock_; }

  /// Push raw bytes straight into the descriptor queue, bypassing the
  /// send path — the acexfuzz --shm hook for descriptor mutation storms.
  /// Anything receive() cannot validate is counted and skipped; only
  /// typed errors may escape.
  void inject_raw(Bytes descriptor_wire);

  std::size_t depth() const;
  ShmEndpointStats stats() const;

 private:
  /// One queued message: an encoded descriptor in `wire`, or — when
  /// `wire` is empty — an out-of-band heap payload in `oob` that no slab
  /// could hold. Only descriptor entries carry a slab reference.
  struct Entry {
    Bytes wire;
    BufferView oob;
  };

  void enqueue(Entry entry);
  void send_oob(BufferView payload);

  ShmBus* bus_;
  const Clock* clock_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::deque<Entry> queue_;  ///< FIFO of descriptors / oob payloads
  ShmEndpointStats stats_;
};

}  // namespace acex::shm
