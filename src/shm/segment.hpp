#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace acex::shm {

/// A shared-memory operation failed at the OS boundary (shm_open, mmap,
/// ftruncate) or a mapped segment failed structural validation on attach.
class ShmError : public Error {
 public:
  explicit ShmError(const std::string& what) : Error("shm: " + what) {}
};

/// One POSIX shared-memory mapping with a robust create/attach/unlink
/// lifecycle (DESIGN.md §16).
///
/// Three ways in:
///   create()    — producer side: replaces any stale segment of the same
///                 name left by a crashed predecessor (shm_unlink first),
///                 then shm_open(O_CREAT|O_EXCL) + ftruncate + mmap.
///   attach()    — consumer side: maps an existing segment read-write and
///                 reports its actual size; callers validate structure on
///                 top (SlabRing::open rejects truncated segments).
///   anonymous() — in-process fan-out and tests: a MAP_SHARED|MAP_ANONYMOUS
///                 mapping with identical semantics and no name to leak.
///
/// The mapping lives until the object is destroyed (munmap). The NAME is
/// removed by unlink(): the creator calls it once every consumer has
/// attached (or on teardown), after which the memory persists only as long
/// as mappings do — the standard POSIX pattern that cannot leak segments
/// past the last process. Destruction of a created segment unlinks
/// automatically unless release_name() was called.
class ShmSegment {
 public:
  static ShmSegment create(const std::string& name, std::size_t size);
  static ShmSegment attach(const std::string& name);
  static ShmSegment anonymous(std::size_t size);

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();

  void* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& name() const noexcept { return name_; }
  /// True when this object created the segment (and owns its name).
  bool owner() const noexcept { return owner_; }

  /// Remove the segment's name from the filesystem namespace; idempotent,
  /// never throws. Existing mappings (ours included) stay valid.
  void unlink() noexcept;

  /// Give up name ownership: the destructor will no longer unlink. Used
  /// when the name must outlive this process for late attachers.
  void release_name() noexcept { owner_ = false; }

 private:
  ShmSegment(void* data, std::size_t size, std::string name, bool owner)
      : data_(data), size_(size), name_(std::move(name)), owner_(owner) {}

  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
  bool owner_ = false;
};

}  // namespace acex::shm
