#include "shm/bus.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::shm {
namespace {

constexpr std::uint8_t kDescMagic0 = 'A';
constexpr std::uint8_t kDescMagic1 = 'D';

const Clock& fallback_clock() {
  static MonotonicClock clock;
  return clock;
}

obs::Counter& copy_fallback_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("acex.shm.copy_fallbacks");
  return counter;
}

obs::Counter& stale_descriptor_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("acex.shm.stale_descriptors");
  return counter;
}

}  // namespace

Bytes encode_descriptor(const SlabDescriptor& desc) {
  Bytes out;
  out.reserve(24);
  out.push_back(kDescMagic0);
  out.push_back(kDescMagic1);
  put_varint(out, desc.offset);
  put_varint(out, desc.generation);
  put_varint(out, desc.length);
  const std::uint32_t crc = crc32(ByteView(out).subspan(2));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

SlabDescriptor decode_descriptor(ByteView wire) {
  if (wire.size() < 2 + 3 + 4) throw DecodeError("shm descriptor: too short");
  if (wire[0] != kDescMagic0 || wire[1] != kDescMagic1) {
    throw DecodeError("shm descriptor: bad magic");
  }
  std::size_t pos = 2;
  SlabDescriptor desc;
  desc.offset = get_varint(wire, &pos);
  const std::uint64_t generation = get_varint(wire, &pos);
  const std::uint64_t length = get_varint(wire, &pos);
  if (generation > std::numeric_limits<std::uint32_t>::max() ||
      length > std::numeric_limits<std::uint32_t>::max()) {
    throw DecodeError("shm descriptor: field out of range");
  }
  desc.generation = static_cast<std::uint32_t>(generation);
  desc.length = static_cast<std::uint32_t>(length);
  if (wire.size() - pos != 4) {
    throw DecodeError("shm descriptor: size mismatch");
  }
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(wire[pos + i]) << (8 * i);
  }
  if (crc32(wire.subspan(2, pos - 2)) != crc) {
    throw DecodeError("shm descriptor: CRC mismatch");
  }
  return desc;
}

namespace {

ShmSegment make_segment(const ShmBusConfig& config) {
  const std::size_t size = SlabRing::segment_size(config.ring);
  if (config.segment_name.empty()) return ShmSegment::anonymous(size);
  return ShmSegment::create(config.segment_name, size);
}

}  // namespace

ShmBus::ShmBus(ShmBusConfig config)
    : config_(std::move(config)),
      segment_(make_segment(config_)),
      ring_(segment_, config_.ring) {}

BufferView ShmBus::stage(ByteView bytes) {
  SlabRing::WriteSlab slab = ring_.acquire(bytes.size());
  std::copy(bytes.begin(), bytes.end(), slab.data);
  BufferView view = ring_.publish(slab, bytes.size());
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.staged;
  stats_.staged_bytes += bytes.size();
  return view;
}

std::function<BufferView(MethodId, ByteView, std::uint32_t, std::uint64_t)>
ShmBus::frame_builder() {
  return [this](MethodId method, ByteView payload, std::uint32_t original_crc,
                std::uint64_t sequence) -> BufferView {
    const std::size_t total =
        frame_overhead_seq(payload.size(), sequence) + payload.size();
    if (total > ring_.slab_size()) {
      // The frame cannot live in a slab; degrade to the heap buffer the
      // broker would have built anyway. ShmEndpoint::send_buffer
      // recognizes oversized views and delivers them out of band (the
      // shared heap buffer rides the queue itself), so the frame still
      // arrives — it just is not slab-backed. Size slabs above
      // block_size + overhead so steady state never lands here.
      note_copy_fallback();
      return BufferView::own(
          frame_build_seq(method, payload, original_crc, sequence));
    }
    SlabRing::WriteSlab slab = ring_.acquire(total);
    const std::size_t written = frame_build_seq_into(
        slab.data, method, payload, original_crc, sequence);
    BufferView view = ring_.publish(slab, written);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.staged;
      stats_.staged_bytes += written;
    }
    return view;
  };
}

std::unique_ptr<ShmEndpoint> ShmBus::endpoint(const Clock* clock) {
  const Clock* effective = clock;
  if (effective == nullptr) effective = config_.ring.clock;
  if (effective == nullptr) effective = &fallback_clock();
  return std::make_unique<ShmEndpoint>(*this, *effective,
                                       config_.queue_capacity);
}

ShmBusStats ShmBus::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ShmBus::note_copy_fallback() {
  copy_fallback_counter().add();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.copy_fallbacks;
}

ShmEndpoint::ShmEndpoint(ShmBus& bus, const Clock& clock,
                         std::size_t queue_capacity)
    : bus_(&bus),
      clock_(&clock),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity) {}

ShmEndpoint::~ShmEndpoint() {
  // Give queued-but-never-read descriptors their references back now
  // instead of making the ring force-reclaim them later.
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : queue_) {
    if (entry.wire.empty()) continue;  // oob payloads carry no reference
    try {
      bus_->ring().drop_ref(decode_descriptor(entry.wire));
    } catch (const DecodeError&) {
      // injected garbage carries no reference
    }
  }
  queue_.clear();
}

void ShmEndpoint::send(ByteView message) {
  if (message.size() > bus_->ring().slab_size()) {
    // No slab can carry this message, so copy it to the heap and deliver
    // it out of band — a copy-heavy delivery still beats throwing into
    // the broker's pump loop (and beats losing the message).
    bus_->note_copy_fallback();
    send_oob(BufferView::own(Bytes(message.begin(), message.end())));
    return;
  }
  // Not slab-backed by definition: stage one copy, then descriptor-ship.
  BufferView staged = bus_->stage(message);
  bus_->note_copy_fallback();
  const std::optional<SlabDescriptor> desc =
      bus_->ring().descriptor_of(staged);
  if (!desc || !bus_->ring().add_ref(*desc)) {
    // Reclaimed between publish and transfer: the ring is thrashing so
    // hard a just-written slab did not survive one call. That is a sizing
    // error, not a recoverable condition.
    throw IoError("shm: slab reclaimed before its descriptor shipped");
  }
  enqueue({encode_descriptor(*desc), BufferView()});
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.sent;
}

void ShmEndpoint::send_buffer(const BufferView& message) {
  const std::optional<SlabDescriptor> desc =
      bus_->ring().descriptor_of(message);
  // Transfer-ref protocol: pin on the receiver's behalf BEFORE the
  // descriptor travels. A failed add_ref means the slab was force-
  // reclaimed while queued elsewhere; recover by staging a fresh copy.
  if (desc && bus_->ring().add_ref(*desc)) {
    enqueue({encode_descriptor(*desc), BufferView()});
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.sent;
    ++stats_.zero_copy_sends;
    return;
  }
  if (message.size() > bus_->ring().slab_size()) {
    // The frame_builder heap fallback (or any other view no slab could
    // hold): retain the view itself — shared ownership, zero additional
    // copies — and deliver it out of band.
    send_oob(message);
    return;
  }
  send(message);
}

void ShmEndpoint::send_oob(BufferView payload) {
  enqueue({Bytes(), std::move(payload)});
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.sent;
  ++stats_.oob_sends;
}

void ShmEndpoint::enqueue(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (queue_.size() >= capacity_) {
    // Drop-oldest, exactly the broker ladder's shed rung: the slab
    // reference the dropped descriptor carried is returned immediately so
    // a reader that stopped draining cannot pin the ring full. (Dropped
    // oob payloads free with their last view; they hold no slab.)
    if (!queue_.front().wire.empty()) {
      try {
        bus_->ring().drop_ref(decode_descriptor(queue_.front().wire));
      } catch (const DecodeError&) {
      }
    }
    queue_.pop_front();
    ++stats_.queue_drops;
  }
  queue_.push_back(std::move(entry));
}

std::optional<Bytes> ShmEndpoint::receive() {
  std::optional<BufferView> view = receive_buffer();
  if (!view) return std::nullopt;
  return view->to_bytes();
}

std::optional<BufferView> ShmEndpoint::receive_buffer() {
  for (;;) {
    Entry entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    if (entry.wire.empty() && !entry.oob.empty()) {
      // Out-of-band heap payload: the queue entry IS the message.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.received;
      return std::move(entry.oob);
    }
    SlabDescriptor desc;
    try {
      desc = decode_descriptor(entry.wire);
    } catch (const DecodeError&) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.corrupt_descriptors;
      continue;
    }
    try {
      BufferView view = bus_->ring().resolve(desc);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.received;
      return view;
    } catch (const ShmStaleError&) {
      // The payload was force-reclaimed in flight: recoverable loss. The
      // sequence it carried resurfaces as a gap and rides the NACK path,
      // the same as a dropped egress frame.
      stale_descriptor_counter().add();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.stale_descriptors;
      continue;
    } catch (const ShmError&) {
      // Geometry that decoded fine but does not fit this ring — an
      // injected or cross-ring descriptor. Counted, skipped, never
      // dereferenced.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.corrupt_descriptors;
      continue;
    }
  }
}

void ShmEndpoint::inject_raw(Bytes descriptor_wire) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back({std::move(descriptor_wire), BufferView()});
}

std::size_t ShmEndpoint::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ShmEndpointStats ShmEndpoint::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace acex::shm
