#include "shm/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace acex::shm {
namespace {

std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

void* map_fd(int fd, std::size_t size) {
  void* data =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) throw ShmError(errno_text("mmap"));
  return data;
}

}  // namespace

ShmSegment ShmSegment::create(const std::string& name, std::size_t size) {
  if (name.empty() || name[0] != '/') {
    throw ShmError("segment name must start with '/'");
  }
  if (size == 0) throw ShmError("segment size must be positive");
  // A crashed predecessor leaves its name behind; replacing it (rather
  // than failing EEXIST) is what makes restart robust. O_EXCL after the
  // unlink still catches two producers racing to create the same name.
  ::shm_unlink(name.c_str());
  const int fd =
      ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw ShmError(errno_text("shm_open(create)"));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const std::string text = errno_text("ftruncate");
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw ShmError(text);
  }
  void* data = nullptr;
  try {
    data = map_fd(fd, size);
  } catch (...) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw;
  }
  ::close(fd);  // the mapping keeps the memory alive; the fd is done
  return ShmSegment(data, size, name, /*owner=*/true);
}

ShmSegment ShmSegment::attach(const std::string& name) {
  if (name.empty() || name[0] != '/') {
    throw ShmError("segment name must start with '/'");
  }
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) throw ShmError(errno_text("shm_open(attach)"));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string text = errno_text("fstat");
    ::close(fd);
    throw ShmError(text);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw ShmError("segment is empty (creator has not sized it)");
  }
  void* data = nullptr;
  try {
    data = map_fd(fd, size);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return ShmSegment(data, size, name, /*owner=*/false);
}

ShmSegment ShmSegment::anonymous(std::size_t size) {
  if (size == 0) throw ShmError("segment size must be positive");
  void* data = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (data == MAP_FAILED) throw ShmError(errno_text("mmap(anonymous)"));
  return ShmSegment(data, size, std::string(), /*owner=*/false);
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      name_(std::move(other.name_)),
      owner_(std::exchange(other.owner_, false)) {}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    this->~ShmSegment();
    new (this) ShmSegment(std::move(other));
  }
  return *this;
}

ShmSegment::~ShmSegment() {
  if (owner_) unlink();
  if (data_ != nullptr) ::munmap(data_, size_);
}

void ShmSegment::unlink() noexcept {
  if (!name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

}  // namespace acex::shm
