#include "shm/ring.hpp"

#include <limits>
#include <memory>
#include <new>
#include <thread>

#include "obs/metrics.hpp"

namespace acex::shm {
namespace {

constexpr std::uint32_t kRingMagic = 0x41585348;  // "AXSH"
constexpr std::uint32_t kRingVersion = 1;

constexpr std::uint64_t pack_state(std::uint32_t generation,
                                   std::uint32_t refcount) noexcept {
  return (static_cast<std::uint64_t>(generation) << 32) | refcount;
}
constexpr std::uint32_t state_generation(std::uint64_t state) noexcept {
  return static_cast<std::uint32_t>(state >> 32);
}
constexpr std::uint32_t state_refcount(std::uint64_t state) noexcept {
  return static_cast<std::uint32_t>(state);
}

const Clock& default_clock() {
  static MonotonicClock clock;
  return clock;
}

struct RingMetrics {
  obs::Gauge& slabs_in_use;
  obs::Gauge& occupancy_pct;
  obs::Histogram& reclaim_wait;
  obs::Counter& force_reclaims;
  obs::Counter& stale_releases;
};

RingMetrics& ring_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static RingMetrics metrics{
      reg.gauge("acex.shm.slabs_in_use"),
      reg.gauge("acex.shm.ring.occupancy_pct"),
      reg.histogram("acex.shm.reclaim_wait_seconds"),
      reg.counter("acex.shm.force_reclaims"),
      reg.counter("acex.shm.stale_releases"),
  };
  return metrics;
}

}  // namespace

/// Segment-resident control block. Everything mutable is an address-free
/// atomic so the same bytes work from any mapping of the segment.
struct alignas(64) SlabRing::Header {
  std::uint32_t magic = kRingMagic;
  std::uint32_t version = kRingVersion;
  std::uint32_t slab_count = 0;
  std::uint32_t slab_size = 0;
  std::atomic<std::uint64_t> cursor{0};         ///< allocation scan hint
  /// Shared monotonic stamp source for Slab::claim_seq and
  /// Slab::publish_seq, so "claimed after its last publish" is a total
  /// order across both events.
  std::atomic<std::uint64_t> stamp_counter{0};
  std::atomic<std::uint32_t> in_use{0};
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> reclaim_waits{0};
  std::atomic<std::uint64_t> force_reclaims{0};
  std::atomic<std::uint64_t> stale_releases{0};
};

struct alignas(64) SlabRing::Slab {
  std::atomic<std::uint64_t> state{pack_state(0, 0)};
  std::atomic<std::uint32_t> length{0};
  /// Monotonic publish stamp; the force-reclaim victim is the minimum
  /// (oldest payload = the one whose loss costs the least, exactly the
  /// drop-oldest rung of the broker's slow-consumer ladder).
  std::atomic<std::uint64_t> publish_seq{0};
  /// Stamped from the same counter at claim time. claim_seq > publish_seq
  /// marks a write in flight (claimed, not yet published): staging runs on
  /// broker pump threads concurrently with the publisher's frame builder,
  /// and a slab another thread is actively filling must never be the
  /// force-reclaim victim — a fresh claim would otherwise carry its
  /// previous life's stamp (or 0) and look like the oldest slab in the
  /// ring.
  std::atomic<std::uint64_t> claim_seq{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "segment-resident atomics must be lock-free");

/// The owner object behind every slab-backed BufferView: destruction
/// unregisters the view and drops its pin. release() is generation-checked,
/// so a pin outliving a force-reclaim is harmless by construction.
struct SlabRing::Pin {
  SlabRing* ring;
  std::uint32_t index;
  std::uint32_t generation;
};

std::size_t SlabRing::segment_size(const RingConfig& config) noexcept {
  return sizeof(Header) + config.slab_count * sizeof(Slab) +
         config.slab_count * config.slab_size;
}

SlabRing::SlabRing(ShmSegment& segment, const RingConfig& config) {
  validate(segment.size(), /*attach=*/false, config);
  auto* base = static_cast<std::uint8_t*>(segment.data());
  header_ = new (base) Header();
  header_->slab_count = static_cast<std::uint32_t>(config.slab_count);
  header_->slab_size = static_cast<std::uint32_t>(config.slab_size);
  slabs_ = reinterpret_cast<Slab*>(base + sizeof(Header));
  for (std::size_t i = 0; i < config.slab_count; ++i) new (slabs_ + i) Slab();
  arena_ = base + sizeof(Header) + config.slab_count * sizeof(Slab);
  reclaim_wait_ = config.reclaim_wait;
  clock_ = config.clock != nullptr ? config.clock : &default_clock();
  publish_gauges();
}

SlabRing::SlabRing(ShmSegment& segment, const RingConfig& runtime,
                   bool /*attach*/) {
  auto* base = static_cast<std::uint8_t*>(segment.data());
  if (segment.size() < sizeof(Header)) {
    throw ShmError("truncated segment: smaller than the ring header");
  }
  header_ = reinterpret_cast<Header*>(base);
  RingConfig described = runtime;
  described.slab_count = header_->slab_count;
  described.slab_size = header_->slab_size;
  validate(segment.size(), /*attach=*/true, described);
  slabs_ = reinterpret_cast<Slab*>(base + sizeof(Header));
  arena_ = base + sizeof(Header) + described.slab_count * sizeof(Slab);
  reclaim_wait_ = runtime.reclaim_wait;
  clock_ = runtime.clock != nullptr ? runtime.clock : &default_clock();
}

void SlabRing::validate(std::size_t segment_bytes, bool attach,
                        const RingConfig& config) {
  if (attach) {
    if (header_->magic != kRingMagic) {
      throw ShmError("attach: bad ring magic (not a slab ring segment)");
    }
    if (header_->version != kRingVersion) {
      throw ShmError("attach: ring version " +
                     std::to_string(header_->version) + " unsupported");
    }
  }
  if (config.slab_count == 0 || config.slab_size == 0) {
    throw ShmError("ring needs a positive slab count and slab size");
  }
  if (config.slab_count > (std::uint64_t{1} << 20) ||
      config.slab_size > (std::uint64_t{1} << 31)) {
    throw ShmError("ring geometry implausible (corrupt header?)");
  }
  if (segment_bytes < segment_size(config)) {
    throw ShmError(
        attach ? "truncated segment: header claims more slabs than mapped"
               : "segment too small for the configured ring");
  }
}

std::uint8_t* SlabRing::slab_data(std::uint32_t index) const noexcept {
  return arena_ + static_cast<std::size_t>(index) * header_->slab_size;
}

std::uint64_t SlabRing::next_stamp() noexcept {
  return header_->stamp_counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

SlabRing::WriteSlab SlabRing::acquire(std::size_t length) {
  if (length > header_->slab_size) {
    throw ShmError("payload of " + std::to_string(length) +
                   " bytes exceeds the slab size of " +
                   std::to_string(header_->slab_size));
  }
  const std::uint32_t count = header_->slab_count;
  const Seconds start = clock_->now();
  bool waited = false;
  // Spin cap so a non-advancing clock (virtual time in benches) still
  // reaches the reclaim rung instead of looping forever.
  int spins_left = 10000;
  for (;;) {
    const std::uint64_t hint = header_->cursor.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t idx = static_cast<std::uint32_t>((hint + i) % count);
      std::uint64_t cur = slabs_[idx].state.load(std::memory_order_acquire);
      if (state_refcount(cur) != 0) continue;
      const std::uint32_t gen = state_generation(cur) + 1;
      if (slabs_[idx].state.compare_exchange_strong(
              cur, pack_state(gen, 1), std::memory_order_acq_rel)) {
        slabs_[idx].claim_seq.store(next_stamp(), std::memory_order_relaxed);
        header_->cursor.store(idx + 1, std::memory_order_relaxed);
        header_->in_use.fetch_add(1, std::memory_order_relaxed);
        header_->acquires.fetch_add(1, std::memory_order_relaxed);
        if (waited) {
          header_->reclaim_waits.fetch_add(1, std::memory_order_relaxed);
          ring_metrics().reclaim_wait.record(clock_->now() - start);
        }
        publish_gauges();
        return {idx, gen, slab_data(idx), header_->slab_size};
      }
    }
    waited = true;
    if (clock_->now() - start < reclaim_wait_ && --spins_left > 0) {
      std::this_thread::yield();
      continue;
    }
    // Bounded wait expired: reclaim the oldest PUBLISHED slab out from
    // under whoever still pins it. The generation bump is the whole
    // safety story — stale descriptors fail resolve, stale releases
    // become no-ops, and a reader mid-copy is caught by the frame CRC.
    // Slabs whose claim stamp is newer than their publish stamp are
    // writes in flight on another thread; reclaiming one would rip the
    // arena out from under an active writer, so they are victims of last
    // resort — oldest claim first, and only when every in-use slab is
    // mid-write (the no-stall guarantee outranks that pathology).
    std::uint32_t victim = count;
    std::uint64_t victim_state = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t in_flight_victim = count;
    std::uint64_t in_flight_state = 0;
    std::uint64_t oldest_claim = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t cur = slabs_[i].state.load(std::memory_order_acquire);
      if (state_refcount(cur) == 0) continue;
      const std::uint64_t claimed =
          slabs_[i].claim_seq.load(std::memory_order_relaxed);
      const std::uint64_t seq =
          slabs_[i].publish_seq.load(std::memory_order_relaxed);
      if (claimed > seq) {
        if (claimed < oldest_claim) {
          oldest_claim = claimed;
          in_flight_victim = i;
          in_flight_state = cur;
        }
        continue;
      }
      if (seq < oldest) {
        oldest = seq;
        victim = i;
        victim_state = cur;
      }
    }
    if (victim == count) {
      victim = in_flight_victim;
      victim_state = in_flight_state;
    }
    if (victim == count) continue;  // everything freed while we scanned
    // CAS against the EXACT state observed during the scan: a claim that
    // landed since bumped the generation (and may not have stamped its
    // claim_seq yet), so it fails this CAS instead of being victimized.
    std::uint64_t cur = victim_state;
    const std::uint32_t gen = state_generation(cur) + 1;
    if (!slabs_[victim].state.compare_exchange_strong(
            cur, pack_state(gen, 1), std::memory_order_acq_rel)) {
      continue;  // racing release, share, or claim; rescan
    }
    slabs_[victim].claim_seq.store(next_stamp(), std::memory_order_relaxed);
    // in_use unchanged: the victim was in use and still is, under us.
    header_->force_reclaims.fetch_add(1, std::memory_order_relaxed);
    header_->reclaim_waits.fetch_add(1, std::memory_order_relaxed);
    header_->acquires.fetch_add(1, std::memory_order_relaxed);
    ring_metrics().force_reclaims.add();
    ring_metrics().reclaim_wait.record(clock_->now() - start);
    publish_gauges();
    return {victim, gen, slab_data(victim), header_->slab_size};
  }
}

BufferView SlabRing::publish(const WriteSlab& slab, std::size_t length) {
  slabs_[slab.index].length.store(static_cast<std::uint32_t>(length),
                                  std::memory_order_release);
  slabs_[slab.index].publish_seq.store(next_stamp(),
                                       std::memory_order_relaxed);
  return make_view(slab.index, slab.generation, length);
}

void SlabRing::abandon(const WriteSlab& slab) noexcept {
  release(slab.index, slab.generation);
}

BufferView SlabRing::make_view(std::uint32_t index, std::uint32_t generation,
                               std::size_t length) {
  auto pin = std::shared_ptr<Pin>(new Pin{this, index, generation},
                                  [](Pin* p) {
                                    SlabRing* ring = p->ring;
                                    {
                                      std::lock_guard<std::mutex> lock(
                                          ring->pins_mutex_);
                                      ring->pins_.erase(p);
                                    }
                                    ring->release(p->index, p->generation);
                                    delete p;
                                  });
  {
    std::lock_guard<std::mutex> lock(pins_mutex_);
    pins_.emplace(pin.get(), std::make_pair(index, generation));
  }
  return BufferView(std::shared_ptr<const void>(pin, pin.get()),
                    ByteView(slab_data(index), length));
}

void SlabRing::release(std::uint32_t index, std::uint32_t generation) noexcept {
  std::uint64_t cur = slabs_[index].state.load(std::memory_order_acquire);
  for (;;) {
    if (state_generation(cur) != generation || state_refcount(cur) == 0) {
      // The slab moved on without us (force-reclaim): this pin's slab is
      // gone and its release must not touch the next tenant's count.
      header_->stale_releases.fetch_add(1, std::memory_order_relaxed);
      ring_metrics().stale_releases.add();
      return;
    }
    const std::uint32_t refs = state_refcount(cur) - 1;
    if (slabs_[index].state.compare_exchange_weak(
            cur, pack_state(generation, refs), std::memory_order_acq_rel)) {
      if (refs == 0) {
        header_->in_use.fetch_sub(1, std::memory_order_relaxed);
        publish_gauges();
      }
      return;
    }
  }
}

std::optional<SlabDescriptor> SlabRing::descriptor_of(
    const BufferView& view) const {
  const void* key = view.owner_key();
  if (key == nullptr) return std::nullopt;
  std::pair<std::uint32_t, std::uint32_t> info;
  {
    std::lock_guard<std::mutex> lock(pins_mutex_);
    const auto it = pins_.find(key);
    if (it == pins_.end()) return std::nullopt;
    info = it->second;
  }
  // A subview into the middle of a slab has no descriptor (descriptors
  // address whole published payloads); let the caller fall back to a copy.
  if (view.data() != slab_data(info.first)) return std::nullopt;
  SlabDescriptor desc;
  desc.offset =
      static_cast<std::uint64_t>(info.first) * header_->slab_size;
  desc.generation = info.second;
  desc.length =
      static_cast<std::uint32_t>(view.size());  // views cover whole frames
  return desc;
}

bool SlabRing::add_ref(const SlabDescriptor& desc) noexcept {
  const auto index = static_cast<std::uint32_t>(desc.offset /
                                                header_->slab_size);
  if (desc.offset % header_->slab_size != 0 || index >= header_->slab_count) {
    return false;
  }
  std::uint64_t cur = slabs_[index].state.load(std::memory_order_acquire);
  for (;;) {
    if (state_generation(cur) != desc.generation ||
        state_refcount(cur) == 0) {
      return false;  // already reclaimed: sender must copy instead
    }
    if (slabs_[index].state.compare_exchange_weak(
            cur, pack_state(desc.generation, state_refcount(cur) + 1),
            std::memory_order_acq_rel)) {
      return true;
    }
  }
}

BufferView SlabRing::resolve(const SlabDescriptor& desc) {
  if (desc.offset % header_->slab_size != 0 ||
      desc.offset / header_->slab_size >= header_->slab_count) {
    throw ShmError("descriptor offset outside the slab arena");
  }
  if (desc.length == 0 || desc.length > header_->slab_size) {
    throw ShmError("descriptor length does not fit a slab");
  }
  const auto index =
      static_cast<std::uint32_t>(desc.offset / header_->slab_size);
  const std::uint64_t cur = slabs_[index].state.load(std::memory_order_acquire);
  if (state_generation(cur) != desc.generation || state_refcount(cur) == 0) {
    throw ShmStaleError("stale descriptor: slab generation " +
                        std::to_string(state_generation(cur)) +
                        " has moved past " + std::to_string(desc.generation));
  }
  const std::uint32_t published =
      slabs_[index].length.load(std::memory_order_acquire);
  if (desc.length > published) {
    throw ShmError("descriptor length exceeds the published payload");
  }
  // Adopt the reference add_ref transferred with the descriptor: the view's
  // pin release IS that reference's drop.
  return make_view(index, desc.generation, desc.length);
}

void SlabRing::drop_ref(const SlabDescriptor& desc) noexcept {
  if (desc.offset % header_->slab_size != 0) return;
  const auto index =
      static_cast<std::uint32_t>(desc.offset / header_->slab_size);
  if (index >= header_->slab_count) return;
  release(index, desc.generation);
}

RingStats SlabRing::stats() const {
  RingStats s;
  s.slab_count = header_->slab_count;
  s.slab_size = header_->slab_size;
  s.slabs_in_use = header_->in_use.load(std::memory_order_relaxed);
  s.acquires = header_->acquires.load(std::memory_order_relaxed);
  s.reclaim_waits = header_->reclaim_waits.load(std::memory_order_relaxed);
  s.force_reclaims = header_->force_reclaims.load(std::memory_order_relaxed);
  s.stale_releases = header_->stale_releases.load(std::memory_order_relaxed);
  return s;
}

std::size_t SlabRing::slab_size() const noexcept { return header_->slab_size; }
std::size_t SlabRing::slab_count() const noexcept {
  return header_->slab_count;
}

void SlabRing::publish_gauges() const noexcept {
  const std::uint32_t used = header_->in_use.load(std::memory_order_relaxed);
  auto& metrics = ring_metrics();
  metrics.slabs_in_use.set(used);
  metrics.occupancy_pct.set(static_cast<std::int64_t>(
      100.0 * used / static_cast<double>(header_->slab_count)));
}

}  // namespace acex::shm
