#include "echo/bus.hpp"

#include "util/error.hpp"

namespace acex::echo {

ChannelId EventBus::create_channel(std::string name) {
  if (has(name)) throw ConfigError("channel name already in use: " + name);
  const ChannelId id = next_id_++;
  Node node;
  node.channel = std::make_shared<EventChannel>(std::move(name));
  channels_.emplace(id, std::move(node));
  return id;
}

EventBus::Node& EventBus::node(ChannelId id) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw ConfigError("unknown channel id " + std::to_string(id));
  }
  return it->second;
}

EventChannel& EventBus::channel(ChannelId id) { return *node(id).channel; }

const EventChannel& EventBus::channel(ChannelId id) const {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw ConfigError("unknown channel id " + std::to_string(id));
  }
  return *it->second.channel;
}

ChannelId EventBus::find(std::string_view name) const {
  for (const auto& [id, n] : channels_) {
    if (n.channel->name() == name) return id;
  }
  throw ConfigError("no channel named " + std::string(name));
}

bool EventBus::has(std::string_view name) const noexcept {
  for (const auto& [id, n] : channels_) {
    if (n.channel->name() == name) return true;
  }
  return false;
}

ChannelId EventBus::derive_channel(ChannelId source, EventHandler handler,
                                   std::string name) {
  if (!handler) throw ConfigError("derive_channel: handler must not be empty");
  EventChannel& src = channel(source);  // validates source id
  const ChannelId id = create_channel(std::move(name));

  // Data path: source -> handler -> derived. The tap holds a weak_ptr, not
  // a reference: remove_channel(derived) can run from a sink of the source
  // channel while this very submit() is dispatching, and the tap must then
  // either skip the dead channel (lock fails) or keep it alive long enough
  // to finish an in-flight delivery (lock succeeded before erasure).
  std::weak_ptr<EventChannel> weak_derived = node(id).channel;
  const SubscriberId tap = src.subscribe(
      [weak_derived, handler = std::move(handler)](const Event& event) {
        const std::shared_ptr<EventChannel> derived = weak_derived.lock();
        if (!derived) return;  // derived channel removed; tap is inert
        std::optional<Event> transformed = handler(event);
        if (transformed) derived->submit(*std::move(transformed));
      });

  // Control path: consumer signals on the derived channel reach the
  // original producer. Weak for the same reason as the data tap, mirrored:
  // the source may be removed while the derived channel lives on.
  std::weak_ptr<EventChannel> weak_src = node(source).channel;
  const SubscriberId control_tap = node(id).channel->on_control(
      [weak_src](const AttributeMap& attrs) {
        if (const std::shared_ptr<EventChannel> src = weak_src.lock()) {
          src->signal_control(attrs);
        }
      });

  Node& n = node(id);
  n.source = source;
  n.tap = tap;
  n.control_tap = control_tap;
  n.derived = true;
  return id;
}

void EventBus::remove_channel(ChannelId id) {
  Node& n = node(id);
  if (n.derived) {
    const auto src_it = channels_.find(n.source);
    if (src_it != channels_.end()) {
      src_it->second.channel->unsubscribe(n.tap);
    }
    n.channel->remove_control(n.control_tap);
  }
  // Detach any channels derived FROM this one: their taps die with the
  // channel object, so just clear their back-references.
  for (auto& [cid, other] : channels_) {
    if (other.derived && other.source == id) other.derived = false;
  }
  channels_.erase(id);
}

}  // namespace acex::echo
