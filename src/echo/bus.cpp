#include "echo/bus.hpp"

#include "util/error.hpp"

namespace acex::echo {

ChannelId EventBus::create_channel(std::string name) {
  if (has(name)) throw ConfigError("channel name already in use: " + name);
  const ChannelId id = next_id_++;
  Node node;
  node.channel = std::make_unique<EventChannel>(std::move(name));
  channels_.emplace(id, std::move(node));
  return id;
}

EventBus::Node& EventBus::node(ChannelId id) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw ConfigError("unknown channel id " + std::to_string(id));
  }
  return it->second;
}

EventChannel& EventBus::channel(ChannelId id) { return *node(id).channel; }

const EventChannel& EventBus::channel(ChannelId id) const {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw ConfigError("unknown channel id " + std::to_string(id));
  }
  return *it->second.channel;
}

ChannelId EventBus::find(std::string_view name) const {
  for (const auto& [id, n] : channels_) {
    if (n.channel->name() == name) return id;
  }
  throw ConfigError("no channel named " + std::string(name));
}

bool EventBus::has(std::string_view name) const noexcept {
  for (const auto& [id, n] : channels_) {
    if (n.channel->name() == name) return true;
  }
  return false;
}

ChannelId EventBus::derive_channel(ChannelId source, EventHandler handler,
                                   std::string name) {
  if (!handler) throw ConfigError("derive_channel: handler must not be empty");
  EventChannel& src = channel(source);  // validates source id
  const ChannelId id = create_channel(std::move(name));
  EventChannel& derived = *node(id).channel;

  // Data path: source -> handler -> derived.
  const SubscriberId tap = src.subscribe(
      [&derived, handler = std::move(handler)](const Event& event) {
        std::optional<Event> transformed = handler(event);
        if (transformed) derived.submit(*std::move(transformed));
      });

  // Control path: consumer signals on the derived channel reach the
  // original producer.
  EventChannel* src_ptr = &src;
  const SubscriberId control_tap = derived.on_control(
      [src_ptr](const AttributeMap& attrs) { src_ptr->signal_control(attrs); });

  Node& n = node(id);
  n.source = source;
  n.tap = tap;
  n.control_tap = control_tap;
  n.derived = true;
  return id;
}

void EventBus::remove_channel(ChannelId id) {
  Node& n = node(id);
  if (n.derived) {
    const auto src_it = channels_.find(n.source);
    if (src_it != channels_.end()) {
      src_it->second.channel->unsubscribe(n.tap);
    }
    n.channel->remove_control(n.control_tap);
  }
  // Detach any channels derived FROM this one: their taps die with the
  // channel object, so just clear their back-references.
  for (auto& [cid, other] : channels_) {
    if (other.derived && other.source == id) other.derived = false;
  }
  channels_.erase(id);
}

}  // namespace acex::echo
