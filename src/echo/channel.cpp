#include "echo/channel.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::echo {

Bytes serialize_event(const Event& event) {
  Bytes out;
  event.attributes.serialize(out);
  put_varint(out, event.payload.size());
  out.insert(out.end(), event.payload.begin(), event.payload.end());
  return out;
}

Event deserialize_event(ByteView in) {
  std::size_t pos = 0;
  Event event;
  event.attributes = AttributeMap::deserialize(in, &pos);
  const std::uint64_t size = get_varint(in, &pos);
  if (pos + size != in.size()) {
    throw DecodeError("event: payload size mismatch");
  }
  const auto body = in.subspan(pos);
  event.payload.assign(body.begin(), body.end());
  return event;
}

EventChannel::EventChannel(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw ConfigError("channel name must not be empty");
}

SubscriberId EventChannel::subscribe(EventSink sink) {
  if (!sink) throw ConfigError("subscriber sink must not be empty");
  const SubscriberId id = next_id_++;
  sinks_.push_back({id, std::move(sink)});
  return id;
}

void EventChannel::unsubscribe(SubscriberId id) noexcept {
  std::erase_if(sinks_, [id](const auto& e) { return e.id == id; });
}

std::size_t EventChannel::subscriber_count() const noexcept {
  return sinks_.size();
}

void EventChannel::submit(Event event) {
  ++events_;
  bytes_ += event.payload.size();
  // Snapshot ids so a sink that (un)subscribes during dispatch cannot
  // invalidate the iteration.
  std::vector<SubscriberId> ids;
  ids.reserve(sinks_.size());
  for (const auto& e : sinks_) ids.push_back(e.id);
  std::exception_ptr first_error;
  for (const SubscriberId id : ids) {
    const auto it = std::find_if(sinks_.begin(), sinks_.end(),
                                 [id](const auto& e) { return e.id == id; });
    if (it == sinks_.end()) continue;
    // Copy the callback before invoking: if the sink unsubscribes itself,
    // erase_if move-assigns over the std::function we are executing, which
    // destroys its captures mid-call. The copy keeps them alive.
    const auto callback = it->callback;
    try {
      callback(event);
    } catch (...) {
      // One faulty subscriber must not starve the others: finish the
      // dispatch, then surface the first failure to the producer.
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

SubscriberId EventChannel::on_control(ControlSink sink) {
  if (!sink) throw ConfigError("control sink must not be empty");
  const SubscriberId id = next_id_++;
  control_sinks_.push_back({id, std::move(sink)});
  return id;
}

void EventChannel::remove_control(SubscriberId id) noexcept {
  std::erase_if(control_sinks_, [id](const auto& e) { return e.id == id; });
}

void EventChannel::signal_control(const AttributeMap& attrs) {
  std::vector<SubscriberId> ids;
  ids.reserve(control_sinks_.size());
  for (const auto& e : control_sinks_) ids.push_back(e.id);
  for (const SubscriberId id : ids) {
    const auto it =
        std::find_if(control_sinks_.begin(), control_sinks_.end(),
                     [id](const auto& e) { return e.id == id; });
    if (it == control_sinks_.end()) continue;
    const auto callback = it->callback;  // see submit(): self-removal safety
    callback(attrs);
  }
}

}  // namespace acex::echo
