#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "echo/channel.hpp"

namespace acex::echo {

/// Identifies a channel within one EventBus.
using ChannelId = std::uint64_t;

/// The channel space of one process — ECho's registry through which
/// producers and consumers are matched by channel, plus the §3.2 derivation
/// operation: creating a new channel whose events are the source channel's
/// events passed through a handler (e.g. a compression handler), taken "by
/// event consumers" without touching the producer.
class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Create a channel; names must be unique within the bus.
  ChannelId create_channel(std::string name);

  /// Throws ConfigError for unknown ids.
  EventChannel& channel(ChannelId id);
  const EventChannel& channel(ChannelId id) const;

  /// Find by name; throws ConfigError when absent.
  ChannelId find(std::string_view name) const;
  bool has(std::string_view name) const noexcept;

  std::size_t channel_count() const noexcept { return channels_.size(); }

  /// §3.2: derive a new channel from `source` through `handler`. Every
  /// event submitted to the source is run through the handler and, unless
  /// filtered, submitted to the derived channel. Control attributes
  /// signalled on the derived channel propagate back to the source, so a
  /// consumer of the derived channel can still reach the original producer.
  ChannelId derive_channel(ChannelId source, EventHandler handler,
                           std::string name);

  /// Remove a channel (and detach its derivation tap, if any). Events
  /// already in flight are unaffected; unknown ids throw ConfigError.
  void remove_channel(ChannelId id);

 private:
  struct Node {
    // shared_ptr so a derivation tap can hold a weak_ptr: removing a derived
    // channel while its source is mid-submit must not leave the tap calling
    // into a destroyed channel (the tap locks, and a failed lock is a no-op).
    std::shared_ptr<EventChannel> channel;
    // Set when this channel was derived: which channel feeds it and the
    // subscription/control hooks to tear down on removal.
    ChannelId source = 0;
    SubscriberId tap = 0;
    SubscriberId control_tap = 0;
    bool derived = false;
  };

  Node& node(ChannelId id);

  std::map<ChannelId, Node> channels_;
  ChannelId next_id_ = 1;
};

}  // namespace acex::echo
