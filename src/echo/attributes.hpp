#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/bytes.hpp"

namespace acex::echo {

/// Value of a quality attribute.
using AttrValue = std::variant<std::int64_t, double, std::string, Bytes>;

/// ECho's "globally named and interpreted quality attributes" (§3.1):
/// typed key-value metadata that travels with events and with control
/// messages across address spaces. The adaptive layer uses them to carry
/// the compression method id, measured accept rates, and method-change
/// requests between consumers and producers.
class AttributeMap {
 public:
  void set(std::string name, AttrValue value);
  void set_int(std::string name, std::int64_t v) { set(std::move(name), v); }
  void set_double(std::string name, double v) { set(std::move(name), v); }
  void set_string(std::string name, std::string v) {
    set(std::move(name), std::move(v));
  }
  void set_bytes(std::string name, Bytes v) { set(std::move(name), std::move(v)); }

  bool has(std::string_view name) const noexcept;
  void erase(std::string_view name) noexcept;
  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  /// Typed reads; std::nullopt when absent or of a different type.
  std::optional<std::int64_t> get_int(std::string_view name) const noexcept;
  std::optional<double> get_double(std::string_view name) const noexcept;
  std::optional<std::string> get_string(std::string_view name) const;
  std::optional<Bytes> get_bytes(std::string_view name) const;

  /// Copy every attribute of `other` into this map (overwriting).
  void merge(const AttributeMap& other);

  /// Wire form used by the remote channel bridge: varint count, then per
  /// attribute a name string, a type byte, and the value.
  void serialize(Bytes& out) const;
  static AttributeMap deserialize(ByteView in, std::size_t* pos);

  bool operator==(const AttributeMap&) const = default;

  const std::map<std::string, AttrValue, std::less<>>& items() const noexcept {
    return attrs_;
  }

 private:
  std::map<std::string, AttrValue, std::less<>> attrs_;
};

}  // namespace acex::echo
