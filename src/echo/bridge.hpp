#pragma once

#include <map>
#include <set>
#include <vector>

#include "echo/channel.hpp"
#include "transport/retransmit.hpp"
#include "transport/transport.hpp"

namespace acex::echo {

/// Quality attribute carrying NACKed sequence numbers upstream (a bytes
/// attribute holding consecutive varints). Bridge-internal: pump_control
/// consumes it before application control sinks ever see the message.
inline constexpr const char* kNackAttr = "acex.nack.seqs";

/// Bridges one EventChannel across a Transport, extending the channel
/// abstraction over a (possibly emulated) network: ECho's channels are
/// "distributed entities, with bookkeeping shared between all processes
/// where they are referenced" (§3.1).
///
/// Producer side. Subscribes to a local channel and forwards every event
/// over the transport; control messages arriving from the remote side are
/// replayed onto the local channel's control path, so a remote consumer
/// can steer a local producer (e.g. request a compression-method change).
///
/// Every forwarded event carries a bridge-level sequence number and is
/// retained in a bounded retransmit ring; when the consumer side NACKs
/// missing or corrupt sequences over the control path, pump_control()
/// replays them (capped retries per sequence).
class ChannelSender {
 public:
  /// Both `channel` and `transport` must outlive the sender. `ring_capacity`
  /// bounds the retransmit history; `max_retries` caps replays per event.
  ChannelSender(EventChannel& channel, transport::Transport& transport,
                std::size_t ring_capacity = 64, int max_retries = 3);
  ~ChannelSender();

  ChannelSender(const ChannelSender&) = delete;
  ChannelSender& operator=(const ChannelSender&) = delete;

  /// Drain pending control messages from the remote side (non-blocking for
  /// SimTransport; for TcpTransport call from the producer's loop thread).
  /// NACK requests are serviced from the retransmit ring; any application
  /// attributes — whether in their own message or riding alongside a NACK
  /// payload — are applied to the local channel. Returns the number of
  /// control messages applied (NACK-only messages count when at least one
  /// event was replayed). Corrupt control messages are counted and
  /// skipped, never thrown — the bridge is the recovery boundary on this
  /// path too.
  std::size_t pump_control();

  std::uint64_t events_forwarded() const noexcept { return forwarded_; }
  std::uint64_t events_retransmitted() const noexcept { return retransmits_; }
  /// NACKs that could not be honoured (sequence evicted or out of retries).
  std::uint64_t nacks_refused() const noexcept {
    return ring_.refusals();
  }
  /// Control messages dropped because they failed to parse.
  std::uint64_t control_corrupt_dropped() const noexcept {
    return control_corrupt_;
  }

 private:
  EventChannel* channel_;
  transport::Transport* transport_;
  SubscriberId tap_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t control_corrupt_ = 0;
  std::uint64_t next_sequence_ = 0;
  transport::RetransmitRing ring_;
};

/// Consumer side. Call poll() to pull remote events into the local
/// channel; use signal_control() to send quality attributes upstream.
///
/// The receiver tracks bridge sequence numbers: duplicates are dropped,
/// and gaps — dropped upstream, or corrupted so the sequence cannot be
/// trusted — are recorded as missing once later sequences arrive.
/// signal_nacks() requests them again over the control path; sequences
/// past the retry cap are abandoned AND settled — the delivery cursor
/// skips them so one unrecoverable event cannot wedge the gap window
/// (and with it all later traffic) forever.
class ChannelReceiver {
 public:
  /// `gap_window` bounds how far ahead of the delivery cursor a wire
  /// sequence may claim to be before it is rejected as corrupt (the
  /// varint has no integrity check of its own); keep it >= the sender's
  /// ring_capacity — anything further ahead could never be replayed.
  ChannelReceiver(EventChannel& channel, transport::Transport& transport,
                  int nack_retry_cap = 3, std::uint64_t gap_window = 1024);

  ChannelReceiver(const ChannelReceiver&) = delete;
  ChannelReceiver& operator=(const ChannelReceiver&) = delete;

  /// Receive at most `max_events` events (default: drain everything
  /// available), submitting each into the local channel. Returns how many
  /// events were delivered. Returns early when the transport reports no
  /// message / closed. Corrupt messages are counted and skipped, never
  /// thrown — the bridge is the recovery boundary.
  std::size_t poll(std::size_t max_events = SIZE_MAX);

  /// Send quality attributes upstream to the producer-side bridge.
  void signal_control(const AttributeMap& attrs);

  /// NACK every currently missing sequence (respecting the retry cap) in
  /// one control message. Returns how many sequences were requested; 0
  /// means nothing is missing or everything missing is past the cap.
  std::size_t signal_nacks();

  /// Sequences currently believed missing (for diagnostics and tests).
  std::vector<std::uint64_t> missing() const;

  std::uint64_t events_received() const noexcept { return received_; }
  std::uint64_t duplicates_dropped() const noexcept { return duplicates_; }
  std::uint64_t corrupt_dropped() const noexcept { return corrupt_; }
  std::uint64_t nacks_signalled() const noexcept { return nacks_signalled_; }
  /// Sequences given up on after the retry cap and skipped past.
  std::uint64_t events_abandoned() const noexcept { return abandoned_; }

 private:
  bool already_delivered(std::uint64_t seq) const noexcept;
  void mark_delivered(std::uint64_t seq);

  EventChannel* channel_;
  transport::Transport* transport_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t nacks_signalled_ = 0;
  std::uint64_t abandoned_ = 0;
  int nack_retry_cap_;
  std::uint64_t gap_window_;

  std::uint64_t next_contiguous_ = 0;
  std::set<std::uint64_t> delivered_ahead_;
  std::uint64_t max_seen_ = 0;
  bool any_seen_ = false;
  std::map<std::uint64_t, int> nack_attempts_;
};

}  // namespace acex::echo
