#pragma once

#include "echo/channel.hpp"
#include "transport/transport.hpp"

namespace acex::echo {

/// Bridges one EventChannel across a Transport, extending the channel
/// abstraction over a (possibly emulated) network: ECho's channels are
/// "distributed entities, with bookkeeping shared between all processes
/// where they are referenced" (§3.1).
///
/// Producer side. Subscribes to a local channel and forwards every event
/// over the transport; control messages arriving from the remote side are
/// replayed onto the local channel's control path, so a remote consumer
/// can steer a local producer (e.g. request a compression-method change).
class ChannelSender {
 public:
  /// Both `channel` and `transport` must outlive the sender.
  ChannelSender(EventChannel& channel, transport::Transport& transport);
  ~ChannelSender();

  ChannelSender(const ChannelSender&) = delete;
  ChannelSender& operator=(const ChannelSender&) = delete;

  /// Drain pending control messages from the remote side (non-blocking for
  /// SimTransport; for TcpTransport call from the producer's loop thread).
  /// Returns the number of control messages applied.
  std::size_t pump_control();

  std::uint64_t events_forwarded() const noexcept { return forwarded_; }

 private:
  EventChannel* channel_;
  transport::Transport* transport_;
  SubscriberId tap_ = 0;
  std::uint64_t forwarded_ = 0;
};

/// Consumer side. Call poll() to pull remote events into the local
/// channel; use signal_control() to send quality attributes upstream.
class ChannelReceiver {
 public:
  ChannelReceiver(EventChannel& channel, transport::Transport& transport);

  ChannelReceiver(const ChannelReceiver&) = delete;
  ChannelReceiver& operator=(const ChannelReceiver&) = delete;

  /// Receive at most `max_events` events (default: drain everything
  /// available), submitting each into the local channel. Returns how many
  /// events were delivered. Returns early when the transport reports no
  /// message / closed.
  std::size_t poll(std::size_t max_events = SIZE_MAX);

  /// Send quality attributes upstream to the producer-side bridge.
  void signal_control(const AttributeMap& attrs);

  std::uint64_t events_received() const noexcept { return received_; }

 private:
  EventChannel* channel_;
  transport::Transport* transport_;
  std::uint64_t received_ = 0;
};

}  // namespace acex::echo
