#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "echo/event.hpp"

namespace acex::echo {

/// Consumer callback: receives each event submitted to the channel.
using EventSink = std::function<void(const Event&)>;

/// Data-path computation applied to events in flight (§3.1 "handlers").
/// "Handlers may transform events, reduce their sizes or enhance the
/// information they contain, and they can even prevent events from being
/// transported" — returning std::nullopt drops the event.
using EventHandler = std::function<std::optional<Event>(Event)>;

/// Control-path callback at the producer side: invoked when a consumer
/// signals attributes upstream (how the adaptive consumer asks the source
/// to change compression method, §3.2).
using ControlSink = std::function<void(const AttributeMap&)>;

/// Identifies a subscription within one channel.
using SubscriberId = std::uint64_t;

/// A publish/subscribe event channel (§3.1). Producers submit() events;
/// every currently subscribed consumer's sink runs synchronously, in
/// subscription order. Subscription is anonymous: producers never learn who
/// consumes (which is why method changes flow through derivation or control
/// attributes rather than producer-side per-consumer state).
///
/// Not thread-safe by design: ECho-style channels belong to one dispatch
/// context; bridge remote consumers with ChannelSender/ChannelReceiver.
class EventChannel {
 public:
  explicit EventChannel(std::string name);

  const std::string& name() const noexcept { return name_; }

  SubscriberId subscribe(EventSink sink);
  /// Unknown ids are ignored (idempotent unsubscribe).
  void unsubscribe(SubscriberId id) noexcept;
  std::size_t subscriber_count() const noexcept;

  /// Deliver an event to all subscribers. A sink may (un)subscribe — even
  /// itself — during dispatch without invalidating the iteration. If a sink
  /// throws, the remaining sinks still receive the event and the first
  /// exception is rethrown to the producer afterwards.
  void submit(Event event);

  /// Register a producer-side control callback.
  SubscriberId on_control(ControlSink sink);
  void remove_control(SubscriberId id) noexcept;

  /// Consumer -> producer signalling via quality attributes.
  void signal_control(const AttributeMap& attrs);

  // -- statistics the benches and adaptive layer read --
  std::uint64_t events_submitted() const noexcept { return events_; }
  std::uint64_t bytes_submitted() const noexcept { return bytes_; }

 private:
  template <typename T>
  struct Entry {
    SubscriberId id;
    T callback;
  };

  std::string name_;
  std::vector<Entry<EventSink>> sinks_;
  std::vector<Entry<ControlSink>> control_sinks_;
  SubscriberId next_id_ = 1;
  std::uint64_t events_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace acex::echo
