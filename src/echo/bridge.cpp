#include "echo/bridge.hpp"

#include "util/error.hpp"

namespace acex::echo {
namespace {

// Message discriminators on the bridged transport.
constexpr std::uint8_t kMsgEvent = 0;
constexpr std::uint8_t kMsgControl = 1;

Bytes wrap(std::uint8_t kind, ByteView body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(kind);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

ChannelSender::ChannelSender(EventChannel& channel,
                             transport::Transport& transport)
    : channel_(&channel), transport_(&transport) {
  tap_ = channel_->subscribe([this](const Event& event) {
    transport_->send(wrap(kMsgEvent, serialize_event(event)));
    ++forwarded_;
  });
}

ChannelSender::~ChannelSender() { channel_->unsubscribe(tap_); }

std::size_t ChannelSender::pump_control() {
  std::size_t applied = 0;
  while (auto message = transport_->receive()) {
    if (message->empty()) throw DecodeError("bridge: empty message");
    const ByteView body = ByteView(*message).subspan(1);
    if ((*message)[0] == kMsgControl) {
      std::size_t pos = 0;
      const AttributeMap attrs = AttributeMap::deserialize(body, &pos);
      channel_->signal_control(attrs);
      ++applied;
    }
    // Event messages arriving at the producer side are a protocol error,
    // but tolerating them keeps loopback tests simple: ignore.
  }
  return applied;
}

ChannelReceiver::ChannelReceiver(EventChannel& channel,
                                 transport::Transport& transport)
    : channel_(&channel), transport_(&transport) {}

std::size_t ChannelReceiver::poll(std::size_t max_events) {
  std::size_t delivered = 0;
  while (delivered < max_events) {
    const auto message = transport_->receive();
    if (!message) break;
    if (message->empty()) throw DecodeError("bridge: empty message");
    const ByteView body = ByteView(*message).subspan(1);
    if ((*message)[0] == kMsgEvent) {
      channel_->submit(deserialize_event(body));
      ++received_;
      ++delivered;
    }
  }
  return delivered;
}

void ChannelReceiver::signal_control(const AttributeMap& attrs) {
  Bytes body;
  attrs.serialize(body);
  transport_->send(wrap(kMsgControl, body));
}

}  // namespace acex::echo
