#include "echo/bridge.hpp"

#include <algorithm>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::echo {
namespace {

// Message discriminators on the bridged transport. kMsgEvent is the legacy
// unsequenced envelope and kMsgEventSeq the sequence-only one; senders now
// emit kMsgEventSeqCrc (sequence + body CRC), but receivers keep accepting
// all three so older peers interoperate. The CRC exists because a bit flip
// inside the event body can survive deserialization: without it the
// corrupted event is delivered as genuine AND consumes its sequence, so
// the ring's clean copy is later dup-dropped (found by `acexfuzz --soak`).
constexpr std::uint8_t kMsgEvent = 0;
constexpr std::uint8_t kMsgControl = 1;
constexpr std::uint8_t kMsgEventSeq = 2;
constexpr std::uint8_t kMsgEventSeqCrc = 3;

Bytes wrap(std::uint8_t kind, ByteView body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(kind);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes wrap_seq(std::uint64_t seq, ByteView body) {
  Bytes out;
  out.reserve(body.size() + 14);
  out.push_back(kMsgEventSeqCrc);
  put_varint(out, seq);
  out.insert(out.end(), body.begin(), body.end());
  // Trailing CRC over the sequence varint AND the body: a flipped bit in
  // either must read as corruption, never as a different valid message.
  const std::uint32_t crc = crc32(ByteView(out).subspan(1));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

Bytes encode_seqs(const std::vector<std::uint64_t>& seqs) {
  Bytes out;
  for (const std::uint64_t seq : seqs) put_varint(out, seq);
  return out;
}

std::vector<std::uint64_t> decode_seqs(ByteView in) {
  std::vector<std::uint64_t> seqs;
  std::size_t pos = 0;
  while (pos < in.size()) seqs.push_back(get_varint(in, &pos));
  return seqs;
}

}  // namespace

ChannelSender::ChannelSender(EventChannel& channel,
                             transport::Transport& transport,
                             std::size_t ring_capacity, int max_retries)
    : channel_(&channel),
      transport_(&transport),
      ring_(ring_capacity, max_retries) {
  tap_ = channel_->subscribe([this](const Event& event) {
    const std::uint64_t seq = next_sequence_++;
    Bytes wire = wrap_seq(seq, serialize_event(event));
    transport_->send(wire);
    ring_.store(seq, std::move(wire));
    ++forwarded_;
  });
}

ChannelSender::~ChannelSender() { channel_->unsubscribe(tap_); }

std::size_t ChannelSender::pump_control() {
  std::size_t applied = 0;
  while (auto message = transport_->receive()) {
    try {
      if (message->empty()) throw DecodeError("bridge: empty message");
      if ((*message)[0] != kMsgControl) {
        // Event messages arriving at the producer side are a protocol
        // error, but tolerating them keeps loopback tests simple: ignore.
        continue;
      }
      std::size_t pos = 0;
      AttributeMap attrs =
          AttributeMap::deserialize(ByteView(*message).subspan(1), &pos);
      if (const auto nacks = attrs.get_bytes(kNackAttr)) {
        // Bridge-internal retransmit request: replay what the ring still
        // holds and keep the attribute away from application control
        // sinks. Application attributes riding in the same message are
        // still forwarded.
        std::size_t replayed = 0;
        for (const std::uint64_t seq : decode_seqs(*nacks)) {
          if (const BufferView* wire = ring_.replay(seq)) {
            transport_->send(*wire);
            ++retransmits_;
            ++replayed;
          }
        }
        attrs.erase(kNackAttr);
        if (!attrs.empty()) {
          channel_->signal_control(attrs);
          ++applied;
        } else if (replayed > 0) {
          ++applied;
        }
        continue;
      }
      channel_->signal_control(attrs);
      ++applied;
    } catch (const Error&) {
      // Same contract as the consumer side's poll(): corrupt control
      // messages are counted and skipped, never allowed to kill the pump.
      ++control_corrupt_;
    }
  }
  return applied;
}

ChannelReceiver::ChannelReceiver(EventChannel& channel,
                                 transport::Transport& transport,
                                 int nack_retry_cap,
                                 std::uint64_t gap_window)
    : channel_(&channel),
      transport_(&transport),
      nack_retry_cap_(nack_retry_cap),
      gap_window_(gap_window) {
  if (nack_retry_cap <= 0) {
    throw ConfigError("bridge: nack_retry_cap must be positive");
  }
  if (gap_window == 0) {
    throw ConfigError("bridge: gap_window must be positive");
  }
}

bool ChannelReceiver::already_delivered(std::uint64_t seq) const noexcept {
  return seq < next_contiguous_ || delivered_ahead_.count(seq) > 0;
}

void ChannelReceiver::mark_delivered(std::uint64_t seq) {
  if (seq == next_contiguous_) {
    ++next_contiguous_;
    auto it = delivered_ahead_.begin();
    while (it != delivered_ahead_.end() && *it == next_contiguous_) {
      ++next_contiguous_;
      it = delivered_ahead_.erase(it);
    }
  } else if (seq > next_contiguous_) {
    delivered_ahead_.insert(seq);
  }
}

std::size_t ChannelReceiver::poll(std::size_t max_events) {
  std::size_t delivered = 0;
  while (delivered < max_events) {
    const auto message = transport_->receive();
    if (!message) break;
    if (message->empty()) {
      ++corrupt_;
      continue;
    }
    const std::uint8_t kind = (*message)[0];
    if (kind == kMsgEvent) {
      // Legacy unsequenced event: no recovery metadata, best effort only.
      try {
        channel_->submit(deserialize_event(ByteView(*message).subspan(1)));
        ++received_;
        ++delivered;
      } catch (const Error&) {
        ++corrupt_;
      }
    } else if (kind == kMsgEventSeq || kind == kMsgEventSeqCrc) {
      std::size_t pos = 1;
      try {
        const std::uint64_t seq = get_varint(*message, &pos);
        if (seq > next_contiguous_ && seq - next_contiguous_ >= gap_window_) {
          // A sequence this far ahead of the delivery cursor cannot be
          // real traffic (the sender's retransmit ring is far smaller) —
          // it is what a flipped continuation bit in the varint looks
          // like. Reject before it can poison gap tracking.
          throw DecodeError("bridge: implausible sequence");
        }
        std::size_t body_end = message->size();
        if (kind == kMsgEventSeqCrc) {
          // Verify the trailing CRC before trusting anything — including
          // the sequence just parsed. A damaged message must surface as a
          // gap to NACK, not as a delivered event or a consumed sequence.
          if (message->size() - pos < 4) {
            throw DecodeError("bridge: event crc truncated");
          }
          body_end = message->size() - 4;
          std::uint32_t crc = 0;
          for (int i = 0; i < 4; ++i) {
            crc |=
                static_cast<std::uint32_t>((*message)[body_end + i]) << (8 * i);
          }
          if (crc32(ByteView(*message).subspan(1, body_end - 1)) != crc) {
            throw DecodeError("bridge: event crc mismatch");
          }
        }
        if (already_delivered(seq)) {
          ++duplicates_;
          continue;
        }
        Event event =
            deserialize_event(ByteView(*message).subspan(pos, body_end - pos));
        // Commit sequence tracking only after the body deserialized: the
        // varint carries no integrity check of its own, so a seq whose
        // message is detectably corrupt must not move max_seen_. The
        // damage (if the event was real) shows up as a gap once later
        // sequences arrive, and is NACKed then.
        max_seen_ = any_seen_ ? std::max(max_seen_, seq) : seq;
        any_seen_ = true;
        channel_->submit(std::move(event));
        mark_delivered(seq);
        ++received_;
        ++delivered;
      } catch (const Error&) {
        ++corrupt_;
      }
    }
    // Control messages arriving at the consumer side are ignored, like
    // event messages at the producer side.
  }
  return delivered;
}

void ChannelReceiver::signal_control(const AttributeMap& attrs) {
  Bytes body;
  attrs.serialize(body);
  transport_->send(wrap(kMsgControl, body));
}

std::vector<std::uint64_t> ChannelReceiver::missing() const {
  std::vector<std::uint64_t> gaps;
  if (!any_seen_) return gaps;
  // poll() clamps tracked sequences to within gap_window_ of the delivery
  // cursor; bounding the scan here as well keeps the loop finite even for
  // max_seen_ == UINT64_MAX, where `seq <= max_seen_` could never end.
  for (std::uint64_t seq = next_contiguous_;
       seq <= max_seen_ && seq - next_contiguous_ < gap_window_; ++seq) {
    if (delivered_ahead_.count(seq) == 0) gaps.push_back(seq);
  }
  return gaps;
}

std::size_t ChannelReceiver::signal_nacks() {
  // Attempt records below the delivery cursor are settled (the sequence
  // arrived after all); dropping them keeps the map bounded by the window.
  nack_attempts_.erase(nack_attempts_.begin(),
                       nack_attempts_.lower_bound(next_contiguous_));
  std::vector<std::uint64_t> request;
  for (const std::uint64_t seq : missing()) {
    int& attempts = nack_attempts_[seq];
    if (attempts >= nack_retry_cap_) {
      // Lost for good. Settle the sequence so the delivery cursor can move
      // past it: left unsettled, one dead sequence pins next_contiguous_
      // forever, and once live traffic runs gap_window ahead of the pinned
      // cursor every later event is rejected as implausible — a permanent
      // wedge (found by `acexfuzz --soak`).
      ++abandoned_;
      mark_delivered(seq);
      continue;
    }
    ++attempts;
    request.push_back(seq);
  }
  if (request.empty()) return 0;
  AttributeMap attrs;
  attrs.set_bytes(kNackAttr, encode_seqs(request));
  signal_control(attrs);
  nacks_signalled_ += request.size();
  return request.size();
}

}  // namespace acex::echo
