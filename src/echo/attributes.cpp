#include "echo/attributes.hpp"

#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::echo {
namespace {

constexpr std::size_t kMaxAttrs = 4096;
constexpr std::size_t kMaxNameLength = 1024;
constexpr std::size_t kMaxValueLength = 1 << 24;

void put_string(Bytes& out, std::string_view s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_wire_string(ByteView in, std::size_t* pos,
                             std::size_t limit) {
  const std::uint64_t len = get_varint(in, pos);
  if (len > limit || *pos + len > in.size()) {
    throw DecodeError("attributes: truncated or oversized string");
  }
  std::string s(reinterpret_cast<const char*>(in.data() + *pos),
                static_cast<std::size_t>(len));
  *pos += len;
  return s;
}

}  // namespace

void AttributeMap::set(std::string name, AttrValue value) {
  if (name.empty()) throw ConfigError("attribute name must not be empty");
  attrs_.insert_or_assign(std::move(name), std::move(value));
}

bool AttributeMap::has(std::string_view name) const noexcept {
  return attrs_.find(name) != attrs_.end();
}

void AttributeMap::erase(std::string_view name) noexcept {
  const auto it = attrs_.find(name);
  if (it != attrs_.end()) attrs_.erase(it);
}

std::optional<std::int64_t> AttributeMap::get_int(
    std::string_view name) const noexcept {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  if (const auto* p = std::get_if<std::int64_t>(&it->second)) return *p;
  return std::nullopt;
}

std::optional<double> AttributeMap::get_double(
    std::string_view name) const noexcept {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  if (const auto* p = std::get_if<double>(&it->second)) return *p;
  return std::nullopt;
}

std::optional<std::string> AttributeMap::get_string(
    std::string_view name) const {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  if (const auto* p = std::get_if<std::string>(&it->second)) return *p;
  return std::nullopt;
}

std::optional<Bytes> AttributeMap::get_bytes(std::string_view name) const {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  if (const auto* p = std::get_if<Bytes>(&it->second)) return *p;
  return std::nullopt;
}

void AttributeMap::merge(const AttributeMap& other) {
  for (const auto& [name, value] : other.attrs_) {
    attrs_.insert_or_assign(name, value);
  }
}

void AttributeMap::serialize(Bytes& out) const {
  put_varint(out, attrs_.size());
  for (const auto& [name, value] : attrs_) {
    put_string(out, name);
    out.push_back(static_cast<std::uint8_t>(value.index()));
    switch (value.index()) {
      case 0: {  // int64: zigzag varint
        const auto v = std::get<std::int64_t>(value);
        const std::uint64_t zz =
            (static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63);
        put_varint(out, zz);
        break;
      }
      case 1: {  // double: 8 raw little-endian bytes
        const double d = std::get<double>(value);
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof d);
        __builtin_memcpy(&bits, &d, sizeof bits);
        for (int i = 0; i < 8; ++i) {
          out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case 2:
        put_string(out, std::get<std::string>(value));
        break;
      case 3: {
        const Bytes& b = std::get<Bytes>(value);
        put_varint(out, b.size());
        out.insert(out.end(), b.begin(), b.end());
        break;
      }
    }
  }
}

AttributeMap AttributeMap::deserialize(ByteView in, std::size_t* pos) {
  AttributeMap map;
  const std::uint64_t count = get_varint(in, pos);
  if (count > kMaxAttrs) throw DecodeError("attributes: too many entries");
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_wire_string(in, pos, kMaxNameLength);
    if (*pos >= in.size()) throw DecodeError("attributes: truncated type");
    const std::uint8_t type = in[(*pos)++];
    switch (type) {
      case 0: {
        const std::uint64_t zz = get_varint(in, pos);
        const auto v = static_cast<std::int64_t>((zz >> 1) ^
                                                 (0 - (zz & 1)));
        map.set(std::move(name), v);
        break;
      }
      case 1: {
        if (*pos + 8 > in.size()) {
          throw DecodeError("attributes: truncated double");
        }
        std::uint64_t bits = 0;
        for (int k = 0; k < 8; ++k) {
          bits |= static_cast<std::uint64_t>(in[*pos + k]) << (8 * k);
        }
        *pos += 8;
        double d;
        __builtin_memcpy(&d, &bits, sizeof d);
        map.set(std::move(name), d);
        break;
      }
      case 2:
        map.set(std::move(name), read_wire_string(in, pos, kMaxValueLength));
        break;
      case 3: {
        const std::uint64_t len = get_varint(in, pos);
        if (len > kMaxValueLength || *pos + len > in.size()) {
          throw DecodeError("attributes: truncated bytes value");
        }
        const auto body = in.subspan(*pos, static_cast<std::size_t>(len));
        *pos += static_cast<std::size_t>(len);
        map.set(std::move(name), Bytes(body.begin(), body.end()));
        break;
      }
      default:
        throw DecodeError("attributes: unknown value type");
    }
  }
  return map;
}

}  // namespace acex::echo
