#pragma once

#include "echo/attributes.hpp"
#include "util/bytes.hpp"

namespace acex::echo {

/// One unit of middleware traffic: an opaque payload plus its quality
/// attributes. Payloads are bytes — applications layer PBIO or any other
/// encoding on top, and compression handlers rewrite the payload while
/// annotating the attributes.
struct Event {
  Bytes payload;
  AttributeMap attributes;

  Event() = default;
  explicit Event(Bytes p) : payload(std::move(p)) {}
  Event(Bytes p, AttributeMap a)
      : payload(std::move(p)), attributes(std::move(a)) {}
};

/// Wire form used by the remote bridge: attributes, then varint payload
/// size + payload.
Bytes serialize_event(const Event& event);
Event deserialize_event(ByteView in);

}  // namespace acex::echo
