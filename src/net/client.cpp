#include "net/client.hpp"

#include "util/error.hpp"

namespace acex::net {

void InboundQueue::send(ByteView) {
  throw ConfigError("InboundQueue is receive-only");
}

std::optional<Bytes> InboundQueue::receive() {
  if (frames_.empty()) return std::nullopt;
  Bytes front = std::move(frames_.front());
  frames_.pop_front();
  return front;
}

DaemonClient::DaemonClient(std::uint16_t port, DaemonClientConfig config)
    : config_(std::move(config)),
      rx_(clock_),
      session_(clock_, config_.session) {
  handshake(port, config_.offer);
  session_.on_connected(
      welcome_.session_id, welcome_.token, rx_,
      static_cast<Seconds>(welcome_.heartbeat_interval_ms) / 1000.0);
}

void DaemonClient::handshake(std::uint16_t port,
                             const CompressionOffer& offer) {
  fd_.reset(connect_loopback(port));
  send_msg(MsgKind::kHello, offer_encode(offer));

  // Welcome/Reject is the first frame — but a resume may legally be
  // preceded by replayed kData (the daemon pumps as soon as the session is
  // live). Queue anything that arrives ahead of the answer.
  for (;;) {
    if (!wait_readable(fd_.get(), config_.io_timeout_ms)) {
      fd_.reset();
      throw IoError("daemon handshake timed out");
    }
    auto frame = recv_message(fd_.get());
    if (!frame) {
      fd_.reset();
      throw IoError("daemon closed during handshake");
    }
    Msg msg = unwrap(*frame);
    if (msg.kind == MsgKind::kWelcome) {
      welcome_ = welcome_decode(msg.payload);
      return;
    }
    if (msg.kind == MsgKind::kReject) {
      const Reject reject = reject_decode(msg.payload);
      fd_.reset();
      throw HandshakeError(reject.status,
                           std::string(handshake_status_name(reject.status)) +
                               ": " + reject.reason);
    }
    handle_inbound(std::move(msg));
  }
}

void DaemonClient::send_msg(MsgKind kind, ByteView payload) {
  if (!fd_.valid()) throw IoError("daemon client not connected");
  send_message(fd_.get(), wrap(kind, payload));
}

void DaemonClient::handle_inbound(Msg msg) {
  switch (msg.kind) {
    case MsgKind::kData:
      ++data_frames_;
      wire_crc_.update(msg.payload);
      rx_.push(std::move(msg.payload));
      break;
    case MsgKind::kControl:
      // Heartbeat/bye acknowledgements; nothing to do — liveness is the
      // server's concern, the client just keeps sending proofs.
      break;
    case MsgKind::kStatReply:
      last_stats_ = stats_decode(msg.payload);
      break;
    default:
      throw IoError("unexpected server message: " +
                    std::string(msg_kind_name(msg.kind)));
  }
}

std::size_t DaemonClient::decode_available() {
  auto* receiver = session_.receiver();
  if (receiver == nullptr) return 0;
  const Bytes chunk = receiver->receive_available();
  stream_.insert(stream_.end(), chunk.begin(), chunk.end());

  // Turn the receiver's gap report into a kNack round-trip.
  const auto nacks = receiver->take_nacks();
  if (!nacks.empty() && fd_.valid()) {
    send_msg(MsgKind::kNack, nack_encode(nacks));
  }
  return chunk.size();
}

std::size_t DaemonClient::poll(int timeout_ms) {
  if (fd_.valid() && session_.connected() && session_.heartbeat_due()) {
    send_msg(MsgKind::kControl, session_.make_heartbeat());
  }
  if (fd_.valid() && wait_readable(fd_.get(), timeout_ms)) {
    // Drain every complete frame currently buffered before decoding once.
    for (;;) {
      auto frame = recv_message(fd_.get());
      if (!frame) {
        fd_.reset();  // server closed; session state kept for resume()
        session_.on_dropped();
        break;
      }
      handle_inbound(unwrap(*frame));
      if (!wait_readable(fd_.get(), 0)) break;
    }
  }
  return decode_available();
}

bool DaemonClient::poll_until(std::size_t target_bytes, int deadline_ms) {
  const Seconds deadline = clock_.now() + deadline_ms / 1000.0;
  while (stream_.size() < target_bytes) {
    if (clock_.now() >= deadline) return false;
    if (!fd_.valid()) return false;
    poll(50);
  }
  return true;
}

std::uint32_t DaemonClient::wire_crc() const noexcept {
  return wire_crc_.value();
}

DaemonStats DaemonClient::stat() {
  last_stats_.reset();
  send_msg(MsgKind::kStatRequest, {});
  const Seconds deadline = clock_.now() + config_.io_timeout_ms / 1000.0;
  while (!last_stats_) {
    if (clock_.now() >= deadline) throw IoError("stat reply timed out");
    poll(50);
    if (!fd_.valid()) throw IoError("daemon closed before stat reply");
  }
  return *last_stats_;
}

void DaemonClient::bye() {
  if (!fd_.valid()) return;
  send_msg(MsgKind::kControl, session_.make_bye());
  fd_.reset();
  session_.on_dropped();
}

void DaemonClient::drop() {
  // Decode whatever already arrived so resume_from reflects every frame
  // this client actually has — the replay gap starts exactly after it.
  decode_available();
  fd_.reset();
  session_.on_dropped();
}

void DaemonClient::resume(std::uint16_t port) {
  decode_available();
  CompressionOffer offer = config_.offer;
  offer.resume_session = session_.session_id();
  offer.resume_token = session_.token();
  offer.resume_from = session_.resume_from();
  handshake(port, offer);
  session_.on_resumed(rx_, welcome_.token);
}

}  // namespace acex::net
