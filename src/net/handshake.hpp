#pragma once

// Versioned connection handshake of the acexd daemon (DESIGN.md §13): a
// client opens with a CompressionOffer naming the methods, block size,
// expansion slack, context-takeover preference and target rate it wants for
// ITS link; the server intersects the offer with its policy and maps the
// result onto that subscriber's AdaptiveConfig. This is the knob set
// WebSocket permessage-deflate negotiates per peer (method allowlist,
// window parameters, context takeover) transplanted onto the paper's
// configurable-compression stack: distinct clients on distinct links get
// distinct compression parameters, negotiated — not configured — per
// connection.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "compress/codec.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace acex::net {

/// Handshake wire major version. Additive v-next fields ride the extension
/// block (skipped by older peers); anything that changes existing field
/// semantics bumps the major and is a typed kVersionSkew reject.
inline constexpr std::uint8_t kHandshakeVersion = 1;

/// Typed handshake failure reasons — carried as one byte in the kReject
/// wire message, so both sides agree on WHY without parsing prose.
enum class HandshakeStatus : std::uint8_t {
  kOk = 0,
  kMalformed = 1,        ///< offer failed to parse (truncation, magic, CRC)
  kVersionSkew = 2,      ///< unsupported major version
  kNoCommonMethod = 3,   ///< offer ∩ policy method set is empty
  kBadParameter = 4,     ///< a parameter outside any sane bound
  kOverloaded = 5,       ///< server overload ladder refusing new sessions
  kResumeRejected = 6,   ///< unknown session or bad resume token
  kRestartRequired = 7,  ///< resume gap unrecoverable — reconnect fresh
  kUnsupportedPolicy = 8, ///< decision-policy id unknown or not allowed
};

std::string_view handshake_status_name(HandshakeStatus status) noexcept;

/// A handshake failure with its wire status attached.
class HandshakeError : public Error {
 public:
  HandshakeError(HandshakeStatus status, const std::string& what)
      : Error("handshake: " + what), status_(status) {}
  HandshakeStatus status() const noexcept { return status_; }

 private:
  HandshakeStatus status_;
};

/// The client's opening message. `methods` is a preference-ordered
/// compression allowlist; resume_* re-attach a parked session (all zero =
/// fresh subscribe).
struct CompressionOffer {
  std::vector<MethodId> methods = {MethodId::kBurrowsWheeler,
                                   MethodId::kLempelZiv, MethodId::kHuffman,
                                   MethodId::kNone};
  std::uint32_t block_size = 128 * 1024;
  std::uint32_t expansion_slack = 64;
  bool context_takeover = true;
  std::uint64_t target_rate_Bps = 0;
  /// Requested decision policy, as a raw wire id (adaptive::DecisionPolicy
  /// values; 0 = kBandwidth). Kept raw so an unknown id from a newer peer
  /// survives decoding and gets the typed kUnsupportedPolicy reject from
  /// negotiate() instead of a silent downgrade. Rides the extension block:
  /// 0 encodes as an empty extension, byte-identical to the pre-policy wire.
  std::uint64_t policy_id = 0;
  std::string name;  ///< subscriber label (obs series); server uniquifies
  std::uint64_t resume_session = 0;
  std::uint64_t resume_token = 0;
  std::uint64_t resume_from = 0;

  bool is_resume() const noexcept { return resume_session != 0; }
  bool operator==(const CompressionOffer&) const = default;
};

/// Server-side bounds an offer is intersected with.
struct ServerPolicy {
  /// Methods this deployment is willing to spend CPU on. kNone is always
  /// implicitly permitted — the null-codec degradation path must exist.
  std::vector<MethodId> methods = {MethodId::kNone, MethodId::kHuffman,
                                   MethodId::kArithmetic,
                                   MethodId::kLempelZiv,
                                   MethodId::kBurrowsWheeler, MethodId::kLzw};
  std::uint32_t min_block_size = 4 * 1024;
  std::uint32_t max_block_size = 4 * 1024 * 1024;
  std::uint32_t max_expansion_slack = 4096;
  bool allow_context_takeover = true;
  /// Cap on a client's requested target rate; 0 = uncapped.
  std::uint64_t max_target_rate_Bps = 0;
  /// Decision policies this deployment will run for a subscriber. A known
  /// but disallowed policy is kUnsupportedPolicy, same as an unknown id —
  /// policies shift CPU cost onto the server, so they are negotiated, not
  /// granted.
  std::vector<adaptive::DecisionPolicy> policies = {
      adaptive::DecisionPolicy::kBandwidth,
      adaptive::DecisionPolicy::kCpuEfficiency,
      adaptive::DecisionPolicy::kEnergyProxy,
      adaptive::DecisionPolicy::kTargetRate};
};

/// One negotiated parameter set — what both sides hold after a successful
/// handshake, echoed verbatim in the kWelcome message.
struct NegotiatedParams {
  std::vector<MethodId> methods;  ///< offer order ∩ policy; kNone appended
  std::uint32_t block_size = 128 * 1024;
  std::uint32_t expansion_slack = 64;
  bool context_takeover = true;
  std::uint64_t target_rate_Bps = 0;
  /// The selection objective the server will run for this subscriber.
  adaptive::DecisionPolicy policy = adaptive::DecisionPolicy::kBandwidth;

  bool operator==(const NegotiatedParams&) const = default;
};

/// Intersect `offer` with `policy`:
///   * methods: offer's preference order filtered to the policy set; kNone
///     appended if absent (degradation floor). An intersection that holds
///     ONLY kNone when the client asked for real compression is a clean
///     typed reject (kNoCommonMethod), not a silent downgrade.
///   * block size / slack clamped into the policy window; a zero block
///     size is kBadParameter.
///   * context takeover and target rate: offer ∧ policy.
///   * decision policy: the offered id verbatim when the policy allows it;
///     unknown or disallowed ids are kUnsupportedPolicy typed rejects.
/// Throws HandshakeError; never returns a half-negotiated result.
NegotiatedParams negotiate(const CompressionOffer& offer,
                           const ServerPolicy& policy);

/// Map one negotiated set onto a subscriber's adaptive config: block size,
/// expansion slack and target rate verbatim; the allowlist becomes a
/// method_governor (see governed_method); no-context-takeover additionally
/// pins async_sampling off so every block is planned from a fresh inline
/// sample rather than state carried across blocks.
void apply(const NegotiatedParams& params, adaptive::AdaptiveConfig& config);

/// Allowlist governor: `method` itself when negotiated, otherwise the
/// strongest negotiated method weaker than it (ladder BW > LZW > LZ >
/// arithmetic > Huffman > none; kNone is always admissible). The selector
/// therefore can never put a non-negotiated method on this client's wire.
MethodId governed_method(const std::vector<MethodId>& allowed,
                         MethodId method) noexcept;

// --- wire codec -------------------------------------------------------
//
// Offer:  0xAC 0xE1 | u8 version | varint flags | varint n | n method ids |
//         varint block_size | varint slack | varint target_rate |
//         varint name_len | name |
//         (flags bit1) varint session, varint token, varint resume_from |
//         varint ext_len | ext | crc32 LE of everything before it.
// Params: same envelope without name/resume (flags bit0 only).
//
// The extension block is TLV-framed: varint field id, varint length, then
// `length` value bytes, repeated. Field 1 carries the decision-policy id
// (varint); a zero/default policy encodes as an EMPTY extension so the
// default wire stays byte-identical to pre-policy builds. Unknown field
// ids are skipped by length (a newer peer's additions).
//
// Decoding skips unknown method ids (ignored, not fatal) and unknown
// extension fields, and throws typed HandshakeErrors on truncation, bad
// magic, CRC mismatch (kMalformed) or major-version skew (kVersionSkew).

Bytes offer_encode(const CompressionOffer& offer);
CompressionOffer offer_decode(ByteView wire);

Bytes params_encode(const NegotiatedParams& params);
NegotiatedParams params_decode(ByteView wire);

}  // namespace acex::net
