#include "net/handshake.hpp"

#include <algorithm>
#include <array>

#include "util/crc32.hpp"
#include "util/varint.hpp"

namespace acex::net {

namespace {

constexpr std::uint8_t kMagic0 = 0xAC;
constexpr std::uint8_t kMagic1 = 0xE1;

// Envelope flags.
constexpr std::uint64_t kFlagContextTakeover = 1u << 0;
constexpr std::uint64_t kFlagHasResume = 1u << 1;

// Hard sanity bounds independent of any ServerPolicy — an offer outside
// these is kBadParameter even before intersection.
constexpr std::uint64_t kAbsMaxBlockSize = 64ull * 1024 * 1024;
constexpr std::uint64_t kAbsMaxSlack = 1ull * 1024 * 1024;
constexpr std::size_t kMaxMethods = 64;
constexpr std::size_t kMaxNameBytes = 256;
constexpr std::size_t kMaxExtBytes = 4096;

/// Methods by descending strength — the order the selector escalates
/// through; governed_method() demotes along it. The columnar pipeline
/// codec slots just below Burrows-Wheeler: it typically matches or beats
/// BW's ratio on structured data at lower cost, so a BW demotion lands on
/// it first when both peers negotiated it (DESIGN.md §14).
constexpr std::array<MethodId, 7> kStrengthLadder = {
    MethodId::kBurrowsWheeler, MethodId::kColumnar, MethodId::kLzw,
    MethodId::kLempelZiv,      MethodId::kArithmetic, MethodId::kHuffman,
    MethodId::kNone};

std::size_t ladder_rank(MethodId m) noexcept {
  for (std::size_t i = 0; i < kStrengthLadder.size(); ++i) {
    if (kStrengthLadder[i] == m) return i;
  }
  return kStrengthLadder.size();  // unknown: weaker than everything real
}

bool known_method(std::uint64_t raw) noexcept {
  switch (raw) {
    case static_cast<std::uint64_t>(MethodId::kNone):
    case static_cast<std::uint64_t>(MethodId::kHuffman):
    case static_cast<std::uint64_t>(MethodId::kArithmetic):
    case static_cast<std::uint64_t>(MethodId::kLempelZiv):
    case static_cast<std::uint64_t>(MethodId::kBurrowsWheeler):
    case static_cast<std::uint64_t>(MethodId::kLzw):
    case static_cast<std::uint64_t>(MethodId::kZlib):
    case static_cast<std::uint64_t>(MethodId::kColumnar):
      return true;
    default:
      return false;
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw HandshakeError(HandshakeStatus::kMalformed, what);
}

/// get_varint translated into the handshake's typed error domain.
std::uint64_t take_varint(ByteView wire, std::size_t* pos, const char* field) {
  try {
    return get_varint(wire, pos);
  } catch (const Error&) {
    malformed(std::string("truncated ") + field);
  }
}

/// Common envelope: magic + version check, then flags. Leaves *pos after
/// the flags varint. `wire` must already have its CRC verified/stripped.
std::uint64_t open_envelope(ByteView wire, std::size_t* pos) {
  if (wire.size() < 3) malformed("short message");
  if (wire[0] != kMagic0 || wire[1] != kMagic1) malformed("bad magic");
  const std::uint8_t version = wire[2];
  if (version != kHandshakeVersion) {
    throw HandshakeError(HandshakeStatus::kVersionSkew,
                         "peer version " + std::to_string(version) +
                             ", expected " +
                             std::to_string(kHandshakeVersion));
  }
  *pos = 3;
  return take_varint(wire, pos, "flags");
}

/// Verify and strip the trailing CRC32, returning the covered prefix.
ByteView check_crc(ByteView wire) {
  if (wire.size() < 4) malformed("short message");
  const ByteView body = wire.subspan(0, wire.size() - 4);
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(wire[body.size() + i]) << (8 * i);
  }
  if (crc32(body) != stored) malformed("crc mismatch");
  return body;
}

void append_crc(Bytes& out) {
  const std::uint32_t crc = crc32(out);
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
}

void put_methods(Bytes& out, const std::vector<MethodId>& methods) {
  put_varint(out, methods.size());
  for (const MethodId m : methods) {
    put_varint(out, static_cast<std::uint64_t>(m));
  }
}

std::vector<MethodId> take_methods(ByteView wire, std::size_t* pos) {
  const std::uint64_t n = take_varint(wire, pos, "method count");
  if (n > kMaxMethods) malformed("method list too long");
  std::vector<MethodId> methods;
  methods.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t raw = take_varint(wire, pos, "method id");
    // Unknown ids are a newer peer's methods — ignored, not fatal.
    if (!known_method(raw)) continue;
    const MethodId m = static_cast<MethodId>(raw);
    if (std::find(methods.begin(), methods.end(), m) == methods.end()) {
      methods.push_back(m);
    }
  }
  return methods;
}

// Extension-block TLV field ids (additive v-next fields).
constexpr std::uint64_t kExtFieldPolicy = 1;

/// Encode the extension block. The default policy (0 = kBandwidth) emits
/// an EMPTY extension, keeping the default wire byte-identical to
/// pre-policy builds; anything else rides TLV field 1.
void put_extension(Bytes& out, std::uint64_t policy_id) {
  if (policy_id == 0) {
    put_varint(out, 0);
    return;
  }
  Bytes value;
  put_varint(value, policy_id);
  Bytes ext;
  put_varint(ext, kExtFieldPolicy);
  put_varint(ext, value.size());
  ext.insert(ext.end(), value.begin(), value.end());
  put_varint(out, ext.size());
  out.insert(out.end(), ext.begin(), ext.end());
}

/// Walk the extension TLVs, returning the policy id (0 when absent).
/// Unknown field ids are a newer peer's additions — skipped by length.
std::uint64_t take_extension(ByteView wire, std::size_t* pos) {
  const std::uint64_t ext_len = take_varint(wire, pos, "extension length");
  if (ext_len > kMaxExtBytes) malformed("extension block too long");
  if (wire.size() - *pos < ext_len) malformed("truncated extension block");
  const ByteView ext = wire.subspan(*pos, static_cast<std::size_t>(ext_len));
  *pos += static_cast<std::size_t>(ext_len);

  std::uint64_t policy_id = 0;
  std::size_t epos = 0;
  while (epos < ext.size()) {
    const std::uint64_t field = take_varint(ext, &epos, "extension field id");
    const std::uint64_t len =
        take_varint(ext, &epos, "extension field length");
    if (ext.size() - epos < len) malformed("truncated extension field");
    const ByteView value = ext.subspan(epos, static_cast<std::size_t>(len));
    epos += static_cast<std::size_t>(len);
    if (field == kExtFieldPolicy) {
      std::size_t vpos = 0;
      policy_id = take_varint(value, &vpos, "policy id");
      if (vpos != value.size()) malformed("policy field trailing bytes");
    }
  }
  return policy_id;
}

}  // namespace

std::string_view handshake_status_name(HandshakeStatus status) noexcept {
  switch (status) {
    case HandshakeStatus::kOk: return "ok";
    case HandshakeStatus::kMalformed: return "malformed";
    case HandshakeStatus::kVersionSkew: return "version-skew";
    case HandshakeStatus::kNoCommonMethod: return "no-common-method";
    case HandshakeStatus::kBadParameter: return "bad-parameter";
    case HandshakeStatus::kOverloaded: return "overloaded";
    case HandshakeStatus::kResumeRejected: return "resume-rejected";
    case HandshakeStatus::kRestartRequired: return "restart-required";
    case HandshakeStatus::kUnsupportedPolicy: return "unsupported-policy";
  }
  return "unknown";
}

NegotiatedParams negotiate(const CompressionOffer& offer,
                           const ServerPolicy& policy) {
  if (offer.block_size == 0 || offer.block_size > kAbsMaxBlockSize) {
    throw HandshakeError(HandshakeStatus::kBadParameter,
                         "block size " + std::to_string(offer.block_size));
  }
  if (offer.expansion_slack > kAbsMaxSlack) {
    throw HandshakeError(
        HandshakeStatus::kBadParameter,
        "expansion slack " + std::to_string(offer.expansion_slack));
  }
  if (offer.methods.empty()) {
    throw HandshakeError(HandshakeStatus::kNoCommonMethod,
                         "offer lists no methods");
  }
  if (!adaptive::known_policy(offer.policy_id)) {
    throw HandshakeError(HandshakeStatus::kUnsupportedPolicy,
                         "unknown policy id " +
                             std::to_string(offer.policy_id));
  }
  const auto requested =
      static_cast<adaptive::DecisionPolicy>(offer.policy_id);
  if (std::find(policy.policies.begin(), policy.policies.end(), requested) ==
      policy.policies.end()) {
    throw HandshakeError(HandshakeStatus::kUnsupportedPolicy,
                         "policy " +
                             std::string(adaptive::policy_name(requested)) +
                             " not allowed by server");
  }

  NegotiatedParams out;
  out.policy = requested;

  const auto policy_allows = [&policy](MethodId m) {
    return m == MethodId::kNone ||
           std::find(policy.methods.begin(), policy.methods.end(), m) !=
               policy.methods.end();
  };
  bool offered_real = false;  // did the client ask for actual compression?
  for (const MethodId m : offer.methods) {
    if (m != MethodId::kNone) offered_real = true;
    if (policy_allows(m) &&
        std::find(out.methods.begin(), out.methods.end(), m) ==
            out.methods.end()) {
      out.methods.push_back(m);
    }
  }
  const bool any_real = std::any_of(
      out.methods.begin(), out.methods.end(),
      [](MethodId m) { return m != MethodId::kNone; });
  if (offered_real && !any_real) {
    // Silently downgrading a compression-wanting client to pass-through
    // would defeat the negotiation; make the mismatch visible instead.
    throw HandshakeError(HandshakeStatus::kNoCommonMethod,
                         "offer and policy share no compression method");
  }
  if (std::find(out.methods.begin(), out.methods.end(), MethodId::kNone) ==
      out.methods.end()) {
    out.methods.push_back(MethodId::kNone);  // degradation floor
  }

  out.block_size = std::clamp(offer.block_size, policy.min_block_size,
                              policy.max_block_size);
  out.expansion_slack =
      std::min(offer.expansion_slack, policy.max_expansion_slack);
  out.context_takeover =
      offer.context_takeover && policy.allow_context_takeover;
  out.target_rate_Bps =
      policy.max_target_rate_Bps == 0
          ? offer.target_rate_Bps
          : std::min(offer.target_rate_Bps, policy.max_target_rate_Bps);
  return out;
}

MethodId governed_method(const std::vector<MethodId>& allowed,
                         MethodId method) noexcept {
  const auto ok = [&allowed](MethodId m) {
    return m == MethodId::kNone ||
           std::find(allowed.begin(), allowed.end(), m) != allowed.end();
  };
  if (ok(method)) return method;
  for (std::size_t rank = ladder_rank(method) + 1;
       rank < kStrengthLadder.size(); ++rank) {
    if (ok(kStrengthLadder[rank])) return kStrengthLadder[rank];
  }
  return MethodId::kNone;
}

void apply(const NegotiatedParams& params, adaptive::AdaptiveConfig& config) {
  config.decision.block_size = params.block_size;
  config.decision.policy = params.policy;
  config.expansion_slack_bytes = params.expansion_slack;
  config.target_rate_Bps = static_cast<double>(params.target_rate_Bps);
  if (!params.context_takeover) config.async_sampling = false;
  std::vector<MethodId> allowed = params.methods;
  config.method_governor = [allowed = std::move(allowed)](MethodId m) {
    return governed_method(allowed, m);
  };
}

Bytes offer_encode(const CompressionOffer& offer) {
  Bytes out = {kMagic0, kMagic1, kHandshakeVersion};
  std::uint64_t flags = 0;
  if (offer.context_takeover) flags |= kFlagContextTakeover;
  if (offer.is_resume()) flags |= kFlagHasResume;
  put_varint(out, flags);
  put_methods(out, offer.methods);
  put_varint(out, offer.block_size);
  put_varint(out, offer.expansion_slack);
  put_varint(out, offer.target_rate_Bps);
  put_varint(out, offer.name.size());
  out.insert(out.end(), offer.name.begin(), offer.name.end());
  if (offer.is_resume()) {
    put_varint(out, offer.resume_session);
    put_varint(out, offer.resume_token);
    put_varint(out, offer.resume_from);
  }
  put_extension(out, offer.policy_id);
  append_crc(out);
  return out;
}

CompressionOffer offer_decode(ByteView wire) {
  const ByteView body = check_crc(wire);
  std::size_t pos = 0;
  const std::uint64_t flags = open_envelope(body, &pos);

  CompressionOffer offer;
  offer.context_takeover = (flags & kFlagContextTakeover) != 0;
  offer.methods = take_methods(body, &pos);
  const std::uint64_t block = take_varint(body, &pos, "block size");
  const std::uint64_t slack = take_varint(body, &pos, "expansion slack");
  if (block > kAbsMaxBlockSize || slack > kAbsMaxSlack) {
    throw HandshakeError(HandshakeStatus::kBadParameter,
                         "block/slack out of range");
  }
  offer.block_size = static_cast<std::uint32_t>(block);
  offer.expansion_slack = static_cast<std::uint32_t>(slack);
  offer.target_rate_Bps = take_varint(body, &pos, "target rate");

  const std::uint64_t name_len = take_varint(body, &pos, "name length");
  if (name_len > kMaxNameBytes) malformed("name too long");
  if (body.size() - pos < name_len) malformed("truncated name");
  offer.name.assign(reinterpret_cast<const char*>(body.data() + pos),
                    static_cast<std::size_t>(name_len));
  pos += static_cast<std::size_t>(name_len);

  if ((flags & kFlagHasResume) != 0) {
    offer.resume_session = take_varint(body, &pos, "resume session");
    offer.resume_token = take_varint(body, &pos, "resume token");
    offer.resume_from = take_varint(body, &pos, "resume position");
    if (offer.resume_session == 0) malformed("resume flag with session 0");
  }
  // The raw id is preserved even when unknown: negotiate() owns the typed
  // kUnsupportedPolicy reject, mirroring how a server answers it.
  offer.policy_id = take_extension(body, &pos);
  if (pos != body.size()) malformed("trailing bytes after offer");
  return offer;
}

Bytes params_encode(const NegotiatedParams& params) {
  Bytes out = {kMagic0, kMagic1, kHandshakeVersion};
  std::uint64_t flags = 0;
  if (params.context_takeover) flags |= kFlagContextTakeover;
  put_varint(out, flags);
  put_methods(out, params.methods);
  put_varint(out, params.block_size);
  put_varint(out, params.expansion_slack);
  put_varint(out, params.target_rate_Bps);
  put_extension(out, static_cast<std::uint64_t>(params.policy));
  append_crc(out);
  return out;
}

NegotiatedParams params_decode(ByteView wire) {
  const ByteView body = check_crc(wire);
  std::size_t pos = 0;
  const std::uint64_t flags = open_envelope(body, &pos);

  NegotiatedParams params;
  params.context_takeover = (flags & kFlagContextTakeover) != 0;
  params.methods = take_methods(body, &pos);
  const std::uint64_t block = take_varint(body, &pos, "block size");
  const std::uint64_t slack = take_varint(body, &pos, "expansion slack");
  if (block == 0 || block > kAbsMaxBlockSize || slack > kAbsMaxSlack) {
    throw HandshakeError(HandshakeStatus::kBadParameter,
                         "block/slack out of range");
  }
  params.block_size = static_cast<std::uint32_t>(block);
  params.expansion_slack = static_cast<std::uint32_t>(slack);
  params.target_rate_Bps = take_varint(body, &pos, "target rate");
  // A welcome names the policy the server COMMITTED to run; a client that
  // cannot even name it must not proceed on guessed semantics.
  const std::uint64_t policy_id = take_extension(body, &pos);
  if (!adaptive::known_policy(policy_id)) {
    throw HandshakeError(HandshakeStatus::kUnsupportedPolicy,
                         "welcome names unknown policy id " +
                             std::to_string(policy_id));
  }
  params.policy = static_cast<adaptive::DecisionPolicy>(policy_id);
  if (pos != body.size()) malformed("trailing bytes after params");
  return params;
}

}  // namespace acex::net
