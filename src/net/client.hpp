#pragma once

// Client half of the acexd protocol (DESIGN.md §13). DaemonClient owns the
// TCP socket and the wire protocol; the durable-session brain — heartbeat
// scheduling, resume cursor, reconnect pacing, the AdaptiveReceiver — is
// the existing session::SessionClient, driven here over a REAL socket
// instead of the in-process harness the session tests use.
//
// Inbound kData frames are queued on an InboundQueue (a Transport whose
// receive() pops the queue), which is what the SessionClient's receiver
// drains; decoded payload accumulates in stream().

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "session/client.hpp"
#include "transport/transport.hpp"
#include "util/crc32.hpp"

namespace acex::net {

/// Transport adapter between the socket demultiplexer and the
/// AdaptiveReceiver: receive() pops queued kData payloads (nullopt when
/// none pending — the receiver treats that as "drained for now").
class InboundQueue final : public transport::Transport {
 public:
  explicit InboundQueue(const Clock& clock) : clock_(&clock) {}

  void send(ByteView) override;  // throws: server-bound data never rides rx
  std::optional<Bytes> receive() override;
  const Clock& clock() const override { return *clock_; }

  void push(Bytes frame) { frames_.push_back(std::move(frame)); }
  std::size_t depth() const noexcept { return frames_.size(); }
  void clear() noexcept { frames_.clear(); }

 private:
  const Clock* clock_;
  std::deque<Bytes> frames_;
};

struct DaemonClientConfig {
  CompressionOffer offer;
  session::ClientConfig session;
  /// Bound on any single blocking wait inside connect/poll/stat.
  int io_timeout_ms = 5000;
};

/// One subscriber connection to an acexd. The constructor connects and
/// completes the handshake (throwing HandshakeError with the server's
/// typed status on a kReject); poll() then drives heartbeats, NACKs, and
/// data decode. Not thread-safe — one driving thread per client.
class DaemonClient {
 public:
  DaemonClient(std::uint16_t port, DaemonClientConfig config = {});

  /// The server's accepted handshake: session credentials + the negotiated
  /// parameter set (which may differ from the offer — the policy clamps).
  const Welcome& welcome() const noexcept { return welcome_; }
  const session::SessionClient& session() const noexcept { return session_; }
  bool connected() const noexcept { return fd_.valid(); }

  /// One I/O turn: send a heartbeat if due, flush pending NACKs, wait up
  /// to `timeout_ms` for inbound traffic, drain and decode it. Returns the
  /// number of decoded payload bytes appended to stream() by this call.
  /// A server close mid-poll marks the client dropped (connected() false).
  std::size_t poll(int timeout_ms);

  /// poll() until stream() holds at least `target_bytes` or `deadline_ms`
  /// elapses; true on reaching the target.
  bool poll_until(std::size_t target_bytes, int deadline_ms);

  /// Decoded payload bytes, in stream order, accumulated across polls
  /// (and across a kill/resume — byte identity is the invariant).
  const Bytes& stream() const noexcept { return stream_; }

  /// Raw kData frames received (pre-decode), for wire-level assertions.
  std::uint64_t data_frames() const noexcept { return data_frames_; }
  /// CRC32 over the concatenated raw kData frame bytes, in arrival order.
  std::uint32_t wire_crc() const noexcept;

  /// Ask the daemon for its counter snapshot (round-trip on this socket).
  DaemonStats stat();

  /// Orderly departure: send kBye, then close. The daemon parks the
  /// session immediately.
  void bye();

  /// Abrupt loss — close the socket WITHOUT a bye, as a killed process
  /// would. Session state (cursor, gaps) is kept for resume().
  void drop();

  /// Reconnect to `port` and resume the session from the receiver's
  /// cursor. Throws HandshakeError (kRestartRequired and friends) when the
  /// server cannot replay the gap. On success the stream continues with
  /// no gap and no duplicate.
  void resume(std::uint16_t port);

 private:
  void handshake(std::uint16_t port, const CompressionOffer& offer);
  void handle_inbound(Msg msg);
  std::size_t decode_available();
  void send_msg(MsgKind kind, ByteView payload);

  DaemonClientConfig config_;
  MonotonicClock clock_;
  ScopedFd fd_;
  InboundQueue rx_;
  session::SessionClient session_;
  Welcome welcome_;
  Bytes stream_;
  std::uint64_t data_frames_ = 0;
  Crc32 wire_crc_;
  std::optional<DaemonStats> last_stats_;
};

}  // namespace acex::net
