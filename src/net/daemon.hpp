#pragma once

// acexd's server core (DESIGN.md §13): one epoll/poll event loop fronting
// a session::SessionManager (and through it the FanoutBroker) for many
// concurrent TCP subscribers. No thread per connection: every socket is
// non-blocking, each connection is a buffered reader/writer state machine,
// and ALL manager/broker access happens on the single loop thread —
// other threads talk to it through a mutex'd publish queue and a wakeup
// pipe.
//
// A connection's life: accepted -> handshake (first frame must be a
// kHello offer, answered with kWelcome or a typed kReject) -> streaming
// (its session's egress queue drains into the connection's outbuf, which
// flushes on writability; inbound kControl/kNack/kStatRequest traffic is
// serviced in place) -> closed (EOF, error, or reject flush), which parks
// the session so a later connection can resume it byte-identically.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "session/manager.hpp"

namespace acex::net {

struct DaemonConfig {
  /// TCP port to listen on; 0 binds an ephemeral port (see Daemon::port()).
  std::uint16_t port = 0;
  LoopBackend backend = LoopBackend::kAuto;

  /// Bounds client offers are intersected with.
  ServerPolicy policy;

  /// Manager knobs (broker workers, memory budget, token seed).
  session::ManagerConfig manager;

  /// Per-session template. Negotiation overwrites the adaptive fields
  /// (block size, slack, target rate, governor); the egress MUST be a
  /// non-blocking policy — a kBlock queue with no timeout would wedge the
  /// loop thread on one slow client (ConfigError at construction). The
  /// default swaps the library-wide kBlock egress for kDropOldest, whose
  /// evictions stay NACK-recoverable.
  session::SessionConfig session = [] {
    session::SessionConfig s;
    s.subscriber.policy = broker::SlowConsumerPolicy::kDropOldest;
    return s;
  }();

  /// A connection that has not completed its handshake within this window
  /// is dropped — half-open sockets must not pin daemon state.
  Seconds handshake_timeout = 5.0;

  /// Stop pumping a session's egress into its connection once the
  /// connection's unflushed outbuf exceeds this; frames then queue in the
  /// egress (and, under kDropOldest pressure, stay NACK-recoverable).
  std::size_t outbuf_high_watermark = 4 * 1024 * 1024;

  /// Lifecycle sweep cadence (manager.tick + handshake deadlines); also
  /// the loop's idle wait bound.
  Seconds tick_interval = 0.1;

  /// Accepted connections beyond this are rejected kOverloaded.
  std::size_t max_connections = 4096;
};

/// The multi-client daemon. Construction binds the listener; run() (or
/// start()) enters the loop. publish()/stop()/stats() are thread-safe;
/// everything else belongs to the loop thread.
class Daemon {
 public:
  explicit Daemon(DaemonConfig config = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bound listen port (the ephemeral one when config.port was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Run the event loop on the calling thread until stop().
  void run();

  /// Run the loop on an internal thread; stop() joins it.
  void start();

  /// Signal the loop to finish its current turn and exit, then join the
  /// internal thread if start() was used. Idempotent; never call from the
  /// loop thread itself.
  void stop();

  /// Enqueue one block for distribution to every session (thread-safe).
  void publish(Bytes block);

  /// Counter snapshot (thread-safe; also mirrored to `acex.net.*`).
  DaemonStats stats() const;

  /// Connections currently streaming (handshake completed), for
  /// --wait-subs style publish gating. Thread-safe.
  std::size_t streaming_count() const noexcept {
    return streaming_count_.load(std::memory_order_relaxed);
  }

  /// The manager under the loop. SessionManager is itself thread-safe
  /// (counters/state may be inspected while the loop runs); what is NOT
  /// reachable through it is any daemon connection state.
  session::SessionManager& manager() noexcept { return manager_; }

 private:
  /// One client connection. Doubles as the session's broker-side
  /// transport: send() frames a kData message into the outbuf, which the
  /// loop flushes as the socket accepts it.
  struct Connection final : public transport::Transport {
    explicit Connection(Daemon& daemon, int fd);

    void send(ByteView message) override;          // loop thread only
    std::optional<Bytes> receive() override { return std::nullopt; }
    const Clock& clock() const override;

    /// Unflushed outbuf bytes.
    std::size_t pending() const noexcept { return out_.size() - out_pos_; }

    Daemon* daemon;
    ScopedFd fd;
    bool streaming = false;     ///< handshake completed
    bool closing = false;       ///< flush outbuf, then close
    bool want_write = false;    ///< current loop interest
    Seconds opened_at = 0;
    session::SessionId session_id = 0;
    Bytes in_;                  ///< unparsed inbound bytes
    Bytes out_;                 ///< unflushed outbound bytes
    std::size_t out_pos_ = 0;   ///< flushed prefix of out_
  };

  void on_listener_ready();
  void on_wakeup();
  void on_connection_ready(int fd, Ready ready);
  bool read_input(Connection& conn);    ///< false = connection died
  bool parse_frames(Connection& conn);  ///< false = connection closed
  bool handle_message(Connection& conn, const Msg& msg);
  bool handle_hello(Connection& conn, ByteView payload);
  void enqueue(Connection& conn, MsgKind kind, ByteView payload);
  void flush(Connection& conn);
  void update_write_interest(Connection& conn);
  void close_connection(int fd);
  void reject_and_close(Connection& conn, HandshakeStatus status,
                        const std::string& reason);
  void drain_publish_queue();
  void pump_sessions();
  void sweep(Seconds now);
  std::string unique_name(const std::string& offered);

  DaemonConfig config_;
  MonotonicClock clock_;
  session::SessionManager manager_;
  EventLoop loop_;
  ScopedFd listener_;
  ScopedFd wake_rd_, wake_wr_;
  std::uint16_t port_ = 0;

  // Loop-thread state.
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::map<session::SessionId, NegotiatedParams> negotiated_;
  Seconds last_sweep_ = 0;
  std::uint64_t name_counter_ = 0;

  // Cross-thread state.
  std::mutex publish_mutex_;
  std::deque<Bytes> publish_queue_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> streaming_count_{0};
  std::thread thread_;

  // stats() mirror (each written on the loop thread, read anywhere).
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> handshakes_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> loop_wakeups_{0};
  std::atomic<std::uint64_t> blocks_published_{0};
};

}  // namespace acex::net
