#include "net/daemon.hpp"

#include <unistd.h>

#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::net {

namespace {

struct NetMetrics {
  obs::Counter& connections;
  obs::Counter& handshakes;
  obs::Counter& rejects;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& blocks;
  obs::Gauge& open;
  obs::Gauge& loop_wakeups;
};

NetMetrics& net_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static NetMetrics m{
      r.counter("acex.net.connections"),
      r.counter("acex.net.handshakes"),
      r.counter("acex.net.rejects"),
      r.counter("acex.net.bytes_in"),
      r.counter("acex.net.bytes_out"),
      r.counter("acex.net.blocks_published"),
      r.gauge("acex.net.connections_open"),
      r.gauge("acex.net.loop_wakeups"),
  };
  return m;
}

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

// --- Connection -------------------------------------------------------

Daemon::Connection::Connection(Daemon& owner, int raw_fd)
    : daemon(&owner), fd(raw_fd) {}

void Daemon::Connection::send(ByteView message) {
  if (!fd.valid() || closing) {
    throw IoError("daemon connection closed");  // broker marks disconnect
  }
  const Bytes framed = wrap(MsgKind::kData, message);
  std::uint8_t header[kLengthPrefixBytes];
  put_length_prefix(header, static_cast<std::uint32_t>(framed.size()));
  out_.insert(out_.end(), header, header + sizeof header);
  out_.insert(out_.end(), framed.begin(), framed.end());
}

const Clock& Daemon::Connection::clock() const { return daemon->clock_; }

// --- construction -----------------------------------------------------

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      manager_(clock_, config_.manager),
      loop_({config_.backend}) {
  const auto& sub = config_.session.subscriber;
  if (sub.policy == broker::SlowConsumerPolicy::kBlock &&
      sub.block_timeout <= 0) {
    // A forever-blocking egress publish would wedge the single loop thread
    // on its slowest client; the daemon refuses the foot-gun outright.
    throw ConfigError(
        "daemon: egress policy kBlock without a timeout would stall the "
        "event loop; use kDropOldest (NACK-recoverable) or set a timeout");
  }
  listener_.reset(listen_loopback(config_.port, /*backlog=*/128, &port_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) throw_errno("pipe");
  wake_rd_.reset(pipe_fds[0]);
  wake_wr_.reset(pipe_fds[1]);
  set_nonblocking(wake_rd_.get());
  set_nonblocking(wake_wr_.get());

  loop_.add(listener_.get(), /*read=*/true, /*write=*/false,
            [this](int, Ready) { on_listener_ready(); });
  loop_.add(wake_rd_.get(), /*read=*/true, /*write=*/false,
            [this](int, Ready) { on_wakeup(); });
}

Daemon::~Daemon() {
  stop();
  // Deregister before the ScopedFds close; connections_ destruction closes
  // every client socket.
  loop_.remove(listener_.get());
  loop_.remove(wake_rd_.get());
  for (const auto& [fd, conn] : connections_) loop_.remove(fd);
}

// --- loop driving -----------------------------------------------------

void Daemon::run() {
  if (running_.exchange(true)) {
    throw ConfigError("daemon: run() is already executing");
  }
  const int timeout_ms =
      config_.tick_interval > 0
          ? static_cast<int>(config_.tick_interval * 1000)
          : 100;
  last_sweep_ = clock_.now();
  while (!stop_.load(std::memory_order_acquire)) {
    loop_.poll_once(timeout_ms);
    drain_publish_queue();
    pump_sessions();
    sweep(clock_.now());
    loop_wakeups_.store(loop_.wakeups(), std::memory_order_relaxed);
    net_metrics().loop_wakeups.set(static_cast<std::int64_t>(loop_.wakeups()));
  }
  running_.store(false);
}

void Daemon::start() {
  if (thread_.joinable() || running_.load()) {
    throw ConfigError("daemon: already started");
  }
  stop_.store(false);
  thread_ = std::thread([this] { run(); });
}

void Daemon::stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_wr_.valid()) {
    const std::uint8_t one = 1;
    (void)::write(wake_wr_.get(), &one, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void Daemon::publish(Bytes block) {
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    publish_queue_.push_back(std::move(block));
  }
  if (wake_wr_.valid()) {
    const std::uint8_t one = 1;
    (void)::write(wake_wr_.get(), &one, 1);
  }
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.handshakes = handshakes_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.loop_wakeups = loop_wakeups_.load(std::memory_order_relaxed);
  s.blocks_published = blocks_published_.load(std::memory_order_relaxed);
  return s;
}

// --- accept / wakeup --------------------------------------------------

void Daemon::on_listener_ready() {
  for (;;) {
    const int client = accept_client(listener_.get());
    if (client < 0) return;
    set_nonblocking(client);
    auto conn = std::make_unique<Connection>(*this, client);
    conn->opened_at = clock_.now();
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    net_metrics().connections.add();
    net_metrics().open.add(1);
    Connection& ref = *conn;
    connections_.emplace(client, std::move(conn));
    loop_.add(client, /*read=*/true, /*write=*/false,
              [this](int fd, Ready ready) { on_connection_ready(fd, ready); });
    if (connections_.size() > config_.max_connections) {
      reject_and_close(ref, HandshakeStatus::kOverloaded,
                       "connection limit reached");
    }
  }
}

void Daemon::on_wakeup() {
  std::uint8_t buf[256];
  while (read_some(wake_rd_.get(), buf, sizeof buf) > 0) {
  }
}

// --- per-connection I/O -----------------------------------------------

void Daemon::on_connection_ready(int fd, Ready ready) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (ready.error) {
    close_connection(fd);
    return;
  }
  if (ready.readable) {
    if (!read_input(conn)) {
      close_connection(fd);
      return;
    }
    if (!parse_frames(conn)) return;  // closed itself
  }
  if (ready.writable) flush(conn);
  if (conn.closing && conn.pending() == 0) {
    close_connection(fd);
    return;
  }
  update_write_interest(conn);
}

bool Daemon::read_input(Connection& conn) {
  std::uint8_t buf[kReadChunk];
  for (;;) {
    std::ptrdiff_t n;
    try {
      n = read_some(conn.fd.get(), buf, sizeof buf);
    } catch (const IoError&) {
      return false;  // hard socket error (ECONNRESET & friends)
    }
    if (n < 0) return true;   // drained
    if (n == 0) return false; // EOF
    conn.in_.insert(conn.in_.end(), buf, buf + n);
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    net_metrics().bytes_in.add(static_cast<std::uint64_t>(n));
  }
}

bool Daemon::parse_frames(Connection& conn) {
  const int fd = conn.fd.get();
  std::size_t pos = 0;
  while (conn.in_.size() - pos >= kLengthPrefixBytes) {
    const std::uint32_t len = get_length_prefix(conn.in_.data() + pos);
    if (len > kMaxMessageBytes) {
      close_connection(fd);
      return false;
    }
    if (conn.in_.size() - pos < kLengthPrefixBytes + len) break;
    const ByteView frame(conn.in_.data() + pos + kLengthPrefixBytes, len);
    pos += kLengthPrefixBytes + len;
    bool alive = true;
    try {
      alive = handle_message(conn, unwrap(frame));
    } catch (const HandshakeError& e) {
      if (conn.streaming) {
        close_connection(fd);
      } else {
        reject_and_close(conn, e.status(), e.what());
      }
      alive = false;
    } catch (const Error&) {
      close_connection(fd);  // e.g. corrupt control message
      alive = false;
    }
    if (!alive) return false;
    if (conn.closing) break;  // rejected: ignore any pipelined input
  }
  conn.in_.erase(conn.in_.begin(),
                 conn.in_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

bool Daemon::handle_message(Connection& conn, const Msg& msg) {
  if (msg.kind == MsgKind::kStatRequest) {
    // Allowed in both states: acexctl stat probes without subscribing.
    enqueue(conn, MsgKind::kStatReply, stats_encode(stats()));
    return true;
  }
  if (!conn.streaming) {
    if (msg.kind != MsgKind::kHello) {
      reject_and_close(conn, HandshakeStatus::kMalformed,
                       "expected hello, got " +
                           std::string(msg_kind_name(msg.kind)));
      return false;
    }
    return handle_hello(conn, msg.payload);
  }
  switch (msg.kind) {
    case MsgKind::kControl: {
      const Bytes ack = manager_.handle_control(msg.payload);
      enqueue(conn, MsgKind::kControl, ack);
      return true;
    }
    case MsgKind::kNack: {
      const auto sequences = nack_decode(msg.payload);
      manager_.retransmit(conn.session_id, sequences);
      if (conn.pending() < config_.outbuf_high_watermark) {
        manager_.pump(conn.session_id);
      }
      return true;
    }
    default:
      close_connection(conn.fd.get());  // hello twice / server-only kind
      return false;
  }
}

bool Daemon::handle_hello(Connection& conn, ByteView payload) {
  const CompressionOffer offer = offer_decode(payload);  // throws typed

  if (offer.is_resume()) {
    const auto it = negotiated_.find(offer.resume_session);
    if (it == negotiated_.end()) {
      reject_and_close(conn, HandshakeStatus::kResumeRejected,
                       "unknown session");
      return false;
    }
    const auto result = manager_.resume(offer.resume_session,
                                        offer.resume_token,
                                        offer.resume_from, conn);
    switch (result.status) {
      case session::ResumeResult::Status::kResumed: {
        conn.streaming = true;
        conn.session_id = offer.resume_session;
        streaming_count_.fetch_add(1, std::memory_order_relaxed);
        handshakes_.fetch_add(1, std::memory_order_relaxed);
        net_metrics().handshakes.add();
        Welcome welcome;
        welcome.session_id = offer.resume_session;
        welcome.token = offer.resume_token;
        welcome.heartbeat_interval_ms = static_cast<std::uint64_t>(
            config_.session.heartbeat_interval * 1000);
        welcome.resumed = true;
        welcome.replayed = result.replayed;
        welcome.params = it->second;  // the ORIGINAL negotiated set
        enqueue(conn, MsgKind::kWelcome, welcome_encode(welcome));
        return true;
      }
      case session::ResumeResult::Status::kRestart:
        negotiated_.erase(it);
        reject_and_close(conn, HandshakeStatus::kRestartRequired,
                         result.reason);
        return false;
      case session::ResumeResult::Status::kRejected:
        reject_and_close(conn, HandshakeStatus::kResumeRejected,
                         result.reason);
        return false;
    }
    return false;
  }

  const NegotiatedParams params = negotiate(offer, config_.policy);  // throws
  session::SessionConfig scfg = config_.session;
  scfg.subscriber.name = unique_name(offer.name);
  apply(params, scfg.subscriber.adaptive);
  const auto result = manager_.connect(conn, scfg);
  if (!result.accepted) {
    reject_and_close(conn, HandshakeStatus::kOverloaded, result.reason);
    return false;
  }
  conn.streaming = true;
  conn.session_id = result.session_id;
  negotiated_[result.session_id] = params;
  streaming_count_.fetch_add(1, std::memory_order_relaxed);
  handshakes_.fetch_add(1, std::memory_order_relaxed);
  net_metrics().handshakes.add();

  Welcome welcome;
  welcome.session_id = result.session_id;
  welcome.token = result.token;
  welcome.heartbeat_interval_ms =
      static_cast<std::uint64_t>(result.heartbeat_interval * 1000);
  welcome.params = params;
  enqueue(conn, MsgKind::kWelcome, welcome_encode(welcome));
  return true;
}

// --- outbound ---------------------------------------------------------

void Daemon::enqueue(Connection& conn, MsgKind kind, ByteView payload) {
  const Bytes framed = wrap(kind, payload);
  std::uint8_t header[kLengthPrefixBytes];
  put_length_prefix(header, static_cast<std::uint32_t>(framed.size()));
  conn.out_.insert(conn.out_.end(), header, header + sizeof header);
  conn.out_.insert(conn.out_.end(), framed.begin(), framed.end());
  flush(conn);
}

void Daemon::flush(Connection& conn) {
  while (conn.out_pos_ < conn.out_.size()) {
    std::ptrdiff_t n;
    try {
      n = write_some(conn.fd.get(), conn.out_.data() + conn.out_pos_,
                     conn.out_.size() - conn.out_pos_);
    } catch (const IoError&) {
      // Hard error (EPIPE): drop what we can't deliver; the close path
      // parks the session so the payload stays NACK/resume-recoverable.
      conn.out_.clear();
      conn.out_pos_ = 0;
      conn.closing = true;
      return;
    }
    if (n <= 0) break;  // would block
    conn.out_pos_ += static_cast<std::size_t>(n);
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
    net_metrics().bytes_out.add(static_cast<std::uint64_t>(n));
  }
  if (conn.out_pos_ == conn.out_.size()) {
    conn.out_.clear();
    conn.out_pos_ = 0;
  } else if (conn.out_pos_ > conn.out_.size() / 2) {
    conn.out_.erase(conn.out_.begin(),
                    conn.out_.begin() +
                        static_cast<std::ptrdiff_t>(conn.out_pos_));
    conn.out_pos_ = 0;
  }
}

void Daemon::update_write_interest(Connection& conn) {
  const bool want = conn.pending() > 0;
  if (want != conn.want_write) {
    conn.want_write = want;
    loop_.modify(conn.fd.get(), /*read=*/!conn.closing, want);
  }
}

void Daemon::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  loop_.remove(fd);
  if (conn.streaming) {
    // Abrupt loss or post-reject teardown: park the session (liveness
    // machinery would get there anyway) so a reconnect can resume it.
    manager_.disconnect(conn.session_id);
    streaming_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  net_metrics().open.add(-1);
  connections_.erase(it);  // ScopedFd closes the socket
}

void Daemon::reject_and_close(Connection& conn, HandshakeStatus status,
                              const std::string& reason) {
  rejects_.fetch_add(1, std::memory_order_relaxed);
  net_metrics().rejects.add();
  conn.closing = true;  // before enqueue: no pump may interleave data
  Reject reject;
  reject.status = status;
  reject.reason = reason;
  const Bytes framed = wrap(MsgKind::kReject, reject_encode(reject));
  std::uint8_t header[kLengthPrefixBytes];
  put_length_prefix(header, static_cast<std::uint32_t>(framed.size()));
  conn.out_.insert(conn.out_.end(), header, header + sizeof header);
  conn.out_.insert(conn.out_.end(), framed.begin(), framed.end());
  flush(conn);
  if (conn.pending() == 0) {
    close_connection(conn.fd.get());
  } else {
    update_write_interest(conn);
  }
}

// --- distribution -----------------------------------------------------

void Daemon::drain_publish_queue() {
  std::deque<Bytes> batch;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    batch.swap(publish_queue_);
  }
  for (const Bytes& block : batch) {
    manager_.publish(block);
    blocks_published_.fetch_add(1, std::memory_order_relaxed);
    net_metrics().blocks.add();
  }
}

void Daemon::pump_sessions() {
  // Collect first: pumping calls Connection::send, and an IoError there
  // marks the broker side disconnected without touching connections_.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    if (conn->streaming && !conn->closing &&
        conn->pending() < config_.outbuf_high_watermark) {
      fds.push_back(fd);
    }
  }
  for (const int fd : fds) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    manager_.pump(conn.session_id);
    flush(conn);
    if (conn.closing && conn.pending() == 0) {
      close_connection(fd);
      continue;
    }
    update_write_interest(conn);
  }
}

void Daemon::sweep(Seconds now) {
  if (now - last_sweep_ < config_.tick_interval) return;
  last_sweep_ = now;
  manager_.tick();

  std::vector<int> drop;
  for (const auto& [fd, conn] : connections_) {
    if (!conn->streaming && !conn->closing &&
        now - conn->opened_at > config_.handshake_timeout) {
      drop.push_back(fd);  // half-open: never sent a valid hello
    } else if (conn->streaming &&
               manager_.state(conn->session_id) ==
                   session::SessionState::kExpired) {
      drop.push_back(fd);
    }
  }
  for (const int fd : drop) close_connection(fd);

  for (auto it = negotiated_.begin(); it != negotiated_.end();) {
    if (manager_.state(it->first) == session::SessionState::kExpired) {
      it = negotiated_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string Daemon::unique_name(const std::string& offered) {
  ++name_counter_;
  if (offered.empty()) return "net-" + std::to_string(name_counter_);
  // Uniquify: per-subscriber obs series must stay distinguishable even
  // when every client offers the same label.
  return offered + "#" + std::to_string(name_counter_);
}

}  // namespace acex::net
