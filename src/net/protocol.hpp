#pragma once

// acexd's message layer (DESIGN.md §13). Every daemon message rides the
// shared 4-byte length-prefixed framing of net/socket.hpp; inside the frame
// the first byte is the MsgKind, the rest the kind-specific payload:
//
//   kHello    client -> server  handshake::offer_encode bytes
//   kWelcome  server -> client  welcome_encode (session + negotiated params)
//   kReject   server -> client  reject_encode (typed status + reason)
//   kData     server -> client  one compressed frame, verbatim
//   kControl  both directions   session::control_encode bytes (heartbeat,
//                               bye, and their acknowledgements)
//   kNack     client -> server  nack_encode (sequences to replay)
//   kStatRequest / kStatReply   acexctl's stat probe and its answer

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/handshake.hpp"
#include "util/bytes.hpp"

namespace acex::net {

enum class MsgKind : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kReject = 3,
  kData = 4,
  kControl = 5,
  kNack = 6,
  kStatRequest = 7,
  kStatReply = 8,
};

std::string_view msg_kind_name(MsgKind kind) noexcept;

/// One decoded daemon message. `payload` is the bytes after the kind byte.
struct Msg {
  MsgKind kind = MsgKind::kControl;
  Bytes payload;
};

/// Prefix `payload` with the kind byte.
Bytes wrap(MsgKind kind, ByteView payload);

/// Split a received frame into kind + payload. Throws HandshakeError
/// (kMalformed) on empty frames or unknown kinds — a peer speaking a
/// different protocol is indistinguishable from corruption.
Msg unwrap(ByteView frame);

/// The server's answer to an accepted kHello: the session credentials the
/// client heartbeats/resumes with, plus the negotiated parameter set it
/// must configure its receiver around.
struct Welcome {
  std::uint64_t session_id = 0;
  std::uint64_t token = 0;
  std::uint64_t heartbeat_interval_ms = 500;
  bool resumed = false;          ///< this welcome answered a resume offer
  std::uint64_t replayed = 0;    ///< frames replayed to close the gap
  NegotiatedParams params;

  bool operator==(const Welcome&) const = default;
};

Bytes welcome_encode(const Welcome& welcome);
Welcome welcome_decode(ByteView payload);

/// The server's answer to a refused kHello; the connection closes after.
struct Reject {
  HandshakeStatus status = HandshakeStatus::kMalformed;
  std::string reason;

  bool operator==(const Reject&) const = default;
};

Bytes reject_encode(const Reject& reject);
Reject reject_decode(ByteView payload);

/// kNack payload: the frame sequences a client asks the server to replay
/// from its retransmit ring.
Bytes nack_encode(const std::vector<std::uint64_t>& sequences);
std::vector<std::uint64_t> nack_decode(ByteView payload);

/// kStatReply payload — the daemon's `acex.net.*` counters, served to
/// acexctl stat (and cross-checked against obs by the tests).
struct DaemonStats {
  std::uint64_t connections_total = 0;   ///< accepted TCP connections
  std::uint64_t connections_open = 0;    ///< currently open
  std::uint64_t handshakes = 0;          ///< kWelcome sent
  std::uint64_t rejects = 0;             ///< kReject sent
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t loop_wakeups = 0;
  std::uint64_t blocks_published = 0;

  bool operator==(const DaemonStats&) const = default;
};

Bytes stats_encode(const DaemonStats& stats);
DaemonStats stats_decode(ByteView payload);

}  // namespace acex::net
