#pragma once

// Shared low-level socket plumbing (DESIGN.md §13). Every raw read()/write()
// loop in the codebase lives here: TcpTransport's blocking message framing
// and the daemon's non-blocking buffered state machines both build on these
// helpers, so EINTR handling, typed errno errors, and the length-prefix
// format exist exactly once.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "util/bytes.hpp"

namespace acex::net {

/// Throw IoError carrying `what`, strerror(errno), and the errno value.
[[noreturn]] void throw_errno(const char* what);

/// RAII file descriptor. Move-only; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset(std::exchange(other.fd_, -1));
    }
    return *this;
  }
  ~ScopedFd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on/off; throws IoError on fcntl failure.
void set_nonblocking(int fd, bool on = true);

/// TCP_NODELAY — every message here is a complete protocol unit, so Nagle
/// batching only adds latency. Best effort (AF_UNIX pairs reject it).
void set_nodelay(int fd) noexcept;

/// EINTR-safe full write: blocks until all `len` bytes are accepted.
/// MSG_NOSIGNAL, so a dead peer surfaces as IoError, never SIGPIPE.
void send_all(int fd, const std::uint8_t* data, std::size_t len);

/// EINTR-safe full read of exactly `len` bytes. Returns false on clean EOF
/// before the first byte when `eof_ok`; EOF mid-buffer always throws.
bool recv_all(int fd, std::uint8_t* data, std::size_t len, bool eof_ok);

/// One non-blocking read: bytes read, 0 on EOF, -1 when the socket has
/// nothing (EAGAIN/EWOULDBLOCK). Hard errors throw IoError.
std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t len);

/// One non-blocking write: bytes written or -1 when the socket buffer is
/// full. Hard errors (including a dead peer) throw IoError.
std::ptrdiff_t write_some(int fd, const std::uint8_t* data, std::size_t len);

/// The message framing every acex socket speaks: 4-byte little-endian body
/// size, then the body. `kMaxMessageBytes` is the sanity cap a receiver
/// enforces before allocating — a corrupt or hostile length prefix must not
/// buy a 4 GiB allocation.
inline constexpr std::size_t kLengthPrefixBytes = 4;
inline constexpr std::size_t kMaxMessageBytes = 64ull << 20;

/// Encode `size` into the 4-byte little-endian prefix.
void put_length_prefix(std::uint8_t out[kLengthPrefixBytes], std::uint32_t size) noexcept;

/// Decode the 4-byte little-endian prefix.
std::uint32_t get_length_prefix(const std::uint8_t in[kLengthPrefixBytes]) noexcept;

/// Blocking send of one length-prefixed message.
void send_message(int fd, ByteView message);

/// Blocking receive of one length-prefixed message; nullopt on clean EOF at
/// a message boundary. Throws IoError on mid-message EOF or an oversized
/// length prefix (> `max_bytes`).
std::optional<Bytes> recv_message(int fd,
                                  std::size_t max_bytes = kMaxMessageBytes);

/// poll(2) for readability. True when `fd` is readable (or has an error to
/// report) within `timeout_ms`; -1 waits forever. EINTR retries.
bool wait_readable(int fd, int timeout_ms);

/// Non-blocking loopback listener on 127.0.0.1:`port` (0 = ephemeral).
/// Returns the listening fd and writes the bound port to `bound_port`.
int listen_loopback(std::uint16_t port, int backlog,
                    std::uint16_t* bound_port);

/// Blocking connect to 127.0.0.1:`port`; returns a connected fd with
/// TCP_NODELAY set.
int connect_loopback(std::uint16_t port);

/// accept(2) one client from a non-blocking listener: the connected fd, or
/// -1 when no connection is pending.
int accept_client(int listen_fd);

}  // namespace acex::net
