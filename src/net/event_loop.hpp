#pragma once

// Readiness loop of the acexd daemon (DESIGN.md §13): level-triggered
// epoll on Linux with a portable poll(2) fallback, non-blocking sockets,
// one callback per fd, no thread-per-connection.

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>

namespace acex::net {

enum class LoopBackend {
  kAuto,   ///< epoll where available, poll otherwise
  kEpoll,  ///< force epoll; throws ConfigError off-Linux
  kPoll,   ///< force the poll fallback (exercised by tests even on Linux)
};

struct EventLoopConfig {
  LoopBackend backend = LoopBackend::kAuto;
  /// Ready-set capacity per wait (epoll backend); more ready fds simply
  /// surface on the next turn — level-triggered readiness is retried.
  std::size_t max_events = 256;
};

/// What one dispatch observed on an fd.
struct Ready {
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP/POLLERR/POLLHUP/POLLNVAL
};

/// A single-threaded readiness multiplexer. All methods must be called from
/// the owning (loop) thread; cross-thread signalling is done by writing to
/// a registered pipe/eventfd, not by touching the loop directly.
///
/// Callbacks may add/modify/remove fds freely — including removing
/// themselves or another fd that is ready in the same batch; dispatch
/// re-checks registration before every invocation.
class EventLoop {
 public:
  using Callback = std::function<void(int fd, Ready ready)>;

  explicit EventLoop(EventLoopConfig config = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` (must be non-blocking) for level-triggered readiness.
  /// Throws ConfigError if already registered.
  void add(int fd, bool want_read, bool want_write, Callback callback);

  /// Change the interest set of a registered fd.
  void modify(int fd, bool want_read, bool want_write);

  /// Deregister; unknown fds are ignored (a close path may race its own
  /// cleanup). Never closes the fd.
  void remove(int fd);

  /// Wait up to `timeout_ms` (-1 = forever, 0 = poll) and dispatch every
  /// ready callback once. Returns the number of callbacks dispatched.
  std::size_t poll_once(int timeout_ms);

  std::size_t size() const noexcept { return entries_.size(); }

  /// Times poll_once() woke with at least one ready fd or a timeout —
  /// mirrored to `acex.net.loop_wakeups` by the daemon.
  std::uint64_t wakeups() const noexcept { return wakeups_; }

  std::string_view backend_name() const noexcept;

 private:
  struct Entry {
    bool want_read = false;
    bool want_write = false;
    Callback callback;
  };

  std::size_t poll_once_epoll(int timeout_ms);
  std::size_t poll_once_poll(int timeout_ms);

  EventLoopConfig config_;
  std::map<int, Entry> entries_;
  int epoll_fd_ = -1;  ///< -1 = poll backend
  std::uint64_t wakeups_ = 0;
};

}  // namespace acex::net
