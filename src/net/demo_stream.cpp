#include "net/demo_stream.hpp"

#include <array>
#include <cstring>
#include <string_view>

#include "util/rng.hpp"

namespace acex::net {

namespace {

constexpr std::string_view kMagic = "acexdemo";
constexpr std::size_t kHeaderBytes = kMagic.size() + 8;

// A small phrase pool keeps the stream compressible (the point of the
// demo is to watch negotiated codecs at work), while the seeded shuffle
// keeps it from being trivially constant.
constexpr std::array<std::string_view, 8> kPhrases = {
    "configurable compression ", "end to end exchange ",
    "adaptive block stream ",    "burrows wheeler transform ",
    "lempel ziv window ",        "huffman code table ",
    "target rate escalation ",   "loopback subscriber ",
};

}  // namespace

Bytes demo_block(std::uint64_t seed, std::uint32_t index, std::size_t size) {
  Bytes block;
  block.reserve(size < kHeaderBytes ? kHeaderBytes : size);
  block.insert(block.end(), kMagic.begin(), kMagic.end());
  for (std::size_t i = 0; i < 4; ++i) {
    block.push_back(static_cast<std::uint8_t>(index >> (8 * i)));
  }
  const std::uint32_t size32 = static_cast<std::uint32_t>(size);
  for (std::size_t i = 0; i < 4; ++i) {
    block.push_back(static_cast<std::uint8_t>(size32 >> (8 * i)));
  }
  // Mix the index into the stream seed so consecutive blocks differ.
  Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (index + 1)));
  while (block.size() < size) {
    const std::string_view phrase = kPhrases[rng.below(kPhrases.size())];
    const std::size_t room = size - block.size();
    block.insert(block.end(), phrase.begin(),
                 phrase.begin() + std::min(room, phrase.size()));
  }
  return block;
}

std::int64_t demo_block_index(ByteView block) noexcept {
  if (block.size() < kHeaderBytes) return -1;
  if (std::memcmp(block.data(), kMagic.data(), kMagic.size()) != 0) return -1;
  std::uint32_t index = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    index |= static_cast<std::uint32_t>(block[kMagic.size() + i]) << (8 * i);
  }
  return static_cast<std::int64_t>(index);
}

std::size_t demo_block_size(ByteView view) noexcept {
  if (view.size() < kHeaderBytes) return 0;
  if (std::memcmp(view.data(), kMagic.data(), kMagic.size()) != 0) return 0;
  std::uint32_t size = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(view[kMagic.size() + 4 + i]) << (8 * i);
  }
  return size;
}

bool demo_block_verify(std::uint64_t seed, ByteView block) noexcept {
  const std::int64_t index = demo_block_index(block);
  if (index < 0) return false;
  const Bytes expected =
      demo_block(seed, static_cast<std::uint32_t>(index), block.size());
  return expected.size() == block.size() &&
         std::memcmp(expected.data(), block.data(), block.size()) == 0;
}

}  // namespace acex::net
