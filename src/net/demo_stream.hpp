#pragma once

// Deterministic demo block stream published by acexd and verified by
// acexctl / the smoke tests. Each block embeds its own publish index, so a
// subscriber can check completeness and ordering from content alone — the
// broker numbers frames per subscriber from 0 at subscribe time, which
// says nothing about where in the publish stream a late joiner attached.

#include <cstdint>

#include "util/bytes.hpp"

namespace acex::net {

/// Block `index` of the demo stream for `seed`: a 16-byte header
/// ("acexdemo" | u32 index LE | u32 size LE) followed by compressible
/// seeded text. Same (seed, index, size) always yields the same bytes on
/// every host, so server and verifier regenerate rather than share.
Bytes demo_block(std::uint64_t seed, std::uint32_t index, std::size_t size);

/// Extract the embedded publish index; -1 if `block` is not a demo block.
std::int64_t demo_block_index(ByteView block) noexcept;

/// Embedded total block size (header included), or 0 if `view` does not
/// start with a demo header. Lets a consumer split a concatenated decoded
/// stream back into publish-sized blocks.
std::size_t demo_block_size(ByteView view) noexcept;

/// True iff `block` is byte-identical to demo_block(seed, its embedded
/// index, block.size()).
bool demo_block_verify(std::uint64_t seed, ByteView block) noexcept;

}  // namespace acex::net
