#include "net/protocol.hpp"

#include "util/varint.hpp"

namespace acex::net {

namespace {

constexpr std::size_t kMaxNackSequences = 4096;
constexpr std::size_t kMaxReasonBytes = 1024;

[[noreturn]] void malformed(const std::string& what) {
  throw HandshakeError(HandshakeStatus::kMalformed, what);
}

std::uint64_t take_varint(ByteView wire, std::size_t* pos, const char* field) {
  try {
    return get_varint(wire, pos);
  } catch (const Error&) {
    malformed(std::string("truncated ") + field);
  }
}

}  // namespace

std::string_view msg_kind_name(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kHello: return "hello";
    case MsgKind::kWelcome: return "welcome";
    case MsgKind::kReject: return "reject";
    case MsgKind::kData: return "data";
    case MsgKind::kControl: return "control";
    case MsgKind::kNack: return "nack";
    case MsgKind::kStatRequest: return "stat-request";
    case MsgKind::kStatReply: return "stat-reply";
  }
  return "unknown";
}

Bytes wrap(MsgKind kind, ByteView payload) {
  Bytes out;
  out.reserve(1 + payload.size());
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Msg unwrap(ByteView frame) {
  if (frame.empty()) malformed("empty message");
  const std::uint8_t raw = frame[0];
  if (raw < static_cast<std::uint8_t>(MsgKind::kHello) ||
      raw > static_cast<std::uint8_t>(MsgKind::kStatReply)) {
    malformed("unknown message kind " + std::to_string(raw));
  }
  Msg msg;
  msg.kind = static_cast<MsgKind>(raw);
  msg.payload.assign(frame.begin() + 1, frame.end());
  return msg;
}

Bytes welcome_encode(const Welcome& welcome) {
  Bytes out;
  put_varint(out, welcome.session_id);
  put_varint(out, welcome.token);
  put_varint(out, welcome.heartbeat_interval_ms);
  out.push_back(welcome.resumed ? 1 : 0);
  put_varint(out, welcome.replayed);
  const Bytes params = params_encode(welcome.params);
  out.insert(out.end(), params.begin(), params.end());
  return out;
}

Welcome welcome_decode(ByteView payload) {
  std::size_t pos = 0;
  Welcome welcome;
  welcome.session_id = take_varint(payload, &pos, "session id");
  welcome.token = take_varint(payload, &pos, "token");
  welcome.heartbeat_interval_ms =
      take_varint(payload, &pos, "heartbeat interval");
  if (pos >= payload.size()) malformed("truncated welcome");
  welcome.resumed = payload[pos++] != 0;
  welcome.replayed = take_varint(payload, &pos, "replay count");
  welcome.params = params_decode(payload.subspan(pos));
  return welcome;
}

Bytes reject_encode(const Reject& reject) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(reject.status));
  put_varint(out, reject.reason.size());
  out.insert(out.end(), reject.reason.begin(), reject.reason.end());
  return out;
}

Reject reject_decode(ByteView payload) {
  if (payload.empty()) malformed("empty reject");
  std::size_t pos = 0;
  Reject reject;
  const std::uint8_t raw = payload[pos++];
  if (raw > static_cast<std::uint8_t>(HandshakeStatus::kUnsupportedPolicy)) {
    malformed("unknown reject status " + std::to_string(raw));
  }
  reject.status = static_cast<HandshakeStatus>(raw);
  const std::uint64_t len = take_varint(payload, &pos, "reason length");
  if (len > kMaxReasonBytes) malformed("reject reason too long");
  if (payload.size() - pos < len) malformed("truncated reject reason");
  reject.reason.assign(reinterpret_cast<const char*>(payload.data() + pos),
                       static_cast<std::size_t>(len));
  return reject;
}

Bytes nack_encode(const std::vector<std::uint64_t>& sequences) {
  Bytes out;
  put_varint(out, sequences.size());
  for (const std::uint64_t seq : sequences) put_varint(out, seq);
  return out;
}

std::vector<std::uint64_t> nack_decode(ByteView payload) {
  std::size_t pos = 0;
  const std::uint64_t n = take_varint(payload, &pos, "nack count");
  if (n > kMaxNackSequences) malformed("nack list too long");
  std::vector<std::uint64_t> sequences;
  sequences.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    sequences.push_back(take_varint(payload, &pos, "nack sequence"));
  }
  return sequences;
}

Bytes stats_encode(const DaemonStats& stats) {
  Bytes out;
  put_varint(out, stats.connections_total);
  put_varint(out, stats.connections_open);
  put_varint(out, stats.handshakes);
  put_varint(out, stats.rejects);
  put_varint(out, stats.bytes_in);
  put_varint(out, stats.bytes_out);
  put_varint(out, stats.loop_wakeups);
  put_varint(out, stats.blocks_published);
  return out;
}

DaemonStats stats_decode(ByteView payload) {
  std::size_t pos = 0;
  DaemonStats stats;
  stats.connections_total = take_varint(payload, &pos, "connections total");
  stats.connections_open = take_varint(payload, &pos, "connections open");
  stats.handshakes = take_varint(payload, &pos, "handshakes");
  stats.rejects = take_varint(payload, &pos, "rejects");
  stats.bytes_in = take_varint(payload, &pos, "bytes in");
  stats.bytes_out = take_varint(payload, &pos, "bytes out");
  stats.loop_wakeups = take_varint(payload, &pos, "loop wakeups");
  stats.blocks_published = take_varint(payload, &pos, "blocks published");
  return stats;
}

}  // namespace acex::net
