#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace acex::net {

void throw_errno(const char* what) {
  const int err = errno;
  throw IoError(std::string(what) + ": " + std::strerror(err) + " (errno " +
                std::to_string(err) + ")");
}

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool recv_all(int fd, std::uint8_t* data, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw IoError("recv: peer closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::ptrdiff_t read_some(int fd, std::uint8_t* buf, std::size_t len) {
  for (;;) {
    // ::read, not ::recv: the daemon's wakeup pipe drains through here too,
    // and recv() on a pipe fd is ENOTSOCK.
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("read");
  }
}

std::ptrdiff_t write_some(int fd, const std::uint8_t* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("send");
  }
}

void put_length_prefix(std::uint8_t out[kLengthPrefixBytes],
                       std::uint32_t size) noexcept {
  for (std::size_t i = 0; i < kLengthPrefixBytes; ++i) {
    out[i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
}

std::uint32_t get_length_prefix(
    const std::uint8_t in[kLengthPrefixBytes]) noexcept {
  std::uint32_t size = 0;
  for (std::size_t i = 0; i < kLengthPrefixBytes; ++i) {
    size |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return size;
}

void send_message(int fd, ByteView message) {
  if (message.size() > 0xFFFFFFFFull) {
    throw ConfigError("net: message exceeds 4 GiB framing limit");
  }
  std::uint8_t header[kLengthPrefixBytes];
  put_length_prefix(header, static_cast<std::uint32_t>(message.size()));
  send_all(fd, header, sizeof header);
  send_all(fd, message.data(), message.size());
}

std::optional<Bytes> recv_message(int fd, std::size_t max_bytes) {
  std::uint8_t header[kLengthPrefixBytes];
  if (!recv_all(fd, header, sizeof header, /*eof_ok=*/true)) {
    return std::nullopt;
  }
  const std::uint32_t size = get_length_prefix(header);
  if (size > max_bytes) {
    throw IoError("recv: message length " + std::to_string(size) +
                  " exceeds cap " + std::to_string(max_bytes));
  }
  Bytes body(size);
  if (size > 0) recv_all(fd, body.data(), size, /*eof_ok=*/false);
  return body;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int n = ::poll(&p, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return n > 0;
  }
}

int listen_loopback(std::uint16_t port, int backlog,
                    std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("listen");
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect");
  }
  set_nodelay(fd);
  return fd;
}

int accept_client(int listen_fd) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0) {
      set_nodelay(client);
      return client;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return -1;
    }
    throw_errno("accept");
  }
}

}  // namespace acex::net
