#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#define ACEX_HAVE_EPOLL 1
#else
#define ACEX_HAVE_EPOLL 0
#endif

#include "net/socket.hpp"
#include "util/error.hpp"

namespace acex::net {

EventLoop::EventLoop(EventLoopConfig config) : config_(config) {
  if (config_.max_events == 0) config_.max_events = 256;
  const bool want_epoll = config_.backend != LoopBackend::kPoll;
#if ACEX_HAVE_EPOLL
  if (want_epoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
  }
#else
  if (config_.backend == LoopBackend::kEpoll) {
    throw ConfigError("event loop: epoll unavailable on this platform");
  }
  (void)want_epoll;
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::string_view EventLoop::backend_name() const noexcept {
  return epoll_fd_ >= 0 ? "epoll" : "poll";
}

namespace {

#if ACEX_HAVE_EPOLL
std::uint32_t epoll_mask(bool want_read, bool want_write) noexcept {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}
#endif

}  // namespace

void EventLoop::add(int fd, bool want_read, bool want_write,
                    Callback callback) {
  if (fd < 0) throw ConfigError("event loop: invalid fd");
  if (entries_.count(fd) != 0) {
    throw ConfigError("event loop: fd " + std::to_string(fd) +
                      " already registered");
  }
#if ACEX_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }
#endif
  entries_.emplace(fd, Entry{want_read, want_write, std::move(callback)});
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) {
    throw ConfigError("event loop: modify of unregistered fd " +
                      std::to_string(fd));
  }
  if (it->second.want_read == want_read &&
      it->second.want_write == want_write) {
    return;
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
#if ACEX_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(MOD)");
    }
  }
#endif
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
#if ACEX_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    // The fd may already be closed (EBADF) — deregistration is best effort.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  entries_.erase(it);
}

std::size_t EventLoop::poll_once(int timeout_ms) {
  ++wakeups_;
  return epoll_fd_ >= 0 ? poll_once_epoll(timeout_ms)
                        : poll_once_poll(timeout_ms);
}

std::size_t EventLoop::poll_once_epoll(int timeout_ms) {
#if ACEX_HAVE_EPOLL
  std::vector<epoll_event> ready(config_.max_events);
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, ready.data(),
                     static_cast<int>(ready.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");

  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = ready[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t events = ready[static_cast<std::size_t>(i)].events;
    // A prior callback in this batch may have removed this fd.
    const auto it = entries_.find(fd);
    if (it == entries_.end() || !it->second.callback) continue;
    Ready r;
    r.readable = (events & EPOLLIN) != 0;
    r.writable = (events & EPOLLOUT) != 0;
    r.error = (events & (EPOLLERR | EPOLLHUP)) != 0;
    // Copy the handle: the callback may remove its own entry.
    Callback cb = it->second.callback;
    cb(fd, r);
    ++dispatched;
  }
  return dispatched;
#else
  (void)timeout_ms;
  return 0;
#endif
}

std::size_t EventLoop::poll_once_poll(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const auto& [fd, entry] : entries_) {
    pollfd p{};
    p.fd = fd;
    if (entry.want_read) p.events |= POLLIN;
    if (entry.want_write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("poll");

  std::size_t dispatched = 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    const auto it = entries_.find(p.fd);
    if (it == entries_.end() || !it->second.callback) continue;
    Ready r;
    r.readable = (p.revents & POLLIN) != 0;
    r.writable = (p.revents & POLLOUT) != 0;
    r.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    Callback cb = it->second.callback;
    cb(p.fd, r);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace acex::net
