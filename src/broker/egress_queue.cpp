#include "broker/egress_queue.hpp"

#include <chrono>

namespace acex::broker {

EgressQueue::EgressQueue(std::size_t capacity, SlowConsumerPolicy policy,
                         const Clock& clock, Seconds block_timeout)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy),
      clock_(&clock), block_timeout_(block_timeout < 0 ? 0 : block_timeout) {}

void EgressQueue::drop_front_locked() {
  bytes_ -= frames_.front().size();
  frames_.pop_front();
  ++drops_;
}

void EgressQueue::send(ByteView message) {
  // The caller's span may die at return: take an owned copy.
  send_buffer(BufferView::copy(message));
}

void EgressQueue::send_buffer(const BufferView& message) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) throw IoError("egress queue closed");

  if (frames_.size() >= capacity_) {
    const SlowConsumerPolicy effective =
        shed_mode_ ? SlowConsumerPolicy::kDropOldest : policy_;
    switch (effective) {
      case SlowConsumerPolicy::kBlock: {
        const auto ready = [this] {
          return closed_ || shed_mode_ || frames_.size() < capacity_;
        };
        if (block_timeout_ > 0) {
          if (!not_full_.wait_for(
                  lock, std::chrono::duration<double>(block_timeout_),
                  ready)) {
            // The frame is lost here, not the subscriber: the receiver
            // NACKs the gap and the sender's retransmit ring answers.
            ++timeouts_;
            throw EgressTimeout("egress queue send timed out");
          }
        } else {
          not_full_.wait(lock, ready);
        }
        if (closed_) throw IoError("egress queue closed");
        while (shed_mode_ && frames_.size() >= capacity_) drop_front_locked();
        break;
      }
      case SlowConsumerPolicy::kDropOldest:
        // The receiver sees the evicted sequence as a gap and asks for it
        // back through its NACK path — loss here is recoverable loss.
        while (frames_.size() >= capacity_) drop_front_locked();
        break;
      case SlowConsumerPolicy::kDisconnect:
        closed_ = true;
        frames_.clear();
        bytes_ = 0;
        not_full_.notify_all();
        throw IoError("egress queue overflow: slow consumer disconnected");
    }
  }

  // Retain the view — sharing the backing buffer with every other holder
  // (sibling queues, retransmit rings, the shm slab ring).
  frames_.push_back(message);
  bytes_ += message.size();
  ++accepted_;
}

std::optional<Bytes> EgressQueue::receive() { return try_pop(); }

std::optional<BufferView> EgressQueue::receive_buffer() {
  return try_pop_buffer();
}

std::optional<Bytes> EgressQueue::try_pop() {
  std::optional<BufferView> frame = try_pop_buffer();
  if (!frame) return std::nullopt;
  return frame->to_bytes();
}

std::optional<BufferView> EgressQueue::try_pop_buffer() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (frames_.empty()) return std::nullopt;
  BufferView frame = std::move(frames_.front());
  frames_.pop_front();
  bytes_ -= frame.size();
  not_full_.notify_one();
  return frame;
}

void EgressQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  frames_.clear();
  bytes_ = 0;
  not_full_.notify_all();
}

std::size_t EgressQueue::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cleared = frames_.size();
  frames_.clear();
  bytes_ = 0;
  not_full_.notify_all();
  return cleared;
}

void EgressQueue::set_shed_mode(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  shed_mode_ = on;
  if (on) not_full_.notify_all();
}

bool EgressQueue::shed_mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_mode_;
}

bool EgressQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t EgressQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

std::size_t EgressQueue::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t EgressQueue::bytes_unique(std::set<const void*>& seen) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const BufferView& frame : frames_) {
    const void* key = frame.owner_key();
    if (key != nullptr && !seen.insert(key).second) continue;
    total += frame.size();
  }
  return total;
}

std::uint64_t EgressQueue::drops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drops_;
}

std::uint64_t EgressQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::uint64_t EgressQueue::timeouts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeouts_;
}

}  // namespace acex::broker
