#include "broker/egress_queue.hpp"

#include "util/error.hpp"

namespace acex::broker {

EgressQueue::EgressQueue(std::size_t capacity, SlowConsumerPolicy policy,
                         const Clock& clock)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy),
      clock_(&clock) {}

void EgressQueue::send(ByteView message) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) throw IoError("egress queue closed");

  if (frames_.size() >= capacity_) {
    switch (policy_) {
      case SlowConsumerPolicy::kBlock:
        not_full_.wait(lock, [this] {
          return closed_ || frames_.size() < capacity_;
        });
        if (closed_) throw IoError("egress queue closed");
        break;
      case SlowConsumerPolicy::kDropOldest:
        // The receiver sees the evicted sequence as a gap and asks for it
        // back through its NACK path — loss here is recoverable loss.
        while (frames_.size() >= capacity_) {
          frames_.pop_front();
          ++drops_;
        }
        break;
      case SlowConsumerPolicy::kDisconnect:
        closed_ = true;
        frames_.clear();
        not_full_.notify_all();
        throw IoError("egress queue overflow: slow consumer disconnected");
    }
  }

  frames_.emplace_back(message.begin(), message.end());
  ++accepted_;
}

std::optional<Bytes> EgressQueue::receive() { return try_pop(); }

std::optional<Bytes> EgressQueue::try_pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (frames_.empty()) return std::nullopt;
  Bytes frame = std::move(frames_.front());
  frames_.pop_front();
  not_full_.notify_one();
  return frame;
}

void EgressQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  frames_.clear();
  not_full_.notify_all();
}

bool EgressQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t EgressQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

std::uint64_t EgressQueue::drops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drops_;
}

std::uint64_t EgressQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

}  // namespace acex::broker
