#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <set>

#include "transport/transport.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace acex::broker {

/// What the broker does when a subscriber's egress queue is full — the
/// slow-consumer contract (DESIGN.md §11). The policy is the whole reason
/// the queue exists: without it, one stalled subscriber would backpressure
/// the publisher and starve every healthy subscriber behind the same
/// publish loop.
enum class SlowConsumerPolicy {
  /// Publisher blocks until the pump drains a slot. Lossless, but a dead
  /// consumer stalls the publish — only safe when every subscriber is
  /// actively pumped. With a nonzero block_timeout the wait is bounded
  /// and a wedged consumer surfaces as EgressTimeout instead of pinning
  /// the publisher thread forever.
  kBlock,
  /// Evict the oldest queued frame to admit the new one. The subscriber's
  /// receiver sees a sequence gap and recovers through its NACK path; the
  /// publisher never waits.
  kDropOldest,
  /// Close the queue and fail the subscriber: the publish throws IoError
  /// for THIS subscriber only, and the broker marks it disconnected.
  kDisconnect,
};

/// Typed outcome of a kBlock send that waited out its deadline. The frame
/// was NOT enqueued, but the queue stays open: the receiver recovers the
/// missing sequence through its NACK path, so a timeout is recoverable
/// loss — unlike the IoError thrown for a closed queue, which is fatal to
/// the subscriber.
class EgressTimeout : public IoError {
 public:
  explicit EgressTimeout(const std::string& what) : IoError(what) {}
};

/// Bounded, thread-safe frame queue standing between one subscriber's
/// AdaptiveSender (producer: the broker's publish loop) and its real
/// transport (consumer: the delivery pump). Implements Transport so the
/// sender writes to it unchanged; receive()/try_pop() hand frames to the
/// pump, which forwards them downstream and times the REAL transfer.
///
/// The queue's own accept time is meaningless as a bandwidth signal —
/// which is why broker senders run with
/// AdaptiveConfig::external_bandwidth_feedback and the pump reports
/// measured link transfers via AdaptiveSender::record_bandwidth().
class EgressQueue final : public transport::Transport {
 public:
  /// `clock` must outlive the queue; it is the downstream transport's
  /// clock, forwarded so sender-side timing stays on the link's timeline.
  /// `block_timeout` bounds a kBlock wait in REAL (wall-clock) seconds —
  /// the stored clock may be virtual, and a publisher stuck on a
  /// condition_variable can only be freed by real time or a wakeup;
  /// 0 preserves the wait-forever seed behaviour.
  EgressQueue(std::size_t capacity, SlowConsumerPolicy policy,
              const Clock& clock, Seconds block_timeout = 0);

  /// Enqueue one frame, applying the slow-consumer policy when full.
  /// Throws IoError once the queue is closed (disconnect semantics) — a
  /// publisher blocked under kBlock is woken and thrown out by close().
  /// Throws EgressTimeout when a bounded kBlock wait expires.
  void send(ByteView message) override;

  /// Zero-copy enqueue: the queue RETAINS the view (sharing its backing
  /// buffer) instead of copying. This is how one shared-encode frame fans
  /// out to N subscribers' queues at the cost of one buffer.
  void send_buffer(const BufferView& message) override;

  /// Pop the oldest frame; std::nullopt when empty (or closed and drained).
  std::optional<Bytes> receive() override;

  /// Zero-copy pop: hands back the retained view, owner intact, so the
  /// pump can forward it downstream without materializing a copy.
  std::optional<BufferView> receive_buffer() override;

  const Clock& clock() const override { return *clock_; }

  /// Non-blocking pop for the delivery pump (same as receive()).
  std::optional<Bytes> try_pop();

  /// Non-blocking zero-copy pop (same as receive_buffer()).
  std::optional<BufferView> try_pop_buffer();

  /// Close the queue: wakes any blocked sender with IoError, drops queued
  /// frames, and makes every later send() fail. Idempotent. Called on
  /// unsubscribe so an in-flight publish can never deadlock on a
  /// subscriber that no longer exists.
  void close();

  /// Drop every queued frame without closing — a session resume clears
  /// stale frames before replaying the gap from the retransmit ring.
  /// The cleared frames do not count as drops (they are about to be
  /// replayed, not lost). Returns how many were cleared.
  std::size_t clear();

  /// While shed mode is on, a full queue behaves as kDropOldest no matter
  /// the configured policy, and any publisher blocked under kBlock is
  /// woken to drop-and-proceed. The overload ladder and session parking
  /// use this so a publisher can never wedge on a queue nobody pumps.
  void set_shed_mode(bool on);
  bool shed_mode() const;

  bool closed() const;
  std::size_t depth() const;
  /// Payload bytes currently queued, counting every frame at full size
  /// even when frames share one backing buffer across queues.
  std::size_t bytes() const;
  /// Share-aware accounting: queued bytes whose backing buffer is not
  /// already in `seen` (registering each as a side effect). The broker
  /// threads one set through all queues + rings so a frame shared by N
  /// subscribers charges the memory budget once (DESIGN.md §16).
  std::size_t bytes_unique(std::set<const void*>& seen) const;
  std::size_t capacity() const noexcept { return capacity_; }
  SlowConsumerPolicy policy() const noexcept { return policy_; }
  Seconds block_timeout() const noexcept { return block_timeout_; }

  /// Frames evicted under kDropOldest (or shed mode) since construction.
  std::uint64_t drops() const;
  /// Frames accepted (enqueued) since construction.
  std::uint64_t accepted() const;
  /// kBlock sends that waited out their deadline since construction.
  std::uint64_t timeouts() const;

 private:
  void drop_front_locked();

  const std::size_t capacity_;
  const SlowConsumerPolicy policy_;
  const Clock* clock_;
  const Seconds block_timeout_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<BufferView> frames_;
  std::size_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t timeouts_ = 0;
  bool closed_ = false;
  bool shed_mode_ = false;
};

}  // namespace acex::broker
