#include "broker/broker.hpp"

#include <atomic>
#include <condition_variable>
#include <utility>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace acex::broker {
namespace {

/// Broker-wide obs instruments, resolved once (handle caching). The
/// ground-truth BrokerStats/SubscriberStats structs are authoritative;
/// these mirror them so exporters and acexstat --broker can cross-check.
struct BrokerMetrics {
  obs::Counter& blocks;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& subscribers;
  obs::Gauge& groups;
  obs::Gauge& egress_depth;
};

BrokerMetrics& broker_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static BrokerMetrics metrics{
      reg.counter("acex.broker.blocks"),
      reg.counter("acex.broker.encode_cache.hits"),
      reg.counter("acex.broker.encode_cache.misses"),
      reg.gauge("acex.broker.subscribers"),
      reg.gauge("acex.broker.groups"),
      reg.gauge("acex.broker.egress.depth"),
  };
  return metrics;
}

}  // namespace

/// Everything one subscriber owns. `sender_mutex` guards the AdaptiveSender
/// (whose estimators and retransmit ring are not thread-safe); the egress
/// queue synchronizes itself. Stats live behind their OWN mutex because a
/// publish blocked in a full kBlock queue holds sender_mutex for the whole
/// wait — stats queries (the pump loop's progress check) must not deadlock
/// against it, and the pump itself only ever try-locks it (see
/// banked_bw_mutex below). sender_mutex and stats_mutex are never nested;
/// banked_bw_mutex is a leaf that nests only inside sender_mutex. Held by
/// shared_ptr so an in-flight publish survives a concurrent unsubscribe.
struct FanoutBroker::Subscriber {
  SubscriberId id = 0;
  SubscriberConfig config;
  /// Atomic because resume() swaps in the reconnected peer's transport
  /// while a concurrent pump may be reading it for another subscriber's
  /// loop iteration; each pump iteration loads it once.
  std::atomic<transport::Transport*> downstream{nullptr};
  /// Parked: liveness lost, state kept warm; pumps skip it, publishes keep
  /// feeding its (shed-mode) egress so the sequence cursor tracks the
  /// stream head.
  std::atomic<bool> parked{false};
  std::unique_ptr<EgressQueue> queue;
  std::unique_ptr<adaptive::AdaptiveSender> sender;

  mutable std::mutex sender_mutex;
  mutable std::mutex stats_mutex;
  SubscriberStats stats;

  /// Bandwidth samples the pump could not report without blocking. A
  /// publisher parked in this subscriber's full kBlock egress cv-waits
  /// *holding* sender_mutex, and it only wakes when the pump pops another
  /// frame — so the pump must never block on sender_mutex between pops, or
  /// the pair deadlocks (pump waits for the mutex, publisher waits for the
  /// pump). Samples that lose the try-lock are banked here and folded into
  /// the next record_bandwidth that does land. Leaf mutex: taken nowhere
  /// else, nests only inside sender_mutex.
  mutable std::mutex banked_bw_mutex;
  std::size_t banked_bw_bytes = 0;
  Seconds banked_bw_elapsed = 0.0;

  obs::Counter* frames_counter = nullptr;
  obs::Counter* drops_counter = nullptr;
  obs::Counter* fallbacks_counter = nullptr;

  bool is_disconnected() const {
    std::lock_guard<std::mutex> lock(stats_mutex);
    return stats.disconnected;
  }
  void mark_disconnected() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.disconnected = true;
  }
};

FanoutBroker::FanoutBroker(BrokerConfig config)
    : config_(config),
      sampler_(config.sample_prefix == 0 ? 4 * 1024 : config.sample_prefix) {
  if (config_.worker_threads != 1) {
    pool_ = std::make_unique<engine::ThreadPool>(config_.worker_threads,
                                                 config_.queue_capacity);
  }
}

FanoutBroker::~FanoutBroker() {
  // Close every egress first: a publisher blocked in a kBlock queue must
  // be gone before members (including the encode pool) are torn down.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, sub] : subscribers_) sub->queue->close();
}

SubscriberId FanoutBroker::subscribe(transport::Transport& transport,
                                     SubscriberConfig config) {
  auto sub = std::make_shared<Subscriber>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sub->id = next_id_++;
  }
  if (config.name.empty()) config.name = "sub-" + std::to_string(sub->id);
  // The broker owns the sampling and the bandwidth measurement point;
  // per-subscriber settings for either would be silently wrong.
  config.adaptive.external_bandwidth_feedback = true;
  config.adaptive.async_sampling = false;

  sub->config = config;
  sub->downstream.store(&transport);
  sub->queue = std::make_unique<EgressQueue>(config.egress_capacity,
                                             config.policy, transport.clock(),
                                             config.block_timeout);
  sub->sender =
      std::make_unique<adaptive::AdaptiveSender>(*sub->queue, config.adaptive);

  auto& reg = obs::MetricsRegistry::global();
  sub->frames_counter =
      &reg.counter("acex.broker.sub.frames", "subscriber", config.name);
  sub->drops_counter =
      &reg.counter("acex.broker.sub.drops", "subscriber", config.name);
  sub->fallbacks_counter =
      &reg.counter("acex.broker.sub.fallbacks", "subscriber", config.name);

  const SubscriberId id = sub->id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subscribers_.emplace(id, std::move(sub));
  }
  broker_metrics().subscribers.add(1);
  return id;
}

bool FanoutBroker::unsubscribe(SubscriberId id) {
  SubscriberPtr sub;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscribers_.find(id);
    if (it == subscribers_.end()) return false;
    sub = std::move(it->second);
    subscribers_.erase(it);
  }
  // Wake any publish blocked on this queue (it absorbs the IoError as a
  // disconnect of this subscriber only) and drop queued frames.
  sub->queue->close();
  broker_metrics().subscribers.sub(1);
  return true;
}

void FanoutBroker::publish(ByteView block) {
  // Serialized: each subscriber's finish_block must run in the same order
  // its sequences were planned.
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  // Shared encodes read the registry from worker threads; freeze it at the
  // first publish so the concurrency contract (frozen => concurrent reads
  // safe) holds from here on. Application codecs register before this.
  registry_.freeze();
  auto& metrics = broker_metrics();

  std::vector<SubscriberPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subs.reserve(subscribers_.size());
    for (const auto& [id, sub] : subscribers_) subs.push_back(sub);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.blocks;
  }
  metrics.blocks.add();
  if (subs.empty()) {
    metrics.groups.set(0);
    return;
  }

  // Subscribers may carry different block sizes (the acexd handshake
  // honours each client's negotiated granularity): re-chunk the publish
  // per distinct size so no sender ever plans a block beyond its
  // configured block_size — the same split a private
  // AdaptiveSender::send_all would make, which is what keeps per-
  // subscriber wire identity. Every subscriber whose block_size covers
  // the whole publish shares one full-size chunk, so the common case
  // (uniform sizes) stays on the single shared-encode pass.
  std::map<std::size_t, std::vector<SubscriberPtr>> by_chunk;
  for (auto& sub : subs) {
    std::size_t cap = sub->config.adaptive.decision.block_size;
    if (cap == 0 || cap > block.size()) cap = block.size();
    by_chunk[cap].push_back(std::move(sub));
  }
  for (auto& [chunk_size, group] : by_chunk) {
    if (chunk_size == block.size()) {  // also the empty-publish case
      publish_chunk(block, group);
      continue;
    }
    for (std::size_t off = 0; off < block.size(); off += chunk_size) {
      publish_chunk(
          ByteView(block.data() + off,
                   std::min(chunk_size, block.size() - off)),
          group);
    }
  }
}

void FanoutBroker::publish_chunk(ByteView block,
                                 const std::vector<SubscriberPtr>& subs) {
  auto& metrics = broker_metrics();

  // One sample per block, shared: the sampled ratio is a property of the
  // data, not of any subscriber's link.
  const adaptive::SampleResult sample = sampler_.sample(block);

  struct Planned {
    SubscriberPtr sub;
    adaptive::BlockPlan plan;
  };
  std::vector<Planned> planned;
  planned.reserve(subs.size());
  for (const auto& sub : subs) {
    if (sub->is_disconnected()) continue;
    std::lock_guard<std::mutex> lock(sub->sender_mutex);
    planned.push_back({sub, sub->sender->plan_block_sampled(block, sample)});
  }
  if (planned.empty()) {
    metrics.groups.set(0);
    return;
  }

  // Group subscribers by what must actually be encoded. The slack joins
  // the method in the key because it decides the expansion verdict — two
  // subscribers that agree on the method but not the slack could demand
  // different payloads. In practice slacks match and groups == methods.
  using GroupKey = std::pair<MethodId, std::size_t>;
  const auto key_of = [](const Planned& p) {
    return GroupKey{p.plan.method,
                    p.sub->config.adaptive.expansion_slack_bytes};
  };
  std::map<GroupKey, adaptive::PayloadEncode> groups;
  for (const auto& p : planned) groups.emplace(key_of(p), adaptive::PayloadEncode{});

  // Encode once per group — concurrently when the pool exists and there
  // is more than one group. encode_payload never throws (pool contract).
  if (pool_ && groups.size() > 1) {
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = groups.size();
    for (auto& [key, slot] : groups) {
      adaptive::PayloadEncode* out = &slot;
      const GroupKey k = key;
      pool_->submit([this, block, k, out, &done_mutex, &done_cv, &remaining] {
        adaptive::PayloadEncode enc =
            adaptive::encode_payload(registry_, block, k.first, k.second);
        std::lock_guard<std::mutex> lock(done_mutex);
        *out = std::move(enc);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  } else {
    for (auto& [key, slot] : groups) {
      slot = adaptive::encode_payload(registry_, block, key.first, key.second);
    }
  }

  double encode_cpu = 0;
  for (const auto& [key, enc] : groups) encode_cpu += enc.encode_seconds;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.encodes += groups.size();
    stats_.cache_misses += groups.size();
    stats_.cache_hits += planned.size() - groups.size();
    stats_.last_groups = groups.size();
    stats_.encode_seconds += encode_cpu;
  }
  metrics.cache_misses.add(groups.size());
  metrics.cache_hits.add(planned.size() - groups.size());
  metrics.groups.set(static_cast<std::int64_t>(groups.size()));

  // Frame per (group, sequence) over the shared payload and finish per
  // subscriber. Subscribers in one group whose cursors agree (the steady
  // fan-out case: everyone subscribed before the first publish) produce
  // byte-identical frames, so ONE buffer — heap block or shm slab via
  // config_.frame_builder — is built and every such subscriber's egress
  // and retransmit ring retain views of it. The CRC is of the original
  // block — also shared.
  const std::uint32_t crc = crc32(block);
  std::map<std::pair<GroupKey, std::uint64_t>, BufferView> frame_cache;
  std::int64_t depth_sum = 0;
  for (auto& p : planned) {
    const adaptive::PayloadEncode& enc = groups.at(key_of(p));
    BufferView& cached = frame_cache[{key_of(p), p.plan.sequence}];
    if (cached.empty()) {
      cached = config_.frame_builder
                   ? config_.frame_builder(enc.method, enc.payload, crc,
                                           p.plan.sequence)
                   : BufferView::own(frame_build_seq(enc.method, enc.payload,
                                                     crc, p.plan.sequence));
    }
    adaptive::EncodeResult encoded;
    encoded.framed = cached;  // shares the backing buffer, no copy
    encoded.method = enc.method;
    encoded.fallback = enc.fallback;
    encoded.threw = enc.threw;
    encoded.encode_seconds = enc.encode_seconds;
    const std::size_t framed_size = encoded.framed.size();

    if (p.sub->is_disconnected()) continue;
    bool finished = true;
    bool timed_out = false;
    {
      std::lock_guard<std::mutex> lock(p.sub->sender_mutex);
      try {
        p.sub->sender->finish_block(p.plan, block.size(), std::move(encoded));
      } catch (const EgressTimeout&) {
        // A wedged consumer may not pin the publish: the frame is dropped
        // recoverably (its sequence resurfaces through the NACK path) and
        // the subscriber stays connected.
        finished = false;
        timed_out = true;
      } catch (const IoError&) {
        // Egress closed (unsubscribe race) or overflowed under
        // kDisconnect: this subscriber is done, the others untouched.
        finished = false;
      }
    }
    if (timed_out) {
      std::lock_guard<std::mutex> lock(p.sub->stats_mutex);
      ++p.sub->stats.egress_timeouts;
    } else if (!finished) {
      p.sub->mark_disconnected();
    } else {
      std::lock_guard<std::mutex> lock(p.sub->stats_mutex);
      ++p.sub->stats.frames;
      p.sub->stats.bytes += framed_size;
      p.sub->frames_counter->add();
      if (enc.fallback) {
        ++p.sub->stats.fallbacks;
        p.sub->fallbacks_counter->add();
      }
      const std::uint64_t queue_drops = p.sub->queue->drops();
      if (queue_drops > p.sub->stats.drops) {
        p.sub->drops_counter->add(queue_drops - p.sub->stats.drops);
        p.sub->stats.drops = queue_drops;
      }
    }
    depth_sum += static_cast<std::int64_t>(p.sub->queue->depth());
  }
  metrics.egress_depth.set(depth_sum);
}

std::size_t FanoutBroker::pump(SubscriberId id, std::size_t max_frames) {
  const SubscriberPtr sub = find(id);
  if (!sub) return 0;
  return pump_locked_free(sub, max_frames);
}

std::size_t FanoutBroker::pump_all() {
  std::vector<SubscriberPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subs.reserve(subscribers_.size());
    for (const auto& [id, sub] : subscribers_) subs.push_back(sub);
  }
  std::size_t delivered = 0;
  for (const auto& sub : subs) {
    delivered +=
        pump_locked_free(sub, std::numeric_limits<std::size_t>::max());
  }
  return delivered;
}

std::size_t FanoutBroker::pump_locked_free(const SubscriberPtr& sub,
                                           std::size_t max_frames) {
  std::size_t delivered = 0;
  while (delivered < max_frames) {
    // Parked subscribers have no peer to pump to; their frames wait in
    // the shed-mode egress for resume() to sort out.
    if (sub->parked.load()) break;
    std::optional<BufferView> frame = sub->queue->try_pop_buffer();
    if (!frame) break;
    transport::Transport* downstream = sub->downstream.load();
    // Time the REAL link transfer on the transport's clock — this is the
    // bandwidth signal external_bandwidth_feedback redirected here.
    const Clock& clock = downstream->clock();
    const Seconds start = clock.now();
    try {
      // Zero-copy handoff: a downstream that can exploit shared ownership
      // (the shm endpoint shipping a slab descriptor) gets the view; every
      // other transport sees plain send() bytes via the default.
      downstream->send_buffer(*frame);
    } catch (const IoError&) {
      sub->mark_disconnected();
      sub->queue->close();
      break;
    }
    const Seconds elapsed = clock.now() - start;
    {
      // try_to_lock, never lock: a publisher cv-waiting in this
      // subscriber's full kBlock egress holds sender_mutex across the
      // wait, and only this loop's next pop can wake it. Blocking here
      // hands the race a deadlock; bank the sample instead.
      std::unique_lock<std::mutex> lock(sub->sender_mutex,
                                        std::try_to_lock);
      if (lock.owns_lock()) {
        std::size_t bytes = frame->size();
        Seconds total = elapsed;
        {
          std::lock_guard<std::mutex> banked(sub->banked_bw_mutex);
          bytes += sub->banked_bw_bytes;
          total += sub->banked_bw_elapsed;
          sub->banked_bw_bytes = 0;
          sub->banked_bw_elapsed = 0.0;
        }
        sub->sender->record_bandwidth(bytes, total);
      } else {
        std::lock_guard<std::mutex> banked(sub->banked_bw_mutex);
        sub->banked_bw_bytes += frame->size();
        sub->banked_bw_elapsed += elapsed;
      }
    }
    {
      std::lock_guard<std::mutex> lock(sub->stats_mutex);
      ++sub->stats.delivered;
    }
    ++delivered;
  }
  return delivered;
}

std::size_t FanoutBroker::retransmit(
    SubscriberId id, const std::vector<std::uint64_t>& sequences) {
  const SubscriberPtr sub = find(id);
  if (!sub || sub->is_disconnected()) return 0;
  std::size_t resent = 0;
  try {
    std::lock_guard<std::mutex> lock(sub->sender_mutex);
    resent = sub->sender->retransmit(sequences);
  } catch (const IoError&) {
    sub->mark_disconnected();
    return 0;
  }
  std::lock_guard<std::mutex> lock(sub->stats_mutex);
  sub->stats.retransmits += resent;
  return resent;
}

bool FanoutBroker::park(SubscriberId id) {
  const SubscriberPtr sub = find(id);
  if (!sub) return false;
  sub->parked.store(true);
  // Shed mode before anything else: a publish blocked on this queue under
  // kBlock must wake and drop-and-proceed, or the whole fan-out stalls on
  // a peer that just died.
  sub->queue->set_shed_mode(true);
  return true;
}

BrokerResume FanoutBroker::resume(SubscriberId id,
                                  transport::Transport& transport,
                                  std::uint64_t resume_from) {
  const SubscriberPtr sub = find(id);
  if (!sub || sub->is_disconnected()) return {};
  std::lock_guard<std::mutex> lock(sub->sender_mutex);
  const std::uint64_t head = sub->sender->next_sequence();
  if (resume_from > head) return {};  // a cursor from some other stream
  // Frames queued while parked are stale paths to the dead transport's
  // pacing; the replay below re-sends everything from resume_from anyway,
  // so clear first — otherwise the queue would hold duplicates.
  sub->queue->clear();
  const std::optional<std::size_t> replayed =
      sub->sender->replay_range(resume_from, head);
  if (!replayed) return {};  // gap evicted: stays parked, caller restarts
  sub->downstream.store(&transport);
  sub->parked.store(false);
  sub->queue->set_shed_mode(false);
  return {true, *replayed};
}

bool FanoutBroker::parked(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  return sub && sub->parked.load();
}

void FanoutBroker::set_shed(SubscriberId id, bool on) {
  const SubscriberPtr sub = find(id);
  if (!sub) return;
  // A parked subscriber's egress must stay shed no matter what the ladder
  // does; parking owns the flag until resume.
  if (sub->parked.load() && !on) return;
  sub->queue->set_shed_mode(on);
}

SubscriberMemory FanoutBroker::memory_usage(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  if (!sub) {
    throw ConfigError("broker: unknown subscriber id " + std::to_string(id));
  }
  SubscriberMemory mem;
  mem.egress_bytes = sub->queue->bytes();
  {
    std::lock_guard<std::mutex> lock(sub->sender_mutex);
    mem.ring_bytes = sub->sender->retransmit_ring().bytes();
  }
  return mem;
}

std::size_t FanoutBroker::memory_usage_total() const {
  std::vector<SubscriberPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subs.reserve(subscribers_.size());
    for (const auto& [id, sub] : subscribers_) subs.push_back(sub);
  }
  std::size_t total = 0;
  for (const auto& sub : subs) {
    total += sub->queue->bytes();
    std::lock_guard<std::mutex> lock(sub->sender_mutex);
    total += sub->sender->retransmit_ring().bytes();
  }
  return total;
}

std::size_t FanoutBroker::memory_usage_unique() const {
  std::vector<SubscriberPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subs.reserve(subscribers_.size());
    for (const auto& [id, sub] : subscribers_) subs.push_back(sub);
  }
  // One seen-set threaded through every queue AND every ring: a shared-
  // encode frame held by all of them still counts once process-wide.
  std::set<const void*> seen;
  std::size_t total = 0;
  for (const auto& sub : subs) {
    total += sub->queue->bytes_unique(seen);
    std::lock_guard<std::mutex> lock(sub->sender_mutex);
    total += sub->sender->retransmit_ring().bytes_unique(seen);
  }
  return total;
}

echo::SubscriberId FanoutBroker::attach(echo::EventChannel& channel) {
  return channel.subscribe([this](const echo::Event& event) {
    publish(ByteView(event.payload.data(), event.payload.size()));
  });
}

void FanoutBroker::detach(echo::EventChannel& channel,
                          echo::SubscriberId id) noexcept {
  channel.unsubscribe(id);
}

SubscriberStats FanoutBroker::subscriber_stats(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  if (!sub) {
    throw ConfigError("broker: unknown subscriber id " + std::to_string(id));
  }
  std::lock_guard<std::mutex> lock(sub->stats_mutex);
  return sub->stats;
}

adaptive::DegradationStats FanoutBroker::degradation(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  if (!sub) {
    throw ConfigError("broker: unknown subscriber id " + std::to_string(id));
  }
  std::lock_guard<std::mutex> lock(sub->sender_mutex);
  return sub->sender->degradation();
}

BrokerStats FanoutBroker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t FanoutBroker::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

std::size_t FanoutBroker::egress_depth(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  if (!sub) {
    throw ConfigError("broker: unknown subscriber id " + std::to_string(id));
  }
  return sub->queue->depth();
}

bool FanoutBroker::disconnected(SubscriberId id) const {
  const SubscriberPtr sub = find(id);
  if (!sub) {
    throw ConfigError("broker: unknown subscriber id " + std::to_string(id));
  }
  return sub->is_disconnected();
}

FanoutBroker::SubscriberPtr FanoutBroker::find(SubscriberId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = subscribers_.find(id);
  return it == subscribers_.end() ? nullptr : it->second;
}

}  // namespace acex::broker
