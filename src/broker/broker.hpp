#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "adaptive/sampler.hpp"
#include "broker/egress_queue.hpp"
#include "echo/channel.hpp"
#include "engine/thread_pool.hpp"
#include "transport/transport.hpp"

namespace acex::broker {

/// Identifies a subscriber within one FanoutBroker.
using SubscriberId = std::uint64_t;

/// Per-subscriber knobs: the adaptive stream configuration for THIS link
/// plus the egress-queue contract. `adaptive.external_bandwidth_feedback`
/// and `adaptive.async_sampling` are overridden by the broker (the broker
/// owns both the bandwidth measurement point and the shared sampler).
struct SubscriberConfig {
  /// Obs label; defaults to "sub-<id>" when empty. Must be unique if you
  /// want per-subscriber metrics to stay distinguishable.
  std::string name;
  adaptive::AdaptiveConfig adaptive;
  std::size_t egress_capacity = 64;
  SlowConsumerPolicy policy = SlowConsumerPolicy::kBlock;
  /// Bound on a kBlock publish wait (real seconds; 0 = wait forever). On
  /// expiry the publish sees EgressTimeout for THIS subscriber only: the
  /// frame is lost recoverably (NACK path), the subscriber stays alive.
  Seconds block_timeout = 0;
};

/// Ground-truth per-subscriber accounting, maintained by the broker and
/// cross-checked against the obs mirror by tools/acexstat --broker.
struct SubscriberStats {
  std::uint64_t frames = 0;       ///< frames framed + handed to the egress
  std::uint64_t bytes = 0;        ///< framed bytes across those frames
  std::uint64_t delivered = 0;    ///< frames pumped onto the real transport
  std::uint64_t fallbacks = 0;    ///< blocks degraded to the null codec
  std::uint64_t drops = 0;        ///< egress evictions (kDropOldest)
  std::uint64_t retransmits = 0;  ///< frames replayed on NACK
  std::uint64_t egress_timeouts = 0;  ///< kBlock publishes that timed out
  bool disconnected = false;
};

/// Outcome of resume(): `ok` means the gap `[resume_from, head)` was fully
/// replayed from the retransmit ring and the subscriber is live again on
/// its new transport. !ok means the ring has evicted part of the gap —
/// resume is impossible and the caller downgrades to a fresh subscribe.
struct BrokerResume {
  bool ok = false;
  std::size_t replayed = 0;  ///< frames re-sent into the egress
};

/// One subscriber's share of process memory, for the session layer's
/// MemoryBudget probe: queued egress frames plus retransmit-ring history.
struct SubscriberMemory {
  std::size_t egress_bytes = 0;
  std::size_t ring_bytes = 0;
  std::size_t total() const noexcept { return egress_bytes + ring_bytes; }
};

/// Broker-wide accounting. The shared-encode invariant the tests assert:
/// encodes == cache_misses, and per block the number of codec runs equals
/// the number of distinct chosen methods — NOT the subscriber count.
struct BrokerStats {
  std::uint64_t blocks = 0;        ///< publish() calls
  std::uint64_t encodes = 0;       ///< actual codec runs (== cache_misses)
  std::uint64_t cache_hits = 0;    ///< subscriber frames served from cache
  std::uint64_t cache_misses = 0;  ///< one per (block, method) group
  std::uint64_t last_groups = 0;   ///< distinct methods in the last block
  double encode_seconds = 0;       ///< summed raw encode CPU time
};

struct BrokerConfig {
  /// Encode workers for concurrent per-group encodes: 1 runs encodes
  /// inline on the publishing thread (deterministic, the test default),
  /// 0 asks for one worker per hardware thread, anything else is literal.
  std::size_t worker_threads = 1;
  /// Task-queue capacity of the encode pool; 0 = ThreadPool default.
  std::size_t queue_capacity = 0;
  /// Shared sampler prefix (the paper's 4 KiB): each published block is
  /// sampled ONCE and the result feeds every subscriber's plan.
  std::size_t sample_prefix = 4 * 1024;
  /// Frame staging hook. When set, the broker builds each shared frame by
  /// calling this instead of frame_build_seq + heap copy — the shm
  /// transport installs shm::slab_frame_builder here so frames materialize
  /// directly inside refcounted shared-memory slabs and every subscriber's
  /// egress retains the SAME slab-backed view (descriptor fan-out). The
  /// returned view must be byte-identical to
  /// frame_build_seq(method, payload, crc, sequence). Keeps the broker
  /// shm-agnostic: it never links against acex_shm.
  std::function<BufferView(MethodId method, ByteView payload,
                           std::uint32_t original_crc,
                           std::uint64_t sequence)>
      frame_builder;
};

/// Multi-subscriber event distribution with per-subscriber adaptive codecs
/// and shared-encode caching (DESIGN.md §11).
///
/// One FanoutBroker stands between a published block stream (publish(), or
/// an attached echo::EventChannel) and N subscribers, each with its own
/// transport, link profile, and adaptive decision state. Per block, every
/// subscriber plans independently — same shared sample, own bandwidth
/// estimator, own circuit breaker — and the broker then encodes once per
/// DISTINCT chosen method, framing the cached payload per subscriber with
/// its own sequence number (frame_build_seq). K subscribers that agree on
/// a method cost one codec run, not K.
///
/// Thread safety: publish() is serialized internally (per-subscriber
/// sequence order must match finish order). subscribe()/unsubscribe()/
/// pump()/retransmit()/stats() may run concurrently with publish() and
/// each other. unsubscribe() during an in-flight publish is safe: the
/// publish finishes against a kept-alive handle whose egress is closed,
/// and the IoError is absorbed as a disconnect of that subscriber only.
class FanoutBroker {
 public:
  explicit FanoutBroker(BrokerConfig config = {});
  ~FanoutBroker();

  FanoutBroker(const FanoutBroker&) = delete;
  FanoutBroker& operator=(const FanoutBroker&) = delete;

  /// Register a subscriber over `transport` (which must outlive it).
  /// Sequences start at 0 at subscribe time — a late joiner's receiver
  /// sees a fresh stream, not a gap from sequence 0 to "now".
  SubscriberId subscribe(transport::Transport& transport,
                         SubscriberConfig config = {});

  /// Remove a subscriber; closes its egress queue (waking any blocked
  /// publish). Unknown ids return false. Queued frames are dropped.
  bool unsubscribe(SubscriberId id);

  /// Distribute one block to every live subscriber: shared sample, per-
  /// subscriber plan, one encode per distinct method, per-subscriber
  /// framing + finish. A block larger than a subscriber's configured
  /// block_size is re-chunked for that subscriber (the same split a
  /// private AdaptiveSender::send_all would make), so heterogeneous
  /// negotiated block sizes coexist on one stream. A subscriber whose
  /// egress rejects the frame (kDisconnect overflow, or closed by
  /// unsubscribe) is marked disconnected; healthy subscribers are
  /// unaffected.
  void publish(ByteView block);

  /// Drain up to `max_frames` from `id`'s egress onto its real transport,
  /// timing each transfer on the transport's clock and feeding the
  /// measurement into the subscriber's bandwidth estimator. Returns frames
  /// delivered. IoError from the transport disconnects the subscriber.
  std::size_t pump(SubscriberId id,
                   std::size_t max_frames =
                       std::numeric_limits<std::size_t>::max());

  /// pump() every subscriber until its egress is empty; returns the total.
  std::size_t pump_all();

  /// Replay `sequences` from `id`'s retransmit ring into its egress (the
  /// sender half of the per-subscriber NACK protocol). Returns frames
  /// actually re-sent. Retransmission is per-subscriber state: one lossy
  /// link replays without touching any other subscriber's stream.
  std::size_t retransmit(SubscriberId id,
                         const std::vector<std::uint64_t>& sequences);

  // --- session support (park / resume / shed) --------------------------
  // The session layer parks a subscriber whose peer went quiet instead of
  // unsubscribing it: every piece of adaptive state — sequence cursor,
  // bandwidth estimator, circuit breaker, retransmit ring — stays warm, so
  // a resume within the ring's window is byte-identical to a stream that
  // never dropped. While parked, publishes keep planning and framing for
  // the subscriber (the cursor must advance with the stream); its egress
  // runs in shed mode so nothing can wedge on a queue nobody pumps.

  /// Park `id`: stop pumping it and put its egress in shed mode (a kBlock
  /// publisher blocked on it is woken to drop-and-proceed). Idempotent.
  /// Returns false for unknown ids.
  bool park(SubscriberId id);

  /// Re-attach a parked subscriber on a (possibly new) transport and
  /// replay the gap `[resume_from, head)` from its retransmit ring. On
  /// success the subscriber is unparked and pumping resumes; on failure
  /// (ring evicted part of the gap) it STAYS parked and untouched — the
  /// caller decides between retry and restart. Replayed frames that
  /// overflow the egress are dropped oldest-first and remain recoverable
  /// through the NACK path while the ring holds them.
  BrokerResume resume(SubscriberId id, transport::Transport& transport,
                      std::uint64_t resume_from);

  /// Whether `id` is currently parked. Unknown ids return false.
  bool parked(SubscriberId id) const;

  /// Force or clear shed mode on a LIVE subscriber's egress — the overload
  /// ladder's drop-oldest stage. Parked subscribers are always shed.
  void set_shed(SubscriberId id, bool on);

  /// `id`'s egress + retransmit-ring memory. Throws on unknown ids.
  SubscriberMemory memory_usage(SubscriberId id) const;

  /// Sum of memory_usage over every subscriber, parked or live. Counts
  /// every queued/ringed frame at full size even when subscribers share
  /// one backing buffer — the historical per-subscriber ledger.
  std::size_t memory_usage_total() const;

  /// Share-aware total: frames that alias one backing buffer (the shared-
  /// encode fan-out case — N egress queues + N rings holding one slab)
  /// charge the budget ONCE. This is what the session layer's MemoryBudget
  /// and the overload ladder consume, so 64 subscribers sharing a slab no
  /// longer look like 64 copies (DESIGN.md §16).
  std::size_t memory_usage_unique() const;

  /// Attach this broker to a channel: every event submitted to the channel
  /// is published as one block. Returns the channel subscription id for
  /// detach(). The channel's dispatch thread becomes the publish thread.
  echo::SubscriberId attach(echo::EventChannel& channel);
  void detach(echo::EventChannel& channel, echo::SubscriberId id) noexcept;

  SubscriberStats subscriber_stats(SubscriberId id) const;
  adaptive::DegradationStats degradation(SubscriberId id) const;
  BrokerStats stats() const;
  std::size_t subscriber_count() const;
  std::size_t egress_depth(SubscriberId id) const;
  bool disconnected(SubscriberId id) const;

  /// The broker's codec registry (shared by the encode cache and every
  /// subscriber plan). Application codecs — the colpipe columnar codec,
  /// FloatQuantCodec — must be registered here before the first publish;
  /// the registry freezes when concurrent encodes begin.
  CodecRegistry& registry() noexcept { return registry_; }

 private:
  struct Subscriber;
  using SubscriberPtr = std::shared_ptr<Subscriber>;

  SubscriberPtr find(SubscriberId id) const;
  std::size_t pump_locked_free(const SubscriberPtr& sub,
                               std::size_t max_frames);
  /// One publish pass over `subs` with a chunk every member's block_size
  /// can carry: shared sample, per-subscriber plan, grouped encode, frame
  /// + finish. The body of publish(), minus the re-chunking.
  void publish_chunk(ByteView block, const std::vector<SubscriberPtr>& subs);

  BrokerConfig config_;
  CodecRegistry registry_ = CodecRegistry::with_builtins();
  adaptive::Sampler sampler_;
  std::unique_ptr<engine::ThreadPool> pool_;  ///< null = inline encodes

  mutable std::mutex mutex_;        ///< guards subscribers_ + next_id_
  std::map<SubscriberId, SubscriberPtr> subscribers_;
  SubscriberId next_id_ = 1;

  std::mutex publish_mutex_;        ///< serializes publish()

  mutable std::mutex stats_mutex_;  ///< guards stats_
  BrokerStats stats_;
};

}  // namespace acex::broker
