#pragma once

#include <memory>

#include "adaptive/decision.hpp"
#include "adaptive/monitor.hpp"
#include "adaptive/sampler.hpp"
#include "compress/frame.hpp"
#include "echo/bus.hpp"
#include "netsim/bandwidth.hpp"

namespace acex::adaptive {

/// Name of the quality attribute a consumer sets to request a method
/// change, and which compressed events carry to describe their encoding.
inline constexpr const char* kMethodAttr = "acex.method";
/// Accept-rate measurement (bytes/s) consumers report upstream.
inline constexpr const char* kAcceptRateAttr = "acex.accept_rate";
/// Original (pre-compression) payload size, stamped on compressed events.
inline constexpr const char* kOriginalSizeAttr = "acex.original_size";

/// A fixed-method compression handler (§3.2: "compression methods are
/// integrated into ECho as event handlers"). Each event's payload is
/// replaced by a self-describing frame; attributes gain kMethodAttr and
/// kOriginalSizeAttr.
echo::EventHandler make_compression_handler(MethodId method);

/// The inverse handler for consumer-side decompression. Frames name their
/// own codec, so one handler decodes any method the producer picks.
echo::EventHandler make_decompression_handler();

/// Producer-side switchable compressor: an event handler whose method can
/// be changed mid-stream, either programmatically or by a consumer's
/// control attributes (kMethodAttr). This is the execution vessel the
/// §3.2 adaptive story needs: consumers decide, producers apply.
class SwitchableCompressor {
 public:
  explicit SwitchableCompressor(MethodId initial = MethodId::kNone);

  MethodId method() const noexcept { return method_; }
  void set_method(MethodId method);

  /// The data-path handler to install (e.g. via EventBus::derive_channel).
  /// The returned handler shares this object's state; the compressor must
  /// outlive it.
  echo::EventHandler handler();

  /// The control-path hook: reads kMethodAttr out of consumer signals.
  echo::ControlSink control_sink();

  /// How many events the handler compressed so far (diagnostics).
  std::uint64_t events_compressed() const noexcept { return state_->events; }

  /// How many consumer control requests were applied.
  std::uint64_t switches_applied() const noexcept { return switches_; }

 private:
  struct State {
    MethodId method;
    CodecRegistry registry = CodecRegistry::with_builtins();
    std::uint64_t events = 0;
  };

  MethodId method_;  // mirror for cheap reads
  std::shared_ptr<State> state_;
  std::uint64_t switches_ = 0;
};

/// The §3.2 channel-derivation dance, packaged: "the consumer deploys a
/// new method by simply deriving the appropriate event channel with that
/// method. Having done so, the consumer can then unsubscribe from the
/// original channel and subscribe to the new one."
///
/// The switcher owns one derived channel at a time. switch_method() derives
/// a fresh channel from the source with a compression handler for the new
/// method, moves the consumer's sink over, and removes the stale derived
/// channel — producers are never touched, and "maintaining a small number
/// of open channels and switching among them ... does not adversely affect
/// performance".
class DerivedChannelSwitcher {
 public:
  /// `sink` receives the (compressed) events of whichever derived channel
  /// is current. The bus and source channel must outlive the switcher.
  DerivedChannelSwitcher(echo::EventBus& bus, echo::ChannelId source,
                         echo::EventSink sink,
                         MethodId initial = MethodId::kNone);
  ~DerivedChannelSwitcher();

  DerivedChannelSwitcher(const DerivedChannelSwitcher&) = delete;
  DerivedChannelSwitcher& operator=(const DerivedChannelSwitcher&) = delete;

  /// Re-derive with a new compression method; no-op if unchanged.
  void switch_method(MethodId method);

  MethodId method() const noexcept { return method_; }
  echo::ChannelId current_channel() const noexcept { return current_; }
  std::uint64_t switches() const noexcept { return switches_; }

 private:
  void derive(MethodId method);

  echo::EventBus* bus_;
  echo::ChannelId source_;
  echo::EventSink sink_;
  MethodId method_;
  echo::ChannelId current_ = 0;
  echo::SubscriberId subscription_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t generation_ = 0;
};

/// Consumer-side adaptation logic: measures the rate at which events are
/// accepted, runs the §2.5 decision on each event, and — when the best
/// method changes — signals the producer through the channel's control
/// path. The producer side installs a SwitchableCompressor whose
/// control_sink() consumes these signals.
///
/// This realizes the paper's loop without deriving a new channel per
/// switch; EventBus::derive_channel covers the derivation variant (the
/// test suite exercises both).
class ConsumerController {
 public:
  ConsumerController(echo::EventChannel& channel, const Clock& clock,
                     DecisionParams params = {});

  /// Call for every received (still-compressed) event, BEFORE
  /// decompression. Returns the method it now considers best; sends a
  /// control signal upstream when that changed.
  MethodId observe(const echo::Event& event);

  MethodId current() const noexcept { return current_; }
  std::uint64_t switches() const noexcept { return switches_; }

 private:
  echo::EventChannel* channel_;
  const Clock* clock_;
  DecisionParams params_;
  netsim::BandwidthEstimator bandwidth_;
  ReducingSpeedMonitor monitor_;
  Sampler sampler_;
  MethodId current_ = MethodId::kNone;
  std::uint64_t switches_ = 0;
  Seconds last_event_time_ = -1;
};

}  // namespace acex::adaptive
