#include "adaptive/monitor.hpp"

#include <algorithm>

namespace acex::adaptive {

ReducingSpeedMonitor::ReducingSpeedMonitor(double alpha) : alpha_(alpha) {
  Ewma validate(alpha);  // throws ConfigError on a bad alpha
}

ReducingSpeedMonitor::Series& ReducingSpeedMonitor::series(MethodId method) {
  const auto it = perMethod_.find(method);
  if (it != perMethod_.end()) return it->second;
  return perMethod_.emplace(method, Series(alpha_)).first->second;
}

void ReducingSpeedMonitor::record(MethodId method, std::size_t original,
                                  std::size_t compressed,
                                  Seconds elapsed) {
  if (elapsed <= 0) return;
  Series& s = series(method);
  const double removed =
      compressed < original ? static_cast<double>(original - compressed) : 0.0;
  s.reducing.add(removed / elapsed);
  s.throughput.add(static_cast<double>(original) / elapsed);
  ++s.samples;
}

double ReducingSpeedMonitor::reducing_speed_or(MethodId method,
                                               double fallback) const noexcept {
  const auto it = perMethod_.find(method);
  return it == perMethod_.end() ? fallback
                                : it->second.reducing.value_or(fallback);
}

Seconds ReducingSpeedMonitor::reduce_seconds(
    MethodId method, std::size_t block_size) const noexcept {
  const double speed = reducing_speed_or(method, 0.0);
  if (speed <= 0) return 0.0;  // "infinity" reducing speed before samples
  return static_cast<double>(block_size) / speed;
}

double ReducingSpeedMonitor::throughput_or(MethodId method,
                                           double fallback) const noexcept {
  const auto it = perMethod_.find(method);
  return it == perMethod_.end() ? fallback
                                : it->second.throughput.value_or(fallback);
}

double ReducingSpeedMonitor::ratio_or(MethodId method,
                                      double fallback) const noexcept {
  const auto it = perMethod_.find(method);
  if (it == perMethod_.end() || !it->second.throughput.has_value()) {
    return fallback;
  }
  const double throughput = it->second.throughput.value_or(0.0);
  if (throughput <= 0) return fallback;
  const double ratio = 1.0 - it->second.reducing.value_or(0.0) / throughput;
  return std::clamp(ratio, 0.0, 1.0);
}

bool ReducingSpeedMonitor::has_sample(MethodId method) const noexcept {
  const auto it = perMethod_.find(method);
  return it != perMethod_.end() && it->second.samples > 0;
}

std::size_t ReducingSpeedMonitor::sample_count(MethodId method) const noexcept {
  const auto it = perMethod_.find(method);
  return it == perMethod_.end() ? 0 : it->second.samples;
}

}  // namespace acex::adaptive
