#include "adaptive/telemetry.hpp"

namespace acex::adaptive {
namespace {

constexpr const char* kKind = "acex.t.kind";  // "block" | "summary"

}  // namespace

void TelemetryPublisher::publish(const BlockReport& report) {
  echo::Event event;
  auto& a = event.attributes;
  a.set_string(kKind, "block");
  a.set_int("acex.t.index", static_cast<std::int64_t>(report.index));
  a.set_string("acex.t.method", std::string(method_name(report.method)));
  a.set_int("acex.t.original", static_cast<std::int64_t>(report.original_size));
  a.set_int("acex.t.wire", static_cast<std::int64_t>(report.wire_size));
  a.set_double("acex.t.compress_us", report.compress_seconds * 1e6);
  a.set_double("acex.t.send_us", report.send_seconds * 1e6);
  a.set_double("acex.t.bandwidth_bps", report.bandwidth_estimate_Bps);
  a.set_double("acex.t.sampled_ratio", report.sampled_ratio_percent);
  a.set_int("acex.t.fallback", report.fallback ? 1 : 0);
  if (report.fallback) {
    // Which method the selector wanted before degradation stepped in.
    a.set_string("acex.t.requested",
                 std::string(method_name(report.requested_method)));
  }
  channel_->submit(std::move(event));
}

void TelemetryPublisher::publish_summary(const StreamReport& report) {
  echo::Event event;
  auto& a = event.attributes;
  a.set_string(kKind, "summary");
  a.set_int("acex.t.blocks", static_cast<std::int64_t>(report.blocks.size()));
  a.set_int("acex.t.original",
            static_cast<std::int64_t>(report.original_bytes));
  a.set_int("acex.t.wire", static_cast<std::int64_t>(report.wire_bytes));
  a.set_double("acex.t.total_s", report.total_seconds);
  a.set_double("acex.t.compress_s", report.compress_seconds);
  channel_->submit(std::move(event));
}

bool TelemetryAggregator::observe(const echo::Event& event) {
  const auto kind = event.attributes.get_string(kKind);
  if (!kind) return false;
  if (*kind == "block") {
    ++blocks_;
    original_ += static_cast<std::uint64_t>(
        event.attributes.get_int("acex.t.original").value_or(0));
    wire_ += static_cast<std::uint64_t>(
        event.attributes.get_int("acex.t.wire").value_or(0));
    compress_seconds_ +=
        event.attributes.get_double("acex.t.compress_us").value_or(0) / 1e6;
    if (const auto method = event.attributes.get_string("acex.t.method")) {
      ++method_counts_[*method];
    }
    if (event.attributes.get_int("acex.t.fallback").value_or(0) != 0) {
      ++fallbacks_;
    }
    return true;
  }
  if (*kind == "summary") {
    summary_seen_ = true;
    return true;
  }
  return false;
}

double TelemetryAggregator::wire_ratio_percent() const noexcept {
  return original_ == 0 ? 100.0
                        : 100.0 * static_cast<double>(wire_) /
                              static_cast<double>(original_);
}

}  // namespace acex::adaptive
