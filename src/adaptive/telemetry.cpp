#include "adaptive/telemetry.hpp"

#include <cmath>

namespace acex::adaptive {
namespace {

constexpr const char* kKind = "acex.t.kind";  // "block" | "summary" | "metric"

/// Mirror of the consumer-side rejection tally, so a dashboard scraping
/// the obs registry sees producer misbehaviour too.
obs::Counter& malformed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("acex.telemetry.malformed");
  return c;
}

}  // namespace

void TelemetryPublisher::publish(const BlockReport& report) {
  echo::Event event;
  auto& a = event.attributes;
  a.set_string(kKind, "block");
  a.set_int("acex.t.index", static_cast<std::int64_t>(report.index));
  a.set_string("acex.t.method", std::string(method_name(report.method)));
  a.set_int("acex.t.original", static_cast<std::int64_t>(report.original_size));
  a.set_int("acex.t.wire", static_cast<std::int64_t>(report.wire_size));
  a.set_double("acex.t.compress_us", report.compress_seconds * 1e6);
  a.set_double("acex.t.send_us", report.send_seconds * 1e6);
  a.set_double("acex.t.bandwidth_bps", report.bandwidth_estimate_Bps);
  a.set_double("acex.t.sampled_ratio", report.sampled_ratio_percent);
  a.set_int("acex.t.fallback", report.fallback ? 1 : 0);
  if (report.fallback) {
    // Which method the selector wanted before degradation stepped in.
    a.set_string("acex.t.requested",
                 std::string(method_name(report.requested_method)));
  }
  channel_->submit(std::move(event));
}

void TelemetryPublisher::publish_summary(const StreamReport& report) {
  echo::Event event;
  auto& a = event.attributes;
  a.set_string(kKind, "summary");
  a.set_int("acex.t.blocks", static_cast<std::int64_t>(report.blocks.size()));
  a.set_int("acex.t.original",
            static_cast<std::int64_t>(report.original_bytes));
  a.set_int("acex.t.wire", static_cast<std::int64_t>(report.wire_bytes));
  a.set_double("acex.t.total_s", report.total_seconds);
  a.set_double("acex.t.compress_s", report.compress_seconds);
  channel_->submit(std::move(event));
}

void TelemetryPublisher::publish_metrics(const obs::MetricsSnapshot& snapshot) {
  for (const obs::MetricPoint& point : snapshot.points) {
    echo::Event event;
    auto& a = event.attributes;
    a.set_string(kKind, "metric");
    a.set_string("acex.t.name", point.full_name());
    switch (point.kind) {
      case obs::MetricPoint::Kind::kCounter:
        a.set_int("acex.t.value", static_cast<std::int64_t>(point.counter));
        break;
      case obs::MetricPoint::Kind::kGauge:
        a.set_int("acex.t.value", point.gauge);
        break;
      case obs::MetricPoint::Kind::kHistogram:
        a.set_int("acex.t.count", static_cast<std::int64_t>(point.hist.count));
        a.set_double("acex.t.sum", point.hist.sum);
        a.set_double("acex.t.p50", point.hist.p50());
        a.set_double("acex.t.p99", point.hist.p99());
        break;
    }
    channel_->submit(std::move(event));
  }
}

bool TelemetryAggregator::observe(const echo::Event& event) {
  const auto kind = event.attributes.get_string(kKind);
  if (!kind) return false;  // not telemetry traffic at all
  if (*kind == "block") {
    // Validate before folding anything in: a half-applied record would
    // corrupt every ratio derived from these aggregates.
    const auto original = event.attributes.get_int("acex.t.original");
    const auto wire = event.attributes.get_int("acex.t.wire");
    const auto compress_us = event.attributes.get_double("acex.t.compress_us");
    const auto method = event.attributes.get_string("acex.t.method");
    const bool valid = original && *original >= 0 && wire && *wire >= 0 &&
                       compress_us && std::isfinite(*compress_us) &&
                       *compress_us >= 0 && method && !method->empty();
    if (!valid) {
      ++malformed_;
      malformed_counter().add(1);
      return true;  // it *was* telemetry, just unusable
    }
    ++blocks_;
    original_ += static_cast<std::uint64_t>(*original);
    wire_ += static_cast<std::uint64_t>(*wire);
    compress_seconds_ += *compress_us / 1e6;
    ++method_counts_[*method];
    if (event.attributes.get_int("acex.t.fallback").value_or(0) != 0) {
      ++fallbacks_;
    }
    return true;
  }
  if (*kind == "summary") {
    summary_seen_ = true;
    return true;
  }
  if (*kind == "metric") {
    ++metrics_seen_;
    return true;
  }
  // Carries our kind attribute but an unknown value — a producer bug or
  // version skew; count it rather than silently ignoring.
  ++malformed_;
  malformed_counter().add(1);
  return true;
}

double TelemetryAggregator::wire_ratio_percent() const noexcept {
  return original_ == 0 ? 100.0
                        : 100.0 * static_cast<double>(wire_) /
                              static_cast<double>(original_);
}

}  // namespace acex::adaptive
