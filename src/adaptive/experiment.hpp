#pragma once

#include <string>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "netsim/link.hpp"
#include "netsim/load_trace.hpp"

namespace acex::adaptive {

/// Scenario description for the §4.2 application experiments: stream a
/// dataset over an emulated, trace-loaded link and record what the
/// adaptive machinery does — the harness behind Figs. 8–12 and the
/// headline totals, shared by benches and tests.
struct ExperimentConfig {
  netsim::LinkParams link = netsim::fast_ethernet_link();
  /// Background load applied to the link (the paper's "MBone trace ...
  /// multiplied by a factor of 4"); empty = unloaded link.
  netsim::LoadTrace background;
  AdaptiveConfig adaptive;
  std::uint64_t seed = 1;

  /// Producer pacing: virtual seconds between successive block
  /// submissions. The paper's application experiments stream transactions
  /// at an application rate across the 160 s trace rather than saturating
  /// the link; 0 (default) submits blocks back-to-back.
  Seconds pace = 0;
  /// Emulated reverse path for acks/control (fast and symmetric is fine;
  /// the paper's links are full duplex).
  netsim::LinkParams reverse_link = netsim::fast_ethernet_link();

  /// When false, the sender's adaptation context (reducing-speed monitor,
  /// bandwidth estimate, sampler drift) is reset before every block and
  /// async sampling is pinned off — the per-block-reset streaming variant
  /// a context_takeover=false handshake implies. Decisions then run every
  /// block on first-block assumptions; the scenario matrix uses this to
  /// measure what the carried context is actually worth.
  bool context_takeover = true;
};

/// One policy's end-to-end outcome on a scenario.
struct ExperimentResult {
  std::string policy;  ///< "adaptive", "none", "lempel-ziv", ...
  StreamReport stream;
  bool verified = false;  ///< receiver reassembled exactly the input

  /// Receiver CPU time spent decompressing, on the emulated-host scale
  /// (measured wall time / cpu_scale). Not part of stream.total_seconds —
  /// on real deployments decompression overlaps reception — but the
  /// "Global Time" column of Fig. 1 is total + this.
  Seconds receiver_decompress_seconds = 0;

  Seconds global_seconds() const noexcept {
    return stream.total_seconds + receiver_decompress_seconds;
  }
};

/// Run the adaptive policy on `data` under `config`; the returned stream's
/// BlockReports carry (virtual) timestamps, chosen methods, compression
/// times, and wire sizes — i.e. the series plotted in Figs. 8, 9, 10.
ExperimentResult run_adaptive(ByteView data, const ExperimentConfig& config);

/// Run a fixed-method baseline on the same scenario.
ExperimentResult run_fixed(ByteView data, const ExperimentConfig& config,
                           MethodId method);

/// Adaptive plus the standard baselines (none / LZ / BW), in that order —
/// the comparison the paper's §5 headline numbers summarize.
std::vector<ExperimentResult> run_policy_comparison(
    ByteView data, const ExperimentConfig& config);

/// The cpu_scale that makes THIS machine's Lempel-Ziv reducing speed on
/// `sample` equal `target_reducing_Bps` — how experiments emulate the
/// paper's 2003-era hosts (Fig. 4 measured LZ at ~3.5 MB/s on the
/// Sun-Fire-280R; a modern CPU is an order of magnitude faster, which
/// would silently shift every regime boundary). Measures LZ over the
/// sample (up to 512 KiB of it) in real time.
double cpu_scale_for_lz_speed(ByteView sample, double target_reducing_Bps);

/// Fig. 4's Sun-Fire LZ reducing speed, the usual calibration target.
inline constexpr double kPaperLzReducingBps = 3.5e6;

}  // namespace acex::adaptive
