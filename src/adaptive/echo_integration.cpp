#include "adaptive/echo_integration.hpp"

#include <atomic>

#include "util/error.hpp"

namespace acex::adaptive {

echo::EventHandler make_compression_handler(MethodId method) {
  auto registry = std::make_shared<CodecRegistry>(CodecRegistry::with_builtins());
  return [method, registry](echo::Event event) -> std::optional<echo::Event> {
    const CodecPtr codec = registry->create(method);
    const std::size_t original = event.payload.size();
    event.attributes.set_int(kOriginalSizeAttr,
                             static_cast<std::int64_t>(original));
    event.attributes.set_int(kMethodAttr, static_cast<std::int64_t>(method));
    event.payload = frame_compress(*codec, event.payload);
    return event;
  };
}

echo::EventHandler make_decompression_handler() {
  auto registry = std::make_shared<CodecRegistry>(CodecRegistry::with_builtins());
  return [registry](echo::Event event) -> std::optional<echo::Event> {
    if (!event.attributes.has(kMethodAttr)) return event;  // not compressed
    event.payload = frame_decompress(event.payload, *registry);
    event.attributes.erase(kMethodAttr);
    event.attributes.erase(kOriginalSizeAttr);
    return event;
  };
}

SwitchableCompressor::SwitchableCompressor(MethodId initial)
    : method_(initial), state_(std::make_shared<State>()) {
  state_->method = initial;
}

void SwitchableCompressor::set_method(MethodId method) {
  if (!state_->registry.contains(method)) {
    throw ConfigError("SwitchableCompressor: unknown method");
  }
  method_ = method;
  state_->method = method;
}

echo::EventHandler SwitchableCompressor::handler() {
  auto state = state_;
  return [state](echo::Event event) -> std::optional<echo::Event> {
    const MethodId method = state->method;
    const CodecPtr codec = state->registry.create(method);
    event.attributes.set_int(kOriginalSizeAttr,
                             static_cast<std::int64_t>(event.payload.size()));
    event.attributes.set_int(kMethodAttr, static_cast<std::int64_t>(method));
    event.payload = frame_compress(*codec, event.payload);
    ++state->events;
    return event;
  };
}

echo::ControlSink SwitchableCompressor::control_sink() {
  auto state = state_;
  return [this, state](const echo::AttributeMap& attrs) {
    const auto requested = attrs.get_int(kMethodAttr);
    if (!requested) return;
    const auto method = static_cast<MethodId>(*requested);
    if (state->registry.contains(method)) {
      state->method = method;
      method_ = method;
      ++switches_;
    }
  };
}

DerivedChannelSwitcher::DerivedChannelSwitcher(echo::EventBus& bus,
                                               echo::ChannelId source,
                                               echo::EventSink sink,
                                               MethodId initial)
    : bus_(&bus), source_(source), sink_(std::move(sink)), method_(initial) {
  if (!sink_) throw ConfigError("switcher: sink must not be empty");
  derive(initial);
}

DerivedChannelSwitcher::~DerivedChannelSwitcher() {
  try {
    bus_->remove_channel(current_);
  } catch (const Error&) {
    // Source or channel already gone: nothing left to detach.
  }
}

void DerivedChannelSwitcher::derive(MethodId method) {
  // Process-unique suffix: multiple switchers may derive from one source
  // (one per consumer), and a bus requires unique channel names.
  static std::atomic<std::uint64_t> unique{0};
  generation_ = ++unique;
  const std::string name = bus_->channel(source_).name() + ".derived." +
                           std::to_string(generation_);
  const echo::ChannelId fresh =
      bus_->derive_channel(source_, make_compression_handler(method), name);
  const echo::SubscriberId sub = bus_->channel(fresh).subscribe(sink_);

  if (current_ != 0) {
    // Unsubscribe from the old stream, then retire its channel.
    bus_->channel(current_).unsubscribe(subscription_);
    bus_->remove_channel(current_);
  }
  current_ = fresh;
  subscription_ = sub;
  method_ = method;
}

void DerivedChannelSwitcher::switch_method(MethodId method) {
  if (method == method_) return;
  derive(method);
  ++switches_;
}

ConsumerController::ConsumerController(echo::EventChannel& channel,
                                       const Clock& clock,
                                       DecisionParams params)
    : channel_(&channel),
      clock_(&clock),
      params_(params),
      sampler_(params.sample_size) {
  params_.validate();
}

MethodId ConsumerController::observe(const echo::Event& event) {
  const Seconds now = clock_->now();
  const std::size_t wire_bytes = event.payload.size();
  if (last_event_time_ >= 0 && now > last_event_time_) {
    bandwidth_.record(wire_bytes, now - last_event_time_);
  }
  last_event_time_ = now;

  const std::size_t original = static_cast<std::size_t>(
      event.attributes.get_int(kOriginalSizeAttr)
          .value_or(static_cast<std::int64_t>(wire_bytes)));
  const auto wire_method = static_cast<MethodId>(
      event.attributes.get_int(kMethodAttr)
          .value_or(static_cast<std::int64_t>(MethodId::kNone)));

  double ratio_percent;
  if (wire_method == MethodId::kNone) {
    // Raw payload: sample it with LZ locally, which both estimates the
    // compressibility and keeps the reducing-speed estimate fresh using
    // *this* (receiver) host's CPU — "decompression requires the use of
    // receivers' CPU cycles".
    const SampleResult s = sampler_.sample(event.payload);
    ratio_percent = s.ratio_percent;
    if (s.sample_bytes > 0) {
      monitor_.record(MethodId::kLempelZiv, s.sample_bytes,
                      static_cast<std::size_t>(
                          s.ratio_percent / 100.0 *
                          static_cast<double>(s.sample_bytes)),
                      s.elapsed);
    }
  } else if (original > 0) {
    ratio_percent = 100.0 * static_cast<double>(wire_bytes) /
                    static_cast<double>(original);
  } else {
    ratio_percent = 100.0;
  }

  SelectionInputs inputs;
  const double bw = bandwidth_.estimate_or(1e6);
  inputs.send_seconds = static_cast<double>(original) / bw;
  inputs.lz_reduce_seconds =
      monitor_.reduce_seconds(MethodId::kLempelZiv, original);
  inputs.sampled_ratio_percent = ratio_percent;

  const MethodId best = decide(inputs, params_);
  if (best != current_) {
    current_ = best;
    ++switches_;
    echo::AttributeMap attrs;
    attrs.set_int(kMethodAttr, static_cast<std::int64_t>(best));
    attrs.set_double(kAcceptRateAttr, bw);
    channel_->signal_control(attrs);
  }
  return best;
}

}  // namespace acex::adaptive
