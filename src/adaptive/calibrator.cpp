#include "adaptive/calibrator.hpp"

#include <algorithm>

#include "compress/metrics.hpp"
#include "compress/registry.hpp"
#include "util/error.hpp"

namespace acex::adaptive {

Calibrator::Calibrator(double overlap_credit)
    : overlap_credit_(overlap_credit) {
  if (!(overlap_credit > 0) || overlap_credit > 1) {
    throw ConfigError("calibrator: overlap_credit must be in (0, 1]");
  }
}

CalibrationReport Calibrator::calibrate(ByteView sample,
                                        const DecisionParams& base) const {
  if (sample.size() < 4 * 1024) {
    throw ConfigError("calibrator: sample must be at least 4 KiB");
  }
  base.validate();

  MonotonicClock clock;
  const auto measure = [&](MethodId id) {
    const CodecPtr codec = make_codec(id);
    return measure_codec(*codec, sample, clock, /*include_decompress=*/false);
  };
  const auto lz = measure(MethodId::kLempelZiv);
  const auto bw = measure(MethodId::kBurrowsWheeler);
  const auto hu = measure(MethodId::kHuffman);

  CalibrationReport report;
  report.lz_ratio_percent = lz.ratio_percent();
  report.bw_ratio_percent = bw.ratio_percent();
  report.huffman_ratio_percent = hu.ratio_percent();
  report.lz_reducing_speed = lz.reducing_speed();
  report.bw_reducing_speed = bw.reducing_speed();
  report.lz_throughput = lz.compress_throughput();
  report.bw_throughput = bw.compress_throughput();

  DecisionParams params = base;
  params.alpha = overlap_credit_;  // ideal break-even alpha is 1.0

  // beta: the bandwidth below which Burrows-Wheeler's extra reduction pays
  // for its extra CPU, expressed as a multiple of the LZ reduce time.
  const double r_lz = lz.ratio_percent() / 100.0;
  const double r_bw = bw.ratio_percent() / 100.0;
  const double inv_thr_gap =
      1.0 / std::max(report.bw_throughput, 1.0) -
      1.0 / std::max(report.lz_throughput, 1.0);
  if (r_lz > r_bw && inv_thr_gap > 0 && report.lz_reducing_speed > 0) {
    const double bw_cross = (r_lz - r_bw) / inv_thr_gap;
    const double beta = report.lz_reducing_speed / bw_cross;
    // Clamp to a sane band around the paper's constant: degenerate samples
    // (uniformly incompressible or trivially compressible) produce wild
    // crossings that would effectively disable one method.
    params.beta = std::clamp(beta, params.alpha + 0.1, 50.0);
  }
  // else: BW never pays on this data; keep base.beta (the ratio_cut will
  // already route such data to Huffman).

  // ratio_cut: if LZ cannot beat Huffman's order-0 ratio, the data has no
  // string repetitions worth chasing.
  params.ratio_cut_percent =
      std::clamp(report.huffman_ratio_percent, 30.0, 70.0);

  report.params = params;
  report.params.validate();
  return report;
}

}  // namespace acex::adaptive
