#pragma once

#include <string_view>
#include <vector>

#include "compress/codec.hpp"
#include "util/clock.hpp"

namespace acex::adaptive {

/// Tunable constants of the §2.5 selection algorithm, defaulting to the
/// paper's published values. "These numbers can be tuned easily by sampling
/// even a small piece of data" — the Calibrator re-derives them.
struct DecisionParams {
  /// Compression threshold: compress at all only when sending a block takes
  /// longer than `alpha` x the time Lempel-Ziv needs to reduce it. The
  /// break-even derivation (see decide()) gives alpha = 1; the paper's 0.83
  /// credits the overlap of compression with transmission.
  double alpha = 0.83;

  /// Escalation threshold: move from Lempel-Ziv to Burrows-Wheeler when the
  /// network is slower still — send time > `beta` x the LZ reduce time.
  double beta = 3.48;

  /// Compressibility cut (percent). When the 4 KiB sample compresses to a
  /// ratio at or above this, the data lacks string repetitions and the
  /// cheap order-0 method (Huffman) is used instead of LZ/BW.
  double ratio_cut_percent = 48.78;

  /// Data is streamed in blocks of this size ("Take a block of 128KB").
  std::size_t block_size = 128 * 1024;

  /// Per-block sampling prefix ("compress the first 4KB of the next
  /// block by Lempel-Ziv").
  std::size_t sample_size = 4 * 1024;

  /// Throws ConfigError if any value is non-positive / inconsistent.
  void validate() const;
};

/// The measured state the selector consumes for one block.
struct SelectionInputs {
  /// Estimated end-to-end time to ship this block *uncompressed* — block
  /// size over the measured accept rate ("the speed with which compressed
  /// blocks are accepted by receivers").
  Seconds send_seconds = 0;

  /// Time Lempel-Ziv would need to shrink this block, i.e. block size over
  /// the monitored LZ *reducing speed* (bytes removed per second, Fig. 4).
  /// Zero means "reducing speed is infinity" — the paper's stated
  /// assumption for the first block. It passes both thresholds, so the
  /// stream starts on the strongest applicable method until real
  /// measurements arrive.
  Seconds lz_reduce_seconds = 0;

  /// Compression ratio (percent of original) the LZ sampler achieved on
  /// this block's 4 KiB prefix.
  double sampled_ratio_percent = 100.0;
};

/// The §2.5 algorithm, verbatim in structure:
///
///   if send_time > alpha * lz_reduce_time:      # compression pays at all
///     if sampled_ratio < ratio_cut:             # repetitive data
///       if send_time > beta * lz_reduce_time:   # very slow link / fast CPU
///         Burrows-Wheeler
///       else: Lempel-Ziv
///     else: Huffman
///   else: no compression
///
/// Why comparing send time with reduce time is the right break-even:
/// compression pays when saved wire time exceeds CPU time spent, i.e.
/// (B - C)/bw > t_compress; dividing by the bytes removed turns this into
/// bw < reducing_speed, i.e. send_seconds > lz_reduce_seconds.
MethodId decide(const SelectionInputs& inputs, const DecisionParams& params);

// ---------------------------------------------------------------------
// Figure 1: the paper's qualitative method-comparison table, as data.

enum class Rating { kPoor = 0, kSatisfactory = 1, kGood = 2, kExcellent = 3 };

std::string_view rating_name(Rating r) noexcept;

/// One row of Fig. 1 per method.
struct MethodProfile {
  MethodId method;
  Rating string_repetitions;  ///< "Compress files with string repetitions"
  Rating low_entropy;         ///< "Compress files with low entropy"
  Rating efficiency;          ///< "Compression Efficiency"
  Rating compress_time;       ///< "Time of Compression"
  Rating decompress_time;     ///< "Time of Decompression"
  Rating global_time;         ///< "Global Time"
};

/// The published table (§2.5, Fig. 1).
const std::vector<MethodProfile>& figure1_table();

/// Bucket a measured quantity into a Rating given the best and worst values
/// observed across methods (log-scale thresholds; higher_is_better flips
/// the sense). Used by the Fig. 1 bench to re-derive the table from
/// measurements.
Rating bucket_rating(double value, double best, double worst,
                     bool higher_is_better);

}  // namespace acex::adaptive
