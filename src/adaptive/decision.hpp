#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "compress/codec.hpp"
#include "util/clock.hpp"

namespace acex::adaptive {

/// What the selector optimizes for (DESIGN.md §15). The paper's §2.5 rule
/// scores methods on bandwidth alone; the Ferragina–Tosoni energy study
/// shows the ratio-vs-CPU frontier shifts with the objective, so the
/// objective itself is now a pluggable policy. Values are wire-stable:
/// acexd negotiates them per client like method ids.
enum class DecisionPolicy : std::uint8_t {
  /// The §2.5 bandwidth rule, bit-identical to the original engine — the
  /// default, and the only policy the target-rate escalator composes with.
  kBandwidth = 0,
  /// Maximize bytes saved per CPU second spent encoding; compression must
  /// clear a configurable saving-rate floor to beat the null codec.
  kCpuEfficiency = 1,
  /// Minimize a weighted CPU + bytes-on-wire energy proxy (CPU joules vs
  /// NIC/radio joules per byte).
  kEnergyProxy = 2,
  /// Satisfy the user's target payload rate at minimum CPU: the cheapest
  /// method whose effective rate clears the floor, best-effort strongest
  /// rate when none does. With no target set it never compresses.
  kTargetRate = 3,
};

std::string_view policy_name(DecisionPolicy policy) noexcept;

/// Whether `raw` names a DecisionPolicy this build understands — the
/// handshake's typed-reject gate for policy ids from newer peers.
bool known_policy(std::uint64_t raw) noexcept;

/// Every policy this build implements, in id order.
const std::vector<DecisionPolicy>& all_policies();

/// Tunable constants of the §2.5 selection algorithm, defaulting to the
/// paper's published values. "These numbers can be tuned easily by sampling
/// even a small piece of data" — the Calibrator re-derives them.
struct DecisionParams {
  /// Selection objective. kBandwidth keeps every default below meaningful;
  /// the other policies additionally read the weights further down.
  DecisionPolicy policy = DecisionPolicy::kBandwidth;
  /// Compression threshold: compress at all only when sending a block takes
  /// longer than `alpha` x the time Lempel-Ziv needs to reduce it. The
  /// break-even derivation (see decide()) gives alpha = 1; the paper's 0.83
  /// credits the overlap of compression with transmission.
  double alpha = 0.83;

  /// Escalation threshold: move from Lempel-Ziv to Burrows-Wheeler when the
  /// network is slower still — send time > `beta` x the LZ reduce time.
  double beta = 3.48;

  /// Compressibility cut (percent). When the 4 KiB sample compresses to a
  /// ratio at or above this, the data lacks string repetitions and the
  /// cheap order-0 method (Huffman) is used instead of LZ/BW.
  double ratio_cut_percent = 48.78;

  /// Data is streamed in blocks of this size ("Take a block of 128KB").
  std::size_t block_size = 128 * 1024;

  /// Per-block sampling prefix ("compress the first 4KB of the next
  /// block by Lempel-Ziv").
  std::size_t sample_size = 4 * 1024;

  /// kCpuEfficiency: minimum bytes saved per CPU microsecond before any
  /// compression beats the null codec. 1 byte/µs = a 1 MB/s reducing-speed
  /// floor — below that the CPU is better spent elsewhere.
  double min_saving_per_cpu_us = 1.0;

  /// kEnergyProxy weights, unit-free: cost = energy_cpu_weight x
  /// cpu_seconds + energy_wire_weight x wire_bytes. The defaults put one
  /// CPU-second level with ~500 KiB on the wire (a WAN/radio flavour where
  /// transmit amplifiers dominate); LAN deployments shrink the wire weight.
  double energy_cpu_weight = 1.0;
  double energy_wire_weight = 2e-6;

  /// Throws ConfigError if any value is non-positive / inconsistent.
  void validate() const;
};

/// The selector's ladder of candidate methods, weakest to strongest —
/// fixed and shared by every policy, the circuit breaker, and the
/// target-rate escalator.
inline constexpr std::array<MethodId, 4> kDecisionLadder = {
    MethodId::kNone, MethodId::kHuffman, MethodId::kLempelZiv,
    MethodId::kBurrowsWheeler};

/// Rung of `method` on kDecisionLadder; kDecisionLadder.size() when the
/// method is not a selector candidate.
std::size_t decision_ladder_rung(MethodId method) noexcept;

/// What one candidate method is expected to do to THIS block — the raw
/// material of the multi-objective scores. Populated from the reducing-
/// speed monitor's live measurements with sampler-derived fallbacks.
struct MethodEstimate {
  /// Expected compressed/original ratio in (0, 1+]; 1 = no reduction.
  double ratio = 1.0;
  /// Expected CPU seconds to encode the block; 0 = no measurement yet,
  /// which every policy treats optimistically (the paper's "assume the
  /// reducing speed of the first block is infinity" rule generalized).
  Seconds encode_seconds = 0;
};

/// The measured state the selector consumes for one block.
struct SelectionInputs {
  /// Estimated end-to-end time to ship this block *uncompressed* — block
  /// size over the measured accept rate ("the speed with which compressed
  /// blocks are accepted by receivers").
  Seconds send_seconds = 0;

  /// Time Lempel-Ziv would need to shrink this block, i.e. block size over
  /// the monitored LZ *reducing speed* (bytes removed per second, Fig. 4).
  /// Zero means "reducing speed is infinity" — the paper's stated
  /// assumption for the first block. It passes both thresholds, so the
  /// stream starts on the strongest applicable method until real
  /// measurements arrive.
  Seconds lz_reduce_seconds = 0;

  /// Compression ratio (percent of original) the LZ sampler achieved on
  /// this block's 4 KiB prefix.
  double sampled_ratio_percent = 100.0;

  // --- multi-objective extensions (ignored by kBandwidth) --------------

  /// Size of the block being planned, in bytes. The scored policies need
  /// absolute byte counts (savings, wire cost), not just time ratios.
  std::size_t block_bytes = 0;

  /// Estimated link rate (bytes/s) — block_bytes / send_seconds, carried
  /// explicitly so kTargetRate can compute effective payload rates.
  double bandwidth_Bps = 0;

  /// kTargetRate's floor in original payload bytes per second; 0 = no
  /// floor (kTargetRate then never compresses — minimum CPU wins).
  double target_rate_Bps = 0;

  /// Per-candidate expectations, indexed by kDecisionLadder rung.
  std::array<MethodEstimate, kDecisionLadder.size()> estimates{};
};

/// The §2.5 algorithm, verbatim in structure:
///
///   if send_time > alpha * lz_reduce_time:      # compression pays at all
///     if sampled_ratio < ratio_cut:             # repetitive data
///       if send_time > beta * lz_reduce_time:   # very slow link / fast CPU
///         Burrows-Wheeler
///       else: Lempel-Ziv
///     else: Huffman
///   else: no compression
///
/// Why comparing send time with reduce time is the right break-even:
/// compression pays when saved wire time exceeds CPU time spent, i.e.
/// (B - C)/bw > t_compress; dividing by the bytes removed turns this into
/// bw < reducing_speed, i.e. send_seconds > lz_reduce_seconds.
MethodId decide(const SelectionInputs& inputs, const DecisionParams& params);

/// The multi-objective selector: dispatches on params.policy.
///
///   kBandwidth      — decide() verbatim (bit-identical to the original
///                     engine; the golden regression pins this).
///   kCpuEfficiency  — argmax over the ladder of bytes-saved / CPU-second,
///                     subject to the min_saving_per_cpu_us floor; kNone
///                     (zero saving at zero CPU) when nothing clears it.
///   kEnergyProxy    — argmin of energy_cpu_weight x cpu + energy_wire_
///                     weight x wire_bytes; kNone costs exactly the wire.
///   kTargetRate     — among candidates whose effective payload rate
///                     min(link/ratio, block/cpu) meets target_rate_Bps,
///                     the one with least CPU; the max-rate candidate when
///                     none qualifies.
///
/// Ties break toward the WEAKER method on every policy (cheaper to encode
/// and to decode). The null codec is a candidate under every policy — no
/// objective can ever make a stream unsendable.
MethodId decide_policy(const SelectionInputs& inputs,
                       const DecisionParams& params);

/// The scalar desirability the scored policies assign to ladder rung
/// `rung` (higher is better; decide_policy picks the argmax, ties to the
/// lower rung). Exposed for the property tests: utility is non-increasing
/// in a candidate's ratio and in its CPU time for every scored policy.
/// kBandwidth is rule-based, not scored — asking for its utility throws
/// ConfigError.
double policy_utility(const SelectionInputs& inputs,
                      const DecisionParams& params, std::size_t rung);

// ---------------------------------------------------------------------
// Figure 1: the paper's qualitative method-comparison table, as data.

enum class Rating { kPoor = 0, kSatisfactory = 1, kGood = 2, kExcellent = 3 };

std::string_view rating_name(Rating r) noexcept;

/// One row of Fig. 1 per method.
struct MethodProfile {
  MethodId method;
  Rating string_repetitions;  ///< "Compress files with string repetitions"
  Rating low_entropy;         ///< "Compress files with low entropy"
  Rating efficiency;          ///< "Compression Efficiency"
  Rating compress_time;       ///< "Time of Compression"
  Rating decompress_time;     ///< "Time of Decompression"
  Rating global_time;         ///< "Global Time"
};

/// The published table (§2.5, Fig. 1).
const std::vector<MethodProfile>& figure1_table();

/// Bucket a measured quantity into a Rating given the best and worst values
/// observed across methods (log-scale thresholds; higher_is_better flips
/// the sense). Used by the Fig. 1 bench to re-derive the table from
/// measurements.
Rating bucket_rating(double value, double best, double worst,
                     bool higher_is_better);

}  // namespace acex::adaptive
