#pragma once

#include <map>

#include "adaptive/pipeline.hpp"
#include "echo/channel.hpp"
#include "obs/metrics.hpp"

namespace acex::adaptive {

/// Cross-layer performance transport (§3.1: "using attributes, ECho can
/// transport performance information ... across end users and address
/// spaces and across different implementation layers"). Each transmitted
/// block becomes one payload-less event on a telemetry channel, its
/// quality attributes carrying the measurement record; summaries close a
/// stream. Dashboards, loggers, or controllers subscribe like any other
/// consumer — including across a ChannelSender/Receiver bridge.
///
/// Attribute names (all `acex.t.` prefixed):
///   block events:  index, method, original, wire, compress_us, send_us,
///                  bandwidth_bps, sampled_ratio, fallback
///                  (+ requested, the selector's pre-degradation choice,
///                  on fallback blocks)
///   summary event: blocks, original, wire, total_s, compress_s
class TelemetryPublisher {
 public:
  /// `channel` must outlive the publisher.
  explicit TelemetryPublisher(echo::EventChannel& channel)
      : channel_(&channel) {}

  /// Publish one block's measurements.
  void publish(const BlockReport& report);

  /// Publish a stream summary (marks end of stream for consumers).
  void publish_summary(const StreamReport& report);

  /// Publish a registry snapshot as telemetry: one `kind=metric` event per
  /// point (name + value; histograms ship count/sum/p50/p99). The publisher
  /// is thereby a *consumer* of the same measurements the obs layer
  /// records — the ECho channel is just another exporter (DESIGN.md §9).
  void publish_metrics(const obs::MetricsSnapshot& snapshot);

 private:
  echo::EventChannel* channel_;
};

/// Consumer-side aggregation of telemetry events — what a monitoring
/// dashboard would maintain.
class TelemetryAggregator {
 public:
  /// Feed every event from the telemetry channel; non-telemetry events are
  /// ignored. Returns true if the event was a telemetry record.
  ///
  /// Robustness contract: a telemetry-kinded event with missing or
  /// malformed attributes (wrong type, negative sizes, non-finite times,
  /// unknown kind) is counted in malformed() and skipped — it never
  /// corrupts the aggregates and never throws. The channel crosses address
  /// spaces, so the producer cannot be trusted to be well-formed.
  bool observe(const echo::Event& event);

  std::uint64_t blocks() const noexcept { return blocks_; }
  std::uint64_t original_bytes() const noexcept { return original_; }
  std::uint64_t wire_bytes() const noexcept { return wire_; }
  /// Blocks the sender degraded to the null codec (circuit breaker /
  /// expansion fallback) — the dashboard's view of sender health.
  std::uint64_t fallbacks() const noexcept { return fallbacks_; }
  Seconds compress_seconds() const noexcept { return compress_seconds_; }
  bool summary_seen() const noexcept { return summary_seen_; }
  /// Telemetry-kinded events rejected for missing/malformed attributes.
  std::uint64_t malformed() const noexcept { return malformed_; }
  /// `kind=metric` events seen (publish_metrics traffic, not aggregated).
  std::uint64_t metrics_seen() const noexcept { return metrics_seen_; }

  /// Wire bytes as a percentage of original (100 when nothing seen).
  double wire_ratio_percent() const noexcept;

  /// Blocks per method name, e.g. {"none": 12, "lempel-ziv": 4}.
  const std::map<std::string, std::uint64_t>& method_counts() const noexcept {
    return method_counts_;
  }

 private:
  std::uint64_t blocks_ = 0;
  std::uint64_t original_ = 0;
  std::uint64_t wire_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t metrics_seen_ = 0;
  Seconds compress_seconds_ = 0;
  bool summary_seen_ = false;
  std::map<std::string, std::uint64_t> method_counts_;
};

}  // namespace acex::adaptive
