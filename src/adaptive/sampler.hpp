#pragma once

#include <future>
#include <optional>

#include "compress/lz77.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace acex::adaptive {

/// What one sampling pass learned about the upcoming block.
struct SampleResult {
  double ratio_percent = 100.0;  ///< compressed/original of the sample
  double reducing_speed = 0.0;   ///< bytes removed per second, 0 if none
  double throughput = 0.0;       ///< sample bytes consumed per second
  Seconds elapsed = 0.0;         ///< CPU time the sampling itself took
  std::size_t sample_bytes = 0;
};

/// §2.5's sampling step: "Fork a sampling process to compress the first 4KB
/// of the next block by Lempel-Ziv and use its output to determine the
/// reducing speed size and the compression ratio for the next 128KB block."
///
/// We substitute a std::async task (or an inline call) for the fork(2) of
/// the paper — identical estimate, same overlap with sending when async
/// (DESIGN.md §2). Timing always uses a monotonic clock: sampling measures
/// real CPU capability, which is exactly what the selector needs even when
/// the surrounding experiment runs on virtual time.
class Sampler {
 public:
  /// `prefix_size`: how much of the block to sample (the paper's 4 KiB).
  explicit Sampler(std::size_t prefix_size = 4 * 1024);

  /// Synchronous sampling of `block`'s prefix.
  SampleResult sample(ByteView block) const;

  /// Launch sampling concurrently ("fork"); retrieve with wait().
  /// The data is copied, so the caller may reuse the block immediately.
  void launch(ByteView block);

  /// Block until the launched sample completes ("Wait for child
  /// process."); std::nullopt if launch() was never called.
  std::optional<SampleResult> wait();

  bool pending() const noexcept { return future_.valid(); }

  std::size_t prefix_size() const noexcept { return prefix_size_; }

 private:
  std::size_t prefix_size_;
  std::future<SampleResult> future_;
};

}  // namespace acex::adaptive
