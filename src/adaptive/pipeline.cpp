#include "adaptive/pipeline.hpp"

#include <algorithm>
#include <array>
#include <future>

#include "compress/null_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace acex::adaptive {
namespace {

// Escalation ladder, weakest to strongest — the selector's shared
// kDecisionLadder (decision.hpp), reused by the target-rate escalator and
// the circuit breaker's demotion walk.
constexpr const std::array<MethodId, 4>& kLadder = kDecisionLadder;

// ---- observability (DESIGN.md §9) ------------------------------------
// Instrument handles are resolved once and cached; every record after
// that is lock-free. Series are process-wide: concurrent senders feed the
// same aggregates, which is what a per-process dashboard wants.

/// Per-method latency histogram, keyed by the small contiguous MethodId
/// range so the hot path indexes an array instead of hashing a name.
class MethodHistograms {
 public:
  explicit MethodHistograms(std::string_view name) {
    for (std::size_t i = 0; i < cache_.size(); ++i) {
      cache_[i] = &obs::MetricsRegistry::global().histogram(
          name, "method", method_name(static_cast<MethodId>(i)));
    }
    fallback_name_ = std::string(name);
  }

  obs::Histogram& for_method(MethodId m) {
    const auto idx = static_cast<std::size_t>(m);
    if (idx < cache_.size()) return *cache_[idx];
    // Off-range ids (kZlib, custom codecs): pay the registry lookup.
    return obs::MetricsRegistry::global().histogram(fallback_name_, "method",
                                                    method_name(m));
  }

 private:
  std::array<obs::Histogram*, 6> cache_{};  // kNone..kLzw
  std::string fallback_name_;
};

struct SenderMetrics {
  obs::Counter& blocks;          ///< blocks transmitted
  obs::Counter& bytes_original;  ///< payload bytes in
  obs::Counter& bytes_wire;      ///< framed bytes out
  obs::Counter& fallbacks;       ///< blocks degraded to the null codec
  obs::Counter& retransmits;     ///< frames replayed on NACK
  obs::Histogram& send_us;       ///< transport-clock accept time per frame
  MethodHistograms encode_us;    ///< raw encode CPU per requested method
};

SenderMetrics& sender_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static SenderMetrics m{r.counter("acex.adaptive.blocks"),
                         r.counter("acex.adaptive.bytes_original"),
                         r.counter("acex.adaptive.bytes_wire"),
                         r.counter("acex.adaptive.fallbacks"),
                         r.counter("acex.adaptive.retransmits"),
                         r.histogram("acex.adaptive.send_us"),
                         MethodHistograms("acex.adaptive.encode_us")};
  return m;
}

struct ReceiverMetrics {
  obs::Counter& frames;           ///< frames drained off the transport
  obs::Counter& frames_ok;
  obs::Counter& frames_corrupt;
  obs::Counter& frames_duplicate;
  obs::Counter& bytes_recovered;
  obs::Counter& resyncs;          ///< corrupt frames skipped, stream resumed
  obs::Counter& seq_rejected;     ///< sequences outside the gap window
  obs::Counter& nacks_issued;
  MethodHistograms decode_us;     ///< decode CPU per wire method
};

/// Per-policy decision counter ("acex.adaptive.decisions" labeled by
/// policy), cached over the small contiguous policy-id range so the
/// planning path never hashes a name.
obs::Counter& decision_counter(DecisionPolicy policy) {
  static const auto cache = [] {
    std::array<obs::Counter*, 4> c{};
    for (const DecisionPolicy p : all_policies()) {
      c[static_cast<std::size_t>(p)] =
          &obs::MetricsRegistry::global().counter("acex.adaptive.decisions",
                                                  "policy", policy_name(p));
    }
    return c;
  }();
  return *cache[static_cast<std::size_t>(policy)];
}

ReceiverMetrics& receiver_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static ReceiverMetrics m{r.counter("acex.adaptive.rx.frames"),
                           r.counter("acex.adaptive.rx.frames_ok"),
                           r.counter("acex.adaptive.rx.frames_corrupt"),
                           r.counter("acex.adaptive.rx.frames_duplicate"),
                           r.counter("acex.adaptive.rx.bytes_recovered"),
                           r.counter("acex.adaptive.rx.resyncs"),
                           r.counter("acex.adaptive.rx.seq_rejected"),
                           r.counter("acex.adaptive.rx.nacks_issued"),
                           MethodHistograms("acex.adaptive.rx.decode_us")};
  return m;
}

}  // namespace

EncodeResult encode_block(const CodecRegistry& registry, ByteView block,
                          MethodId method, std::uint64_t sequence,
                          std::size_t expansion_slack_bytes,
                          bool allow_degrade) {
  EncodeResult result;
  result.method = method;
  // Compress under real (monotonic) time — that is the CPU capability the
  // algorithm adapts to; the caller charges the scaled cost to whatever
  // timeline its experiment runs on.
  MonotonicClock cpu_clock;
  const obs::ScopedSpan span(obs::BlockTracer::global(), sequence,
                             obs::Stage::kEncode, obs::current_worker());
  const Stopwatch cpu(cpu_clock);
  bool degraded = false;
  try {
    const CodecPtr codec = registry.create(method);
    result.framed = BufferView::own(frame_compress_seq(*codec, block, sequence));
    if (allow_degrade && method != MethodId::kNone &&
        result.framed.size() > block.size() +
                                   frame_overhead_seq(block.size(), sequence) +
                                   expansion_slack_bytes) {
      // The codec "succeeded" but made the block bigger than shipping it
      // raw would — on the wire that is a failure.
      degraded = true;
    }
  } catch (const Error&) {
    if (!allow_degrade) {
      result.failure = std::current_exception();
      result.encode_seconds = cpu.elapsed();
      return result;
    }
    degraded = true;
    result.threw = true;
  }
  if (degraded) {
    NullCodec null;
    result.framed = BufferView::own(frame_compress_seq(null, block, sequence));
    result.method = MethodId::kNone;
    result.fallback = true;
  }
  result.encode_seconds = cpu.elapsed();
  // Latency is attributed to the *requested* method — a fallback's cost is
  // the failed codec's cost, not the null codec's.
  sender_metrics().encode_us.for_method(method).record(result.encode_seconds *
                                                       1e6);
  return result;
}

PayloadEncode encode_payload(const CodecRegistry& registry, ByteView block,
                             MethodId method,
                             std::size_t expansion_slack_bytes) {
  PayloadEncode result;
  result.method = method;
  MonotonicClock cpu_clock;
  const obs::ScopedSpan span(obs::BlockTracer::global(), 0,
                             obs::Stage::kEncode, obs::current_worker());
  const Stopwatch cpu(cpu_clock);
  bool degraded = false;
  try {
    const CodecPtr codec = registry.create(method);
    result.payload = BufferView::own(codec->compress(block));
    if (method != MethodId::kNone &&
        result.payload.size() > block.size() + expansion_slack_bytes) {
      degraded = true;
    }
  } catch (const Error&) {
    degraded = true;
    result.threw = true;
  }
  if (degraded) {
    // The null codec's output IS the block: borrow it instead of copying.
    // The caller's block outlives the PayloadEncode (struct contract).
    result.payload = BufferView::borrow(block);
    result.method = MethodId::kNone;
    result.fallback = true;
  }
  result.encode_seconds = cpu.elapsed();
  sender_metrics().encode_us.for_method(method).record(result.encode_seconds *
                                                       1e6);
  return result;
}

AdaptiveSender::AdaptiveSender(transport::Transport& transport,
                               AdaptiveConfig config)
    : transport_(&transport),
      config_(std::move(config)),
      sampler_(config_.decision.sample_size) {
  config_.decision.validate();
  if (config_.initial_bandwidth_Bps <= 0 || config_.cpu_scale <= 0) {
    throw ConfigError("adaptive: bandwidth and cpu_scale must be positive");
  }
  if (config_.target_rate_Bps < 0) {
    throw ConfigError("adaptive: target_rate_Bps must be >= 0");
  }
  if (config_.breaker_failure_threshold <= 0 ||
      config_.breaker_cooldown_blocks == 0) {
    throw ConfigError("adaptive: breaker threshold and cooldown must be > 0");
  }
  ring_ = transport::RetransmitRing(config_.retransmit_capacity,
                                    config_.retransmit_max_retries,
                                    config_.retransmit_max_bytes);
}

MethodId AdaptiveSender::apply_circuit_breaker(
    MethodId method) const noexcept {
  std::size_t rung = 0;
  while (rung < std::size(kLadder) && kLadder[rung] != method) ++rung;
  if (rung == std::size(kLadder)) return method;  // not on the ladder

  // Walk down to the strongest method whose breaker is closed; kNone can
  // never fail, so the walk always terminates on a usable rung.
  for (;; --rung) {
    const MethodId candidate = kLadder[rung];
    const auto it = health_.find(candidate);
    if (it == health_.end() || blocks_sent_ >= it->second.quarantined_until) {
      return candidate;
    }
    if (rung == 0) return MethodId::kNone;
  }
}

void AdaptiveSender::note_codec_failure(MethodId method) {
  MethodHealth& health = health_[method];
  // A failure of the post-cooldown probe re-trips the breaker on the spot:
  // the method already proved unhealthy once, so it does not get another
  // `threshold` free failures per cooldown.
  const bool probe_failed =
      health.probation && blocks_sent_ >= health.quarantined_until;
  if (probe_failed ||
      ++health.consecutive_failures >= config_.breaker_failure_threshold) {
    health.quarantined_until = blocks_sent_ + config_.breaker_cooldown_blocks;
    health.consecutive_failures = 0;
    health.probation = true;
    ++degradation_.quarantines;
  }
}

void AdaptiveSender::note_codec_success(MethodId method) noexcept {
  const auto it = health_.find(method);
  if (it != health_.end()) {
    it->second.consecutive_failures = 0;
    it->second.probation = false;  // probe succeeded: breaker fully closed
  }
}

BlockReport AdaptiveSender::finish_block(const BlockPlan& plan,
                                         std::size_t original_size,
                                         EncodeResult encoded) {
  if (encoded.failure) std::rethrow_exception(encoded.failure);
  const obs::ScopedSpan span(obs::BlockTracer::global(), plan.sequence,
                             obs::Stage::kFinish);

  BlockReport report;
  report.index = plan.sequence;
  report.method = encoded.method;
  report.requested_method = plan.method;
  report.fallback = encoded.fallback;
  report.original_size = original_size;
  report.sampled_ratio_percent = plan.sampled_ratio_percent;
  report.bandwidth_estimate_Bps = plan.bandwidth_estimate_Bps;
  report.compress_seconds = encoded.encode_seconds / config_.cpu_scale;
  if (config_.on_cpu_time) config_.on_cpu_time(report.compress_seconds);

  if (plan.allow_degrade) {
    if (encoded.fallback) {
      if (encoded.threw) {
        ++degradation_.codec_failures;
      } else {
        ++degradation_.expansions;
      }
      ++degradation_.fallbacks;
      note_codec_failure(plan.method);
    } else {
      note_codec_success(plan.method);
    }
  }
  if (!report.fallback) {
    monitor_.record(encoded.method, original_size, encoded.framed.size(),
                    std::max(report.compress_seconds, 1e-9));
  }
  if (encoded.method == MethodId::kLempelZiv && sample_speed_.has_value()) {
    // Anchor the drift correction: this is what the sampler reported while
    // the block-granularity measurement above was current.
    sample_speed_ref_ = sample_speed_.value_or(0.0);
  }

  const Clock& wire_clock = transport_->clock();
  report.submitted = wire_clock.now();
  {
    const obs::ScopedSpan tx(obs::BlockTracer::global(), plan.sequence,
                             obs::Stage::kTransmit);
    try {
      transport_->send_buffer(encoded.framed);
    } catch (...) {
      // The wire frame is final even though this delivery failed; keep it
      // replayable so a bounded egress wait (EgressTimeout) stays
      // recoverable loss instead of a permanent stream gap.
      ring_.store(plan.sequence, std::move(encoded.framed));
      throw;
    }
  }
  report.delivered = wire_clock.now();
  report.send_seconds = report.delivered - report.submitted;
  report.wire_size = encoded.framed.size();

  SenderMetrics& metrics = sender_metrics();
  metrics.blocks.add(1);
  metrics.bytes_original.add(original_size);
  metrics.bytes_wire.add(report.wire_size);
  if (report.fallback) metrics.fallbacks.add(1);
  // Transport-clock time: under a VirtualClock this is modeled seconds,
  // which is exactly what the experiment wants on the dashboard.
  metrics.send_us.record(report.send_seconds * 1e6);

  if (!config_.external_bandwidth_feedback) {
    bandwidth_.record(encoded.framed.size(), report.send_seconds);
  }
  ring_.store(plan.sequence, std::move(encoded.framed));
  return report;
}

BlockReport AdaptiveSender::transmit_planned(const BlockPlan& plan,
                                             ByteView block) {
  return finish_block(plan, block.size(),
                      encode_block(registry_, block, plan.method,
                                   plan.sequence,
                                   config_.expansion_slack_bytes,
                                   plan.allow_degrade));
}

std::size_t AdaptiveSender::retransmit(
    const std::vector<std::uint64_t>& sequences) {
  std::size_t sent = 0;
  for (const std::uint64_t seq : sequences) {
    if (const BufferView* wire = ring_.replay(seq)) {
      const obs::ScopedSpan tx(obs::BlockTracer::global(), seq,
                               obs::Stage::kTransmit);
      transport_->send_buffer(*wire);
      ++sent;
      ++degradation_.retransmits;
      sender_metrics().retransmits.add(1);
    }
  }
  return sent;
}

std::optional<std::size_t> AdaptiveSender::replay_range(std::uint64_t from,
                                                        std::uint64_t to) {
  // Verify the whole gap is still held BEFORE sending anything: a partial
  // replay would hand the resumed receiver an unfillable hole while
  // claiming success.
  for (std::uint64_t seq = from; seq < to; ++seq) {
    if (ring_.peek(seq) == nullptr) return std::nullopt;
  }
  std::size_t sent = 0;
  for (std::uint64_t seq = from; seq < to; ++seq) {
    const BufferView* wire = ring_.peek(seq);
    const obs::ScopedSpan tx(obs::BlockTracer::global(), seq,
                             obs::Stage::kTransmit);
    transport_->send_buffer(*wire);
    ++sent;
  }
  return sent;
}

void AdaptiveSender::reset_adaptation() noexcept {
  monitor_.reset();
  bandwidth_.reset();
  sample_speed_.reset();
  sample_speed_ref_ = 0;
}

MethodId AdaptiveSender::apply_target_rate(
    MethodId base, double bandwidth_Bps,
    double sampled_ratio_percent) const noexcept {
  // The shared ladder; the break-even choice is the floor — a target never
  // justifies picking something weaker than what the §2.5 algorithm
  // already considered worthwhile.
  const double lz_ratio = sampled_ratio_percent / 100.0;
  std::size_t rung = 0;
  while (rung < std::size(kLadder) && kLadder[rung] != base) ++rung;
  if (rung == std::size(kLadder)) return base;  // not on the ladder

  // Effective payload rate = link rate / wire ratio. Climb until it meets
  // the target or the ladder tops out.
  while (rung + 1 < std::size(kLadder) &&
         bandwidth_Bps / expected_ratio(kLadder[rung], lz_ratio) <
             config_.target_rate_Bps) {
    ++rung;
  }
  return kLadder[rung];
}

double AdaptiveSender::expected_ratio(MethodId method,
                                      double lz_ratio) const noexcept {
  switch (method) {
    case MethodId::kNone:
      return 1.0;
    case MethodId::kHuffman:
      return monitor_.ratio_or(MethodId::kHuffman, 0.65);
    case MethodId::kLempelZiv:
      return monitor_.ratio_or(MethodId::kLempelZiv, lz_ratio);
    case MethodId::kBurrowsWheeler:
      // BW tracks LZ's repetition structure with a modest edge (Fig. 2).
      return monitor_.ratio_or(MethodId::kBurrowsWheeler, lz_ratio * 0.85);
    default:
      return 1.0;
  }
}

std::array<MethodEstimate, kDecisionLadder.size()>
AdaptiveSender::estimate_ladder(std::size_t block_size,
                                double sampled_ratio_percent) const noexcept {
  const double lz_ratio = sampled_ratio_percent / 100.0;
  const double block = static_cast<double>(block_size);

  // LZ encode time from the reducing-speed estimate: reducing speed is
  // bytes REMOVED per second, so t = removed / speed. When the estimate is
  // unavailable (or the sample says the block is incompressible, removing
  // nothing), the time stays 0 — "first block is infinity" optimism.
  const double lz_speed = lz_reducing_speed_estimate(block_size);
  const double lz_encode =
      lz_speed > 0 ? block * std::max(0.0, 1.0 - lz_ratio) / lz_speed : 0.0;

  // Fig. 1's static compress-time ratings as throughput relative to LZ:
  // Huffman is Excellent (a cheap order-0 pass), Burrows-Wheeler Poor
  // (block-sort dominated). Measured throughput overrides the guess.
  const auto encode_seconds = [&](MethodId m, double relative_to_lz) {
    if (monitor_.has_sample(m)) {
      const double tput = monitor_.throughput_or(m, 0.0);
      if (tput > 0) return block / tput;
    }
    return relative_to_lz > 0 ? lz_encode / relative_to_lz : 0.0;
  };

  std::array<MethodEstimate, kDecisionLadder.size()> estimates{};
  for (std::size_t rung = 0; rung < kDecisionLadder.size(); ++rung) {
    const MethodId m = kDecisionLadder[rung];
    estimates[rung].ratio = expected_ratio(m, lz_ratio);
    switch (m) {
      case MethodId::kNone:
        estimates[rung].encode_seconds = 0.0;
        break;
      case MethodId::kHuffman:
        estimates[rung].encode_seconds = encode_seconds(m, 2.2);
        break;
      case MethodId::kLempelZiv:
        estimates[rung].encode_seconds = encode_seconds(m, 1.0);
        break;
      case MethodId::kBurrowsWheeler:
        estimates[rung].encode_seconds = encode_seconds(m, 0.12);
        break;
      default:
        break;
    }
  }
  return estimates;
}

double AdaptiveSender::lz_reducing_speed_estimate(
    std::size_t block_size) const noexcept {
  (void)block_size;
  if (monitor_.has_sample(MethodId::kLempelZiv)) {
    double speed = monitor_.reducing_speed_or(MethodId::kLempelZiv, 0.0);
    if (sample_speed_ref_ > 0 && sample_speed_.has_value()) {
      // CPU-load drift since the last LZ block: if sampling got slower,
      // blocks would too, proportionally.
      speed *= sample_speed_.value_or(sample_speed_ref_) / sample_speed_ref_;
    }
    return speed;
  }
  if (sample_speed_.has_value()) {
    // No block-granularity measurement yet: extrapolate from the sampler,
    // converted to the emulated-host scale. This overestimates (small
    // compressions are cache-friendly), which matches the paper's
    // aggressive "assume the reducing size speed of first block is
    // infinity" starting rule.
    return sample_speed_.value_or(0.0) * config_.cpu_scale;
  }
  return 0.0;  // "infinity" semantics in decide()
}

BlockPlan AdaptiveSender::plan_block(ByteView block, ByteView next_block) {
  if (block.size() > config_.decision.block_size) {
    throw ConfigError("adaptive: block exceeds configured block_size");
  }
  // The sampler result for THIS block: the paper computes it during the
  // previous block's send; we launch it there (async) and collect it here.
  SampleResult sample;
  if (auto pending = sampler_.wait()) {
    sample = *pending;
  } else {
    sample = sampler_.sample(block);  // first block: no overlap available
  }

  // "Fork a sampling process to compress the first 4KB of the next block"
  // — overlapped with this block's compression and send, collected by the
  // next plan_block's wait().
  if (config_.async_sampling && !next_block.empty()) {
    sampler_.launch(next_block);
  }
  return plan_from_sample(block, sample);
}

BlockPlan AdaptiveSender::plan_block_sampled(ByteView block,
                                             const SampleResult& sample) {
  if (block.size() > config_.decision.block_size) {
    throw ConfigError("adaptive: block exceeds configured block_size");
  }
  return plan_from_sample(block, sample);
}

BlockPlan AdaptiveSender::plan_from_sample(ByteView block,
                                           const SampleResult& sample) {
  // The sequence is assigned at the end of planning; bind it late.
  obs::ScopedSpan span(obs::BlockTracer::global(), blocks_sent_,
                       obs::Stage::kPlan);

  // Track the sampler's raw reducing speed. It is NOT comparable to block
  // speeds in absolute terms (4 KiB compressions run much faster per byte
  // than 128 KiB ones), so it feeds the drift correction in
  // lz_reducing_speed_estimate() rather than the block-speed monitor.
  if (sample.sample_bytes > 0 && sample.reducing_speed > 0) {
    sample_speed_.add(sample.reducing_speed);
  }

  SelectionInputs inputs;
  const double bw =
      bandwidth_.estimate_or(config_.initial_bandwidth_Bps);
  inputs.send_seconds = static_cast<double>(block.size()) / bw;
  const double lz_speed = lz_reducing_speed_estimate(block.size());
  inputs.lz_reduce_seconds =
      lz_speed > 0 ? static_cast<double>(block.size()) / lz_speed : 0.0;
  inputs.sampled_ratio_percent = sample.ratio_percent;

  MethodId method;
  if (config_.decision.policy == DecisionPolicy::kBandwidth) {
    // The §2.5 rule, bit-identical to the original engine, composed with
    // the target-rate escalator exactly as before.
    method = decide(inputs, config_.decision);
    if (config_.target_rate_Bps > 0) {
      method = apply_target_rate(method, bw, sample.ratio_percent);
    }
  } else {
    // Scored policies consume absolute costs: per-rung (ratio, CPU)
    // expectations plus the link rate and the user's rate floor. The
    // target-rate escalator does NOT compose here — kTargetRate owns the
    // floor, the others deliberately ignore it.
    inputs.block_bytes = block.size();
    inputs.bandwidth_Bps = bw;
    inputs.target_rate_Bps = config_.target_rate_Bps;
    inputs.estimates = estimate_ladder(block.size(), sample.ratio_percent);
    method = decide_policy(inputs, config_.decision);
  }
  decision_counter(config_.decision.policy).add(1);
  method = apply_circuit_breaker(method);
  if (config_.method_governor) {
    // Overload governor (session degradation ladder); its choice passes
    // through the breaker once more so a downgrade can never resurrect a
    // quarantined method. The breaker only demotes, so order is stable.
    method = apply_circuit_breaker(config_.method_governor(method));
  }

  BlockPlan plan;
  plan.sequence = blocks_sent_++;
  plan.method = method;
  plan.sampled_ratio_percent = sample.ratio_percent;
  plan.bandwidth_estimate_Bps = bw;
  span.set_block(plan.sequence);
  return plan;
}

BlockPlan AdaptiveSender::plan_block_fixed(ByteView block, MethodId method) {
  if (block.size() > config_.decision.block_size) {
    throw ConfigError("adaptive: block exceeds configured block_size");
  }
  const obs::ScopedSpan span(obs::BlockTracer::global(), blocks_sent_,
                             obs::Stage::kPlan);
  BlockPlan plan;
  plan.sequence = blocks_sent_++;
  plan.method = method;
  plan.bandwidth_estimate_Bps =
      bandwidth_.estimate_or(config_.initial_bandwidth_Bps);
  // Fixed sends are the paper's baselines: no degradation, no breaker —
  // "always-BW" must stay BW even when that is a bad idea.
  plan.allow_degrade = false;
  return plan;
}

BlockReport AdaptiveSender::send_block(ByteView block, ByteView next_block) {
  const BlockPlan plan = plan_block(block, next_block);
  return transmit_planned(plan, block);
}

void AdaptiveSender::finalize_stream(StreamReport& stream) {
  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
}

StreamReport AdaptiveSender::send_all(ByteView data) {
  StreamReport stream;
  const std::size_t block_size = config_.decision.block_size;
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    const std::size_t next_off = off + len;
    const ByteView next =
        next_off < data.size()
            ? data.subspan(next_off,
                           std::min(block_size, data.size() - next_off))
            : ByteView{};
    stream.blocks.push_back(send_block(data.subspan(off, len), next));
  }
  finalize_stream(stream);
  return stream;
}

BlockReport AdaptiveSender::send_block_fixed(ByteView block, MethodId method) {
  return transmit_planned(plan_block_fixed(block, method), block);
}

StreamReport AdaptiveSender::send_all_pipelined(ByteView data) {
  struct Prepared {
    BlockPlan plan;
    std::size_t original_size = 0;
    EncodeResult encoded;
  };

  // Decide on the calling thread (estimator state is not thread-safe),
  // compress on a worker so it overlaps the previous block's send. The
  // worker runs only the thread-safe encode_block() over immutable input.
  // For deeper overlap (many workers, bounded reorder window) use
  // engine::ParallelSender, which drives these same hooks.
  const auto launch = [this, data](std::size_t off) {
    const std::size_t len =
        std::min(config_.decision.block_size, data.size() - off);
    const ByteView block = data.subspan(off, len);
    // No pending async sample exists on this path, so plan_block samples
    // inline; next_block stays empty because the encode itself is what
    // overlaps the send here.
    const BlockPlan plan = plan_block(block);
    const std::size_t slack = config_.expansion_slack_bytes;
    return std::async(std::launch::async, [this, block, plan, slack] {
      Prepared p;
      p.plan = plan;
      p.original_size = block.size();
      p.encoded = encode_block(registry_, block, plan.method, plan.sequence,
                               slack, plan.allow_degrade);
      return p;
    });
  };

  StreamReport stream;
  if (data.empty()) return stream;

  std::future<Prepared> inflight = launch(0);
  for (std::size_t off = 0; off < data.size();) {
    Prepared p = inflight.get();
    const std::size_t next_off = off + p.original_size;
    if (next_off < data.size()) inflight = launch(next_off);
    stream.blocks.push_back(
        finish_block(p.plan, p.original_size, std::move(p.encoded)));
    off = next_off;
  }
  finalize_stream(stream);
  return stream;
}

StreamReport AdaptiveSender::send_all_fixed(ByteView data, MethodId method) {
  StreamReport stream;
  const std::size_t block_size = config_.decision.block_size;
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    stream.blocks.push_back(
        send_block_fixed(data.subspan(off, len), method));
  }
  finalize_stream(stream);
  return stream;
}

AdaptiveReceiver::AdaptiveReceiver(transport::Transport& transport,
                                   ReceiverConfig config)
    : transport_(&transport), config_(config) {
  if (config_.nack_retry_cap <= 0) {
    throw ConfigError("receiver: nack_retry_cap must be positive");
  }
  if (config_.gap_window == 0) {
    throw ConfigError("receiver: gap_window must be positive");
  }
}

bool AdaptiveReceiver::already_delivered(std::uint64_t seq) const noexcept {
  return seq < next_contiguous_ || delivered_ahead_.count(seq) > 0;
}

void AdaptiveReceiver::mark_delivered(std::uint64_t seq) {
  if (seq == next_contiguous_) {
    ++next_contiguous_;
    // Fold in any out-of-order deliveries the gap was holding back.
    auto it = delivered_ahead_.begin();
    while (it != delivered_ahead_.end() && *it == next_contiguous_) {
      ++next_contiguous_;
      it = delivered_ahead_.erase(it);
    }
  } else if (seq > next_contiguous_) {
    delivered_ahead_.insert(seq);
  }
}

std::vector<std::uint64_t> AdaptiveReceiver::current_gaps() const {
  std::vector<std::uint64_t> gaps;
  if (!any_seen_) return gaps;
  // The window clamp in receive_report() keeps max_seen_ within gap_window
  // of next_contiguous_; bounding the scan here as well makes the loop
  // finite even for max_seen_ == UINT64_MAX, where `seq <= max_seen_`
  // alone could never terminate.
  for (std::uint64_t seq = next_contiguous_;
       seq <= max_seen_ && seq - next_contiguous_ < config_.gap_window;
       ++seq) {
    if (delivered_ahead_.count(seq) == 0) gaps.push_back(seq);
  }
  return gaps;
}

ReceiveReport AdaptiveReceiver::receive_report() {
  ReceiveReport report;
  MonotonicClock cpu_clock;
  ReceiverMetrics& metrics = receiver_metrics();
  obs::BlockTracer& tracer = obs::BlockTracer::global();
  // receive_buffer(): the wire bytes may alias transport-owned storage (a
  // mapped shm slab); the BufferView frame_parse overload then lets decode
  // read the compressed payload in place — zero copies receiver-side.
  while (std::optional<BufferView> message = transport_->receive_buffer()) {
    FrameOutcome outcome;
    outcome.wire_size = message->size();
    metrics.frames.add(1);
    try {
      const Frame frame = frame_parse(*message);
      outcome.method = frame.method;
      if (frame.has_sequence && frame.sequence > next_contiguous_ &&
          frame.sequence - next_contiguous_ >= config_.gap_window) {
        // The 1-byte header checksum is weak: a corrupt sequence varint can
        // slip through, and folding it into max_seen_ would open an
        // effectively unbounded gap range. Real traffic never runs this far
        // ahead of delivery (the sender's retransmit ring is far smaller).
        metrics.seq_rejected.add(1);
        throw DecodeError("frame: sequence implausibly far ahead");
      }
      outcome.sequence = frame.sequence;
      outcome.has_sequence = frame.has_sequence;
      if (frame.has_sequence) {
        max_seen_ = any_seen_ ? std::max(max_seen_, frame.sequence)
                              : frame.sequence;
        any_seen_ = true;
      }
      if (frame.has_sequence && already_delivered(frame.sequence)) {
        outcome.status = FrameOutcome::Status::kDuplicate;
      } else {
        const obs::ScopedSpan span(
            tracer, frame.has_sequence ? frame.sequence : 0,
            obs::Stage::kDecode);
        const Stopwatch sw(cpu_clock);
        outcome.data = frame_decode(frame, registry_);
        const double elapsed = sw.elapsed();
        decompress_seconds_ += elapsed;
        metrics.decode_us.for_method(frame.method).record(elapsed * 1e6);
        if (frame.has_sequence) mark_delivered(frame.sequence);
        outcome.status = FrameOutcome::Status::kOk;
      }
    } catch (const Error& error) {
      // kThrow preserves the seed contract: first corrupt frame aborts the
      // drain, leaving everything behind it on the transport.
      if (config_.policy == RecoveryPolicy::kThrow) throw;
      outcome.status = FrameOutcome::Status::kCorrupt;
      outcome.error = error.what();
      // The stream resynchronizes past the damaged frame: quarantine it and
      // keep draining. Each such skip is one resync event.
      metrics.resyncs.add(1);
    }
    report.frames.push_back(std::move(outcome));
  }

  // Reassemble the intact payloads of THIS drain. Frames carrying sequence
  // numbers (v2) are ordered by sequence so a reordered wire still yields
  // the original byte stream; legacy v1 frames have only arrival order to
  // offer. Blocks recovered by later NACK rounds land in later drains —
  // cross-drain reassembly is the caller's job, keyed by
  // FrameOutcome::sequence.
  std::vector<const FrameOutcome*> intact;
  bool all_sequenced = true;
  for (const FrameOutcome& outcome : report.frames) {
    switch (outcome.status) {
      case FrameOutcome::Status::kOk:
        intact.push_back(&outcome);
        all_sequenced = all_sequenced && outcome.has_sequence;
        break;
      case FrameOutcome::Status::kCorrupt:
        ++report.frames_corrupt;
        break;
      case FrameOutcome::Status::kDuplicate:
        ++report.frames_duplicate;
        break;
    }
  }
  if (all_sequenced) {
    std::sort(intact.begin(), intact.end(),
              [](const FrameOutcome* a, const FrameOutcome* b) {
                return a->sequence < b->sequence;
              });
  }
  for (const FrameOutcome* outcome : intact) {
    const obs::ScopedSpan span(tracer, outcome->sequence,
                               obs::Stage::kDeliver);
    report.data.insert(report.data.end(), outcome->data.begin(),
                       outcome->data.end());
    report.bytes_recovered += outcome->data.size();
  }
  report.frames_ok = intact.size();
  report.gaps = current_gaps();

  frames_ += report.frames_ok;
  frames_corrupt_ += report.frames_corrupt;
  frames_duplicate_ += report.frames_duplicate;
  bytes_recovered_ += report.bytes_recovered;
  metrics.frames_ok.add(report.frames_ok);
  metrics.frames_corrupt.add(report.frames_corrupt);
  metrics.frames_duplicate.add(report.frames_duplicate);
  metrics.bytes_recovered.add(report.bytes_recovered);
  return report;
}

Bytes AdaptiveReceiver::receive_available() {
  return receive_report().data;
}

std::vector<std::uint64_t> AdaptiveReceiver::take_nacks() {
  std::vector<std::uint64_t> out;
  if (config_.policy != RecoveryPolicy::kNack) return out;
  // Attempt records below the delivery cursor are settled (the sequence
  // arrived after all); dropping them keeps the map bounded by the window.
  nack_attempts_.erase(nack_attempts_.begin(),
                       nack_attempts_.lower_bound(next_contiguous_));
  for (const std::uint64_t seq : current_gaps()) {
    int& attempts = nack_attempts_[seq];
    if (attempts >= config_.nack_retry_cap) continue;  // lost for good
    ++attempts;
    out.push_back(seq);
  }
  receiver_metrics().nacks_issued.add(out.size());
  return out;
}

std::size_t AdaptiveReceiver::nacks_abandoned() const noexcept {
  std::size_t lost = 0;
  for (const auto& [seq, attempts] : nack_attempts_) {
    if (attempts >= config_.nack_retry_cap && !already_delivered(seq)) ++lost;
  }
  return lost;
}

}  // namespace acex::adaptive
