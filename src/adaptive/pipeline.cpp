#include "adaptive/pipeline.hpp"

#include <algorithm>
#include <future>

#include "compress/null_codec.hpp"
#include "util/error.hpp"

namespace acex::adaptive {
namespace {

// Escalation ladder, weakest to strongest — shared by the target-rate
// escalator and the circuit breaker's demotion walk.
constexpr MethodId kLadder[] = {MethodId::kNone, MethodId::kHuffman,
                                MethodId::kLempelZiv,
                                MethodId::kBurrowsWheeler};

}  // namespace

AdaptiveSender::AdaptiveSender(transport::Transport& transport,
                               AdaptiveConfig config)
    : transport_(&transport),
      config_(std::move(config)),
      sampler_(config_.decision.sample_size) {
  config_.decision.validate();
  if (config_.initial_bandwidth_Bps <= 0 || config_.cpu_scale <= 0) {
    throw ConfigError("adaptive: bandwidth and cpu_scale must be positive");
  }
  if (config_.target_rate_Bps < 0) {
    throw ConfigError("adaptive: target_rate_Bps must be >= 0");
  }
  if (config_.breaker_failure_threshold <= 0 ||
      config_.breaker_cooldown_blocks == 0) {
    throw ConfigError("adaptive: breaker threshold and cooldown must be > 0");
  }
  ring_ = transport::RetransmitRing(config_.retransmit_capacity,
                                    config_.retransmit_max_retries);
}

MethodId AdaptiveSender::apply_circuit_breaker(
    MethodId method) const noexcept {
  std::size_t rung = 0;
  while (rung < std::size(kLadder) && kLadder[rung] != method) ++rung;
  if (rung == std::size(kLadder)) return method;  // not on the ladder

  // Walk down to the strongest method whose breaker is closed; kNone can
  // never fail, so the walk always terminates on a usable rung.
  for (;; --rung) {
    const MethodId candidate = kLadder[rung];
    const auto it = health_.find(candidate);
    if (it == health_.end() || blocks_sent_ >= it->second.quarantined_until) {
      return candidate;
    }
    if (rung == 0) return MethodId::kNone;
  }
}

void AdaptiveSender::note_codec_failure(MethodId method) {
  MethodHealth& health = health_[method];
  if (++health.consecutive_failures >= config_.breaker_failure_threshold) {
    health.quarantined_until = blocks_sent_ + config_.breaker_cooldown_blocks;
    health.consecutive_failures = 0;
    ++degradation_.quarantines;
  }
}

void AdaptiveSender::note_codec_success(MethodId method) noexcept {
  const auto it = health_.find(method);
  if (it != health_.end()) it->second.consecutive_failures = 0;
}

BlockReport AdaptiveSender::transmit_block(ByteView block, MethodId method,
                                           double sampled_ratio,
                                           double bw_estimate,
                                           bool allow_degrade) {
  BlockReport report;
  report.index = blocks_sent_++;
  report.method = method;
  report.requested_method = method;
  report.original_size = block.size();
  report.sampled_ratio_percent = sampled_ratio;
  report.bandwidth_estimate_Bps = bw_estimate;
  const std::uint64_t sequence = report.index;

  // Compress under real (monotonic) time — that is the CPU capability the
  // algorithm adapts to — then charge the scaled cost to the experiment
  // timeline via the hook.
  MonotonicClock cpu_clock;
  const Stopwatch cpu(cpu_clock);
  Bytes framed;
  bool degraded = false;
  try {
    const CodecPtr codec = registry_.create(method);
    framed = frame_compress_seq(*codec, block, sequence);
    if (allow_degrade && method != MethodId::kNone &&
        framed.size() > block.size() +
                            frame_overhead_seq(block.size(), sequence) +
                            config_.expansion_slack_bytes) {
      // The codec "succeeded" but made the block bigger than shipping it
      // raw would — on the wire that is a failure.
      degraded = true;
      ++degradation_.expansions;
    }
  } catch (const Error&) {
    if (!allow_degrade) throw;
    degraded = true;
    ++degradation_.codec_failures;
  }
  if (degraded) {
    NullCodec null;
    framed = frame_compress_seq(null, block, sequence);
    report.method = MethodId::kNone;
    report.fallback = true;
    ++degradation_.fallbacks;
    note_codec_failure(method);
  } else if (allow_degrade) {
    note_codec_success(method);
  }
  report.compress_seconds = cpu.elapsed() / config_.cpu_scale;
  if (config_.on_cpu_time) config_.on_cpu_time(report.compress_seconds);

  if (!report.fallback) {
    monitor_.record(method, block.size(), framed.size(),
                    std::max(report.compress_seconds, 1e-9));
  }
  if (method == MethodId::kLempelZiv && sample_speed_.has_value()) {
    // Anchor the drift correction: this is what the sampler reported while
    // the block-granularity measurement above was current.
    sample_speed_ref_ = sample_speed_.value_or(0.0);
  }

  const Clock& wire_clock = transport_->clock();
  report.submitted = wire_clock.now();
  transport_->send(framed);
  report.delivered = wire_clock.now();
  report.send_seconds = report.delivered - report.submitted;
  report.wire_size = framed.size();

  bandwidth_.record(framed.size(), report.send_seconds);
  ring_.store(sequence, std::move(framed));
  return report;
}

std::size_t AdaptiveSender::retransmit(
    const std::vector<std::uint64_t>& sequences) {
  std::size_t sent = 0;
  for (const std::uint64_t seq : sequences) {
    if (const Bytes* wire = ring_.replay(seq)) {
      transport_->send(*wire);
      ++sent;
      ++degradation_.retransmits;
    }
  }
  return sent;
}

MethodId AdaptiveSender::apply_target_rate(
    MethodId base, double bandwidth_Bps,
    double sampled_ratio_percent) const noexcept {
  // The shared ladder; the break-even choice is the floor — a target never
  // justifies picking something weaker than what the §2.5 algorithm
  // already considered worthwhile.
  //
  // Expected compressed/original ratio per rung: monitored achievements
  // where available, with the sampler's LZ view and conservative defaults
  // as fallbacks.
  const double lz_ratio = sampled_ratio_percent / 100.0;
  const auto expected_ratio = [&](MethodId m) {
    switch (m) {
      case MethodId::kNone:
        return 1.0;
      case MethodId::kHuffman:
        return monitor_.ratio_or(MethodId::kHuffman, 0.65);
      case MethodId::kLempelZiv:
        return monitor_.ratio_or(MethodId::kLempelZiv, lz_ratio);
      case MethodId::kBurrowsWheeler:
        // BW tracks LZ's repetition structure with a modest edge (Fig. 2).
        return monitor_.ratio_or(MethodId::kBurrowsWheeler, lz_ratio * 0.85);
      default:
        return 1.0;
    }
  };

  std::size_t rung = 0;
  while (rung < std::size(kLadder) && kLadder[rung] != base) ++rung;
  if (rung == std::size(kLadder)) return base;  // not on the ladder

  // Effective payload rate = link rate / wire ratio. Climb until it meets
  // the target or the ladder tops out.
  while (rung + 1 < std::size(kLadder) &&
         bandwidth_Bps / expected_ratio(kLadder[rung]) <
             config_.target_rate_Bps) {
    ++rung;
  }
  return kLadder[rung];
}

double AdaptiveSender::lz_reducing_speed_estimate(
    std::size_t block_size) const noexcept {
  (void)block_size;
  if (monitor_.has_sample(MethodId::kLempelZiv)) {
    double speed = monitor_.reducing_speed_or(MethodId::kLempelZiv, 0.0);
    if (sample_speed_ref_ > 0 && sample_speed_.has_value()) {
      // CPU-load drift since the last LZ block: if sampling got slower,
      // blocks would too, proportionally.
      speed *= sample_speed_.value_or(sample_speed_ref_) / sample_speed_ref_;
    }
    return speed;
  }
  if (sample_speed_.has_value()) {
    // No block-granularity measurement yet: extrapolate from the sampler,
    // converted to the emulated-host scale. This overestimates (small
    // compressions are cache-friendly), which matches the paper's
    // aggressive "assume the reducing size speed of first block is
    // infinity" starting rule.
    return sample_speed_.value_or(0.0) * config_.cpu_scale;
  }
  return 0.0;  // "infinity" semantics in decide()
}

BlockReport AdaptiveSender::send_block(ByteView block, ByteView next_block) {
  if (block.size() > config_.decision.block_size) {
    throw ConfigError("adaptive: block exceeds configured block_size");
  }

  // The sampler result for THIS block: the paper computes it during the
  // previous block's send; we launch it there (async) and collect it here.
  SampleResult sample;
  if (auto pending = sampler_.wait()) {
    sample = *pending;
  } else {
    sample = sampler_.sample(block);  // first block: no overlap available
  }
  // Track the sampler's raw reducing speed. It is NOT comparable to block
  // speeds in absolute terms (4 KiB compressions run much faster per byte
  // than 128 KiB ones), so it feeds the drift correction in
  // lz_reducing_speed_estimate() rather than the block-speed monitor.
  if (sample.sample_bytes > 0 && sample.reducing_speed > 0) {
    sample_speed_.add(sample.reducing_speed);
  }

  SelectionInputs inputs;
  const double bw =
      bandwidth_.estimate_or(config_.initial_bandwidth_Bps);
  inputs.send_seconds = static_cast<double>(block.size()) / bw;
  const double lz_speed = lz_reducing_speed_estimate(block.size());
  inputs.lz_reduce_seconds =
      lz_speed > 0 ? static_cast<double>(block.size()) / lz_speed : 0.0;
  inputs.sampled_ratio_percent = sample.ratio_percent;

  MethodId method = decide(inputs, config_.decision);
  if (config_.target_rate_Bps > 0) {
    method = apply_target_rate(method, bw, sample.ratio_percent);
  }
  method = apply_circuit_breaker(method);

  // "Fork a sampling process to compress the first 4KB of the next block"
  // — overlapped with this block's compression and send, collected by the
  // next send_block's wait().
  if (config_.async_sampling && !next_block.empty()) {
    sampler_.launch(next_block);
  }

  return transmit_block(block, method, sample.ratio_percent, bw);
}

StreamReport AdaptiveSender::send_all(ByteView data) {
  StreamReport stream;
  const std::size_t block_size = config_.decision.block_size;
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    const std::size_t next_off = off + len;
    const ByteView next =
        next_off < data.size()
            ? data.subspan(next_off,
                           std::min(block_size, data.size() - next_off))
            : ByteView{};
    stream.blocks.push_back(send_block(data.subspan(off, len), next));
  }

  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
  return stream;
}

BlockReport AdaptiveSender::send_block_fixed(ByteView block, MethodId method) {
  if (block.size() > config_.decision.block_size) {
    throw ConfigError("adaptive: block exceeds configured block_size");
  }
  const double bw = bandwidth_.estimate_or(config_.initial_bandwidth_Bps);
  // Fixed sends are the paper's baselines: no degradation, no breaker —
  // "always-BW" must stay BW even when that is a bad idea.
  return transmit_block(block, method, 100.0, bw, /*allow_degrade=*/false);
}

StreamReport AdaptiveSender::send_all_pipelined(ByteView data) {
  struct Prepared {
    BlockReport report;
    Bytes framed;
    bool threw = false;  // fallback cause: codec throw vs expansion
  };

  // Decide on the calling thread (estimator state is not thread-safe),
  // compress on a worker so it overlaps the previous block's send. The
  // worker touches only its own codec instance and the immutable input.
  const auto launch = [this, data](std::size_t off) {
    const std::size_t len =
        std::min(config_.decision.block_size, data.size() - off);
    const ByteView block = data.subspan(off, len);

    const SampleResult sample = sampler_.sample(block);
    if (sample.sample_bytes > 0 && sample.reducing_speed > 0) {
      sample_speed_.add(sample.reducing_speed);
    }
    SelectionInputs inputs;
    const double bw = bandwidth_.estimate_or(config_.initial_bandwidth_Bps);
    inputs.send_seconds = static_cast<double>(block.size()) / bw;
    const double lz_speed = lz_reducing_speed_estimate(block.size());
    inputs.lz_reduce_seconds =
        lz_speed > 0 ? static_cast<double>(block.size()) / lz_speed : 0.0;
    inputs.sampled_ratio_percent = sample.ratio_percent;
    MethodId method = decide(inputs, config_.decision);
    if (config_.target_rate_Bps > 0) {
      method = apply_target_rate(method, bw, sample.ratio_percent);
    }
    method = apply_circuit_breaker(method);

    const std::size_t index = blocks_sent_++;
    const double ratio = sample.ratio_percent;
    const double cpu_scale = config_.cpu_scale;
    return std::async(std::launch::async, [this, block, method, index,
                                           ratio, bw, cpu_scale] {
      Prepared p;
      p.report.index = index;
      p.report.method = method;
      p.report.requested_method = method;
      p.report.original_size = block.size();
      p.report.sampled_ratio_percent = ratio;
      p.report.bandwidth_estimate_Bps = bw;
      MonotonicClock cpu_clock;
      const Stopwatch cpu(cpu_clock);
      // Degradation runs on the worker (it owns the codec attempt); the
      // breaker bookkeeping happens on the collecting thread, which is the
      // only one touching health_.
      bool degraded = false;
      try {
        const CodecPtr codec = registry_.create(method);
        p.framed = frame_compress_seq(*codec, block, index);
        degraded = method != MethodId::kNone &&
                   p.framed.size() >
                       block.size() + frame_overhead_seq(block.size(), index) +
                           config_.expansion_slack_bytes;
      } catch (const Error&) {
        degraded = true;
        p.threw = true;
      }
      if (degraded) {
        NullCodec null;
        p.framed = frame_compress_seq(null, block, index);
        p.report.method = MethodId::kNone;
        p.report.fallback = true;
      }
      p.report.compress_seconds = cpu.elapsed() / cpu_scale;
      p.report.wire_size = p.framed.size();
      return p;
    });
  };

  StreamReport stream;
  if (data.empty()) return stream;

  std::future<Prepared> inflight = launch(0);
  for (std::size_t off = 0; off < data.size();) {
    Prepared p = inflight.get();
    const std::size_t next_off = off + p.report.original_size;
    if (next_off < data.size()) inflight = launch(next_off);

    if (config_.on_cpu_time) config_.on_cpu_time(p.report.compress_seconds);
    if (p.report.fallback) {
      ++degradation_.fallbacks;
      if (p.threw) {
        ++degradation_.codec_failures;
      } else {
        ++degradation_.expansions;
      }
      note_codec_failure(p.report.requested_method);
    } else {
      note_codec_success(p.report.requested_method);
      monitor_.record(p.report.method, p.report.original_size,
                      p.framed.size(),
                      std::max(p.report.compress_seconds, 1e-9));
    }
    if (p.report.method == MethodId::kLempelZiv &&
        sample_speed_.has_value()) {
      sample_speed_ref_ = sample_speed_.value_or(0.0);
    }

    const Clock& wire_clock = transport_->clock();
    p.report.submitted = wire_clock.now();
    transport_->send(p.framed);
    p.report.delivered = wire_clock.now();
    p.report.send_seconds = p.report.delivered - p.report.submitted;
    bandwidth_.record(p.framed.size(), p.report.send_seconds);
    ring_.store(p.report.index, std::move(p.framed));

    stream.blocks.push_back(std::move(p.report));
    off = next_off;
  }

  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
  return stream;
}

StreamReport AdaptiveSender::send_all_fixed(ByteView data, MethodId method) {
  StreamReport stream;
  const std::size_t block_size = config_.decision.block_size;
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    stream.blocks.push_back(
        send_block_fixed(data.subspan(off, len), method));
  }
  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
  return stream;
}

AdaptiveReceiver::AdaptiveReceiver(transport::Transport& transport,
                                   ReceiverConfig config)
    : transport_(&transport), config_(config) {
  if (config_.nack_retry_cap <= 0) {
    throw ConfigError("receiver: nack_retry_cap must be positive");
  }
  if (config_.gap_window == 0) {
    throw ConfigError("receiver: gap_window must be positive");
  }
}

bool AdaptiveReceiver::already_delivered(std::uint64_t seq) const noexcept {
  return seq < next_contiguous_ || delivered_ahead_.count(seq) > 0;
}

void AdaptiveReceiver::mark_delivered(std::uint64_t seq) {
  if (seq == next_contiguous_) {
    ++next_contiguous_;
    // Fold in any out-of-order deliveries the gap was holding back.
    auto it = delivered_ahead_.begin();
    while (it != delivered_ahead_.end() && *it == next_contiguous_) {
      ++next_contiguous_;
      it = delivered_ahead_.erase(it);
    }
  } else if (seq > next_contiguous_) {
    delivered_ahead_.insert(seq);
  }
}

std::vector<std::uint64_t> AdaptiveReceiver::current_gaps() const {
  std::vector<std::uint64_t> gaps;
  if (!any_seen_) return gaps;
  // The window clamp in receive_report() keeps max_seen_ within gap_window
  // of next_contiguous_; bounding the scan here as well makes the loop
  // finite even for max_seen_ == UINT64_MAX, where `seq <= max_seen_`
  // alone could never terminate.
  for (std::uint64_t seq = next_contiguous_;
       seq <= max_seen_ && seq - next_contiguous_ < config_.gap_window;
       ++seq) {
    if (delivered_ahead_.count(seq) == 0) gaps.push_back(seq);
  }
  return gaps;
}

ReceiveReport AdaptiveReceiver::receive_report() {
  ReceiveReport report;
  MonotonicClock cpu_clock;
  while (auto message = transport_->receive()) {
    FrameOutcome outcome;
    outcome.wire_size = message->size();
    try {
      const Frame frame = frame_parse(*message);
      outcome.method = frame.method;
      if (frame.has_sequence && frame.sequence > next_contiguous_ &&
          frame.sequence - next_contiguous_ >= config_.gap_window) {
        // The 1-byte header checksum is weak: a corrupt sequence varint can
        // slip through, and folding it into max_seen_ would open an
        // effectively unbounded gap range. Real traffic never runs this far
        // ahead of delivery (the sender's retransmit ring is far smaller).
        throw DecodeError("frame: sequence implausibly far ahead");
      }
      outcome.sequence = frame.sequence;
      outcome.has_sequence = frame.has_sequence;
      if (frame.has_sequence) {
        max_seen_ = any_seen_ ? std::max(max_seen_, frame.sequence)
                              : frame.sequence;
        any_seen_ = true;
      }
      if (frame.has_sequence && already_delivered(frame.sequence)) {
        outcome.status = FrameOutcome::Status::kDuplicate;
      } else {
        const Stopwatch sw(cpu_clock);
        outcome.data = frame_decode(frame, registry_);
        decompress_seconds_ += sw.elapsed();
        if (frame.has_sequence) mark_delivered(frame.sequence);
        outcome.status = FrameOutcome::Status::kOk;
      }
    } catch (const Error& error) {
      // kThrow preserves the seed contract: first corrupt frame aborts the
      // drain, leaving everything behind it on the transport.
      if (config_.policy == RecoveryPolicy::kThrow) throw;
      outcome.status = FrameOutcome::Status::kCorrupt;
      outcome.error = error.what();
    }
    report.frames.push_back(std::move(outcome));
  }

  // Reassemble the intact payloads of THIS drain. Frames carrying sequence
  // numbers (v2) are ordered by sequence so a reordered wire still yields
  // the original byte stream; legacy v1 frames have only arrival order to
  // offer. Blocks recovered by later NACK rounds land in later drains —
  // cross-drain reassembly is the caller's job, keyed by
  // FrameOutcome::sequence.
  std::vector<const FrameOutcome*> intact;
  bool all_sequenced = true;
  for (const FrameOutcome& outcome : report.frames) {
    switch (outcome.status) {
      case FrameOutcome::Status::kOk:
        intact.push_back(&outcome);
        all_sequenced = all_sequenced && outcome.has_sequence;
        break;
      case FrameOutcome::Status::kCorrupt:
        ++report.frames_corrupt;
        break;
      case FrameOutcome::Status::kDuplicate:
        ++report.frames_duplicate;
        break;
    }
  }
  if (all_sequenced) {
    std::sort(intact.begin(), intact.end(),
              [](const FrameOutcome* a, const FrameOutcome* b) {
                return a->sequence < b->sequence;
              });
  }
  for (const FrameOutcome* outcome : intact) {
    report.data.insert(report.data.end(), outcome->data.begin(),
                       outcome->data.end());
    report.bytes_recovered += outcome->data.size();
  }
  report.frames_ok = intact.size();
  report.gaps = current_gaps();

  frames_ += report.frames_ok;
  frames_corrupt_ += report.frames_corrupt;
  frames_duplicate_ += report.frames_duplicate;
  bytes_recovered_ += report.bytes_recovered;
  return report;
}

Bytes AdaptiveReceiver::receive_available() {
  return receive_report().data;
}

std::vector<std::uint64_t> AdaptiveReceiver::take_nacks() {
  std::vector<std::uint64_t> out;
  if (config_.policy != RecoveryPolicy::kNack) return out;
  // Attempt records below the delivery cursor are settled (the sequence
  // arrived after all); dropping them keeps the map bounded by the window.
  nack_attempts_.erase(nack_attempts_.begin(),
                       nack_attempts_.lower_bound(next_contiguous_));
  for (const std::uint64_t seq : current_gaps()) {
    int& attempts = nack_attempts_[seq];
    if (attempts >= config_.nack_retry_cap) continue;  // lost for good
    ++attempts;
    out.push_back(seq);
  }
  return out;
}

std::size_t AdaptiveReceiver::nacks_abandoned() const noexcept {
  std::size_t lost = 0;
  for (const auto& [seq, attempts] : nack_attempts_) {
    if (attempts >= config_.nack_retry_cap && !already_delivered(seq)) ++lost;
  }
  return lost;
}

}  // namespace acex::adaptive
