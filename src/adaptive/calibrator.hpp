#pragma once

#include "adaptive/decision.hpp"
#include "util/bytes.hpp"

namespace acex::adaptive {

/// Per-method measurements the calibration run produced (diagnostics).
struct CalibrationReport {
  DecisionParams params;          ///< the derived constants
  double lz_ratio_percent = 0;    ///< LZ ratio on the calibration sample
  double bw_ratio_percent = 0;    ///< Burrows-Wheeler ratio
  double huffman_ratio_percent = 0;
  double lz_reducing_speed = 0;   ///< bytes removed / s
  double bw_reducing_speed = 0;
  double lz_throughput = 0;       ///< input bytes / s
  double bw_throughput = 0;
};

/// Re-derives the §2.5 decision constants from a small data sample, as the
/// paper prescribes: "these numbers can be tuned easily by sampling even a
/// small piece of data extracted from the original file".
///
/// Derivations (B = block bytes, bw = link speed, r = ratio, thr =
/// compression throughput, S = reducing speed = thr * (1 - r)):
///
///  * alpha — compression pays when B/bw > B/thr + B*r/bw, i.e. when
///    bw < S. In send-time form: send > (B/S), so the ideal alpha is 1;
///    we keep a configurable overlap credit (default 0.83, the paper's)
///    because compression overlaps the previous block's send.
///
///  * beta — Burrows-Wheeler beats LZ when
///    1/thr_bw + r_bw/bw < 1/thr_lz + r_lz/bw
///    <=> bw < (r_lz - r_bw) / (1/thr_bw - 1/thr_lz) =: bw_cross.
///    Expressed against the LZ reduce time: beta = S_lz / bw_cross.
///
///  * ratio_cut — when LZ's sampled ratio is no better than what plain
///    Huffman achieves, the data lacks string repetitions and the cheap
///    method wins: cut at Huffman's measured ratio (clamped to a sane
///    band).
class Calibrator {
 public:
  /// `overlap_credit` multiplies the ideal alpha of 1.0.
  explicit Calibrator(double overlap_credit = 0.83);

  /// Measure the three relevant codecs on `sample` and derive constants.
  /// `base` supplies block/sample sizes and fallbacks. Throws ConfigError
  /// if the sample is too small to measure (< 4 KiB).
  CalibrationReport calibrate(ByteView sample,
                              const DecisionParams& base = {}) const;

 private:
  double overlap_credit_;
};

}  // namespace acex::adaptive
