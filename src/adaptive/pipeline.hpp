#pragma once

#include <functional>
#include <vector>

#include "adaptive/decision.hpp"
#include "adaptive/monitor.hpp"
#include "adaptive/sampler.hpp"
#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "netsim/bandwidth.hpp"
#include "transport/transport.hpp"

namespace acex::adaptive {

/// Configuration of one adaptive stream.
struct AdaptiveConfig {
  DecisionParams decision;

  /// Sample concurrently with sending (the paper forks a child process);
  /// false runs the sampler inline — deterministic, used by tests.
  bool async_sampling = true;

  /// Before any end-to-end measurement exists, assume this accept rate
  /// (bytes/s). A pessimistic default biases the first block toward
  /// compression, like the paper's "reducing speed of first block is
  /// infinity" assumption.
  double initial_bandwidth_Bps = 1e6;

  /// Scales measured CPU times, emulating a slower/faster host than the
  /// build machine (Fig. 4's second CPU; 1.0 = measure as-is).
  double cpu_scale = 1.0;

  /// The end user's "target rate of data transmission" (paper §1 — the one
  /// thing users are expected to express), in ORIGINAL payload bytes per
  /// second; 0 disables. When the estimated effective payload rate of the
  /// break-even method choice (link rate / compression ratio) falls short
  /// of this, the selector escalates to stronger methods until the target
  /// is met — or to the strongest available, best effort.
  double target_rate_Bps = 0;

  /// Invoked with each block's (scaled) compression time. Virtual-time
  /// experiments pass a lambda advancing the VirtualClock so CPU work and
  /// wire time share one timeline; wall-clock runs leave it empty.
  std::function<void(Seconds)> on_cpu_time;
};

/// Everything recorded about one transmitted block — the raw material of
/// Figs. 8–10 (method, compression time, compressed size over time).
struct BlockReport {
  std::size_t index = 0;
  Seconds submitted = 0;       ///< transport-clock time the block entered
  Seconds delivered = 0;       ///< transport-clock time the receiver accepted
  MethodId method = MethodId::kNone;
  std::size_t original_size = 0;
  std::size_t wire_size = 0;       ///< framed bytes actually sent
  Seconds compress_seconds = 0;    ///< (scaled) CPU time spent compressing
  Seconds send_seconds = 0;        ///< end-to-end accept time of the frame
  double sampled_ratio_percent = 100.0;  ///< sampler's view of this block
  double bandwidth_estimate_Bps = 0;     ///< estimate used for the decision
};

/// Aggregate outcome of a whole stream.
struct StreamReport {
  std::vector<BlockReport> blocks;
  std::size_t original_bytes = 0;
  std::size_t wire_bytes = 0;
  Seconds total_seconds = 0;        ///< first submit -> last delivery
  Seconds compress_seconds = 0;     ///< sum of (scaled) compression time

  double compression_share() const noexcept {
    return total_seconds > 0 ? compress_seconds / total_seconds : 0.0;
  }
  double wire_ratio_percent() const noexcept {
    return original_bytes == 0 ? 100.0
                               : 100.0 * static_cast<double>(wire_bytes) /
                                     static_cast<double>(original_bytes);
  }
};

/// The sending half of configurable compression (§2.5's while-loop): takes
/// application data, splits it into blocks, chooses a method per block from
/// live measurements, compresses, frames, ships, and keeps its estimators
/// current. Stateful across calls — bandwidth and reducing-speed knowledge
/// carries over, as in a long-lived middleware stream.
class AdaptiveSender {
 public:
  explicit AdaptiveSender(transport::Transport& transport,
                          AdaptiveConfig config = {});

  /// Stream `data` as blocks; returns per-block reports.
  StreamReport send_all(ByteView data);

  /// Stream `data` with compression overlapped against transmission: while
  /// block i crosses the wire, block i+1 is compressed on a worker task.
  /// This is the deployment mode the paper's alpha < 1 presumes ("the
  /// overlap credit"); per-block decisions use the bandwidth estimate as
  /// of launch, one block staler than send_all's. Only worthwhile on
  /// wall-clock transports — under a VirtualClock, send() consumes no real
  /// time and there is nothing to overlap.
  StreamReport send_all_pipelined(ByteView data);

  /// Send exactly one block (at most block_size bytes). When `next_block`
  /// is non-empty and async sampling is on, its 4 KiB prefix is sampled
  /// concurrently with this block's send — the paper's fork/send/wait
  /// ordering — and consumed by the next call's decision.
  BlockReport send_block(ByteView block, ByteView next_block = {});

  /// Send one block through a fixed method, bypassing the selector (the
  /// non-adaptive baselines, and the building block for paced scenarios).
  BlockReport send_block_fixed(ByteView block, MethodId method);

  /// Force every block through one method — the paper's non-adaptive
  /// baselines ("rather than in the 29.1388 seconds it took without
  /// compression").
  StreamReport send_all_fixed(ByteView data, MethodId method);

  const ReducingSpeedMonitor& monitor() const noexcept { return monitor_; }
  const netsim::BandwidthEstimator& bandwidth() const noexcept {
    return bandwidth_;
  }
  const AdaptiveConfig& config() const noexcept { return config_; }

 private:
  BlockReport transmit_block(ByteView block, MethodId method,
                             double sampled_ratio, double bw_estimate);

  /// Escalate `base` until the user's target payload rate is met (§1).
  MethodId apply_target_rate(MethodId base, double bandwidth_Bps,
                             double sampled_ratio_percent) const noexcept;

  /// Current LZ reducing-speed estimate on the emulated-host scale.
  ///
  /// Block-granularity measurements (from real block compressions) are the
  /// ground truth; 4 KiB sampler timings run severalfold faster than block
  /// compressions (cache effects), so they are never mixed into the same
  /// average — instead the RATIO of the current sample speed to the sample
  /// speed observed at the last LZ block tracks CPU-load drift while the
  /// stream is not compressing.
  double lz_reducing_speed_estimate(std::size_t block_size) const noexcept;

  transport::Transport* transport_;
  AdaptiveConfig config_;
  CodecRegistry registry_ = CodecRegistry::with_builtins();
  ReducingSpeedMonitor monitor_;
  netsim::BandwidthEstimator bandwidth_;
  Sampler sampler_;
  Ewma sample_speed_{0.4};     // real (unscaled) sampler reducing speeds
  double sample_speed_ref_ = 0;  // sample speed when last LZ block ran
  std::size_t blocks_sent_ = 0;
};

/// The receiving half: drains frames from a transport, decodes each with
/// whatever method its header names (no coordination needed — frames are
/// self-describing), verifies CRCs, and reassembles the stream.
class AdaptiveReceiver {
 public:
  explicit AdaptiveReceiver(transport::Transport& transport);

  /// Receive until the transport reports no more messages; returns the
  /// reassembled original data. Throws DecodeError on a corrupt frame.
  Bytes receive_available();

  std::size_t frames_received() const noexcept { return frames_; }

  /// Cumulative wall time spent decompressing received frames — the
  /// receiver-side CPU cost §2.5 folds into its end-to-end view
  /// ("decompression requires the use of receivers' CPU cycles").
  Seconds decompress_seconds() const noexcept { return decompress_seconds_; }

 private:
  transport::Transport* transport_;
  CodecRegistry registry_ = CodecRegistry::with_builtins();
  std::size_t frames_ = 0;
  Seconds decompress_seconds_ = 0;
};

}  // namespace acex::adaptive
