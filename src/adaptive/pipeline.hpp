#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "adaptive/decision.hpp"
#include "adaptive/monitor.hpp"
#include "adaptive/sampler.hpp"
#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "netsim/bandwidth.hpp"
#include "transport/retransmit.hpp"
#include "transport/transport.hpp"

namespace acex::adaptive {

/// Configuration of one adaptive stream.
struct AdaptiveConfig {
  DecisionParams decision;

  /// Sample concurrently with sending (the paper forks a child process);
  /// false runs the sampler inline — deterministic, used by tests.
  bool async_sampling = true;

  /// Before any end-to-end measurement exists, assume this accept rate
  /// (bytes/s). A pessimistic default biases the first block toward
  /// compression, like the paper's "reducing speed of first block is
  /// infinity" assumption.
  double initial_bandwidth_Bps = 1e6;

  /// Scales measured CPU times, emulating a slower/faster host than the
  /// build machine (Fig. 4's second CPU; 1.0 = measure as-is).
  double cpu_scale = 1.0;

  /// The end user's "target rate of data transmission" (paper §1 — the one
  /// thing users are expected to express), in ORIGINAL payload bytes per
  /// second; 0 disables. When the estimated effective payload rate of the
  /// break-even method choice (link rate / compression ratio) falls short
  /// of this, the selector escalates to stronger methods until the target
  /// is met — or to the strongest available, best effort.
  double target_rate_Bps = 0;

  /// Invoked with each block's (scaled) compression time. Virtual-time
  /// experiments pass a lambda advancing the VirtualClock so CPU work and
  /// wire time share one timeline; wall-clock runs leave it empty.
  std::function<void(Seconds)> on_cpu_time;

  /// A block counts as "expanded" (degrading it to the null codec) only
  /// when the framed output exceeds the framed-null size by more than this
  /// many bytes. The slack keeps stored-mode codec output on incompressible
  /// data — a handful of bytes of per-chunk overhead — from masquerading as
  /// a failure; it matches the <= 64-byte tolerance the target-rate
  /// experiments assume.
  std::size_t expansion_slack_bytes = 64;

  /// Circuit breaker: after this many consecutive failures (codec throw or
  /// expanded output) of one method on the adaptive path, the method is
  /// quarantined.
  int breaker_failure_threshold = 3;

  /// How many subsequent blocks a quarantined method sits out before it may
  /// be tried again.
  std::size_t breaker_cooldown_blocks = 16;

  /// How many recent frames the sender keeps for NACK retransmission, and
  /// how often each may be replayed. `retransmit_max_bytes` additionally
  /// bounds the ring by wire bytes (0 = frame count only) — large blocks
  /// at a fixed frame cap would otherwise dodge any memory envelope.
  std::size_t retransmit_capacity = 64;
  int retransmit_max_retries = 3;
  std::size_t retransmit_max_bytes = 0;

  /// Worker threads of the parallel engine (engine::ParallelSender): 1 is
  /// the serial path, 0 asks for one worker per hardware thread, anything
  /// else is taken literally. AdaptiveSender itself ignores this — only
  /// the engine reads it.
  std::size_t worker_threads = 1;

  /// Broker mode: the transport this sender writes to is an internal
  /// egress queue whose accept time says nothing about the subscriber's
  /// actual link, so finish_block() must NOT feed its measured send time
  /// into the bandwidth estimator. The owner measures real link transfers
  /// on the delivery path and reports them via record_bandwidth() instead.
  bool external_bandwidth_feedback = false;

  /// Overload hook: after the selector (and circuit breaker) have chosen a
  /// method, the governor may substitute a cheaper one — the session
  /// layer's degradation ladder plugs in here to trade ratio for CPU under
  /// memory pressure. The returned method passes through the circuit
  /// breaker again (the breaker only ever demotes, so breaker-open cannot
  /// fight a governor downgrade). Never consulted on the fixed baselines.
  /// Must be callable from whichever thread plans blocks for this sender.
  std::function<MethodId(MethodId)> method_governor;
};

/// One block's serial selector outcome: everything the (possibly
/// concurrent) encode step needs, frozen before the next block is planned.
/// Produced by AdaptiveSender::plan_block(), consumed by encode_block()
/// on any thread and finish_block() back on the driver thread.
struct BlockPlan {
  std::uint64_t sequence = 0;        ///< frame sequence (assigned serially)
  MethodId method = MethodId::kNone; ///< selector's choice for this block
  double sampled_ratio_percent = 100.0;
  double bandwidth_estimate_Bps = 0;
  /// False on the fixed-method baselines: no null-codec fallback, no
  /// breaker bookkeeping — "always-BW" must stay BW.
  bool allow_degrade = true;
};

/// What one encode_block() call produced. `framed` is ready for the wire;
/// degradation to the null codec is recorded, never thrown. `failure` is
/// non-null only when degradation was disallowed and the codec raised —
/// the caller rethrows it on the thread that owns error handling.
struct EncodeResult {
  /// Ready-for-the-wire frame bytes as a span-with-owner. On the broker's
  /// shared-encode path every subscriber whose frame is byte-identical
  /// receives the SAME backing buffer (possibly a shared-memory slab), so
  /// the egress queues and retransmit rings downstream share it instead of
  /// copying it per subscriber.
  BufferView framed;
  MethodId method = MethodId::kNone;  ///< method actually framed
  bool fallback = false;              ///< degraded to the null codec
  bool threw = false;                 ///< fallback cause: throw vs expansion
  Seconds encode_seconds = 0;         ///< raw (unscaled) wall-clock CPU time
  std::exception_ptr failure;         ///< set iff !allow_degrade and it threw
};

/// Compress `block` with `method` and wrap it in a v2 frame carrying
/// `sequence` — the per-block encode step, extracted so the parallel
/// engine can run it off-thread.
///
/// Thread safety: touches no shared mutable state. It reads `registry`
/// (safe concurrently once frozen — see CodecRegistry), creates a fresh
/// codec per call (codec instances are not shareable), and writes only
/// its result. Concurrent calls on different blocks are race-free.
///
/// With `allow_degrade`, a codec throw or an expanded output (framed size
/// beyond the framed-null size plus `expansion_slack_bytes`) falls back to
/// the null codec and is reported via `fallback`/`threw`. Without it, a
/// codec throw is captured into `failure` instead (never thrown here, so
/// worker threads stay exception-free).
EncodeResult encode_block(const CodecRegistry& registry, ByteView block,
                          MethodId method, std::uint64_t sequence,
                          std::size_t expansion_slack_bytes,
                          bool allow_degrade = true);

/// One shared (sequence-free) encode of a block: the codec output plus the
/// degradation verdict, WITHOUT the frame envelope. The fan-out broker runs
/// this once per distinct method and then frames the payload once per
/// subscriber with frame_build_seq() — byte-identical payloads across every
/// subscriber that chose the method. The expansion check compares raw
/// payload size against the block plus `expansion_slack_bytes` (the frame
/// envelope around either differs by at most the size-varint width, well
/// inside the slack).
struct PayloadEncode {
  /// Codec output. Owned for real codec output; on the null/fallback path
  /// it BORROWS the input block (zero-copy), so a PayloadEncode must not
  /// outlive the block it was encoded from.
  BufferView payload;
  MethodId method = MethodId::kNone;  ///< method actually encoded
  bool fallback = false;              ///< degraded to the null codec
  bool threw = false;                 ///< fallback cause: throw vs expansion
  Seconds encode_seconds = 0;         ///< raw (unscaled) wall-clock CPU time
};

/// Thread safety: identical to encode_block() — reads a frozen registry,
/// writes only its result. Degradation is always allowed on this path.
PayloadEncode encode_payload(const CodecRegistry& registry, ByteView block,
                             MethodId method,
                             std::size_t expansion_slack_bytes);

/// Sender-side degradation counters (circuit breaker + NACK service),
/// surfaced per block through adaptive/telemetry as well.
struct DegradationStats {
  std::uint64_t codec_failures = 0;  ///< codec threw on the adaptive path
  std::uint64_t expansions = 0;      ///< output larger than the framed null
  std::uint64_t fallbacks = 0;       ///< blocks degraded to the null codec
  std::uint64_t quarantines = 0;     ///< circuit-breaker trips
  std::uint64_t retransmits = 0;     ///< frames replayed on NACK
};

/// Everything recorded about one transmitted block — the raw material of
/// Figs. 8–10 (method, compression time, compressed size over time).
struct BlockReport {
  std::size_t index = 0;
  Seconds submitted = 0;       ///< transport-clock time the block entered
  Seconds delivered = 0;       ///< transport-clock time the receiver accepted
  MethodId method = MethodId::kNone;  ///< method actually on the wire
  MethodId requested_method = MethodId::kNone;  ///< selector's choice
  bool fallback = false;       ///< degraded to the null codec mid-block
  std::size_t original_size = 0;
  std::size_t wire_size = 0;       ///< framed bytes actually sent
  Seconds compress_seconds = 0;    ///< (scaled) CPU time spent compressing
  Seconds send_seconds = 0;        ///< end-to-end accept time of the frame
  double sampled_ratio_percent = 100.0;  ///< sampler's view of this block
  double bandwidth_estimate_Bps = 0;     ///< estimate used for the decision
};

/// Aggregate outcome of a whole stream.
struct StreamReport {
  std::vector<BlockReport> blocks;
  std::size_t original_bytes = 0;
  std::size_t wire_bytes = 0;
  Seconds total_seconds = 0;        ///< first submit -> last delivery
  Seconds compress_seconds = 0;     ///< sum of (scaled) compression time

  double compression_share() const noexcept {
    return total_seconds > 0 ? compress_seconds / total_seconds : 0.0;
  }
  double wire_ratio_percent() const noexcept {
    return original_bytes == 0 ? 100.0
                               : 100.0 * static_cast<double>(wire_bytes) /
                                     static_cast<double>(original_bytes);
  }
};

/// The sending half of configurable compression (§2.5's while-loop): takes
/// application data, splits it into blocks, chooses a method per block from
/// live measurements, compresses, frames, ships, and keeps its estimators
/// current. Stateful across calls — bandwidth and reducing-speed knowledge
/// carries over, as in a long-lived middleware stream.
class AdaptiveSender {
 public:
  explicit AdaptiveSender(transport::Transport& transport,
                          AdaptiveConfig config = {});

  /// Stream `data` as blocks; returns per-block reports.
  StreamReport send_all(ByteView data);

  /// Stream `data` with compression overlapped against transmission: while
  /// block i crosses the wire, block i+1 is compressed on a worker task.
  /// This is the deployment mode the paper's alpha < 1 presumes ("the
  /// overlap credit"); per-block decisions use the bandwidth estimate as
  /// of launch, one block staler than send_all's. Only worthwhile on
  /// wall-clock transports — under a VirtualClock, send() consumes no real
  /// time and there is nothing to overlap.
  StreamReport send_all_pipelined(ByteView data);

  /// Send exactly one block (at most block_size bytes). When `next_block`
  /// is non-empty and async sampling is on, its 4 KiB prefix is sampled
  /// concurrently with this block's send — the paper's fork/send/wait
  /// ordering — and consumed by the next call's decision.
  BlockReport send_block(ByteView block, ByteView next_block = {});

  /// Send one block through a fixed method, bypassing the selector (the
  /// non-adaptive baselines, and the building block for paced scenarios).
  BlockReport send_block_fixed(ByteView block, MethodId method);

  /// Force every block through one method — the paper's non-adaptive
  /// baselines ("rather than in the 29.1388 seconds it took without
  /// compression").
  StreamReport send_all_fixed(ByteView data, MethodId method);

  /// Replay previously sent frames by sequence number from the bounded
  /// retransmit ring (the sender half of the NACK protocol). Returns how
  /// many were actually re-sent; sequences already evicted or out of retry
  /// budget are skipped.
  std::size_t retransmit(const std::vector<std::uint64_t>& sequences);

  /// The sequence number the NEXT planned block will carry — the stream
  /// head a resuming session must catch up to.
  std::uint64_t next_sequence() const noexcept { return blocks_sent_; }

  /// Session resume: re-send every frame in `[from, to)` from the ring,
  /// verbatim and in order, without touching the per-sequence retry
  /// budgets (a resume is not a NACK). All-or-nothing: if ANY sequence in
  /// the range has been evicted, nothing is sent and nullopt is returned —
  /// "resume impossible", and the caller downgrades to a fresh restart.
  /// Returns the number of frames re-sent (0 for an empty range).
  std::optional<std::size_t> replay_range(std::uint64_t from,
                                          std::uint64_t to);

  // --- engine hooks ----------------------------------------------------
  // The parallel engine splits a block send into three steps so the encode
  // can run off-thread while selection and transmission stay serial:
  //   1. plan_block()   — sample, decide, assign the sequence (driver
  //                       thread only; mutates estimator state);
  //   2. encode_block() — free function, any thread, no shared state;
  //   3. finish_block() — bookkeeping + wire transmission (driver thread
  //                       only, called in strictly increasing sequence
  //                       order so frames leave in order).
  // send_block() is exactly plan → encode → finish inline.

  /// Serial selector step: sample (collecting any pending async sample),
  /// choose the method (§2.5 decision + target rate + circuit breaker),
  /// launch sampling of `next_block`, and claim the next sequence number.
  BlockPlan plan_block(ByteView block, ByteView next_block = {});

  /// Like plan_block() for a fixed-method baseline send: no sampling, no
  /// selector, degradation disabled.
  BlockPlan plan_block_fixed(ByteView block, MethodId method);

  /// plan_block() with an externally supplied sample. The fan-out broker
  /// samples each published block ONCE and shares the result across every
  /// subscriber's plan — the sampled ratio is a property of the data, not
  /// of any one link, so per-subscriber sampling would only burn CPU.
  /// Feeds the same drift-tracking EWMA as plan_block(); never launches
  /// the async sampler.
  BlockPlan plan_block_sampled(ByteView block, const SampleResult& sample);

  /// Broker mode (AdaptiveConfig::external_bandwidth_feedback): report one
  /// measured link transfer of `bytes` over `elapsed` seconds into the
  /// bandwidth estimator. Call from the thread that owns this sender's
  /// state (the broker serializes on a per-subscriber lock).
  void record_bandwidth(std::size_t bytes, Seconds elapsed) noexcept {
    bandwidth_.record(bytes, elapsed);
  }

  /// Complete one encoded block: degradation/breaker bookkeeping, monitor
  /// and bandwidth updates, transmission on the transport, retransmit-ring
  /// storage. Must be called from one thread in sequence order. Rethrows
  /// `encoded.failure` when set (fixed-method sends surface codec errors
  /// here, on the driver thread).
  BlockReport finish_block(const BlockPlan& plan, std::size_t original_size,
                           EncodeResult encoded);

  /// Forget every adaptation measurement — reducing-speed monitor,
  /// bandwidth estimate, sampler-drift EWMAs — while keeping sequence
  /// numbering, the retransmit ring, and breaker state intact. This is the
  /// per-block-reset ("no context takeover") streaming mode: each block is
  /// planned as if it were the first, the way a peer that negotiated
  /// context_takeover=false must be treated.
  void reset_adaptation() noexcept;

  const ReducingSpeedMonitor& monitor() const noexcept { return monitor_; }
  const netsim::BandwidthEstimator& bandwidth() const noexcept {
    return bandwidth_;
  }
  const AdaptiveConfig& config() const noexcept { return config_; }
  const DegradationStats& degradation() const noexcept { return degradation_; }
  const transport::RetransmitRing& retransmit_ring() const noexcept {
    return ring_;
  }

  /// The sender's codec registry. Mutable so applications (and the fault
  /// tests) can swap in custom codecs — the degradation path guarantees a
  /// misbehaving one cannot take the stream down.
  CodecRegistry& registry() noexcept { return registry_; }

 private:
  /// plan → encode → finish on the calling thread.
  BlockReport transmit_planned(const BlockPlan& plan, ByteView block);

  /// Shared tail of plan_block()/plan_block_sampled(): fold the sample into
  /// the estimators, run the selector, claim the sequence.
  BlockPlan plan_from_sample(ByteView block, const SampleResult& sample);

  /// Sum a finished block list into the stream-level totals.
  static void finalize_stream(StreamReport& stream);

  /// Demote a quarantined method down the ladder (circuit breaker open).
  MethodId apply_circuit_breaker(MethodId method) const noexcept;

  void note_codec_failure(MethodId method);
  void note_codec_success(MethodId method) noexcept;

  /// Escalate `base` until the user's target payload rate is met (§1).
  /// Only composed with the kBandwidth policy — the other policies consume
  /// the target through SelectionInputs instead.
  MethodId apply_target_rate(MethodId base, double bandwidth_Bps,
                             double sampled_ratio_percent) const noexcept;

  /// Expected compressed/original ratio of one ladder method: monitored
  /// achievement when available, the sampler's LZ view (scaled for BW's
  /// Fig. 2 edge) and conservative constants otherwise. Shared by the
  /// target-rate escalator and the multi-objective estimate builder.
  double expected_ratio(MethodId method, double lz_ratio) const noexcept;

  /// Per-ladder-rung (ratio, CPU) expectations for a block of `block_size`
  /// bytes — what the scored policies consume. CPU expectations come from
  /// the monitor's measured throughputs, falling back to the LZ reducing-
  /// speed estimate scaled by Fig. 1's static relative time ratings;
  /// unknown stays 0 (optimistic, the first-block-infinity rule).
  std::array<MethodEstimate, kDecisionLadder.size()> estimate_ladder(
      std::size_t block_size, double sampled_ratio_percent) const noexcept;

  /// Current LZ reducing-speed estimate on the emulated-host scale.
  ///
  /// Block-granularity measurements (from real block compressions) are the
  /// ground truth; 4 KiB sampler timings run severalfold faster than block
  /// compressions (cache effects), so they are never mixed into the same
  /// average — instead the RATIO of the current sample speed to the sample
  /// speed observed at the last LZ block tracks CPU-load drift while the
  /// stream is not compressing.
  double lz_reducing_speed_estimate(std::size_t block_size) const noexcept;

  transport::Transport* transport_;
  AdaptiveConfig config_;
  CodecRegistry registry_ = CodecRegistry::with_builtins();
  ReducingSpeedMonitor monitor_;
  netsim::BandwidthEstimator bandwidth_;
  Sampler sampler_;
  Ewma sample_speed_{0.4};     // real (unscaled) sampler reducing speeds
  double sample_speed_ref_ = 0;  // sample speed when last LZ block ran
  std::size_t blocks_sent_ = 0;

  struct MethodHealth {
    int consecutive_failures = 0;
    std::size_t quarantined_until = 0;  // block index the cooldown ends at
    // Half-open: the first post-cooldown block is a probe. One probe
    // failure re-trips the breaker immediately; one success closes it.
    bool probation = false;
  };
  std::map<MethodId, MethodHealth> health_;
  DegradationStats degradation_;
  transport::RetransmitRing ring_{64, 3};
};

/// What the receiver does when a frame off the wire is damaged.
enum class RecoveryPolicy {
  /// Throw DecodeError on the first corrupt frame, discarding everything
  /// queued behind it — the seed behaviour, and the default.
  kThrow,
  /// Quarantine the bad frame, keep draining, and report per-frame
  /// outcomes: the stream survives with a gap.
  kSkip,
  /// Like kSkip, and additionally track missing/corrupt sequence numbers
  /// for upstream NACK signalling (take_nacks() + AdaptiveSender::
  /// retransmit()).
  kNack,
};

struct ReceiverConfig {
  RecoveryPolicy policy = RecoveryPolicy::kThrow;
  /// kNack: how many times one missing sequence may be requested before
  /// the receiver gives it up as lost.
  int nack_retry_cap = 3;
  /// A v2 frame whose sequence lies further than this ahead of the next
  /// undelivered sequence is rejected as corrupt. The 1-byte header
  /// checksum lets ~1/256 of random corruptions through, and one forged
  /// sequence near UINT64_MAX would otherwise make gap tracking scan an
  /// astronomical range. Keep it >= the sender's retransmit_capacity —
  /// sequences past the window could never be replayed anyway.
  std::uint64_t gap_window = 1024;
};

/// One received frame's fate, as judged by the recovery machinery.
struct FrameOutcome {
  enum class Status {
    kOk,         ///< parsed, decoded, CRC verified — payload recovered
    kCorrupt,    ///< failed somewhere between parse and CRC; quarantined
    kDuplicate,  ///< sequence number already delivered; dropped
  };
  Status status = Status::kOk;
  MethodId method = MethodId::kNone;
  std::uint64_t sequence = 0;
  bool has_sequence = false;   ///< v2 frame whose header survived parsing
  std::size_t wire_size = 0;   ///< bytes as received off the transport
  Bytes data;                  ///< decoded payload (kOk only)
  std::string error;           ///< decode failure message (kCorrupt only)
};

/// Everything one receive_report() drain learned, for callers that need
/// more than the happy-path byte stream.
struct ReceiveReport {
  /// Intact payloads of this drain, reassembled in sequence order (v2) or
  /// arrival order (v1 frames carry no sequence). The ordering holds
  /// WITHIN one drain only: under kNack, retransmitted blocks surface in
  /// later drains, so concatenating `data` across drains interleaves
  /// out-of-order bytes — cross-drain reassembly must key blocks by
  /// FrameOutcome::sequence instead.
  Bytes data;
  std::vector<FrameOutcome> frames;
  /// Sequence numbers believed missing after this drain: dropped upstream,
  /// corrupted beyond use, or still in flight.
  std::vector<std::uint64_t> gaps;
  std::size_t frames_ok = 0;
  std::size_t frames_corrupt = 0;
  std::size_t frames_duplicate = 0;
  std::size_t bytes_recovered = 0;  ///< sum of intact payload bytes
};

/// The receiving half: drains frames from a transport, decodes each with
/// whatever method its header names (no coordination needed — frames are
/// self-describing), verifies CRCs, and reassembles the stream. The
/// recovery policy decides what a damaged frame costs: the whole drain
/// (kThrow), one block (kSkip), or nothing once the NACK round-trip has
/// replayed it (kNack).
class AdaptiveReceiver {
 public:
  explicit AdaptiveReceiver(transport::Transport& transport,
                            ReceiverConfig config = {});

  /// Receive until the transport reports no more messages; returns the
  /// reassembled original data. Under kThrow this throws DecodeError on a
  /// corrupt frame; under kSkip/kNack it returns whatever was intact.
  Bytes receive_available();

  /// Like receive_available(), with per-frame outcomes, the current gap
  /// list, and recovery counters.
  ReceiveReport receive_report();

  /// kNack: sequences to request from the sender, respecting the retry
  /// cap; each call counts one attempt against every sequence returned.
  /// Empty when nothing is missing or everything missing is past the cap.
  std::vector<std::uint64_t> take_nacks();

  /// Missing sequences the NACK retry cap has exhausted — lost for good.
  std::size_t nacks_abandoned() const noexcept;

  /// The lowest sequence not yet delivered contiguously — what a session
  /// resume asks the sender to replay from (`resume_from`).
  std::uint64_t next_expected() const noexcept { return next_contiguous_; }

  /// Point this receiver at a new transport, keeping every piece of
  /// sequence/gap/NACK state. A reconnecting session client rebinds its
  /// receiver to the fresh link so the resumed stream continues exactly
  /// where the dropped one stopped. `transport` must outlive the receiver.
  void rebind(transport::Transport& transport) noexcept {
    transport_ = &transport;
  }

  std::size_t frames_received() const noexcept { return frames_; }
  std::size_t frames_corrupt() const noexcept { return frames_corrupt_; }
  std::size_t frames_duplicate() const noexcept { return frames_duplicate_; }
  std::uint64_t bytes_recovered() const noexcept { return bytes_recovered_; }
  const ReceiverConfig& config() const noexcept { return config_; }

  /// Cumulative wall time spent decompressing received frames — the
  /// receiver-side CPU cost §2.5 folds into its end-to-end view
  /// ("decompression requires the use of receivers' CPU cycles").
  Seconds decompress_seconds() const noexcept { return decompress_seconds_; }

  /// The receiver's codec registry. Mutable for the same reason as the
  /// sender's: application codecs (FloatQuantCodec, the colpipe columnar
  /// codec) are opt-in on BOTH ends, so receivers must be able to register
  /// the ids their peer negotiated.
  CodecRegistry& registry() noexcept { return registry_; }

 private:
  bool already_delivered(std::uint64_t seq) const noexcept;
  void mark_delivered(std::uint64_t seq);
  std::vector<std::uint64_t> current_gaps() const;

  transport::Transport* transport_;
  ReceiverConfig config_;
  CodecRegistry registry_ = CodecRegistry::with_builtins();
  std::size_t frames_ = 0;
  std::size_t frames_corrupt_ = 0;
  std::size_t frames_duplicate_ = 0;
  std::uint64_t bytes_recovered_ = 0;
  Seconds decompress_seconds_ = 0;

  // Sequence tracking (v2 frames): everything below next_contiguous_ is
  // delivered; delivered_ahead_ holds out-of-order deliveries above it.
  std::uint64_t next_contiguous_ = 0;
  std::set<std::uint64_t> delivered_ahead_;
  std::uint64_t max_seen_ = 0;   ///< highest sequence observed on the wire
  bool any_seen_ = false;
  std::map<std::uint64_t, int> nack_attempts_;
};

}  // namespace acex::adaptive
