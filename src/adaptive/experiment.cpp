#include "adaptive/experiment.hpp"

#include <algorithm>

#include "transport/sim_transport.hpp"

namespace acex::adaptive {
namespace {

/// Wire one scenario: loaded forward link, clean reverse link, one virtual
/// clock, CPU time charged onto that clock.
struct Scenario {
  VirtualClock clock;
  netsim::SimLink forward;
  netsim::SimLink reverse;
  transport::SimDuplex duplex;

  explicit Scenario(const ExperimentConfig& config)
      : forward(config.link, config.seed),
        reverse(config.reverse_link, config.seed + 1),
        duplex(forward, reverse, clock) {
    if (!config.background.points().empty()) {
      forward.set_background(&config.background);
    }
  }
};

AdaptiveConfig wire_cpu_clock(AdaptiveConfig adaptive, VirtualClock& clock) {
  adaptive.on_cpu_time = [&clock](Seconds t) { clock.advance(t); };
  return adaptive;
}

ExperimentResult finish(std::string policy, StreamReport stream,
                        ByteView data, transport::SimHalf& receiver_end,
                        double cpu_scale) {
  ExperimentResult result;
  result.policy = std::move(policy);
  result.stream = std::move(stream);
  AdaptiveReceiver receiver(receiver_end);
  const Bytes restored = receiver.receive_available();
  result.receiver_decompress_seconds =
      receiver.decompress_seconds() / cpu_scale;
  result.verified = restored.size() == data.size() &&
                    std::equal(restored.begin(), restored.end(), data.begin());
  return result;
}

}  // namespace

namespace {

/// Shared driver: optionally paced, adaptive (`method` empty) or fixed.
StreamReport drive_stream(ByteView data, const ExperimentConfig& config,
                          Scenario& scenario,
                          std::optional<MethodId> method) {
  AdaptiveConfig adaptive = wire_cpu_clock(config.adaptive, scenario.clock);
  if (!config.context_takeover) {
    // Same pin a context_takeover=false handshake applies: every block is
    // planned from a fresh inline sample, never from carried-over state.
    adaptive.async_sampling = false;
  }
  AdaptiveSender sender(scenario.duplex.a(), adaptive);
  if (config.context_takeover) {
    if (config.pace <= 0 && !method) return sender.send_all(data);
    if (config.pace <= 0 && method) {
      return sender.send_all_fixed(data, *method);
    }
  }

  StreamReport stream;
  const std::size_t block_size = adaptive.decision.block_size;
  std::size_t index = 0;
  for (std::size_t off = 0; off < data.size(); off += block_size, ++index) {
    if (config.pace > 0) {
      scenario.clock.advance_to(static_cast<double>(index) * config.pace);
    }
    if (!config.context_takeover) sender.reset_adaptation();
    const std::size_t len = std::min(block_size, data.size() - off);
    const std::size_t next_off = off + len;
    const ByteView next =
        next_off < data.size()
            ? data.subspan(next_off,
                           std::min(block_size, data.size() - next_off))
            : ByteView{};
    stream.blocks.push_back(
        method ? sender.send_block_fixed(data.subspan(off, len), *method)
               : sender.send_block(data.subspan(off, len), next));
  }
  for (const auto& b : stream.blocks) {
    stream.original_bytes += b.original_size;
    stream.wire_bytes += b.wire_size;
    stream.compress_seconds += b.compress_seconds;
  }
  if (!stream.blocks.empty()) {
    stream.total_seconds =
        stream.blocks.back().delivered - stream.blocks.front().submitted +
        stream.blocks.front().compress_seconds;
  }
  return stream;
}

}  // namespace

ExperimentResult run_adaptive(ByteView data, const ExperimentConfig& config) {
  Scenario scenario(config);
  StreamReport stream = drive_stream(data, config, scenario, std::nullopt);
  return finish("adaptive", std::move(stream), data, scenario.duplex.b(),
                config.adaptive.cpu_scale);
}

ExperimentResult run_fixed(ByteView data, const ExperimentConfig& config,
                           MethodId method) {
  Scenario scenario(config);
  StreamReport stream = drive_stream(data, config, scenario, method);
  return finish(std::string(method_name(method)), std::move(stream), data,
                scenario.duplex.b(), config.adaptive.cpu_scale);
}

double cpu_scale_for_lz_speed(ByteView sample, double target_reducing_Bps) {
  // Measure at the granularity the sender charges: full 128 KiB block
  // compressions (4 KiB probes run severalfold faster per byte and would
  // skew the scale). Fastest-of-three over a few offsets.
  constexpr std::size_t kBlock = 128 * 1024;
  const std::size_t usable = sample.size() >= kBlock ? sample.size() : 0;
  if (usable == 0) {
    // Tiny calibration corpus: fall back to whatever fits.
    Sampler probe(std::max<std::size_t>(sample.size(), 1));
    const SampleResult s = probe.sample(sample);
    return s.reducing_speed > 0 ? target_reducing_Bps / s.reducing_speed
                                : 1.0;
  }
  MonotonicClock clock;
  LempelZivCodec lz;
  double speed_sum = 0;
  int speeds = 0;
  const std::size_t step =
      std::max<std::size_t>((usable - kBlock) / 3 + 1, 1);
  for (std::size_t off = 0; off + kBlock <= usable && speeds < 4;
       off += step) {
    const ByteView block = sample.subspan(off, kBlock);
    Seconds best = 1e9;
    std::size_t packed_size = kBlock;
    for (int run = 0; run < 3; ++run) {
      const Stopwatch sw(clock);
      packed_size = lz.compress(block).size();
      best = std::min(best, sw.elapsed());
    }
    if (packed_size < kBlock && best > 0) {
      speed_sum += static_cast<double>(kBlock - packed_size) / best;
      ++speeds;
    }
  }
  if (speeds == 0) return 1.0;  // incompressible: scaling is moot
  return target_reducing_Bps / (speed_sum / speeds);
}

std::vector<ExperimentResult> run_policy_comparison(
    ByteView data, const ExperimentConfig& config) {
  std::vector<ExperimentResult> results;
  results.push_back(run_adaptive(data, config));
  for (const MethodId method :
       {MethodId::kNone, MethodId::kLempelZiv, MethodId::kBurrowsWheeler}) {
    results.push_back(run_fixed(data, config, method));
  }
  return results;
}

}  // namespace acex::adaptive
