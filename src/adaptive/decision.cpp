#include "adaptive/decision.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acex::adaptive {

std::string_view policy_name(DecisionPolicy policy) noexcept {
  switch (policy) {
    case DecisionPolicy::kBandwidth:
      return "bandwidth";
    case DecisionPolicy::kCpuEfficiency:
      return "cpu-efficiency";
    case DecisionPolicy::kEnergyProxy:
      return "energy-proxy";
    case DecisionPolicy::kTargetRate:
      return "target-rate";
  }
  return "?";
}

bool known_policy(std::uint64_t raw) noexcept {
  switch (raw) {
    case static_cast<std::uint64_t>(DecisionPolicy::kBandwidth):
    case static_cast<std::uint64_t>(DecisionPolicy::kCpuEfficiency):
    case static_cast<std::uint64_t>(DecisionPolicy::kEnergyProxy):
    case static_cast<std::uint64_t>(DecisionPolicy::kTargetRate):
      return true;
    default:
      return false;
  }
}

const std::vector<DecisionPolicy>& all_policies() {
  static const std::vector<DecisionPolicy> kAll = {
      DecisionPolicy::kBandwidth, DecisionPolicy::kCpuEfficiency,
      DecisionPolicy::kEnergyProxy, DecisionPolicy::kTargetRate};
  return kAll;
}

std::size_t decision_ladder_rung(MethodId method) noexcept {
  for (std::size_t i = 0; i < kDecisionLadder.size(); ++i) {
    if (kDecisionLadder[i] == method) return i;
  }
  return kDecisionLadder.size();
}

void DecisionParams::validate() const {
  if (!(alpha > 0) || !(beta > 0) || beta < alpha) {
    throw ConfigError("decision: need 0 < alpha <= beta");
  }
  if (!(ratio_cut_percent > 0) || ratio_cut_percent > 100) {
    throw ConfigError("decision: ratio_cut_percent must be in (0, 100]");
  }
  if (block_size == 0 || sample_size == 0 || sample_size > block_size) {
    throw ConfigError("decision: need 0 < sample_size <= block_size");
  }
  if (!known_policy(static_cast<std::uint64_t>(policy))) {
    throw ConfigError("decision: unknown policy id");
  }
  if (min_saving_per_cpu_us < 0) {
    throw ConfigError("decision: min_saving_per_cpu_us must be >= 0");
  }
  if (energy_cpu_weight < 0 || energy_wire_weight < 0) {
    throw ConfigError("decision: energy weights must be >= 0");
  }
}

MethodId decide(const SelectionInputs& inputs, const DecisionParams& params) {
  params.validate();
  if (inputs.send_seconds > params.alpha * inputs.lz_reduce_seconds) {
    if (inputs.sampled_ratio_percent < params.ratio_cut_percent) {
      if (inputs.send_seconds > params.beta * inputs.lz_reduce_seconds) {
        return MethodId::kBurrowsWheeler;
      }
      return MethodId::kLempelZiv;
    }
    return MethodId::kHuffman;
  }
  return MethodId::kNone;
}

namespace {

// kTargetRate's qualifying band must dominate every non-qualifying
// effective rate: rates are capped below kQualifiedBase, and qualifying
// utilities live at kQualifiedBase minus the (comparatively tiny) CPU time.
constexpr double kRateCap = 1e18;
constexpr double kQualifiedBase = 1e19;

}  // namespace

double policy_utility(const SelectionInputs& inputs,
                      const DecisionParams& params, std::size_t rung) {
  if (rung >= kDecisionLadder.size()) {
    throw ConfigError("decision: utility rung out of range");
  }
  const MethodEstimate& est = inputs.estimates[rung];
  const double block = static_cast<double>(inputs.block_bytes);
  const double saved = block * (1.0 - est.ratio);
  const Seconds cpu = est.encode_seconds;
  switch (params.policy) {
    case DecisionPolicy::kCpuEfficiency: {
      // Net bytes saved after charging CPU time at the opportunity-cost
      // floor: a candidate beats kNone (utility 0) exactly when its
      // saving rate exceeds min_saving_per_cpu_us. Unknown CPU (0) is
      // optimistic, matching the paper's first-block infinity rule.
      const double floor_Bps = params.min_saving_per_cpu_us * 1e6;
      return saved - floor_Bps * cpu;
    }
    case DecisionPolicy::kEnergyProxy:
      // Lower proxy energy = higher utility. kNone costs exactly the wire.
      return -(params.energy_cpu_weight * cpu +
               params.energy_wire_weight * block * est.ratio);
    case DecisionPolicy::kTargetRate: {
      // Effective original-payload rate: the link drained at bw/ratio,
      // additionally capped by encode throughput block/cpu.
      double rate = est.ratio > 0 ? inputs.bandwidth_Bps / est.ratio
                                  : kRateCap;
      if (cpu > 0) rate = std::min(rate, block / cpu);
      rate = std::min(rate, kRateCap);
      const bool qualifies =
          inputs.target_rate_Bps <= 0 || rate >= inputs.target_rate_Bps;
      // Qualifiers race on (minus) CPU above every non-qualifier; the rest
      // race on best-effort rate.
      return qualifies ? kQualifiedBase - cpu : rate;
    }
    case DecisionPolicy::kBandwidth:
      break;
  }
  throw ConfigError("decision: kBandwidth is rule-based, not scored");
}

MethodId decide_policy(const SelectionInputs& inputs,
                       const DecisionParams& params) {
  params.validate();
  if (params.policy == DecisionPolicy::kBandwidth) {
    return decide(inputs, params);
  }
  // Argmax over the ladder; ties break toward the weaker method (strictly
  // greater to displace), so the null codec wins whenever nothing
  // measurably beats it.
  std::size_t best = 0;
  double best_utility = policy_utility(inputs, params, 0);
  for (std::size_t rung = 1; rung < kDecisionLadder.size(); ++rung) {
    const double utility = policy_utility(inputs, params, rung);
    if (utility > best_utility) {
      best = rung;
      best_utility = utility;
    }
  }
  return kDecisionLadder[best];
}

std::string_view rating_name(Rating r) noexcept {
  switch (r) {
    case Rating::kPoor:
      return "Poor";
    case Rating::kSatisfactory:
      return "Satisfactory";
    case Rating::kGood:
      return "Good";
    case Rating::kExcellent:
      return "Excellent";
  }
  return "?";
}

const std::vector<MethodProfile>& figure1_table() {
  using enum Rating;
  static const std::vector<MethodProfile> kTable = {
      // method, string reps, low entropy, efficiency, t_comp, t_decomp, global
      {MethodId::kBurrowsWheeler, kExcellent, kExcellent, kExcellent, kPoor,
       kSatisfactory, kPoor},
      {MethodId::kLempelZiv, kExcellent, kPoor, kGood, kSatisfactory,
       kExcellent, kGood},
      {MethodId::kArithmetic, kPoor, kExcellent, kPoor, kPoor, kPoor, kPoor},
      {MethodId::kHuffman, kPoor, kExcellent, kPoor, kExcellent, kExcellent,
       kExcellent},
  };
  return kTable;
}

Rating bucket_rating(double value, double best, double worst,
                     bool higher_is_better) {
  if (!higher_is_better) {
    // Map to a "bigger is better" scale by negating ranks via swap.
    std::swap(best, worst);
  }
  if (best == worst) return Rating::kGood;
  // Position of `value` between worst (0) and best (1) on a log scale when
  // the spread warrants it, linear otherwise.
  double t;
  if (value > 0 && best > 0 && worst > 0 &&
      (best / worst > 8 || worst / best > 8)) {
    t = (std::log(value) - std::log(worst)) /
        (std::log(best) - std::log(worst));
  } else {
    t = (value - worst) / (best - worst);
  }
  t = std::clamp(t, 0.0, 1.0);
  if (t >= 0.85) return Rating::kExcellent;
  if (t >= 0.55) return Rating::kGood;
  if (t >= 0.25) return Rating::kSatisfactory;
  return Rating::kPoor;
}

}  // namespace acex::adaptive
