#include "adaptive/decision.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acex::adaptive {

void DecisionParams::validate() const {
  if (!(alpha > 0) || !(beta > 0) || beta < alpha) {
    throw ConfigError("decision: need 0 < alpha <= beta");
  }
  if (!(ratio_cut_percent > 0) || ratio_cut_percent > 100) {
    throw ConfigError("decision: ratio_cut_percent must be in (0, 100]");
  }
  if (block_size == 0 || sample_size == 0 || sample_size > block_size) {
    throw ConfigError("decision: need 0 < sample_size <= block_size");
  }
}

MethodId decide(const SelectionInputs& inputs, const DecisionParams& params) {
  params.validate();
  if (inputs.send_seconds > params.alpha * inputs.lz_reduce_seconds) {
    if (inputs.sampled_ratio_percent < params.ratio_cut_percent) {
      if (inputs.send_seconds > params.beta * inputs.lz_reduce_seconds) {
        return MethodId::kBurrowsWheeler;
      }
      return MethodId::kLempelZiv;
    }
    return MethodId::kHuffman;
  }
  return MethodId::kNone;
}

std::string_view rating_name(Rating r) noexcept {
  switch (r) {
    case Rating::kPoor:
      return "Poor";
    case Rating::kSatisfactory:
      return "Satisfactory";
    case Rating::kGood:
      return "Good";
    case Rating::kExcellent:
      return "Excellent";
  }
  return "?";
}

const std::vector<MethodProfile>& figure1_table() {
  using enum Rating;
  static const std::vector<MethodProfile> kTable = {
      // method, string reps, low entropy, efficiency, t_comp, t_decomp, global
      {MethodId::kBurrowsWheeler, kExcellent, kExcellent, kExcellent, kPoor,
       kSatisfactory, kPoor},
      {MethodId::kLempelZiv, kExcellent, kPoor, kGood, kSatisfactory,
       kExcellent, kGood},
      {MethodId::kArithmetic, kPoor, kExcellent, kPoor, kPoor, kPoor, kPoor},
      {MethodId::kHuffman, kPoor, kExcellent, kPoor, kExcellent, kExcellent,
       kExcellent},
  };
  return kTable;
}

Rating bucket_rating(double value, double best, double worst,
                     bool higher_is_better) {
  if (!higher_is_better) {
    // Map to a "bigger is better" scale by negating ranks via swap.
    std::swap(best, worst);
  }
  if (best == worst) return Rating::kGood;
  // Position of `value` between worst (0) and best (1) on a log scale when
  // the spread warrants it, linear otherwise.
  double t;
  if (value > 0 && best > 0 && worst > 0 &&
      (best / worst > 8 || worst / best > 8)) {
    t = (std::log(value) - std::log(worst)) /
        (std::log(best) - std::log(worst));
  } else {
    t = (value - worst) / (best - worst);
  }
  t = std::clamp(t, 0.0, 1.0);
  if (t >= 0.85) return Rating::kExcellent;
  if (t >= 0.55) return Rating::kGood;
  if (t >= 0.25) return Rating::kSatisfactory;
  return Rating::kPoor;
}

}  // namespace acex::adaptive
