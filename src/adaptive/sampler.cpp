#include "adaptive/sampler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acex::adaptive {
namespace {

SampleResult run_sample(ByteView prefix) {
  SampleResult result;
  result.sample_bytes = prefix.size();
  if (prefix.empty()) return result;

  // Sub-millisecond one-shot timings of a 4 KiB compression are dominated
  // by cache state and timer noise; take the fastest of three runs, the
  // standard microbenchmark estimator of attainable speed.
  MonotonicClock clock;
  LempelZivCodec lz;
  Bytes packed;
  Seconds best = 1e9;
  for (int run = 0; run < 3; ++run) {
    const Stopwatch sw(clock);
    packed = lz.compress(prefix);
    best = std::min(best, sw.elapsed());
    if (best > 0.005) break;  // big samples: one timing is accurate enough
  }
  result.elapsed = std::max(best, 1e-9);  // avoid divide-by-zero

  result.ratio_percent = 100.0 * static_cast<double>(packed.size()) /
                         static_cast<double>(prefix.size());
  result.throughput = static_cast<double>(prefix.size()) / result.elapsed;
  if (packed.size() < prefix.size()) {
    result.reducing_speed =
        static_cast<double>(prefix.size() - packed.size()) / result.elapsed;
  }
  return result;
}

}  // namespace

Sampler::Sampler(std::size_t prefix_size) : prefix_size_(prefix_size) {
  if (prefix_size == 0) throw ConfigError("sampler: prefix_size must be > 0");
}

SampleResult Sampler::sample(ByteView block) const {
  return run_sample(block.subspan(0, std::min(prefix_size_, block.size())));
}

void Sampler::launch(ByteView block) {
  const auto prefix = block.subspan(0, std::min(prefix_size_, block.size()));
  Bytes copy(prefix.begin(), prefix.end());
  future_ = std::async(std::launch::async, [copy = std::move(copy)] {
    return run_sample(copy);
  });
}

std::optional<SampleResult> Sampler::wait() {
  if (!future_.valid()) return std::nullopt;
  return future_.get();
}

}  // namespace acex::adaptive
