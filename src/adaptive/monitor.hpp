#pragma once

#include <map>

#include "compress/codec.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"

namespace acex::adaptive {

/// Tracks each method's *reducing speed* — "the number of bytes per second
/// by which a CPU can reduce data" (Fig. 4) — from live measurements:
/// "This speed is measured continually, as subsequent blocks of data are
/// compressed" (§2.5). CPU load changes (other processes stealing cycles)
/// show up automatically because the measurements are wall-time.
class ReducingSpeedMonitor {
 public:
  /// `alpha` is the EWMA weight of the newest measurement.
  explicit ReducingSpeedMonitor(double alpha = 0.4);

  /// Record one compression: `original` bytes became `compressed` in
  /// `elapsed` seconds with `method`. Expanding or instant runs contribute
  /// a zero reducing-speed sample (compression achieved nothing).
  void record(MethodId method, std::size_t original, std::size_t compressed,
              Seconds elapsed);

  /// Smoothed reducing speed (bytes removed / second); `fallback` until the
  /// first sample of that method.
  double reducing_speed_or(MethodId method, double fallback) const noexcept;

  /// Seconds the method would need to reduce a block of `block_size` bytes;
  /// 0 when no measurement exists yet — the paper's "assume the reducing
  /// size speed of first block is infinity".
  Seconds reduce_seconds(MethodId method, std::size_t block_size) const noexcept;

  /// Smoothed compression throughput (input bytes / second).
  double throughput_or(MethodId method, double fallback) const noexcept;

  /// Smoothed achieved compression ratio (compressed/original, in 0..1],
  /// derived from the reducing-speed and throughput series:
  /// ratio = 1 - reducing_speed / throughput. `fallback` until sampled.
  double ratio_or(MethodId method, double fallback) const noexcept;

  bool has_sample(MethodId method) const noexcept;
  std::size_t sample_count(MethodId method) const noexcept;

  void reset() noexcept { perMethod_.clear(); }

 private:
  struct Series {
    Ewma reducing;
    Ewma throughput;
    std::size_t samples = 0;
    explicit Series(double alpha) : reducing(alpha), throughput(alpha) {}
  };

  Series& series(MethodId method);

  double alpha_;
  std::map<MethodId, Series> perMethod_;
};

}  // namespace acex::adaptive
