#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "adaptive/pipeline.hpp"
#include "session/deadline.hpp"
#include "session/reconnect.hpp"
#include "session/wire.hpp"
#include "util/clock.hpp"

namespace acex::session {

struct ClientConfig {
  ReconnectConfig reconnect;
  /// Cadence of make_heartbeat(); the server's advisory interval from
  /// ConnectResult normally overwrites this at on_connected().
  Seconds heartbeat_interval = 0.5;
  adaptive::ReceiverConfig receiver{adaptive::RecoveryPolicy::kNack};
};

/// The subscriber's half of a durable session: owns the AdaptiveReceiver
/// (whose sequence cursor IS the resume cursor), schedules heartbeats on a
/// Deadline, and paces reconnect attempts through a ReconnectPolicy. The
/// harness/app drives it: this class builds control messages and tracks
/// state but never touches a socket itself.
class SessionClient {
 public:
  explicit SessionClient(const Clock& clock, ClientConfig config = {},
                         std::uint64_t seed = 1);

  /// Server accepted the session: bind the receive transport, adopt the
  /// advisory heartbeat interval (when positive), start the heartbeat
  /// schedule. Creates a FRESH receiver — a connect is a new stream.
  void on_connected(std::uint64_t session_id, std::uint64_t token,
                    transport::Transport& rx,
                    Seconds heartbeat_interval = 0);

  /// Link declared dead: stop heartbeating, start the backoff schedule.
  /// The receiver (and its cursor) is kept — that is the whole point.
  void on_dropped();

  /// Server resumed this session: rebind the receiver to the new link and
  /// reset the backoff for the next incident. Pass the (possibly fresh)
  /// token the server handed back.
  void on_resumed(transport::Transport& rx, std::uint64_t token);

  /// Delay before the next reconnect attempt; nullopt when the policy has
  /// exhausted its attempts and the session should be abandoned.
  std::optional<Seconds> next_retry_delay();

  /// First sequence this client still needs — what resume() replays from.
  std::uint64_t resume_from() const;

  /// True when the heartbeat schedule says one is due (connected only).
  bool heartbeat_due() const;

  /// Build one wire-encoded heartbeat and re-arm the schedule.
  Bytes make_heartbeat();

  /// Build a wire-encoded resume request for the current cursor.
  Bytes make_resume() const;

  /// Build a wire-encoded orderly-departure notice.
  Bytes make_bye() const;

  bool connected() const noexcept { return connected_; }
  std::uint64_t session_id() const noexcept { return session_id_; }
  std::uint64_t token() const noexcept { return token_; }
  std::size_t reconnect_attempts() const noexcept {
    return reconnect_.attempts();
  }

  /// The live receiver; null before the first on_connected().
  adaptive::AdaptiveReceiver* receiver() noexcept { return receiver_.get(); }

 private:
  const Clock* clock_;
  ClientConfig config_;
  ReconnectPolicy reconnect_;
  std::unique_ptr<adaptive::AdaptiveReceiver> receiver_;
  Deadline heartbeat_due_;
  std::uint64_t session_id_ = 0;
  std::uint64_t token_ = 0;
  Seconds heartbeat_interval_ = 0;
  bool connected_ = false;
};

}  // namespace acex::session
