#include "session/reconnect.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace acex::session {

void ReconnectConfig::validate() const {
  if (base_delay <= 0 || max_delay < base_delay) {
    throw ConfigError("reconnect: need 0 < base_delay <= max_delay");
  }
}

ReconnectPolicy::ReconnectPolicy(ReconnectConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.validate();
}

std::optional<Seconds> ReconnectPolicy::next_delay() {
  if (exhausted()) return std::nullopt;
  ++attempts_;
  if (attempts_ == 1) {
    prev_delay_ = config_.base_delay;
    return prev_delay_;
  }
  // Decorrelated jitter (the AWS architecture-blog variant): the window
  // grows from the PREVIOUS delay, not the attempt number, so consecutive
  // delays wander instead of marching through the same powers of two.
  const Seconds ceiling = std::min(config_.max_delay, prev_delay_ * 3);
  prev_delay_ =
      config_.base_delay + rng_.uniform() * (ceiling - config_.base_delay);
  return prev_delay_;
}

void ReconnectPolicy::reset() noexcept {
  attempts_ = 0;
  prev_delay_ = 0;
}

}  // namespace acex::session
