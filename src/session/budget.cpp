#include "session/budget.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::session {
namespace {

struct BudgetMetrics {
  obs::Gauge& used_bytes;
  obs::Gauge& limit_bytes;
  obs::Gauge& stage;
  obs::Counter& stage_changes;
};

BudgetMetrics& budget_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static BudgetMetrics m{r.gauge("acex.budget.used_bytes"),
                         r.gauge("acex.budget.limit_bytes"),
                         r.gauge("acex.budget.stage"),
                         r.counter("acex.budget.stage_changes")};
  return m;
}

}  // namespace

std::string_view stage_name(DegradationStage stage) noexcept {
  switch (stage) {
    case DegradationStage::kNormal: return "normal";
    case DegradationStage::kCheaperCodec: return "cheaper-codec";
    case DegradationStage::kNullCodec: return "null-codec";
    case DegradationStage::kDropOldest: return "drop-oldest";
    case DegradationStage::kShedParked: return "shed-parked";
    case DegradationStage::kRefuseNew: return "refuse-new";
  }
  return "?";
}

void BudgetConfig::validate() const {
  if (limit_bytes == 0) throw ConfigError("budget: limit_bytes must be > 0");
  const double t[] = {enter_cheaper, enter_null, enter_drop, enter_shed,
                      enter_refuse};
  double prev = 0;
  for (const double v : t) {
    if (v <= prev || v > 1.0) {
      throw ConfigError(
          "budget: thresholds must be strictly increasing within (0, 1]");
    }
    prev = v;
  }
  if (hysteresis <= 0 || hysteresis >= enter_cheaper) {
    throw ConfigError("budget: hysteresis must be in (0, enter_cheaper)");
  }
}

MemoryBudget::MemoryBudget(BudgetConfig config) : config_(config) {
  config_.validate();
  budget_metrics().limit_bytes.set(
      static_cast<std::int64_t>(config_.limit_bytes));
}

void MemoryBudget::add_probe(std::string name,
                             std::function<std::size_t()> probe) {
  if (!probe) throw ConfigError("budget: probe must be callable");
  std::lock_guard<std::mutex> lock(mutex_);
  probes_[std::move(name)] = std::move(probe);
}

void MemoryBudget::remove_probe(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = probes_.find(name);
  if (it != probes_.end()) probes_.erase(it);
}

double MemoryBudget::enter_fraction(DegradationStage stage) const noexcept {
  switch (stage) {
    case DegradationStage::kNormal: return 0;
    case DegradationStage::kCheaperCodec: return config_.enter_cheaper;
    case DegradationStage::kNullCodec: return config_.enter_null;
    case DegradationStage::kDropOldest: return config_.enter_drop;
    case DegradationStage::kShedParked: return config_.enter_shed;
    case DegradationStage::kRefuseNew: return config_.enter_refuse;
  }
  return 0;
}

DegradationStage MemoryBudget::target_for(double fraction) const noexcept {
  DegradationStage target = DegradationStage::kNormal;
  for (const DegradationStage s :
       {DegradationStage::kCheaperCodec, DegradationStage::kNullCodec,
        DegradationStage::kDropOldest, DegradationStage::kShedParked,
        DegradationStage::kRefuseNew}) {
    if (fraction >= enter_fraction(s)) target = s;
  }
  return target;
}

DegradationStage MemoryBudget::walk_locked(std::size_t used_bytes) {
  used_bytes_ = used_bytes;
  const double fraction = static_cast<double>(used_bytes) /
                          static_cast<double>(config_.limit_bytes);
  const DegradationStage target = target_for(fraction);
  DegradationStage next = stage_;
  if (target > stage_) {
    // Escalate immediately: overload protection that waits is not
    // protection.
    next = target;
  } else if (target < stage_ &&
             fraction <= enter_fraction(stage_) - config_.hysteresis) {
    // De-escalate only once clearly below the current stage's entry point,
    // so usage dithering at a boundary cannot flap the ladder.
    next = target;
  }
  if (next != stage_) {
    stage_ = next;
    ++stage_changes_;
    budget_metrics().stage_changes.add(1);
  }
  budget_metrics().used_bytes.set(static_cast<std::int64_t>(used_bytes_));
  budget_metrics().stage.set(static_cast<std::int64_t>(stage_));
  return stage_;
}

DegradationStage MemoryBudget::refresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t used = 0;
  for (const auto& [name, probe] : probes_) used += probe();
  return walk_locked(used);
}

DegradationStage MemoryBudget::refresh_with(std::size_t used_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  return walk_locked(used_bytes);
}

DegradationStage MemoryBudget::stage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stage_;
}

std::size_t MemoryBudget::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

std::uint64_t MemoryBudget::stage_changes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stage_changes_;
}

}  // namespace acex::session
