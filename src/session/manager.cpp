#include "session/manager.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace acex::session {
namespace {

struct SessionMetrics {
  obs::Counter& connects;
  obs::Counter& refused;
  obs::Counter& heartbeats;
  obs::Counter& suspects;
  obs::Counter& parks;
  obs::Counter& resumes;
  obs::Counter& restarts;
  obs::Counter& expired;
  obs::Counter& shed;
  obs::Gauge& live;
  obs::Gauge& parked;
};

SessionMetrics& session_metrics() {
  auto& r = obs::MetricsRegistry::global();
  static SessionMetrics m{
      r.counter("acex.session.connects"),
      r.counter("acex.session.refused"),
      r.counter("acex.session.heartbeats"),
      r.counter("acex.session.suspects"),
      r.counter("acex.session.parks"),
      r.counter("acex.session.resumes"),
      r.counter("acex.session.restarts"),
      r.counter("acex.session.expired"),
      r.counter("acex.session.shed"),
      r.gauge("acex.session.live"),
      r.gauge("acex.session.parked"),
  };
  return m;
}

}  // namespace

std::string_view state_name(SessionState state) noexcept {
  switch (state) {
    case SessionState::kLive: return "live";
    case SessionState::kSuspect: return "suspect";
    case SessionState::kParked: return "parked";
    case SessionState::kExpired: return "expired";
  }
  return "?";
}

void SessionConfig::validate() const {
  if (liveness_timeout <= 0 || heartbeat_interval <= 0) {
    throw ConfigError("session: liveness_timeout and heartbeat_interval "
                      "must be positive");
  }
  if (suspect_grace < 0 || park_grace < 0) {
    throw ConfigError("session: grace windows must be >= 0");
  }
}

SessionManager::SessionManager(const Clock& clock, ManagerConfig config)
    : clock_(&clock),
      config_(std::move(config)),
      broker_(config_.broker),
      budget_(config_.budget),
      token_rng_(config_.token_seed) {
  // The budget sees exactly what the broker holds: every subscriber's
  // queued egress frames plus its retransmit ring — live AND parked, which
  // is what makes parked state a first-class citizen of the envelope.
  // Share-aware: N queues and rings retaining views of ONE shared-encode
  // buffer (or shm slab) charge it once, so zero-copy fan-out cannot
  // falsely trip the overload ladder (DESIGN.md §16).
  budget_.add_probe("broker",
                    [this] { return broker_.memory_usage_unique(); });
}

SessionManager::~SessionManager() = default;

MethodId SessionManager::govern(MethodId method) const noexcept {
  const auto stage = static_cast<DegradationStage>(stage_.load());
  if (stage == DegradationStage::kNormal) return method;
  if (stage >= DegradationStage::kNullCodec) return MethodId::kNone;
  // kCheaperCodec: one rung down the adaptive ladder — trade ratio for
  // CPU and buffer space, the Ferragina–Tosoni frontier slide.
  switch (method) {
    case MethodId::kBurrowsWheeler: return MethodId::kLempelZiv;
    case MethodId::kLempelZiv: return MethodId::kHuffman;
    case MethodId::kHuffman: return MethodId::kNone;
    default: return method;  // kNone and off-ladder methods unchanged
  }
}

ConnectResult SessionManager::connect(transport::Transport& transport,
                                      SessionConfig config) {
  config.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  if (stage() >= DegradationStage::kRefuseNew) {
    ++counters_.refused;
    session_metrics().refused.add(1);
    ConnectResult refused;
    refused.reason = "overloaded: refusing new sessions";
    return refused;
  }
  // The governor hook is how the ladder reaches into every subscriber's
  // plan step; it reads one atomic, so calling it from the publish thread
  // under the subscriber's sender lock is safe. A caller-supplied governor
  // (the daemon's negotiated method allowlist) is COMPOSED, not replaced:
  // the ladder demotes first, the user governor runs last, so an overload
  // downgrade can never land on a method the client did not negotiate.
  config.subscriber.adaptive.method_governor =
      [this, user = std::move(config.subscriber.adaptive.method_governor)](
          MethodId m) { return user ? user(govern(m)) : govern(m); };

  Session s;
  s.id = next_id_++;
  s.token = token_rng_();
  s.config = config;
  if (config.subscriber.name.empty()) {
    config.subscriber.name = "session-" + std::to_string(s.id);
  }
  s.subscriber = broker_.subscribe(transport, config.subscriber);
  s.state = SessionState::kLive;
  s.deadline = Deadline(*clock_, config.liveness_timeout);
  // The ladder may already demand shedding; a newcomer is not exempt.
  if (stage() >= DegradationStage::kDropOldest) {
    broker_.set_shed(s.subscriber, true);
  }

  ConnectResult result;
  result.accepted = true;
  result.session_id = s.id;
  result.token = s.token;
  result.heartbeat_interval = config.heartbeat_interval;
  sessions_.emplace(s.id, std::move(s));
  ++counters_.connects;
  session_metrics().connects.add(1);
  set_gauges_locked();
  return result;
}

bool SessionManager::heartbeat(SessionId id, std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.token != token) return false;
  Session& s = it->second;
  if (s.state != SessionState::kLive && s.state != SessionState::kSuspect) {
    // Parked or expired: a heartbeat alone cannot re-attach a transport;
    // the client must resume().
    return false;
  }
  s.state = SessionState::kLive;
  s.deadline.extend(*clock_, s.config.liveness_timeout);
  ++counters_.heartbeats;
  session_metrics().heartbeats.add(1);
  set_gauges_locked();
  return true;
}

bool SessionManager::disconnect(SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = it->second;
  if (s.state != SessionState::kLive && s.state != SessionState::kSuspect) {
    return false;
  }
  park_locked(s);
  set_gauges_locked();
  return true;
}

ResumeResult SessionManager::resume(SessionId id, std::uint64_t token,
                                    std::uint64_t resume_from,
                                    transport::Transport& transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  ResumeResult result;
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    result.reason = "unknown session";
    return result;
  }
  Session& s = it->second;
  if (s.token != token) {
    result.reason = "bad resume token";
    return result;
  }
  if (s.state == SessionState::kExpired) {
    result.status = ResumeResult::Status::kRestart;
    result.reason = "session expired past its grace window";
    ++counters_.restarts;
    session_metrics().restarts.add(1);
    return result;
  }
  // A client can reconnect before the server even noticed the drop; park
  // first so resume always starts from the same (shed, unpumped) shape.
  if (s.state != SessionState::kParked) park_locked(s);

  const broker::BrokerResume br =
      broker_.resume(s.subscriber, transport, resume_from);
  if (!br.ok) {
    // The ring evicted part of the gap: this incarnation can never be
    // made whole, so it dies here and the caller restarts from scratch.
    expire_locked(s, false);
    set_gauges_locked();
    result.status = ResumeResult::Status::kRestart;
    result.reason = "resume gap evicted from the retransmit ring";
    ++counters_.restarts;
    session_metrics().restarts.add(1);
    return result;
  }
  s.state = SessionState::kLive;
  s.deadline.extend(*clock_, s.config.liveness_timeout);
  if (stage() >= DegradationStage::kDropOldest) {
    broker_.set_shed(s.subscriber, true);
  }
  ++counters_.resumes;
  session_metrics().resumes.add(1);
  set_gauges_locked();
  result.status = ResumeResult::Status::kResumed;
  result.replayed = br.replayed;
  return result;
}

TickReport SessionManager::tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  TickReport report;
  for (auto& [id, s] : sessions_) {
    if (!s.deadline.expired(*clock_)) continue;
    switch (s.state) {
      case SessionState::kLive:
        s.state = SessionState::kSuspect;
        s.deadline.extend(*clock_, s.config.suspect_grace);
        ++counters_.suspects;
        session_metrics().suspects.add(1);
        ++report.suspects;
        break;
      case SessionState::kSuspect:
        park_locked(s);
        ++report.parks;
        break;
      case SessionState::kParked:
        expire_locked(s, false);
        ++report.expired;
        break;
      case SessionState::kExpired:
        break;
    }
  }
  set_gauges_locked();
  return report;
}

void SessionManager::publish(ByteView block) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    apply_stage_locked(budget_.refresh());
  }
  // Broker locks are taken strictly after (never inside) the manager's.
  broker_.publish(block);
}

void SessionManager::apply_stage_locked(DegradationStage next) {
  const auto prev = static_cast<DegradationStage>(
      stage_.exchange(static_cast<int>(next)));
  const bool shed_now = next >= DegradationStage::kDropOldest;
  if (shed_now != (prev >= DegradationStage::kDropOldest)) {
    for (auto& [id, s] : sessions_) {
      if (s.state == SessionState::kLive ||
          s.state == SessionState::kSuspect) {
        broker_.set_shed(s.subscriber, shed_now);
      }
    }
  }
  if (next >= DegradationStage::kShedParked) {
    // Applied every refresh, not just on the edge: a session parked while
    // the stage holds is shed at the next publish.
    for (auto& [id, s] : sessions_) {
      if (s.state == SessionState::kParked) expire_locked(s, true);
    }
    set_gauges_locked();
  }
}

void SessionManager::park_locked(Session& s) {
  broker_.park(s.subscriber);
  s.state = SessionState::kParked;
  s.deadline.extend(*clock_, s.config.park_grace);
  ++counters_.parks;
  session_metrics().parks.add(1);
}

void SessionManager::expire_locked(Session& s, bool shed) {
  broker_.unsubscribe(s.subscriber);
  s.state = SessionState::kExpired;
  s.deadline.disarm();
  ++counters_.expired;
  session_metrics().expired.add(1);
  if (shed) {
    ++counters_.shed;
    session_metrics().shed.add(1);
  }
}

void SessionManager::set_gauges_locked() {
  std::int64_t live = 0;
  std::int64_t parked = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.state == SessionState::kLive || s.state == SessionState::kSuspect) {
      ++live;
    } else if (s.state == SessionState::kParked) {
      ++parked;
    }
  }
  session_metrics().live.set(live);
  session_metrics().parked.set(parked);
}

Bytes SessionManager::handle_control(ByteView wire) {
  const ControlMsg msg = control_decode(wire);
  ControlMsg reply;
  reply.session_id = msg.session_id;
  switch (msg.kind) {
    case ControlKind::kHeartbeat:
      if (heartbeat(msg.session_id, msg.token)) {
        reply.kind = ControlKind::kHeartbeat;
      } else {
        reply.kind = ControlKind::kResumeFail;
        reply.reason = "heartbeat rejected: session not live";
      }
      break;
    case ControlKind::kBye:
      disconnect(msg.session_id);
      reply.kind = ControlKind::kBye;
      break;
    default:
      reply.kind = ControlKind::kResumeFail;
      reply.reason = "hello/resume require a transport binding";
      break;
  }
  return control_encode(reply);
}

std::size_t SessionManager::pump(SessionId id) {
  broker::SubscriberId sub = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return 0;
    sub = it->second.subscriber;
  }
  return broker_.pump(sub);
}

std::size_t SessionManager::pump_all() { return broker_.pump_all(); }

std::size_t SessionManager::retransmit(
    SessionId id, const std::vector<std::uint64_t>& sequences) {
  broker::SubscriberId sub = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return 0;
    sub = it->second.subscriber;
  }
  return broker_.retransmit(sub, sequences);
}

SessionState SessionManager::state(SessionId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw ConfigError("session: unknown id " + std::to_string(id));
  }
  return it->second.state;
}

broker::SubscriberStats SessionManager::subscriber_stats(SessionId id) const {
  broker::SubscriberId sub = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw ConfigError("session: unknown id " + std::to_string(id));
    }
    sub = it->second.subscriber;
  }
  return broker_.subscriber_stats(sub);
}

SessionCounters SessionManager::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t SessionManager::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.state == SessionState::kLive || s.state == SessionState::kSuspect) {
      ++n;
    }
  }
  return n;
}

std::size_t SessionManager::parked_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.state == SessionState::kParked) ++n;
  }
  return n;
}

}  // namespace acex::session
