#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "echo/attributes.hpp"
#include "util/bytes.hpp"

namespace acex::session {

/// Session control verbs exchanged beside the data stream. Heartbeats and
/// byes are fire-and-forget; hello/resume carry enough state for the
/// manager to (re)attach a subscriber.
enum class ControlKind : std::uint8_t {
  kHello = 1,      ///< client -> server: new session request
  kWelcome,        ///< server -> client: session id + resume token
  kHeartbeat,      ///< client -> server: liveness proof
  kResume,         ///< client -> server: re-attach, replay from resume_from
  kResumeOk,       ///< server -> client: gap replayed, stream continues
  kResumeFail,     ///< server -> client: gap evicted / token bad — restart
  kBye,            ///< client -> server: orderly departure, park immediately
};

struct ControlMsg {
  ControlKind kind = ControlKind::kHeartbeat;
  std::uint64_t session_id = 0;
  std::uint64_t token = 0;        ///< resume credential issued at connect
  std::uint64_t resume_from = 0;  ///< kResume: first sequence still needed
  std::string reason;             ///< kResumeFail/kBye: human-readable cause

  bool operator==(const ControlMsg&) const = default;
};

/// Wire form: magic byte 0xA5 | kind | varint session_id | varint token |
/// varint resume_from | varint reason size | reason | crc32 (LE) of
/// everything before it. Control messages cross the same faulted links as
/// data, so they carry their own integrity check.
Bytes control_encode(const ControlMsg& msg);

/// Throws DecodeError on truncation, bad magic, unknown kind, or CRC
/// mismatch.
ControlMsg control_decode(ByteView wire);

/// Attribute name under which a control message rides an echo
/// AttributeMap — the heartbeat path reuses ECho's control plane rather
/// than inventing a parallel channel.
inline constexpr std::string_view kControlAttr = "acex.session.ctrl";

/// Wrap `msg` for the echo control path.
echo::AttributeMap control_attributes(const ControlMsg& msg);

/// Extract a control message from an echo AttributeMap; nullopt when the
/// attribute is absent. Decode errors propagate (a present-but-corrupt
/// control message is a fault, not a miss).
std::optional<ControlMsg> control_from_attributes(
    const echo::AttributeMap& attrs);

}  // namespace acex::session
