#include "session/client.hpp"

namespace acex::session {

SessionClient::SessionClient(const Clock& clock, ClientConfig config,
                             std::uint64_t seed)
    : clock_(&clock),
      config_(std::move(config)),
      reconnect_(config_.reconnect, seed),
      heartbeat_interval_(config_.heartbeat_interval) {}

void SessionClient::on_connected(std::uint64_t session_id,
                                 std::uint64_t token,
                                 transport::Transport& rx,
                                 Seconds heartbeat_interval) {
  session_id_ = session_id;
  token_ = token;
  if (heartbeat_interval > 0) heartbeat_interval_ = heartbeat_interval;
  receiver_ =
      std::make_unique<adaptive::AdaptiveReceiver>(rx, config_.receiver);
  heartbeat_due_.extend(*clock_, heartbeat_interval_);
  reconnect_.reset();
  connected_ = true;
}

void SessionClient::on_dropped() {
  connected_ = false;
  heartbeat_due_.disarm();
}

void SessionClient::on_resumed(transport::Transport& rx,
                               std::uint64_t token) {
  token_ = token;
  if (receiver_) receiver_->rebind(rx);
  heartbeat_due_.extend(*clock_, heartbeat_interval_);
  reconnect_.reset();
  connected_ = true;
}

std::optional<Seconds> SessionClient::next_retry_delay() {
  return reconnect_.next_delay();
}

std::uint64_t SessionClient::resume_from() const {
  return receiver_ ? receiver_->next_expected() : 0;
}

bool SessionClient::heartbeat_due() const {
  return connected_ && heartbeat_due_.expired(*clock_);
}

Bytes SessionClient::make_heartbeat() {
  heartbeat_due_.extend(*clock_, heartbeat_interval_);
  ControlMsg msg;
  msg.kind = ControlKind::kHeartbeat;
  msg.session_id = session_id_;
  msg.token = token_;
  return control_encode(msg);
}

Bytes SessionClient::make_resume() const {
  ControlMsg msg;
  msg.kind = ControlKind::kResume;
  msg.session_id = session_id_;
  msg.token = token_;
  msg.resume_from = resume_from();
  return control_encode(msg);
}

Bytes SessionClient::make_bye() const {
  ControlMsg msg;
  msg.kind = ControlKind::kBye;
  msg.session_id = session_id_;
  msg.token = token_;
  msg.reason = "bye";
  return control_encode(msg);
}

}  // namespace acex::session
