#pragma once

#include <cstdint>
#include <optional>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace acex::session {

struct ReconnectConfig {
  /// First retry fires after exactly this delay; later delays jitter
  /// upward from it.
  Seconds base_delay = 0.05;
  /// Hard cap on any single delay.
  Seconds max_delay = 5.0;
  /// Give up after this many attempts; 0 = never.
  std::size_t max_attempts = 8;

  void validate() const;
};

/// Client-side re-attach pacing: exponential backoff with decorrelated
/// jitter (each delay drawn uniformly from [base, min(cap, prev * 3)], so
/// a fleet of clients dropped by one fault does not reconnect in
/// lockstep), capped attempts. Deterministic for a given seed.
class ReconnectPolicy {
 public:
  explicit ReconnectPolicy(ReconnectConfig config = {},
                           std::uint64_t seed = 0x5e55104ull);

  /// Delay before the next attempt, or nullopt once attempts are
  /// exhausted. Counts the attempt.
  std::optional<Seconds> next_delay();

  /// Successful reconnect: restart the schedule from scratch.
  void reset() noexcept;

  std::size_t attempts() const noexcept { return attempts_; }
  bool exhausted() const noexcept {
    return config_.max_attempts > 0 && attempts_ >= config_.max_attempts;
  }
  const ReconnectConfig& config() const noexcept { return config_; }

 private:
  ReconnectConfig config_;
  Rng rng_;
  std::size_t attempts_ = 0;
  Seconds prev_delay_ = 0;
};

}  // namespace acex::session
