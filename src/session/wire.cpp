#include "session/wire.hpp"

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex::session {
namespace {

constexpr std::uint8_t kMagic = 0xA5;

bool kind_valid(std::uint8_t k) noexcept {
  return k >= static_cast<std::uint8_t>(ControlKind::kHello) &&
         k <= static_cast<std::uint8_t>(ControlKind::kBye);
}

}  // namespace

Bytes control_encode(const ControlMsg& msg) {
  Bytes out;
  out.push_back(kMagic);
  out.push_back(static_cast<std::uint8_t>(msg.kind));
  put_varint(out, msg.session_id);
  put_varint(out, msg.token);
  put_varint(out, msg.resume_from);
  put_varint(out, msg.reason.size());
  out.insert(out.end(), msg.reason.begin(), msg.reason.end());
  const std::uint32_t crc = crc32(ByteView(out.data(), out.size()));
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
  return out;
}

ControlMsg control_decode(ByteView wire) {
  if (wire.size() < 2 + 4) {
    throw DecodeError("session control: truncated message");
  }
  const std::size_t body = wire.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(wire[body + i]) << (8 * i);
  }
  if (crc32(ByteView(wire.data(), body)) != stored) {
    throw DecodeError("session control: CRC mismatch");
  }
  if (wire[0] != kMagic) throw DecodeError("session control: bad magic");
  if (!kind_valid(wire[1])) {
    throw DecodeError("session control: unknown kind");
  }
  ControlMsg msg;
  msg.kind = static_cast<ControlKind>(wire[1]);
  std::size_t pos = 2;
  const ByteView payload(wire.data(), body);
  msg.session_id = get_varint(payload, &pos);
  msg.token = get_varint(payload, &pos);
  msg.resume_from = get_varint(payload, &pos);
  const std::uint64_t reason_size = get_varint(payload, &pos);
  if (reason_size != body - pos) {
    throw DecodeError("session control: bad reason length");
  }
  msg.reason.assign(reinterpret_cast<const char*>(payload.data()) + pos,
                    reason_size);
  return msg;
}

echo::AttributeMap control_attributes(const ControlMsg& msg) {
  echo::AttributeMap attrs;
  attrs.set_bytes(std::string(kControlAttr), control_encode(msg));
  return attrs;
}

std::optional<ControlMsg> control_from_attributes(
    const echo::AttributeMap& attrs) {
  const std::optional<Bytes> wire = attrs.get_bytes(kControlAttr);
  if (!wire) return std::nullopt;
  return control_decode(ByteView(wire->data(), wire->size()));
}

}  // namespace acex::session
