#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace acex::session {

/// The overload ladder, in escalation order. Each stage keeps everything
/// the previous stages did and adds one more concession; the whole point
/// is that running out of memory degrades service quality smoothly
/// instead of failing some arbitrary allocation (DESIGN.md §12).
enum class DegradationStage {
  kNormal = 0,       ///< full plan quality
  kCheaperCodec,     ///< governor demotes each choice one ladder rung
  kNullCodec,        ///< governor forces the null codec (CPU + buffers)
  kDropOldest,       ///< every egress sheds instead of blocking
  kShedParked,       ///< parked sessions are expired early
  kRefuseNew,        ///< new subscribes are turned away
};

std::string_view stage_name(DegradationStage stage) noexcept;

struct BudgetConfig {
  /// Process-wide envelope the probes are measured against.
  std::size_t limit_bytes = 64 * 1024 * 1024;

  /// Stage entry thresholds as fractions of limit_bytes, strictly
  /// increasing. usage >= enter_x * limit escalates to stage x.
  double enter_cheaper = 0.60;
  double enter_null = 0.75;
  double enter_drop = 0.85;
  double enter_shed = 0.92;
  double enter_refuse = 0.97;

  /// De-escalation margin: a stage is left only once usage falls below its
  /// entry threshold by at least this fraction. Without it, usage
  /// oscillating around one threshold would flap the ladder every block.
  double hysteresis = 0.08;

  void validate() const;
};

/// Process-wide memory accounting with hysteresis-guarded degradation.
/// Subsystems register probes (egress queues, retransmit rings, reorder
/// windows, parked-session state); refresh() sums them and walks the
/// ladder: escalation is immediate (overload must not wait), recovery is
/// damped by the hysteresis margin. Thread-safe.
class MemoryBudget {
 public:
  explicit MemoryBudget(BudgetConfig config = {});

  /// Register/replace a named usage probe. Probes are called under the
  /// budget lock — they must not call back into the budget.
  void add_probe(std::string name, std::function<std::size_t()> probe);
  void remove_probe(std::string_view name);

  /// Poll every probe and walk the ladder; returns the (possibly new)
  /// stage.
  DegradationStage refresh();

  /// Ladder walk against an externally measured usage — tests and callers
  /// that already hold the total.
  DegradationStage refresh_with(std::size_t used_bytes);

  DegradationStage stage() const;
  std::size_t used_bytes() const;
  std::uint64_t stage_changes() const;
  const BudgetConfig& config() const noexcept { return config_; }

 private:
  double enter_fraction(DegradationStage stage) const noexcept;
  DegradationStage target_for(double fraction) const noexcept;
  DegradationStage walk_locked(std::size_t used_bytes);

  BudgetConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::function<std::size_t()>, std::less<>> probes_;
  DegradationStage stage_ = DegradationStage::kNormal;
  std::size_t used_bytes_ = 0;
  std::uint64_t stage_changes_ = 0;
};

}  // namespace acex::session
