#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "session/budget.hpp"
#include "session/deadline.hpp"
#include "session/wire.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace acex::session {

using SessionId = std::uint64_t;

/// Session lifecycle (DESIGN.md §12):
///   live --(liveness_timeout)--> suspect --(suspect_grace)--> parked
///   parked --(park_grace)--> expired
/// A heartbeat returns live/suspect to live; resume() returns parked (or
/// suspect) to live with the gap replayed; expiry is terminal — the
/// record stays as a tombstone so a late resume gets a clean "restart"
/// instead of an unknown-session error.
enum class SessionState { kLive, kSuspect, kParked, kExpired };

std::string_view state_name(SessionState state) noexcept;

struct SessionConfig {
  broker::SubscriberConfig subscriber;
  /// No heartbeat for this long: live -> suspect.
  Seconds liveness_timeout = 2.0;
  /// Suspect for this long: parked (state kept warm, egress shed).
  Seconds suspect_grace = 1.0;
  /// Parked for this long: expired (state destroyed, resume refused).
  Seconds park_grace = 10.0;
  /// Advisory heartbeat cadence handed back to the client at connect.
  Seconds heartbeat_interval = 0.5;

  void validate() const;
};

struct ManagerConfig {
  broker::BrokerConfig broker;
  BudgetConfig budget;
  /// Seeds the resume-token generator (tokens must be deterministic under
  /// test, unguessable-ish in deployment).
  std::uint64_t token_seed = 0xACE55E551ull;
};

struct ConnectResult {
  bool accepted = false;
  SessionId session_id = 0;
  std::uint64_t token = 0;
  Seconds heartbeat_interval = 0;
  std::string reason;  ///< set when refused (overload ladder kRefuseNew)
};

struct ResumeResult {
  enum class Status {
    kResumed,   ///< gap replayed; stream continues byte-identically
    kRestart,   ///< session unrecoverable (expired / gap evicted) — the
                ///< caller reconnects fresh and restarts from a snapshot
    kRejected,  ///< unknown session or bad token; nothing changed
  };
  Status status = Status::kRejected;
  std::size_t replayed = 0;
  std::string reason;
};

/// One tick()'s lifecycle transitions, for callers that drive the sweep.
struct TickReport {
  std::size_t suspects = 0;
  std::size_t parks = 0;
  std::size_t expired = 0;
};

/// Aggregate ground-truth counters, mirrored to `acex.session.*`.
struct SessionCounters {
  std::uint64_t connects = 0;
  std::uint64_t refused = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t suspects = 0;
  std::uint64_t parks = 0;
  std::uint64_t resumes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;  ///< parked sessions expired early by the ladder
};

/// Durable subscriber sessions over a FanoutBroker. The manager owns the
/// broker, issues session ids + resume tokens, tracks liveness deadlines
/// on the supplied clock, parks dead peers' state for a grace window, and
/// replays resume gaps from each subscriber's retransmit ring. It also
/// owns the process MemoryBudget and applies its degradation ladder:
/// codec downgrades through each sender's method_governor, egress
/// shedding, parked-session shedding, and subscribe refusal.
///
/// Thread safety: every public method may be called concurrently; the
/// manager serializes on one internal mutex and the broker below it (lock
/// order: manager, then broker — never the reverse).
class SessionManager {
 public:
  /// `clock` drives liveness deadlines and must outlive the manager; the
  /// chaos harness passes the shared VirtualClock.
  explicit SessionManager(const Clock& clock, ManagerConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Open a session over `transport` (which must outlive it or be swapped
  /// by resume()). Refused while the ladder sits at kRefuseNew.
  ConnectResult connect(transport::Transport& transport,
                        SessionConfig config = {});

  /// Liveness proof. Returns true and re-arms the deadline for live or
  /// suspect sessions with a matching token; false for parked (the client
  /// must resume()), expired, or unknown sessions and bad tokens.
  bool heartbeat(SessionId id, std::uint64_t token);

  /// Orderly departure (kBye): park immediately, skipping suspect. The
  /// grace window still applies, so a quick reconnect resumes cleanly.
  bool disconnect(SessionId id);

  /// Re-attach on a (new) transport, replaying `[resume_from, head)` so
  /// the resumed stream is byte-identical to one that never dropped.
  /// Falls back to kRestart when the session expired or the ring evicted
  /// the gap — the session is then expired and the caller reconnects.
  ResumeResult resume(SessionId id, std::uint64_t token,
                      std::uint64_t resume_from,
                      transport::Transport& transport);

  /// Sweep every session's deadline and apply lifecycle transitions.
  /// Call periodically (the heartbeat interval is a natural cadence).
  TickReport tick();

  /// Refresh the memory budget, apply the (possibly new) ladder stage,
  /// and publish one block to every non-expired session.
  void publish(ByteView block);

  /// Handle a wire-encoded control message that needs no transport —
  /// kHeartbeat and kBye — and return the wire-encoded acknowledgement.
  /// kHello/kResume carry a transport binding and must go through
  /// connect()/resume(); they are answered with kResumeFail here.
  Bytes handle_control(ByteView wire);

  /// Delivery pumps and NACK service, addressed by session id.
  std::size_t pump(SessionId id);
  std::size_t pump_all();
  std::size_t retransmit(SessionId id,
                         const std::vector<std::uint64_t>& sequences);

  SessionState state(SessionId id) const;
  broker::SubscriberStats subscriber_stats(SessionId id) const;
  DegradationStage stage() const {
    return static_cast<DegradationStage>(stage_.load());
  }
  SessionCounters counters() const;
  std::size_t live_count() const;
  std::size_t parked_count() const;

  MemoryBudget& budget() noexcept { return budget_; }
  broker::FanoutBroker& broker() noexcept { return broker_; }

 private:
  struct Session {
    SessionId id = 0;
    std::uint64_t token = 0;
    broker::SubscriberId subscriber = 0;
    SessionState state = SessionState::kLive;
    Deadline deadline;
    SessionConfig config;
  };

  MethodId govern(MethodId method) const noexcept;
  void apply_stage_locked(DegradationStage next);
  void park_locked(Session& s);
  void expire_locked(Session& s, bool shed);
  void set_gauges_locked();

  const Clock* clock_;
  ManagerConfig config_;
  broker::FanoutBroker broker_;
  MemoryBudget budget_;
  std::atomic<int> stage_{0};

  mutable std::mutex mutex_;
  std::map<SessionId, Session> sessions_;
  SessionId next_id_ = 1;
  Rng token_rng_;
  SessionCounters counters_;
};

}  // namespace acex::session
