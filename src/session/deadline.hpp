#pragma once

#include <limits>

#include "util/clock.hpp"

namespace acex::session {

/// A point on a monotonic Clock's timeline by which something must have
/// happened — the unit of liveness tracking. Default-constructed deadlines
/// are unarmed and never expire; armed ones expire when the clock passes
/// `when()`. Works against any Clock, so session tests drive expiry with a
/// VirtualClock instead of sleeping.
class Deadline {
 public:
  Deadline() = default;

  /// Arm `timeout` seconds from the clock's current time.
  Deadline(const Clock& clock, Seconds timeout)
      : armed_(true), when_(clock.now() + timeout) {}

  bool armed() const noexcept { return armed_; }

  /// Expiry instant; +infinity while unarmed.
  Seconds when() const noexcept {
    return armed_ ? when_ : std::numeric_limits<Seconds>::infinity();
  }

  bool expired(const Clock& clock) const noexcept {
    return armed_ && clock.now() >= when_;
  }

  /// Seconds until expiry (negative once past); +infinity while unarmed.
  Seconds remaining(const Clock& clock) const noexcept {
    return armed_ ? when_ - clock.now()
                  : std::numeric_limits<Seconds>::infinity();
  }

  /// Re-arm `timeout` seconds from now — a heartbeat pushing the liveness
  /// horizon out.
  void extend(const Clock& clock, Seconds timeout) noexcept {
    armed_ = true;
    when_ = clock.now() + timeout;
  }

  void disarm() noexcept { armed_ = false; }

 private:
  bool armed_ = false;
  Seconds when_ = 0;
};

}  // namespace acex::session
