#pragma once

#include <cstdint>
#include <vector>

#include "pbio/pbio.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::workloads {

/// Synthetic stand-in for the molecular-dynamics dataset of [4] (Fig. 6):
/// atoms with coordinates, velocities, and types whose per-field
/// compressibility reproduces the paper's split —
///   coordinates: random-walk float32 positions, essentially incompressible;
///   velocities:  quantized thermal (Gaussian) values, moderately
///                compressible;
///   types:       a skewed handful of species ids, highly compressible.
struct MolecularConfig {
  std::size_t atom_count = 4096;
  std::uint64_t seed = 42;
  unsigned species_count = 5;     ///< distinct atom types
  double box_size = 100.0;        ///< simulation box edge (arbitrary units)
  double temperature = 1.0;       ///< velocity scale
  double velocity_quantum = 1e-3; ///< velocities round to this grid
};

/// A minimal MD integrator: atoms random-walk under thermal kicks. Each
/// step() advances the state; field extractors snapshot the current state
/// in the packed layouts Fig. 6 compresses.
class MolecularGenerator {
 public:
  explicit MolecularGenerator(MolecularConfig config = {});

  const MolecularConfig& config() const noexcept { return config_; }

  /// Advance every atom one timestep (thermal kick + drift, reflective
  /// box walls).
  void step();

  /// Packed float32 (x, y, z) per atom — the "coordinates" series.
  Bytes coordinates_bytes() const;

  /// Packed quantized float32 (vx, vy, vz) per atom — "velocity".
  Bytes velocities_bytes() const;

  /// Packed int32 species id per atom — "type". (PBIO carries types as
  /// integers; a byte-per-atom variant would compress even better.)
  Bytes types_bytes() const;

  /// The full snapshot as a PBIO stream (format header + one record per
  /// atom) — how the middleware actually transports this data.
  Bytes pbio_snapshot() const;

  /// Schema of pbio_snapshot records.
  static pbio::RecordFormat snapshot_format();

  /// Concatenation of `steps` successive snapshots, stepping in between —
  /// a streaming workload of `steps` frames.
  Bytes stream(std::size_t steps);

 private:
  struct Atom {
    float x, y, z;
    float vx, vy, vz;
    std::int32_t type;
  };

  float quantize(double v) const noexcept;

  MolecularConfig config_;
  Rng rng_;
  std::vector<Atom> atoms_;
};

}  // namespace acex::workloads
