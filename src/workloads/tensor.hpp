#pragma once

#include <cstdint>
#include <vector>

#include "pbio/pbio.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::workloads {

/// OCP FP8 e4m3 conversion: 1 sign bit, 4 exponent bits (bias 7), 3
/// mantissa bits. Largest finite magnitude is 448; 0x7F / 0xFF encode NaN
/// (there are no infinities — out-of-range values saturate). Quantization
/// is round-to-nearest with ties to the even encoding, so
/// to_e4m3(from_e4m3(b)) == b for every non-NaN byte — the fixpoint the
/// generator tests pin.
std::uint8_t to_e4m3(float value) noexcept;
float from_e4m3(std::uint8_t byte) noexcept;

/// Synthetic ML-tensor stream (per the Quad Length Codes FP8 line of work,
/// PAPERS.md): per-channel weight/activation values evolving smoothly over
/// training steps — a gaussian mixture with slow per-channel drift. The
/// interesting property for the decision engine is that this data has LOW
/// ENTROPY but almost NO STRING REPETITIONS: e4m3 blocks concentrate on a
/// couple hundred byte values (Huffman territory, LZ finds little), while
/// raw float32 blocks hide the structure in noisy mantissa bytes — the
/// exact opposite regime from the transactional text streams.
class TensorGenerator {
 public:
  explicit TensorGenerator(std::uint64_t seed = 11, std::size_t channels = 64);

  /// `values` e4m3-quantized tensor elements, one byte each.
  Bytes e4m3_block(std::size_t values);

  /// `values` float32 tensor elements, little-endian, 4 bytes each.
  Bytes f32_block(std::size_t values);

  /// Fixed-width per-channel summary records (columnar_shuffle-eligible).
  static const pbio::RecordFormat& record_format();

  /// One channel-summary record conforming to record_format().
  pbio::Record next_record();

  /// PBIO stream (format header + `records` packed records).
  Bytes pbio_block(std::size_t records);

  /// Tensor elements emitted so far (across all renderings).
  std::uint64_t values_emitted() const noexcept { return values_; }

 private:
  float next_value();

  Rng rng_;
  std::vector<float> channel_mean_;  ///< slow per-channel drift
  std::uint64_t values_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace acex::workloads
