#include "workloads/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>

namespace acex::workloads {
namespace {

/// Decoded magnitudes of the 127 non-NaN positive encodings (0x00..0x7E),
/// strictly increasing — the search table for round-to-nearest.
const std::array<float, 127>& e4m3_magnitudes() {
  static const std::array<float, 127> kTable = [] {
    std::array<float, 127> t{};
    for (std::uint8_t b = 0; b < 127; ++b) t[b] = from_e4m3(b);
    return t;
  }();
  return kTable;
}

}  // namespace

float from_e4m3(std::uint8_t byte) noexcept {
  const float sign = (byte & 0x80) != 0 ? -1.0f : 1.0f;
  const int exp = (byte >> 3) & 0xF;
  const int mant = byte & 0x7;
  if (exp == 0xF && mant == 0x7) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  if (exp == 0) {
    // Subnormal: mant/8 x 2^-6.
    return sign * std::ldexp(static_cast<float>(mant), -9);
  }
  return sign * std::ldexp(1.0f + static_cast<float>(mant) / 8.0f, exp - 7);
}

std::uint8_t to_e4m3(float value) noexcept {
  if (std::isnan(value)) return 0x7F;
  const std::uint8_t sign = std::signbit(value) ? 0x80 : 0x00;
  const float a = std::fabs(value);
  const auto& mags = e4m3_magnitudes();
  if (std::isinf(value) || a >= mags.back()) {
    // Saturating conversion (OCP behaviour): no infinities, anything at or
    // past the max finite magnitude (448) clamps to its encoding.
    return sign | 0x7E;
  }
  const auto it = std::lower_bound(mags.begin(), mags.end(), a);
  std::size_t hi = static_cast<std::size_t>(it - mags.begin());
  if (hi == 0) return sign;  // a <= 0 lands on +/-0
  const std::size_t lo = hi - 1;
  const float d_lo = a - mags[lo];
  const float d_hi = mags[hi] - a;
  std::size_t pick;
  if (d_lo < d_hi) {
    pick = lo;
  } else if (d_hi < d_lo) {
    pick = hi;
  } else {
    pick = (lo % 2 == 0) ? lo : hi;  // tie: even encoding
  }
  return sign | static_cast<std::uint8_t>(pick);
}

TensorGenerator::TensorGenerator(std::uint64_t seed, std::size_t channels)
    : rng_(seed), channel_mean_(std::max<std::size_t>(channels, 1), 0.0f) {
  // Per-channel initial means: a modest spread so channels are
  // distinguishable but the bulk of mass stays near zero, like trained
  // weight tensors.
  for (float& mean : channel_mean_) {
    mean = 0.5f * static_cast<float>(rng_.gaussian());
  }
}

float TensorGenerator::next_value() {
  const std::size_t ch = static_cast<std::size_t>(steps_) %
                         channel_mean_.size();
  if (ch == 0) {
    // Once per sweep, drift every channel slightly: successive "training
    // steps" stay correlated, which is what makes per-block-reset visibly
    // worse than carried context on this stream.
    for (float& mean : channel_mean_) {
      mean += 0.02f * static_cast<float>(rng_.gaussian());
    }
  }
  ++steps_;
  ++values_;
  return channel_mean_[ch] + 0.25f * static_cast<float>(rng_.gaussian());
}

Bytes TensorGenerator::e4m3_block(std::size_t values) {
  Bytes out;
  out.reserve(values);
  for (std::size_t i = 0; i < values; ++i) {
    out.push_back(to_e4m3(next_value()));
  }
  return out;
}

Bytes TensorGenerator::f32_block(std::size_t values) {
  Bytes out;
  out.reserve(values * 4);
  for (std::size_t i = 0; i < values; ++i) {
    const float v = next_value();
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<std::uint8_t>(bits >> shift));
    }
  }
  return out;
}

const pbio::RecordFormat& TensorGenerator::record_format() {
  using pbio::FieldType;
  static const pbio::RecordFormat kFormat(
      "tensor-summary-v1",
      {{"step", FieldType::kUInt64},      // monotonic training step
       {"channel", FieldType::kUInt32},   // cycles over the channel count
       {"count", FieldType::kUInt32},     // constant per stream
       {"mean", FieldType::kFloat32},     // smooth random walk
       {"abs_max", FieldType::kFloat32},  // slowly varying envelope
       {"scale", FieldType::kFloat32}});  // quantizer scale, near-constant
  return kFormat;
}

pbio::Record TensorGenerator::next_record() {
  const std::size_t ch = static_cast<std::size_t>(steps_) %
                         channel_mean_.size();
  constexpr std::uint32_t kGroup = 256;  // elements summarized per record
  float sum = 0.0f;
  float abs_max = 0.0f;
  for (std::uint32_t i = 0; i < kGroup; ++i) {
    const float v = next_value();
    sum += v;
    abs_max = std::max(abs_max, std::fabs(v));
  }
  pbio::Record r(record_format());
  r.set(0, static_cast<std::uint64_t>(steps_));
  r.set(1, static_cast<std::uint32_t>(ch));
  r.set(2, kGroup);
  r.set(3, sum / static_cast<float>(kGroup));
  r.set(4, abs_max);
  r.set(5, abs_max > 0 ? 448.0f / abs_max : 1.0f);
  return r;
}

Bytes TensorGenerator::pbio_block(std::size_t records) {
  const pbio::Encoder encoder(record_format());
  Bytes out;
  encoder.encode_format(out);
  for (std::size_t i = 0; i < records; ++i) {
    encoder.encode_record(next_record(), out);
  }
  return out;
}

}  // namespace acex::workloads
