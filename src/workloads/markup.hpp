#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::workloads {

/// XML-ish nested-markup record stream — the "data described in XML
/// format" workload the paper's abstract calls out, pushed further than
/// the flat transactional rendering: elements nest several levels deep, a
/// small tag vocabulary recurs at every level, and the leaf text is unique
/// per record. Tag/attribute scaffolding dominates the byte count, so the
/// stream is extremely string-repetitive (deep LZ/BW territory, ratio well
/// under the §2.5 cut) while still carrying enough unique payload that the
/// null codec never wins by accident.
class MarkupGenerator {
 public:
  explicit MarkupGenerator(std::uint64_t seed = 13);

  /// One top-level record element, nested and newline-terminated.
  std::string next_record();

  /// Concatenated records wrapped in a stream root, exactly `bytes` long.
  Bytes block(std::size_t bytes);

  /// Records emitted so far.
  std::uint64_t records() const noexcept { return records_; }

 private:
  void emit_element(std::string& out, std::size_t depth);

  Rng rng_;
  std::uint64_t records_ = 0;
  std::uint64_t nodes_ = 0;
};

}  // namespace acex::workloads
