#pragma once

#include <cstdint>
#include <string>

#include "pbio/pbio.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::workloads {

/// Synthetic stand-in for the operational-information-system transaction
/// capture of "a large company" ([2], §4.2). Emits airline-operations
/// events — flight movements, gate changes, baggage scans, delay notices —
/// with the property the paper relies on: "a high rate of string
/// repetitions", putting the data squarely in Lempel-Ziv / Burrows-Wheeler
/// territory (Fig. 2: best methods reach ~30 % of original size).
///
/// Three renderings of the same event stream:
///   text  — fixed-field operational log lines;
///   xml   — the markup form the paper's abstract mentions for commercial
///           data (even more repetitive: tags dominate);
///   pbio  — packed fixed-layout records (TPC-H-flavoured mix of monotonic
///           counters, low-cardinality enums, skewed quantities, and
///           smooth floats) for the per-column pipeline planner.
class TransactionGenerator {
 public:
  explicit TransactionGenerator(std::uint64_t seed = 7);

  /// One operational event as a log line (newline-terminated).
  std::string next_text();

  /// The same kind of event as an XML element (newline-terminated).
  std::string next_xml();

  /// Concatenated text records totalling at least `bytes` (then truncated
  /// to exactly `bytes`).
  Bytes text_block(std::size_t bytes);

  /// Concatenated XML records totalling exactly `bytes`, wrapped in a
  /// stream element.
  Bytes xml_block(std::size_t bytes);

  /// The fixed-layout schema of the binary rendering: every column is a
  /// fixed-width scalar, so blocks are columnar_shuffle-eligible.
  static const pbio::RecordFormat& record_format();

  /// One event as a packed PBIO record conforming to record_format().
  pbio::Record next_record();

  /// PBIO stream (format header + `records` packed records).
  Bytes pbio_block(std::size_t records);

  /// Number of events emitted so far.
  std::uint64_t events() const noexcept { return events_; }

 private:
  struct EventData {
    const char* kind;
    std::string flight;
    const char* origin;
    const char* destination;
    const char* status;
    unsigned minute;
    std::string pnr;
    // Index form of the categorical fields, for the binary rendering.
    unsigned kind_idx;
    unsigned carrier_idx;
    unsigned flight_no;
    unsigned origin_idx;
    unsigned destination_idx;
    unsigned status_idx;
  };

  EventData next_event();

  Rng rng_;
  std::uint64_t events_ = 0;
  unsigned clock_minutes_ = 0;
  unsigned fuel_kg_ = 52000;  ///< random-walk fuel gauge (smooth float data)
};

}  // namespace acex::workloads
