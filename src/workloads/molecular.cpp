#include "workloads/molecular.hpp"

#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace acex::workloads {
namespace {

void put_f32(Bytes& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void put_i32(Bytes& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
}

}  // namespace

MolecularGenerator::MolecularGenerator(MolecularConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.atom_count == 0) {
    throw ConfigError("molecular: atom_count must be > 0");
  }
  if (config_.species_count == 0 || config_.species_count > 64) {
    throw ConfigError("molecular: species_count must be in [1, 64]");
  }
  atoms_.resize(config_.atom_count);
  for (auto& a : atoms_) {
    a.x = static_cast<float>(rng_.uniform() * config_.box_size);
    a.y = static_cast<float>(rng_.uniform() * config_.box_size);
    a.z = static_cast<float>(rng_.uniform() * config_.box_size);
    a.vx = quantize(rng_.gaussian() * config_.temperature);
    a.vy = quantize(rng_.gaussian() * config_.temperature);
    a.vz = quantize(rng_.gaussian() * config_.temperature);
    // Species follow a skewed (geometric-ish) distribution: a couple of
    // types dominate, like solvent atoms in real MD data.
    std::int32_t type = 0;
    while (type + 1 < static_cast<std::int32_t>(config_.species_count) &&
           rng_.chance(0.45)) {
      ++type;
    }
    a.type = type;
  }
}

float MolecularGenerator::quantize(double v) const noexcept {
  const double q = config_.velocity_quantum;
  return static_cast<float>(std::round(v / q) * q);
}

void MolecularGenerator::step() {
  const auto box = static_cast<float>(config_.box_size);
  for (auto& a : atoms_) {
    // Thermal kick, then drift; reflect at the box walls.
    a.vx = quantize(a.vx * 0.9 + rng_.gaussian() * config_.temperature * 0.3);
    a.vy = quantize(a.vy * 0.9 + rng_.gaussian() * config_.temperature * 0.3);
    a.vz = quantize(a.vz * 0.9 + rng_.gaussian() * config_.temperature * 0.3);
    a.x += a.vx;
    a.y += a.vy;
    a.z += a.vz;
    const auto reflect = [box](float& p, float& v) {
      if (p < 0) {
        p = -p;
        v = -v;
      } else if (p > box) {
        p = 2 * box - p;
        v = -v;
      }
    };
    reflect(a.x, a.vx);
    reflect(a.y, a.vy);
    reflect(a.z, a.vz);
  }
}

Bytes MolecularGenerator::coordinates_bytes() const {
  Bytes out;
  out.reserve(atoms_.size() * 12);
  for (const auto& a : atoms_) {
    put_f32(out, a.x);
    put_f32(out, a.y);
    put_f32(out, a.z);
  }
  return out;
}

Bytes MolecularGenerator::velocities_bytes() const {
  Bytes out;
  out.reserve(atoms_.size() * 12);
  for (const auto& a : atoms_) {
    put_f32(out, a.vx);
    put_f32(out, a.vy);
    put_f32(out, a.vz);
  }
  return out;
}

Bytes MolecularGenerator::types_bytes() const {
  Bytes out;
  out.reserve(atoms_.size() * 4);
  for (const auto& a : atoms_) put_i32(out, a.type);
  return out;
}

pbio::RecordFormat MolecularGenerator::snapshot_format() {
  using pbio::FieldType;
  return pbio::RecordFormat(
      "md.atom", {
                     {"id", FieldType::kUInt32},
                     {"type", FieldType::kInt32},
                     {"x", FieldType::kFloat32},
                     {"y", FieldType::kFloat32},
                     {"z", FieldType::kFloat32},
                     {"vx", FieldType::kFloat32},
                     {"vy", FieldType::kFloat32},
                     {"vz", FieldType::kFloat32},
                 });
}

Bytes MolecularGenerator::pbio_snapshot() const {
  const pbio::Encoder encoder(snapshot_format());
  Bytes out;
  encoder.encode_format(out);
  pbio::Record record(encoder.format());
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const Atom& a = atoms_[i];
    record.set("id", static_cast<std::uint32_t>(i));
    record.set("type", a.type);
    record.set("x", a.x);
    record.set("y", a.y);
    record.set("z", a.z);
    record.set("vx", a.vx);
    record.set("vy", a.vy);
    record.set("vz", a.vz);
    encoder.encode_record(record, out);
  }
  return out;
}

Bytes MolecularGenerator::stream(std::size_t steps) {
  Bytes out;
  for (std::size_t s = 0; s < steps; ++s) {
    const Bytes snap = pbio_snapshot();
    out.insert(out.end(), snap.begin(), snap.end());
    step();
  }
  return out;
}

}  // namespace acex::workloads
