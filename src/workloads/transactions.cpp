#include "workloads/transactions.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace acex::workloads {
namespace {

constexpr std::array kAirports = {"ATL", "JFK", "ORD", "DFW", "LAX",
                                  "TLV", "CDG", "LHR", "NRT", "SLC"};
constexpr std::array kKinds = {"DEPARTURE", "ARRIVAL", "GATE_CHANGE",
                               "BAGGAGE_SCAN", "DELAY_NOTICE", "CREW_SWAP"};
constexpr std::array kStatus = {"ON_TIME", "DELAYED", "BOARDING",
                                "CANCELLED", "DIVERTED", "COMPLETED"};
constexpr std::array kCarriers = {"DL", "AA", "UA", "LY", "AF"};

}  // namespace

TransactionGenerator::TransactionGenerator(std::uint64_t seed) : rng_(seed) {}

TransactionGenerator::EventData TransactionGenerator::next_event() {
  EventData e;
  e.kind_idx = static_cast<unsigned>(rng_.below(kKinds.size()));
  e.kind = kKinds[e.kind_idx];
  // A small working set of flights recurs, giving long-range repetition.
  e.carrier_idx = static_cast<unsigned>(rng_.below(kCarriers.size()));
  e.flight_no = static_cast<unsigned>(1000 + rng_.below(40));
  char flight[8];
  std::snprintf(flight, sizeof flight, "%s%04u", kCarriers[e.carrier_idx],
                e.flight_no);
  e.flight = flight;
  e.origin_idx = static_cast<unsigned>(rng_.below(kAirports.size()));
  e.origin = kAirports[e.origin_idx];
  do {
    e.destination_idx = static_cast<unsigned>(rng_.below(kAirports.size()));
    e.destination = kAirports[e.destination_idx];
  } while (e.destination == e.origin);
  e.status_idx = static_cast<unsigned>(rng_.below(kStatus.size()));
  e.status = kStatus[e.status_idx];
  clock_minutes_ = (clock_minutes_ + static_cast<unsigned>(rng_.below(3))) %
                   (24 * 60);
  e.minute = clock_minutes_;
  char pnr[8];
  std::snprintf(pnr, sizeof pnr, "%c%c%04u",
                static_cast<char>('A' + rng_.below(26)),
                static_cast<char>('A' + rng_.below(26)),
                static_cast<unsigned>(rng_.below(10000)));
  e.pnr = pnr;
  ++events_;
  return e;
}

std::string TransactionGenerator::next_text() {
  const EventData e = next_event();
  // Per-line unique counters (sequence, baggage, pax, fuel) keep the data
  // out of the trivially-compressible regime, while the fixed field
  // structure preserves the "high rate of string repetitions" the paper
  // describes — together they land the Fig. 2 ratio band.
  char line[200];
  std::snprintf(line, sizeof line,
                "%02u:%02u:%02u SEQ=%07llu OPS %s FLIGHT=%s ROUTE=%s-%s "
                "STATUS=%s PNR=%s BAG=%05u PAX=%03u FUEL=%05u\n",
                e.minute / 60, e.minute % 60,
                static_cast<unsigned>(rng_.below(60)),
                static_cast<unsigned long long>(events_), e.kind,
                e.flight.c_str(), e.origin, e.destination, e.status,
                e.pnr.c_str(), static_cast<unsigned>(rng_.below(100000)),
                static_cast<unsigned>(rng_.below(500)),
                static_cast<unsigned>(10000 + rng_.below(90000)));
  return line;
}

std::string TransactionGenerator::next_xml() {
  const EventData e = next_event();
  char elem[320];
  std::snprintf(
      elem, sizeof elem,
      "  <operational-event kind=\"%s\" seq=\"%llu\">\n"
      "    <flight carrier-assigned=\"true\">%s</flight>\n"
      "    <route origin=\"%s\" destination=\"%s\"/>\n"
      "    <status>%s</status>\n"
      "    <timestamp minute-of-day=\"%u\"/>\n"
      "    <passenger-record locator=\"%s\" bags=\"%u\"/>\n"
      "  </operational-event>\n",
      e.kind, static_cast<unsigned long long>(events_), e.flight.c_str(),
      e.origin, e.destination, e.status, e.minute, e.pnr.c_str(),
      static_cast<unsigned>(rng_.below(10)));
  return elem;
}

const pbio::RecordFormat& TransactionGenerator::record_format() {
  using pbio::FieldType;
  static const pbio::RecordFormat kFormat(
      "txn-event-v1",
      {{"seq", FieldType::kUInt64},          // monotonic counter
       {"minute", FieldType::kUInt32},       // slowly advancing clock
       {"kind", FieldType::kInt32},          // 6 distinct values
       {"carrier", FieldType::kInt32},       // 5 distinct values
       {"origin", FieldType::kInt32},        // 10 distinct values
       {"destination", FieldType::kInt32},   // 10 distinct values
       {"status", FieldType::kInt32},        // 6 distinct values
       {"flight_no", FieldType::kUInt32},    // 40 distinct values
       {"bags", FieldType::kUInt32},         // skewed quantity
       {"passengers", FieldType::kUInt32},   // skewed quantity
       {"fuel_kg", FieldType::kFloat32},     // smooth random walk
       {"fare_usd", FieldType::kFloat64}});  // quantized price grid
  return kFormat;
}

pbio::Record TransactionGenerator::next_record() {
  const EventData e = next_event();
  fuel_kg_ = static_cast<unsigned>(
      std::clamp<std::int64_t>(static_cast<std::int64_t>(fuel_kg_) +
                                   rng_.between(-120, 120),
                               8000, 96000));
  pbio::Record r(record_format());
  r.set(0, static_cast<std::uint64_t>(events_));
  r.set(1, static_cast<std::uint32_t>(e.minute));
  r.set(2, static_cast<std::int32_t>(e.kind_idx));
  r.set(3, static_cast<std::int32_t>(e.carrier_idx));
  r.set(4, static_cast<std::int32_t>(e.origin_idx));
  r.set(5, static_cast<std::int32_t>(e.destination_idx));
  r.set(6, static_cast<std::int32_t>(e.status_idx));
  r.set(7, static_cast<std::uint32_t>(e.flight_no));
  r.set(8, static_cast<std::uint32_t>(rng_.below(100000)));
  r.set(9, static_cast<std::uint32_t>(rng_.below(500)));
  r.set(10, static_cast<float>(fuel_kg_));
  // Fares live on a cent grid around a per-flight base — the TPC-H-style
  // "numeric with limited precision" column.
  r.set(11, 89.0 + 3.5 * static_cast<double>(e.flight_no % 40) +
                0.01 * static_cast<double>(rng_.below(2000)));
  return r;
}

Bytes TransactionGenerator::pbio_block(std::size_t records) {
  const pbio::Encoder encoder(record_format());
  Bytes out;
  encoder.encode_format(out);
  for (std::size_t i = 0; i < records; ++i) {
    encoder.encode_record(next_record(), out);
  }
  return out;
}

Bytes TransactionGenerator::text_block(std::size_t bytes) {
  Bytes out;
  out.reserve(bytes + 160);
  while (out.size() < bytes) {
    const std::string line = next_text();
    out.insert(out.end(), line.begin(), line.end());
  }
  out.resize(bytes);
  return out;
}

Bytes TransactionGenerator::xml_block(std::size_t bytes) {
  static constexpr char kOpen[] = "<operational-feed>\n";
  static constexpr char kClose[] = "</operational-feed>\n";
  Bytes out;
  out.reserve(bytes + 320);
  out.insert(out.end(), kOpen, kOpen + sizeof kOpen - 1);
  while (out.size() + sizeof kClose - 1 < bytes) {
    const std::string elem = next_xml();
    out.insert(out.end(), elem.begin(), elem.end());
  }
  out.insert(out.end(), kClose, kClose + sizeof kClose - 1);
  out.resize(bytes);
  return out;
}

}  // namespace acex::workloads
