#include "workloads/transactions.hpp"

#include <array>
#include <cstdio>

namespace acex::workloads {
namespace {

constexpr std::array kAirports = {"ATL", "JFK", "ORD", "DFW", "LAX",
                                  "TLV", "CDG", "LHR", "NRT", "SLC"};
constexpr std::array kKinds = {"DEPARTURE", "ARRIVAL", "GATE_CHANGE",
                               "BAGGAGE_SCAN", "DELAY_NOTICE", "CREW_SWAP"};
constexpr std::array kStatus = {"ON_TIME", "DELAYED", "BOARDING",
                                "CANCELLED", "DIVERTED", "COMPLETED"};
constexpr std::array kCarriers = {"DL", "AA", "UA", "LY", "AF"};

}  // namespace

TransactionGenerator::TransactionGenerator(std::uint64_t seed) : rng_(seed) {}

TransactionGenerator::EventData TransactionGenerator::next_event() {
  EventData e;
  e.kind = kKinds[rng_.below(kKinds.size())];
  // A small working set of flights recurs, giving long-range repetition.
  char flight[8];
  std::snprintf(flight, sizeof flight, "%s%04u",
                kCarriers[rng_.below(kCarriers.size())],
                static_cast<unsigned>(1000 + rng_.below(40)));
  e.flight = flight;
  e.origin = kAirports[rng_.below(kAirports.size())];
  do {
    e.destination = kAirports[rng_.below(kAirports.size())];
  } while (e.destination == e.origin);
  e.status = kStatus[rng_.below(kStatus.size())];
  clock_minutes_ = (clock_minutes_ + static_cast<unsigned>(rng_.below(3))) %
                   (24 * 60);
  e.minute = clock_minutes_;
  char pnr[8];
  std::snprintf(pnr, sizeof pnr, "%c%c%04u",
                static_cast<char>('A' + rng_.below(26)),
                static_cast<char>('A' + rng_.below(26)),
                static_cast<unsigned>(rng_.below(10000)));
  e.pnr = pnr;
  ++events_;
  return e;
}

std::string TransactionGenerator::next_text() {
  const EventData e = next_event();
  // Per-line unique counters (sequence, baggage, pax, fuel) keep the data
  // out of the trivially-compressible regime, while the fixed field
  // structure preserves the "high rate of string repetitions" the paper
  // describes — together they land the Fig. 2 ratio band.
  char line[200];
  std::snprintf(line, sizeof line,
                "%02u:%02u:%02u SEQ=%07llu OPS %s FLIGHT=%s ROUTE=%s-%s "
                "STATUS=%s PNR=%s BAG=%05u PAX=%03u FUEL=%05u\n",
                e.minute / 60, e.minute % 60,
                static_cast<unsigned>(rng_.below(60)),
                static_cast<unsigned long long>(events_), e.kind,
                e.flight.c_str(), e.origin, e.destination, e.status,
                e.pnr.c_str(), static_cast<unsigned>(rng_.below(100000)),
                static_cast<unsigned>(rng_.below(500)),
                static_cast<unsigned>(10000 + rng_.below(90000)));
  return line;
}

std::string TransactionGenerator::next_xml() {
  const EventData e = next_event();
  char elem[320];
  std::snprintf(
      elem, sizeof elem,
      "  <operational-event kind=\"%s\" seq=\"%llu\">\n"
      "    <flight carrier-assigned=\"true\">%s</flight>\n"
      "    <route origin=\"%s\" destination=\"%s\"/>\n"
      "    <status>%s</status>\n"
      "    <timestamp minute-of-day=\"%u\"/>\n"
      "    <passenger-record locator=\"%s\" bags=\"%u\"/>\n"
      "  </operational-event>\n",
      e.kind, static_cast<unsigned long long>(events_), e.flight.c_str(),
      e.origin, e.destination, e.status, e.minute, e.pnr.c_str(),
      static_cast<unsigned>(rng_.below(10)));
  return elem;
}

Bytes TransactionGenerator::text_block(std::size_t bytes) {
  Bytes out;
  out.reserve(bytes + 160);
  while (out.size() < bytes) {
    const std::string line = next_text();
    out.insert(out.end(), line.begin(), line.end());
  }
  out.resize(bytes);
  return out;
}

Bytes TransactionGenerator::xml_block(std::size_t bytes) {
  static constexpr char kOpen[] = "<operational-feed>\n";
  static constexpr char kClose[] = "</operational-feed>\n";
  Bytes out;
  out.reserve(bytes + 320);
  out.insert(out.end(), kOpen, kOpen + sizeof kOpen - 1);
  while (out.size() + sizeof kClose - 1 < bytes) {
    const std::string elem = next_xml();
    out.insert(out.end(), elem.begin(), elem.end());
  }
  out.insert(out.end(), kClose, kClose + sizeof kClose - 1);
  out.resize(bytes);
  return out;
}

}  // namespace acex::workloads
