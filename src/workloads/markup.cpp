#include "workloads/markup.hpp"

#include <array>
#include <cstdio>

namespace acex::workloads {
namespace {

// One tag vocabulary per nesting level, so the same scaffolding recurs at
// the same depth across records (what real schema-driven XML looks like).
constexpr std::array kLevel0 = {"purchase-order", "shipment-notice",
                                "inventory-sync"};
constexpr std::array kLevel1 = {"header", "line-items", "routing"};
constexpr std::array kLevel2 = {"item", "party", "leg"};
constexpr std::array kLevel3 = {"identifier", "quantity", "timestamp"};
constexpr std::array kCurrencies = {"USD", "EUR", "ILS", "JPY"};
constexpr std::array kUnits = {"EA", "KG", "CT", "PAL"};

constexpr std::size_t kMaxDepth = 4;

const char* tag_for(std::size_t depth, std::uint64_t pick) {
  switch (depth) {
    case 0: return kLevel0[pick % kLevel0.size()];
    case 1: return kLevel1[pick % kLevel1.size()];
    case 2: return kLevel2[pick % kLevel2.size()];
    default: return kLevel3[pick % kLevel3.size()];
  }
}

void indent(std::string& out, std::size_t depth) {
  out.append(2 * (depth + 1), ' ');
}

}  // namespace

MarkupGenerator::MarkupGenerator(std::uint64_t seed) : rng_(seed) {}

void MarkupGenerator::emit_element(std::string& out, std::size_t depth) {
  const char* tag = tag_for(depth, rng_.below(64));
  ++nodes_;
  indent(out, depth);
  char open[160];
  if (depth + 1 >= kMaxDepth || rng_.chance(0.35)) {
    // Leaf: unique numeric payload keeps the stream out of the
    // trivially-compressible regime.
    std::snprintf(open, sizeof open,
                  "<%s uom=\"%s\" currency=\"%s\">%llu.%02llu</%s>\n", tag,
                  kUnits[rng_.below(kUnits.size())],
                  kCurrencies[rng_.below(kCurrencies.size())],
                  static_cast<unsigned long long>(rng_.below(100000)),
                  static_cast<unsigned long long>(rng_.below(100)), tag);
    out += open;
    return;
  }
  std::snprintf(open, sizeof open, "<%s node=\"%llu\" rev=\"%llu\">\n", tag,
                static_cast<unsigned long long>(nodes_),
                static_cast<unsigned long long>(rng_.below(8)));
  out += open;
  const std::uint64_t children = 1 + rng_.below(3);
  for (std::uint64_t i = 0; i < children; ++i) {
    emit_element(out, depth + 1);
  }
  indent(out, depth);
  out += "</";
  out += tag;
  out += ">\n";
}

std::string MarkupGenerator::next_record() {
  std::string out;
  out.reserve(1024);
  emit_element(out, 0);
  ++records_;
  return out;
}

Bytes MarkupGenerator::block(std::size_t bytes) {
  static constexpr char kOpen[] = "<document-stream version=\"1\">\n";
  static constexpr char kClose[] = "</document-stream>\n";
  Bytes out;
  out.reserve(bytes + 1024);
  out.insert(out.end(), kOpen, kOpen + sizeof kOpen - 1);
  while (out.size() + sizeof kClose - 1 < bytes) {
    const std::string record = next_record();
    out.insert(out.end(), record.begin(), record.end());
  }
  out.insert(out.end(), kClose, kClose + sizeof kClose - 1);
  out.resize(bytes);
  return out;
}

}  // namespace acex::workloads
