#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/bytes.hpp"

namespace acex {

/// Span-with-owner: a contiguous read-only byte range plus a shared handle
/// on whatever keeps those bytes alive — a heap buffer, a mapped
/// shared-memory slab, or nothing at all (a borrowed view, valid only as
/// long as the borrowed-from storage).
///
/// This is the zero-copy payload currency of the frame path (DESIGN.md
/// §16): one encoded frame can sit in a single buffer while the egress
/// queue, the retransmit ring, and sixty-four fan-out subscribers all hold
/// the SAME bytes through refcounted views, instead of each taking a
/// private vector<byte> copy. A slab-backed view's owner releases the
/// slab's refcount when the last view drops, which is what lets a
/// shared-memory transport reclaim ring slots safely.
///
/// Copying a BufferView copies a pointer pair and bumps a shared_ptr —
/// never the bytes. It converts implicitly to ByteView, so every API that
/// takes a span accepts it unchanged.
class BufferView {
 public:
  /// Empty view (no bytes, no owner).
  BufferView() = default;

  /// Alias `view` kept alive by `owner`. `view` must point into storage
  /// `owner` controls; the bytes stay valid while any copy of this
  /// BufferView lives.
  BufferView(std::shared_ptr<const void> owner, ByteView view) noexcept
      : owner_(std::move(owner)), data_(view.data()), size_(view.size()) {}

  /// Adopt a byte vector: the view owns the (moved-in) storage.
  static BufferView own(Bytes bytes);

  /// Copy `bytes` into fresh owned storage.
  static BufferView copy(ByteView bytes);

  /// Borrow `bytes` with NO owner: the caller guarantees the storage
  /// outlives every copy of the view. The cheapest constructor — used for
  /// within-call spans where lifetime is lexically obvious.
  static BufferView borrow(ByteView bytes) noexcept {
    BufferView v;
    v.data_ = bytes.data();
    v.size_ = bytes.size();
    return v;
  }

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }

  ByteView view() const noexcept { return ByteView(data_, size_); }
  operator ByteView() const noexcept { return view(); }  // NOLINT: drop-in span

  /// Sub-range sharing this view's owner (so the slice keeps the backing
  /// storage alive on its own). `offset + length` must be within size().
  BufferView subview(std::size_t offset, std::size_t length) const noexcept {
    return BufferView(owner_, ByteView(data_ + offset, length));
  }

  /// Materialize an owned byte vector (always copies).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// True when some owner keeps the bytes alive (owned or slab-backed);
  /// false for empty and borrowed views.
  bool has_owner() const noexcept { return owner_ != nullptr; }

  /// Identity of the backing storage, for share-aware memory accounting:
  /// two views with the same non-null owner_key() hold the same allocation
  /// and must be charged once, not twice. Borrowed views return nullptr.
  const void* owner_key() const noexcept { return owner_.get(); }

  /// The owner handle itself — transports that recognize their own backing
  /// storage (the shm slab fast path) inspect this.
  const std::shared_ptr<const void>& owner() const noexcept { return owner_; }

  /// Content equality (byte-wise, not identity).
  friend bool operator==(const BufferView& a, ByteView b) noexcept {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::equal(a.begin(), a.end(), b.begin()));
  }
  friend bool operator==(const BufferView& a, const BufferView& b) noexcept {
    return a == b.view();
  }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace acex
