#include "util/rng.hpp"

#include <cmath>

namespace acex {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo expected
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform() * 2.0 - 1.0;
    v = uniform() * 2.0 - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

Bytes Rng::bytes(std::size_t n) noexcept {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = (*this)();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = (*this)();
    for (int k = 0; i < n; ++i, ++k) out[i] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  return out;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

}  // namespace acex
