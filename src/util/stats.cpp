#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acex {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stddev_percent() const noexcept {
  return mean_ != 0.0 ? 100.0 * stddev() / std::abs(mean_) : 0.0;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw ConfigError("Ewma alpha must be in (0, 1]");
  }
}

void Ewma::add(double x) noexcept {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ConfigError("SlidingWindow capacity must be > 0");
}

void SlidingWindow::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  if (samples_.size() > capacity_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

double SlidingWindow::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw ConfigError("Histogram needs hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::edge(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  std::size_t seen = underflow_;
  if (seen > target) return lo_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return edge(i) + width / 2;
  }
  return hi_;
}

}  // namespace acex
