#include "util/bitstream.hpp"

#include <cassert>

#include "util/error.hpp"

namespace acex {

void BitWriter::write(std::uint64_t bits, unsigned count) {
  assert(count <= 57);
  if (count == 0) return;
  if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
  acc_ = (acc_ << count) | bits;
  pending_ += count;
  total_bits_ += count;
  while (pending_ >= 8) {
    pending_ -= 8;
    buf_.push_back(static_cast<std::uint8_t>(acc_ >> pending_));
  }
}

void BitWriter::align_to_byte() {
  if (pending_ != 0) write(0, 8 - pending_);
}

Bytes BitWriter::take() {
  align_to_byte();
  Bytes out = std::move(buf_);
  buf_.clear();
  acc_ = 0;
  pending_ = 0;
  total_bits_ = 0;
  return out;
}

void BitWriter::take_into(Bytes& out) {
  Bytes flushed = take();
  out.insert(out.end(), flushed.begin(), flushed.end());
}

std::uint64_t BitReader::read(unsigned count) {
  assert(count <= 57);
  if (count == 0) return 0;
  if (count > bits_left()) throw DecodeError("bitstream: read past end");
  const std::uint64_t v = peek(count);
  pos_ += count;
  return v;
}

std::uint64_t BitReader::peek(unsigned count) const {
  assert(count <= 57);
  if (count == 0) return 0;
  std::uint64_t acc = 0;
  std::size_t byte = static_cast<std::size_t>(pos_ >> 3);
  const unsigned bit_off = static_cast<unsigned>(pos_ & 7);
  // Gather enough bytes to cover bit_off + count bits.
  unsigned gathered = 0;
  while (gathered < bit_off + count) {
    const std::uint8_t b = byte < data_.size() ? data_[byte] : 0;
    acc = (acc << 8) | b;
    ++byte;
    gathered += 8;
  }
  // Drop the low bits that are beyond the requested window.
  acc >>= (gathered - bit_off - count);
  if (count < 64) acc &= (std::uint64_t{1} << count) - 1;
  return acc;
}

void BitReader::skip(unsigned count) {
  if (count > bits_left()) throw DecodeError("bitstream: skip past end");
  pos_ += count;
}

void BitReader::align_to_byte() noexcept {
  pos_ = (pos_ + 7) & ~std::uint64_t{7};
}

void BitReader::seek(std::uint64_t bit_pos) {
  if (bit_pos > static_cast<std::uint64_t>(data_.size()) * 8) {
    throw DecodeError("bitstream: seek past end");
  }
  pos_ = bit_pos;
}

}  // namespace acex
