#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace acex {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the same one zlib/gzip use).
/// Frames append a CRC so receivers detect corruption introduced anywhere in
/// the compress -> transport -> decompress path.
class Crc32 {
 public:
  /// Fold `data` into the running checksum.
  void update(ByteView data) noexcept;

  /// Final checksum value for everything updated so far.
  std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  /// Reset to the empty-input state.
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over Crc32.
std::uint32_t crc32(ByteView data) noexcept;

}  // namespace acex
