#pragma once

#include <cstdint>
#include <cstddef>

#include "util/bytes.hpp"

namespace acex {

/// Append `value` to `out` as an unsigned LEB128 varint (1..10 bytes).
/// Used by the frame format and PBIO to store sizes compactly.
void put_varint(Bytes& out, std::uint64_t value);

/// Decode an unsigned LEB128 varint from `in` starting at `*pos`, advancing
/// `*pos` past it. Throws DecodeError on truncation or >64-bit overflow.
std::uint64_t get_varint(ByteView in, std::size_t* pos);

/// Number of bytes put_varint would emit for `value`.
std::size_t varint_size(std::uint64_t value) noexcept;

}  // namespace acex
