#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace acex {

/// Streaming mean / variance / min / max (Welford's algorithm).
/// Used to report the link-speed standard deviations of Fig. 5 and to
/// summarize benchmark series.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  /// Standard deviation as a percentage of the mean (the form Fig. 5 uses).
  double stddev_percent() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Exponentially weighted moving average. The reducing-speed monitor and the
/// bandwidth estimator both smooth their measurements with this, matching the
/// paper's "measured continually, as subsequent blocks are compressed".
class Ewma {
 public:
  /// `alpha` is the weight of the newest sample, in (0, 1].
  explicit Ewma(double alpha = 0.3);

  void add(double x) noexcept;

  /// Current smoothed value; `fallback` until the first sample arrives.
  double value_or(double fallback) const noexcept {
    return seeded_ ? value_ : fallback;
  }
  bool has_value() const noexcept { return seeded_; }
  void reset() noexcept { seeded_ = false; }

 private:
  double alpha_;
  double value_ = 0;
  bool seeded_ = false;
};

/// Fixed-capacity sliding window of samples with O(1) mean.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  double mean() const noexcept;
  std::size_t size() const noexcept { return samples_.size(); }
  bool full() const noexcept { return samples_.size() == capacity_; }

 private:
  std::size_t capacity_;
  std::deque<double> samples_;
  double sum_ = 0;
};

/// Simple linear-bucket histogram used by benches to characterize block-size
/// and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count_at(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const noexcept { return total_; }
  /// Lower edge of bucket `i`.
  double edge(std::size_t i) const noexcept;
  /// Approximate quantile (0 <= q <= 1) from bucket midpoints.
  double quantile(double q) const noexcept;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace acex
