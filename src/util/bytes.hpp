#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace acex {

/// Owned byte buffer used throughout the library for payloads.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes; the preferred parameter type at API
/// boundaries (C++ Core Guidelines I.13).
using ByteView = std::span<const std::uint8_t>;

/// Convert a string's bytes into an owned buffer (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Convert bytes to a std::string (bytes are copied verbatim).
std::string to_string(ByteView b);

/// Render at most `max_bytes` of `b` as a human-readable hex dump, used in
/// error messages and debug logging.
std::string hexdump(ByteView b, std::size_t max_bytes = 64);

/// Human-readable size such as "128.0 KiB" or "1.2 MiB".
std::string format_size(std::uint64_t bytes);

}  // namespace acex
