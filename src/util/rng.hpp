#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.hpp"

namespace acex {

/// Deterministic xoshiro256** PRNG. All randomness in acex — workload
/// generators, link jitter, loss — flows from explicitly seeded Rng
/// instances so that every experiment is reproducible (DESIGN.md §6).
///
/// Satisfies std::uniform_random_bit_generator, so it plugs into <random>
/// distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Normally distributed double (Box-Muller), mean 0 stddev 1.
  double gaussian() noexcept;

  /// Fill a buffer with `n` random bytes.
  Bytes bytes(std::size_t n) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  std::uint64_t s_[4];
  double spare_ = 0;
  bool has_spare_ = false;
};

}  // namespace acex
