#include "util/bytes.hpp"

#include <array>
#include <cstdio>

namespace acex {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string hexdump(ByteView b, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  std::string out;
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(i % 16 == 0 ? '\n' : ' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (b.size() > max_bytes) out += " ...";
  return out;
}

std::string format_size(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace acex
