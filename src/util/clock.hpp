#pragma once

#include <chrono>
#include <cstdint>

namespace acex {

/// Simulation/measurement time, in seconds. A plain double keeps virtual-time
/// arithmetic in the link emulator simple; real clocks convert on read.
using Seconds = double;

/// Abstract time source. The adaptive machinery and the link emulator are
/// written against this interface so the same code runs in real time (TCP
/// transport, examples) and in virtual time (deterministic benches that
/// simulate 160 s in milliseconds of wall time).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since an arbitrary epoch (monotonic).
  virtual Seconds now() const = 0;
};

/// Wall-clock monotonic time, used wherever the paper measures real CPU work
/// (compression speed microbenchmarks).
class MonotonicClock final : public Clock {
 public:
  Seconds now() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(t).count();
  }
};

/// Manually advanced clock for deterministic simulation. Never goes
/// backwards; advancing by a negative amount throws via assertion in debug
/// and is clamped in release.
class VirtualClock final : public Clock {
 public:
  Seconds now() const override { return now_; }

  /// Move time forward by `dt` seconds (negative dt is ignored).
  void advance(Seconds dt) {
    if (dt > 0) now_ += dt;
  }

  /// Jump to an absolute time, if later than the current one.
  void advance_to(Seconds t) {
    if (t > now_) now_ = t;
  }

 private:
  Seconds now_ = 0;
};

/// RAII stopwatch over any Clock. `elapsed()` may be read repeatedly.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  Seconds elapsed() const { return clock_->now() - start_; }

  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  Seconds start_;
};

}  // namespace acex
