#include "util/varint.hpp"

#include "util/error.hpp"

namespace acex {

void put_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(ByteView in, std::size_t* pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (*pos >= in.size()) throw DecodeError("varint: truncated input");
    const std::uint8_t byte = in[(*pos)++];
    if (shift == 63 && byte > 1) throw DecodeError("varint: overflows 64 bits");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw DecodeError("varint: overlong encoding");
  }
}

std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace acex
