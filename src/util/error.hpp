#pragma once

#include <stdexcept>
#include <string>

namespace acex {

/// Root of the library's exception hierarchy. Every failure acex can raise
/// derives from this, so callers may catch `acex::Error` to contain the
/// library without swallowing unrelated exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Compressed, framed, or PBIO-encoded input was malformed, truncated, or
/// failed an integrity check. Decoders throw this instead of crashing on
/// corrupt data (see DESIGN.md §6).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// A transport or OS-level I/O operation failed (socket error, closed peer).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// A component was configured with invalid parameters (zero block size,
/// negative bandwidth, unknown codec id, ...). Indicates caller misuse.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

}  // namespace acex
