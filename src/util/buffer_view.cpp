#include "util/buffer_view.hpp"

namespace acex {

BufferView BufferView::own(Bytes bytes) {
  // The shared owner is the vector itself; the view aliases its storage.
  // Order matters: take the data pointer AFTER the move.
  auto holder = std::make_shared<Bytes>(std::move(bytes));
  ByteView view(holder->data(), holder->size());
  return BufferView(std::shared_ptr<const void>(std::move(holder)), view);
}

BufferView BufferView::copy(ByteView bytes) {
  return own(Bytes(bytes.begin(), bytes.end()));
}

}  // namespace acex
