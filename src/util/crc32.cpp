#include "util/crc32.hpp"

#include <array>

namespace acex {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(ByteView data) noexcept {
  std::uint32_t c = state_;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(ByteView data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace acex
