#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace acex {

/// MSB-first bit writer backed by an owned byte buffer. All entropy coders
/// in acex (Huffman, LZ token coder, BWT pipeline) serialize through this.
///
/// Bits are packed from the most significant bit of each byte downward, so
/// that a canonical Huffman decoder can peek a fixed-width window.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `count` bits of `bits` (0 <= count <= 57), MSB first.
  void write(std::uint64_t bits, unsigned count);

  /// Append a single bit.
  void write_bit(bool bit) { write(bit ? 1u : 0u, 1); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Number of bits written so far.
  std::uint64_t bit_count() const noexcept { return total_bits_; }

  /// Flush pending bits (zero-padded) and move the buffer out. The writer is
  /// left empty and reusable.
  Bytes take();

  /// Append the flushed contents to `out` instead of returning a new buffer.
  void take_into(Bytes& out);

 private:
  Bytes buf_;
  std::uint64_t acc_ = 0;   // pending bits, left-aligned count in bits_
  unsigned pending_ = 0;    // number of valid bits in acc_ (LSB-aligned)
  std::uint64_t total_bits_ = 0;
};

/// MSB-first bit reader over a non-owning byte view.
///
/// Reading past the end throws DecodeError; `peek` zero-fills past the end so
/// table-driven decoders can look ahead near the tail safely.
class BitReader {
 public:
  explicit BitReader(ByteView data) noexcept : data_(data) {}

  /// Read `count` bits (0 <= count <= 57), MSB first.
  std::uint64_t read(unsigned count);

  /// Read one bit.
  bool read_bit() { return read(1) != 0; }

  /// Return the next `count` bits without consuming them, zero-padded if the
  /// stream ends first.
  std::uint64_t peek(unsigned count) const;

  /// Consume `count` bits previously peeked. `count` may exceed the remaining
  /// stream only by the zero padding peeked; that still throws.
  void skip(unsigned count);

  /// Discard bits up to the next byte boundary.
  void align_to_byte() noexcept;

  /// Bits consumed so far.
  std::uint64_t bit_pos() const noexcept { return pos_; }

  /// Reposition to an absolute bit offset (used by the BWT resync decoder).
  void seek(std::uint64_t bit_pos);

  /// Bits remaining in the underlying view.
  std::uint64_t bits_left() const noexcept {
    const std::uint64_t total = static_cast<std::uint64_t>(data_.size()) * 8;
    return pos_ >= total ? 0 : total - pos_;
  }

 private:
  ByteView data_;
  std::uint64_t pos_ = 0;  // absolute bit position
};

}  // namespace acex
