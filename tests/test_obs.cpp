// Observability layer (DESIGN.md §9): instruments, registry, tracer,
// exporters, the telemetry robustness contract, and the obs counters the
// transport layer mirrors. Suite names all start with Obs* so the TSan CI
// job picks the whole file up by regex.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "adaptive/telemetry.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/fault_transport.hpp"
#include "transport/rate_limit.hpp"
#include "transport/retransmit.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"

namespace acex {
namespace {

using obs::BlockTracer;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricPoint;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedSpan;
using obs::SpanEvent;
using obs::Stage;

std::uint64_t global_counter(const std::string& full_name) {
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  const MetricPoint* p = s.find(full_name);
  return p ? p->counter : 0;
}

// ---------------------------------------------------------- instruments

TEST(ObsCounter, CountsExactlyUnderConcurrency) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksLevelsAndStaysSignedOnImbalance) {
  Gauge g;
  g.set(5);
  g.add(3);
  g.sub(10);  // transient imbalance must not wrap
  EXPECT_EQ(g.value(), -2);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsGauge, DeltaUpdatesSumAcrossThreads) {
  // The engine layers update shared gauges by delta (add on enter, sub on
  // exit) so concurrent pools compose; the net must return to zero.
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 5000; ++i) {
        g.add(1);
        g.sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketEdgesAreHalfOctavesAndConsistent) {
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
  // Every value must land in the bucket whose [lower, next-lower) range
  // contains it.
  for (const double v : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0, 12345.6, 1e9}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower(i), v) << "v=" << v;
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::bucket_lower(i + 1)) << "v=" << v;
    }
  }
  // Monotone edges.
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i - 1), Histogram::bucket_lower(i));
  }
}

TEST(ObsHistogram, SnapshotStatsAndQuantileOrdering) {
  Histogram h;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(static_cast<double>(i));
    sum += i;
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_LE(s.p50(), s.p90());
  EXPECT_LE(s.p90(), s.p99());
  // Half-octave buckets bound quantile error to a factor of sqrt(2).
  EXPECT_GT(s.p50(), 500.0 / 1.5);
  EXPECT_LT(s.p50(), 500.0 * 1.5);
  EXPECT_NEAR(s.mean(), sum / 1000.0, 1e-9);

  h.reset();
  const auto zero = h.snapshot();
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.min, 0.0);
  EXPECT_EQ(zero.p99(), 0.0);
}

TEST(ObsHistogram, ConcurrentRecordsKeepCountAndSumExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(2.0);
    });
  }
  for (auto& t : threads) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, 2.0 * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, SameNameSameInstrumentDifferentLabelDifferent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.events", "method", "huffman");
  Counter& b = reg.counter("x.events", "method", "huffman");
  Counter& c = reg.counter("x.events", "method", "lzw");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, KindMismatchThrowsConfigError) {
  MetricsRegistry reg;
  reg.counter("x.value");
  EXPECT_THROW(reg.gauge("x.value"), ConfigError);
  EXPECT_THROW(reg.histogram("x.value"), ConfigError);
}

TEST(ObsRegistry, ResetValuesKeepsCachedReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.count");
  Gauge& g = reg.gauge("x.depth");
  Histogram& h = reg.histogram("x.us");
  c.add(7);
  g.set(3);
  h.record(12.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // The same references keep working after the reset.
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &reg.counter("x.count"));
}

TEST(ObsRegistry, SnapshotIsOrderedByFullName) {
  MetricsRegistry reg;
  reg.counter("b.second");
  reg.counter("a.first");
  reg.gauge("a.first.child");
  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.points.size(), 3u);
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    EXPECT_LT(s.points[i - 1].full_name(), s.points[i].full_name());
  }
  EXPECT_NE(s.find("a.first"), nullptr);
  EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(ObsRegistry, KillSwitchStopsEveryInstrument) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.count");
  Gauge& g = reg.gauge("x.depth");
  Histogram& h = reg.histogram("x.us");
  obs::set_enabled(false);
  c.add(5);
  g.set(5);
  h.record(5);
  obs::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

// -------------------------------------------------------- overhead guard

TEST(ObsOverhead, DisabledAndEnabledIncrementsStayWithinBudget) {
  // Guard, not benchmark: the budget is generous enough to pass under
  // ASan/TSan but catches a lock or syscall sneaking onto the hot path
  // (a mutexed increment costs ~20-100 ns uncontended; a syscall, microseconds).
  constexpr int kOps = 200000;
  constexpr double kBudgetNsPerOp = 1000.0;  // 1 us/op, ~50x real cost
  Counter c;

  const auto time_loop = [&](auto&& body) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) body();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(end - start).count() /
           kOps;
  };

  volatile std::uint64_t sink = 0;
  const double null_ns = time_loop([&] { sink = sink + 1; });
  obs::set_enabled(false);
  const double disabled_ns = time_loop([&] { c.add(1); });
  obs::set_enabled(true);
  const double enabled_ns = time_loop([&] { c.add(1); });

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kOps));  // really ran
  EXPECT_LT(disabled_ns, kBudgetNsPerOp);
  EXPECT_LT(enabled_ns, kBudgetNsPerOp);
  // Sanity on the baseline itself so a clock glitch can't hide a regression.
  EXPECT_LT(null_ns, kBudgetNsPerOp);
}

// --------------------------------------------------------------- tracer

TEST(ObsTracer, RecordsSpansInOrderWithSteadyTimestamps) {
  BlockTracer tracer(16);
  const double t0 = tracer.now_us();
  tracer.record(1, Stage::kPlan, t0, t0 + 5.0);
  tracer.record(1, Stage::kEncode, t0 + 5.0, t0 + 30.0, /*worker=*/2);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, Stage::kPlan);
  EXPECT_EQ(spans[1].stage, Stage::kEncode);
  EXPECT_EQ(spans[1].worker, 2);
  EXPECT_DOUBLE_EQ(spans[1].duration_us(), 25.0);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, RingWrapKeepsNewestAndCountsDropped) {
  BlockTracer tracer(4);
  for (std::uint64_t b = 0; b < 10; ++b) {
    tracer.record(b, Stage::kEncode, 0, 1);
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and only the most recent history survives.
  EXPECT_EQ(spans.front().block, 6u);
  EXPECT_EQ(spans.back().block, 9u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);

  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.capacity(), 4u);
}

TEST(ObsTracer, DisabledTracerDropsNothingAndRecordsNothing) {
  BlockTracer tracer(8);
  tracer.set_enabled(false);
  tracer.record(1, Stage::kDecode, 0, 1);
  EXPECT_TRUE(tracer.snapshot().empty());
  tracer.set_enabled(true);
  tracer.record(1, Stage::kDecode, 0, 1);
  EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(ObsTracer, ScopedSpanBindsBlockLateAndRecordsOnExit) {
  BlockTracer tracer(8);
  {
    ScopedSpan span(tracer, 0, Stage::kPlan);
    span.set_block(41);  // plan learns the sequence at its end
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].block, 41u);
  EXPECT_EQ(spans[0].stage, Stage::kPlan);
  EXPECT_GE(spans[0].end_us, spans[0].start_us);
}

TEST(ObsTracer, ConcurrentRecordingLosesNothingBelowCapacity) {
  BlockTracer tracer(4096);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double now = tracer.now_us();
        tracer.record(static_cast<std::uint64_t>(t * kPerThread + i),
                      Stage::kEncode, now, now + 1.0, t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.recorded(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.snapshot().size(), kThreads * kPerThread);
}

// ------------------------------------------------------------- exporters

MetricsSnapshot exporter_fixture() {
  MetricsRegistry reg;
  reg.counter("acex.test.events").add(42);
  reg.counter("acex.test.events", "method", "lempel-ziv").add(7);
  reg.gauge("acex.test.depth").set(-3);
  Histogram& h = reg.histogram("acex.test.us", "method", "huffman");
  h.record(1.5);
  h.record(700.25);
  h.record(1e6 / 3.0);  // a double that needs all 17 digits
  return reg.snapshot();
}

void expect_snapshots_equal(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const MetricPoint& x = a.points[i];
    const MetricPoint& y = b.points[i];
    EXPECT_EQ(x.full_name(), y.full_name());
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.counter, y.counter);
    EXPECT_EQ(x.gauge, y.gauge);
    EXPECT_EQ(x.hist.count, y.hist.count);
    EXPECT_EQ(x.hist.sum, y.hist.sum);  // bit-exact via %.17g
    EXPECT_EQ(x.hist.min, y.hist.min);
    EXPECT_EQ(x.hist.max, y.hist.max);
    EXPECT_EQ(x.hist.buckets, y.hist.buckets);
  }
}

TEST(ObsExport, JsonLinesRoundTripsPointForPoint) {
  const MetricsSnapshot s = exporter_fixture();
  const MetricsSnapshot parsed = obs::parse_json_lines(obs::to_json_lines(s));
  expect_snapshots_equal(s, parsed);
}

TEST(ObsExport, PrometheusCrossChecksAgainstJsonLines) {
  // The two exporters must describe the same snapshot identically: parse
  // the JSON form back and render both through the Prometheus formatter.
  const MetricsSnapshot s = exporter_fixture();
  const MetricsSnapshot parsed = obs::parse_json_lines(obs::to_json_lines(s));
  EXPECT_EQ(obs::to_prometheus(parsed), obs::to_prometheus(s));
}

TEST(ObsExport, PrometheusFormatBasics) {
  const std::string text = obs::to_prometheus(exporter_fixture());
  EXPECT_NE(text.find("acex_test_events"), std::string::npos);
  EXPECT_NE(text.find("{method=\"lempel-ziv\"}"), std::string::npos);
  EXPECT_NE(text.find("acex_test_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("acex_test_us_count"), std::string::npos);
  EXPECT_EQ(obs::prometheus_name("acex.adaptive.encode_us"),
            "acex_adaptive_encode_us");
  EXPECT_EQ(obs::prometheus_name("weird-name/2"), "weird_name_2");
}

TEST(ObsExport, ParserSkipsSpanAndBenchLinesButRejectsGarbage) {
  const MetricsSnapshot s = exporter_fixture();
  BlockTracer tracer(4);
  tracer.record(1, Stage::kDeliver, 0, 2);
  const std::string mixed = std::string("{\"type\":\"bench\",\"name\":\"x\"}\n") +
                            obs::to_json_lines(s) +
                            obs::to_json_lines(tracer.snapshot());
  expect_snapshots_equal(s, obs::parse_json_lines(mixed));
  EXPECT_THROW(obs::parse_json_lines("not json\n"), DecodeError);
  EXPECT_THROW(obs::parse_json_lines("{\"type\":\"counter\"\n"), DecodeError);
}

// -------------------------------------------- telemetry robustness (§3.1)

echo::Event block_event() {
  echo::Event e;
  e.attributes.set_string("acex.t.kind", "block");
  e.attributes.set_int("acex.t.index", 0);
  e.attributes.set_string("acex.t.method", "huffman");
  e.attributes.set_int("acex.t.original", 1000);
  e.attributes.set_int("acex.t.wire", 500);
  e.attributes.set_double("acex.t.compress_us", 123.0);
  return e;
}

TEST(ObsTelemetry, MalformedBlockEventsAreCountedAndSkipped) {
  adaptive::TelemetryAggregator dash;

  echo::Event missing = block_event();
  missing.attributes.erase("acex.t.original");

  echo::Event wrong_type = block_event();
  wrong_type.attributes.set_string("acex.t.wire", "five hundred");

  echo::Event negative = block_event();
  negative.attributes.set_int("acex.t.original", -1);

  echo::Event nan_time = block_event();
  nan_time.attributes.set_double("acex.t.compress_us",
                                 std::nan(""));

  echo::Event empty_method = block_event();
  empty_method.attributes.set_string("acex.t.method", "");

  echo::Event unknown_kind;
  unknown_kind.attributes.set_string("acex.t.kind", "mystery");

  const std::uint64_t before = global_counter("acex.telemetry.malformed");
  for (const auto* e : {&missing, &wrong_type, &negative, &nan_time,
                        &empty_method, &unknown_kind}) {
    EXPECT_TRUE(dash.observe(*e));  // telemetry-kinded, even if unusable
  }
  EXPECT_EQ(dash.malformed(), 6u);
  EXPECT_EQ(dash.blocks(), 0u);  // aggregates untouched
  EXPECT_EQ(dash.original_bytes(), 0u);
  EXPECT_EQ(global_counter("acex.telemetry.malformed"), before + 6);

  // A well-formed event still lands after the garbage.
  EXPECT_TRUE(dash.observe(block_event()));
  EXPECT_EQ(dash.blocks(), 1u);
  EXPECT_EQ(dash.malformed(), 6u);
}

TEST(ObsTelemetry, PublishMetricsFeedsTheChannelAsMetricEvents) {
  MetricsRegistry reg;
  reg.counter("acex.test.events").add(3);
  reg.histogram("acex.test.us").record(50.0);

  echo::EventChannel channel("telemetry");
  adaptive::TelemetryPublisher publisher(channel);
  adaptive::TelemetryAggregator dash;
  std::map<std::string, std::int64_t> values;
  channel.subscribe([&](const echo::Event& e) {
    EXPECT_TRUE(dash.observe(e));
    if (const auto name = e.attributes.get_string("acex.t.name")) {
      values[*name] = e.attributes.get_int("acex.t.value").value_or(
          e.attributes.get_int("acex.t.count").value_or(-1));
    }
  });
  publisher.publish_metrics(reg.snapshot());

  EXPECT_EQ(dash.metrics_seen(), 2u);
  EXPECT_EQ(dash.malformed(), 0u);
  EXPECT_EQ(values.at("acex.test.events"), 3);
  EXPECT_EQ(values.at("acex.test.us"), 1);  // histogram ships its count
}

// --------------------------------- transport instrumentation (satellites)

TEST(ObsRetransmitRing, EvictionUnderPressureMirrorsObsCounters) {
  const std::uint64_t stores0 = global_counter("acex.transport.ring.stores");
  const std::uint64_t evict0 = global_counter("acex.transport.ring.evictions");
  const std::uint64_t refuse0 = global_counter("acex.transport.ring.refusals");

  transport::RetransmitRing ring(4, /*max_retries=*/2);
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    ring.store(seq, Bytes{static_cast<std::uint8_t>(seq)});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.evictions(), 6u);

  // Evicted sequences refuse; held ones replay until the budget runs out.
  EXPECT_EQ(ring.replay(0), nullptr);
  ASSERT_NE(ring.replay(9), nullptr);
  ASSERT_NE(ring.replay(9), nullptr);
  EXPECT_EQ(ring.replay(9), nullptr);  // third hit is out of retries
  EXPECT_EQ(ring.replays(), 2u);
  EXPECT_EQ(ring.refusals(), 2u);

  EXPECT_EQ(global_counter("acex.transport.ring.stores") - stores0, 10u);
  EXPECT_EQ(global_counter("acex.transport.ring.evictions") - evict0,
            ring.evictions());
  EXPECT_EQ(global_counter("acex.transport.ring.refusals") - refuse0,
            ring.refusals());
}

/// Wall-clock sink for the rate limiter (it sleeps the calling thread).
class WallClockSink final : public transport::Transport {
 public:
  void send(ByteView message) override { bytes_ += message.size(); }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }
  std::size_t bytes() const noexcept { return bytes_; }

 private:
  MonotonicClock clock_;
  std::size_t bytes_ = 0;
};

TEST(ObsRateLimit, ThrottleAndBytePathsFeedObsCounters) {
  const std::uint64_t bytes0 = global_counter("acex.transport.limit.bytes");
  const std::uint64_t thr0 = global_counter("acex.transport.limit.throttles");

  WallClockSink sink;
  // Deficit bucket at 1 MiB/s with a 1 KiB burst: send one spends the
  // burst, send two drives the balance negative, so send three must wait
  // ~1 ms for the deficit to refill — that's the throttle path.
  transport::RateLimitedTransport limited(sink, 1024.0 * 1024.0, 1024);
  const Bytes message(1024, std::uint8_t{0xAB});
  limited.send(message);
  limited.send(message);
  limited.send(message);

  EXPECT_EQ(sink.bytes(), 3072u);
  EXPECT_EQ(global_counter("acex.transport.limit.bytes") - bytes0, 3072u);
  EXPECT_GE(global_counter("acex.transport.limit.throttles") - thr0, 1u);
  EXPECT_GE(global_counter("acex.transport.limit.throttle_us"), 1u);
}

// ------------------------------------- end to end: 8 workers over faults

TEST(ObsEndToEnd, EightWorkerStreamMatchesTransportCountersExactly) {
  // Deltas, not absolutes: obs counters are process-wide and other tests
  // in this binary touch the same instruments.
  const std::uint64_t msg0 = global_counter("acex.transport.fault.messages");
  const std::uint64_t flip0 = global_counter("acex.transport.fault.bit_flips");
  const std::uint64_t clean0 = global_counter("acex.transport.fault.clean");
  const std::uint64_t drop0 = global_counter("acex.transport.fault.drops");
  const std::uint64_t dup0 = global_counter("acex.transport.fault.duplicates");
  const std::uint64_t reord0 = global_counter("acex.transport.fault.reorders");
  const std::uint64_t blocks0 = global_counter("acex.adaptive.blocks");
  const std::uint64_t nacks0 = global_counter("acex.adaptive.rx.nacks_issued");

  VirtualClock clock;
  netsim::LinkParams flat;
  flat.jitter_frac = 0;
  netsim::SimLink forward(flat, 11), reverse(flat, 12);
  transport::SimDuplex duplex(forward, reverse, clock);

  transport::FaultConfig faults;
  faults.bit_flip_prob = 0.05;
  faults.drop_prob = 0.02;
  faults.duplicate_prob = 0.02;
  faults.seed = 99;
  transport::FaultInjectingTransport lossy(duplex.a(), faults);

  adaptive::AdaptiveConfig config;
  config.async_sampling = false;
  config.decision.block_size = 4096;
  config.decision.sample_size = 1024;
  config.worker_threads = 8;
  config.retransmit_capacity = 64;
  config.retransmit_max_retries = 4;
  engine::ParallelSender sender(lossy, config);
  adaptive::AdaptiveReceiver rx(duplex.b(),
                                {adaptive::RecoveryPolicy::kNack, 4});

  Bytes data;
  for (int i = 0; i < 32 * 4096; ++i) {
    data.push_back(static_cast<std::uint8_t>("configurable compression "[i % 25]));
  }
  const adaptive::StreamReport stream = sender.send_all(data);
  lossy.flush();

  std::map<std::uint64_t, Bytes> recovered;
  const auto absorb = [&](const adaptive::ReceiveReport& report) {
    for (const adaptive::FrameOutcome& f : report.frames) {
      if (f.status == adaptive::FrameOutcome::Status::kOk) {
        recovered.emplace(f.sequence, f.data);
      }
    }
  };
  absorb(rx.receive_report());
  std::uint64_t nacks_issued = 0;
  for (int round = 0; round < 16; ++round) {
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (nacks.empty()) break;
    nacks_issued += nacks.size();
    sender.sender().retransmit(nacks);
    lossy.flush();
    absorb(rx.receive_report());
  }
  EXPECT_EQ(recovered.size(), stream.blocks.size());

  const transport::FaultCounters& c = lossy.counters();
  EXPECT_EQ(global_counter("acex.transport.fault.messages") - msg0,
            c.messages);
  EXPECT_EQ(global_counter("acex.transport.fault.bit_flips") - flip0,
            c.bit_flips);
  EXPECT_EQ(global_counter("acex.transport.fault.clean") - clean0, c.clean);
  EXPECT_EQ(global_counter("acex.transport.fault.drops") - drop0, c.drops);
  EXPECT_EQ(global_counter("acex.transport.fault.duplicates") - dup0,
            c.duplicates);
  EXPECT_EQ(global_counter("acex.transport.fault.reorders") - reord0,
            c.reorders);
  EXPECT_EQ(global_counter("acex.adaptive.blocks") - blocks0,
            stream.blocks.size());
  EXPECT_EQ(global_counter("acex.adaptive.rx.nacks_issued") - nacks0,
            nacks_issued);

  // The per-method latency histograms saw every block on each side.
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  std::uint64_t encode_count = 0;
  for (const MetricPoint& p : s.points) {
    if (p.kind == MetricPoint::Kind::kHistogram &&
        p.name == "acex.adaptive.encode_us") {
      encode_count += p.hist.count;
      if (p.hist.count > 0) {
        EXPECT_LE(p.hist.p50(), p.hist.p99());
      }
    }
  }
  EXPECT_GE(encode_count, stream.blocks.size());
}

}  // namespace
}  // namespace acex
