// Tests for the paper's §5 extension features: application-specific lossy
// compression plugged in at runtime, the derive-and-switch consumer dance,
// parallel chunked Burrows-Wheeler pipelines, and packet-pair bandwidth
// probing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "adaptive/echo_integration.hpp"
#include "compress/bwt_codec.hpp"
#include "compress/frame.hpp"
#include "compress/quant_codec.hpp"
#include "echo/bus.hpp"
#include "netsim/probe.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"

namespace acex {
namespace {

std::vector<float> to_floats(ByteView bytes) {
  std::vector<float> out(bytes.size() / 4);
  std::memcpy(out.data(), bytes.data(), out.size() * 4);
  return out;
}

// ------------------------------------------------------------ quant codec

TEST(FloatQuant, ErrorBoundedByHalfPrecision) {
  const double precision = 1e-3;
  FloatQuantCodec codec(precision);
  workloads::MolecularGenerator gen;
  const Bytes coords = gen.coordinates_bytes();

  const Bytes restored = codec.decompress(codec.compress(coords));
  ASSERT_EQ(restored.size(), coords.size());
  const auto original = to_floats(coords);
  const auto lossy = to_floats(restored);
  double max_err = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    max_err = std::max(
        max_err, std::abs(static_cast<double>(original[i]) -
                          static_cast<double>(lossy[i])));
  }
  // precision/2 from the grid, plus one float32 ULP at coordinate
  // magnitude (~100 => ulp ~ 7.6e-6) from the final cast.
  EXPECT_LE(max_err, precision / 2 + 2e-5);
}

TEST(FloatQuant, IdempotentOnAlreadyQuantizedData) {
  // Quantize-compress-decompress twice: the second pass must be lossless.
  FloatQuantCodec codec(1e-2);
  workloads::MolecularGenerator gen;
  const Bytes once = codec.decompress(codec.compress(gen.coordinates_bytes()));
  const Bytes twice = codec.decompress(codec.compress(once));
  EXPECT_EQ(twice, once);
}

TEST(FloatQuant, BeatsLosslessOnCoordinates) {
  // The whole point (§5): coordinates defeat lossless methods (Fig. 6,
  // ~90 % of original) but yield to application-specific lossy
  // compression once the application states its real precision needs.
  workloads::MolecularGenerator gen;
  const Bytes coords = gen.coordinates_bytes();

  FloatQuantCodec lossy(1e-2);  // 0.01 grid on a 100-unit box
  const auto lossless = make_codec(MethodId::kLempelZiv);
  const std::size_t lossy_size = lossy.compress(coords).size();
  const std::size_t lossless_size = lossless->compress(coords).size();
  EXPECT_LT(lossy_size, lossless_size * 2 / 3);
}

TEST(FloatQuant, CoarserPrecisionCompressesHarder) {
  workloads::MolecularGenerator gen;
  const Bytes coords = gen.coordinates_bytes();
  FloatQuantCodec fine(1e-5), coarse(1e-1);
  EXPECT_LT(coarse.compress(coords).size(), fine.compress(coords).size());
}

TEST(FloatQuant, EmptyInput) {
  FloatQuantCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(FloatQuant, RejectsNonFloatSizedInput) {
  FloatQuantCodec codec;
  EXPECT_THROW(codec.compress(Bytes(7, 0)), ConfigError);
}

TEST(FloatQuant, RejectsBadPrecision) {
  EXPECT_THROW(FloatQuantCodec(0.0), ConfigError);
  EXPECT_THROW(FloatQuantCodec(-1.0), ConfigError);
  EXPECT_THROW(FloatQuantCodec(std::numeric_limits<double>::infinity()),
               ConfigError);
}

TEST(FloatQuant, HandlesNonFiniteValues) {
  Bytes data;
  const float values[] = {1.0f, std::numeric_limits<float>::infinity(),
                          std::nanf(""), -2.5f};
  data.resize(sizeof values);
  std::memcpy(data.data(), values, sizeof values);
  FloatQuantCodec codec(1e-2);
  const Bytes restored = codec.decompress(codec.compress(data));
  const auto out = to_floats(restored);
  EXPECT_NEAR(out[0], 1.0f, 1e-2);
  EXPECT_NEAR(out[3], -2.5f, 1e-2);
  // Non-finite inputs quantize to zero rather than poisoning the stream.
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 0.0f);
}

TEST(FloatQuant, TruncatedStreamThrows) {
  FloatQuantCodec codec;
  workloads::MolecularGenerator gen;
  Bytes packed = codec.compress(gen.velocities_bytes());
  packed.resize(packed.size() / 2);
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(FloatQuant, RuntimeRegistrationAndFraming) {
  // The §3.2 deployment story: both sides register the new method at
  // runtime; frames then carry the application method id end to end.
  CodecRegistry sender_registry = CodecRegistry::with_builtins();
  CodecRegistry receiver_registry = CodecRegistry::with_builtins();
  register_float_quant(sender_registry, 1e-3);
  register_float_quant(receiver_registry, 1e-3);

  workloads::MolecularGenerator gen;
  const Bytes coords = gen.coordinates_bytes();
  const CodecPtr codec = sender_registry.create(FloatQuantCodec::kId);
  // Lossy codecs cannot share the CRC-checked frame helper (the restored
  // bytes differ); emulate the middleware path: compress, ship, decode by
  // id on the receiver.
  const Bytes packed = codec->compress(coords);
  const CodecPtr receiver_codec =
      receiver_registry.create(FloatQuantCodec::kId);
  const Bytes restored = receiver_codec->decompress(packed);
  EXPECT_EQ(restored.size(), coords.size());

  // An unregistered receiver must fail loudly, not misdecode.
  const CodecRegistry vanilla = CodecRegistry::with_builtins();
  EXPECT_THROW(vanilla.create(FloatQuantCodec::kId), ConfigError);
}

// --------------------------------------------------- derive-and-switch

TEST(DerivedChannelSwitcher, EventsFlowThroughCurrentMethod) {
  echo::EventBus bus;
  const auto source = bus.create_channel("data");

  std::vector<std::int64_t> methods_seen;
  adaptive::DerivedChannelSwitcher switcher(
      bus, source,
      [&](const echo::Event& e) {
        methods_seen.push_back(
            e.attributes.get_int(adaptive::kMethodAttr).value_or(-1));
      },
      MethodId::kNone);

  bus.channel(source).submit(echo::Event(testdata::repetitive_text(5000, 1)));
  switcher.switch_method(MethodId::kLempelZiv);
  bus.channel(source).submit(echo::Event(testdata::repetitive_text(5000, 2)));
  switcher.switch_method(MethodId::kBurrowsWheeler);
  bus.channel(source).submit(echo::Event(testdata::repetitive_text(5000, 3)));

  ASSERT_EQ(methods_seen.size(), 3u);
  EXPECT_EQ(methods_seen[0], static_cast<int>(MethodId::kNone));
  EXPECT_EQ(methods_seen[1], static_cast<int>(MethodId::kLempelZiv));
  EXPECT_EQ(methods_seen[2], static_cast<int>(MethodId::kBurrowsWheeler));
  EXPECT_EQ(switcher.switches(), 2u);
}

TEST(DerivedChannelSwitcher, OldChannelIsRetired) {
  echo::EventBus bus;
  const auto source = bus.create_channel("data");
  adaptive::DerivedChannelSwitcher switcher(bus, source,
                                            [](const echo::Event&) {});
  EXPECT_EQ(bus.channel_count(), 2u);  // source + derived
  const auto first = switcher.current_channel();
  switcher.switch_method(MethodId::kHuffman);
  EXPECT_EQ(bus.channel_count(), 2u);  // still exactly one derived channel
  EXPECT_NE(switcher.current_channel(), first);
  EXPECT_THROW(bus.channel(first), ConfigError);  // old one removed
}

TEST(DerivedChannelSwitcher, NoOpSwitchKeepsChannel) {
  echo::EventBus bus;
  const auto source = bus.create_channel("data");
  adaptive::DerivedChannelSwitcher switcher(bus, source,
                                            [](const echo::Event&) {},
                                            MethodId::kLempelZiv);
  const auto channel = switcher.current_channel();
  switcher.switch_method(MethodId::kLempelZiv);
  EXPECT_EQ(switcher.current_channel(), channel);
  EXPECT_EQ(switcher.switches(), 0u);
}

TEST(DerivedChannelSwitcher, SourceEventsNeverLostAcrossSwitch) {
  echo::EventBus bus;
  const auto source = bus.create_channel("data");
  const auto decompress = adaptive::make_decompression_handler();
  std::size_t bytes_received = 0;
  adaptive::DerivedChannelSwitcher switcher(
      bus, source, [&](const echo::Event& e) {
        bytes_received += decompress(e)->payload.size();
      });

  std::size_t bytes_sent = 0;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 4) {
      switcher.switch_method(rng.chance(0.5) ? MethodId::kLempelZiv
                                             : MethodId::kHuffman);
    }
    const Bytes payload = testdata::low_entropy(1000 + i, 10 + i);
    bytes_sent += payload.size();
    bus.channel(source).submit(echo::Event(payload));
  }
  EXPECT_EQ(bytes_received, bytes_sent);
}

TEST(DerivedChannelSwitcher, DestructorCleansUp) {
  echo::EventBus bus;
  const auto source = bus.create_channel("data");
  {
    adaptive::DerivedChannelSwitcher switcher(bus, source,
                                              [](const echo::Event&) {});
    EXPECT_EQ(bus.channel_count(), 2u);
  }
  EXPECT_EQ(bus.channel_count(), 1u);
  EXPECT_EQ(bus.channel(source).subscriber_count(), 0u);
}

// ------------------------------------------------------- parallel chunks

TEST(ParallelBwt, SameWireFormatAsSerial) {
  const Bytes data = testdata::repetitive_text(300000, 5);
  BurrowsWheelerCodec serial(16 * 1024, 1);
  BurrowsWheelerCodec parallel(16 * 1024, 4);
  EXPECT_EQ(serial.compress(data), parallel.compress(data));
}

TEST(ParallelBwt, CrossDecoding) {
  const Bytes data = testdata::low_entropy(200000, 6);
  BurrowsWheelerCodec serial(8 * 1024, 1);
  BurrowsWheelerCodec parallel(8 * 1024, 8);
  EXPECT_EQ(parallel.decompress(serial.compress(data)), data);
  EXPECT_EQ(serial.decompress(parallel.compress(data)), data);
}

TEST(ParallelBwt, AllPatternsRoundTrip) {
  BurrowsWheelerCodec codec(4096, 4);
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(50000, 7);
    EXPECT_EQ(codec.decompress(codec.compress(data)), data) << pattern.name;
  }
}

TEST(ParallelBwt, CorruptionStillThrowsAcrossWorkers) {
  BurrowsWheelerCodec codec(4096, 4);
  Bytes packed = codec.compress(testdata::repetitive_text(100000, 8));
  packed[packed.size() / 2] ^= 0x40;
  try {
    const Bytes out = codec.decompress(packed);
    EXPECT_LE(out.size(), 200000u);  // garbage tolerated, crash not
  } catch (const Error&) {
    // expected on most corruptions
  }
}

TEST(ParallelBwt, RejectsBadParallelism) {
  EXPECT_THROW(BurrowsWheelerCodec(4096, 0), ConfigError);
  EXPECT_THROW(BurrowsWheelerCodec(4096, 65), ConfigError);
}

// ----------------------------------------------------------- packet pair

TEST(PacketPair, EstimatesUnloadedBandwidth) {
  netsim::LinkParams params;
  params.bandwidth_Bps = 5e6;
  params.jitter_frac = 0.0;
  netsim::SimLink link(params, 3);
  const auto r = netsim::packet_pair_probe(link, 0.0);
  EXPECT_EQ(r.pairs, 5u);
  EXPECT_NEAR(r.bandwidth_Bps, 5e6, 5e4);
}

TEST(PacketPair, TracksBackgroundLoad) {
  netsim::LinkParams params;
  params.bandwidth_Bps = 5e6;
  params.jitter_frac = 0.0;
  params.share_per_connection = 0.01;
  netsim::SimLink link(params, 4);
  const netsim::LoadTrace trace({{0, 0}, {10, 60}});
  link.set_background(&trace);

  const auto quiet = netsim::packet_pair_probe(link, 0.0);
  const auto loaded = netsim::packet_pair_probe(link, 20.0);
  EXPECT_NEAR(quiet.bandwidth_Bps, 5e6, 5e4);
  EXPECT_NEAR(loaded.bandwidth_Bps, 2e6, 5e4);
}

TEST(PacketPair, MedianRobustToJitter) {
  netsim::LinkParams params = netsim::international_link();  // 46 % jitter
  netsim::SimLink link(params, 5);
  const auto r = netsim::packet_pair_probe(link, 0.0, 1500, 15);
  // Within a factor ~2 of the true mean despite wild jitter.
  EXPECT_GT(r.bandwidth_Bps, params.bandwidth_Bps / 2);
  EXPECT_LT(r.bandwidth_Bps, params.bandwidth_Bps * 2);
}

TEST(PacketPair, ProbesAdvanceVirtualTime) {
  netsim::LinkParams params;
  params.bandwidth_Bps = 1e6;
  params.jitter_frac = 0.0;
  netsim::SimLink link(params, 6);
  const auto r = netsim::packet_pair_probe(link, 1.0, 1500, 3, 0.05);
  EXPECT_GT(r.finished, 1.0);
  EXPECT_LT(r.finished, 1.5);
}

TEST(PacketPair, RejectsInvalidParameters) {
  netsim::LinkParams params;
  netsim::SimLink link(params, 7);
  EXPECT_THROW(netsim::packet_pair_probe(link, 0, 0), ConfigError);
  EXPECT_THROW(netsim::packet_pair_probe(link, 0, 1500, 0), ConfigError);
}

}  // namespace
}  // namespace acex
