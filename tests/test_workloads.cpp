#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "pbio/pbio.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex::workloads {
namespace {

double ratio(MethodId method, ByteView data) {
  const CodecPtr codec = make_codec(method);
  return 100.0 * static_cast<double>(codec->compress(data).size()) /
         static_cast<double>(data.size());
}

// --------------------------------------------------------------- molecular

TEST(Molecular, FieldSizesMatchAtomCount) {
  MolecularConfig config;
  config.atom_count = 100;
  MolecularGenerator gen(config);
  EXPECT_EQ(gen.coordinates_bytes().size(), 100u * 12);
  EXPECT_EQ(gen.velocities_bytes().size(), 100u * 12);
  EXPECT_EQ(gen.types_bytes().size(), 100u * 4);
}

TEST(Molecular, DeterministicForSeed) {
  MolecularConfig config;
  config.seed = 9;
  MolecularGenerator a(config), b(config);
  a.step();
  b.step();
  EXPECT_EQ(a.coordinates_bytes(), b.coordinates_bytes());
  EXPECT_EQ(a.pbio_snapshot(), b.pbio_snapshot());
}

TEST(Molecular, StepMovesAtoms) {
  MolecularGenerator gen;
  const Bytes before = gen.coordinates_bytes();
  gen.step();
  EXPECT_NE(gen.coordinates_bytes(), before);
}

TEST(Molecular, Figure6CompressibilitySplit) {
  // The paper's key property: coordinates nearly incompressible, types
  // highly compressible, velocities in between.
  MolecularConfig config;
  config.atom_count = 16384;
  MolecularGenerator gen(config);
  for (int i = 0; i < 3; ++i) gen.step();

  const Bytes coords = gen.coordinates_bytes();
  const Bytes vels = gen.velocities_bytes();
  const Bytes types = gen.types_bytes();

  const double coord_lz = ratio(MethodId::kLempelZiv, coords);
  const double vel_lz = ratio(MethodId::kLempelZiv, vels);
  const double type_lz = ratio(MethodId::kLempelZiv, types);

  EXPECT_GT(coord_lz, 80.0);          // ~incompressible
  EXPECT_LT(type_lz, 30.0);           // tiny alphabet
  EXPECT_LT(vel_lz, coord_lz - 5.0);  // between the two
  EXPECT_GT(vel_lz, type_lz);
}

TEST(Molecular, PbioSnapshotDecodes) {
  MolecularConfig config;
  config.atom_count = 50;
  MolecularGenerator gen(config);
  const Bytes snapshot = gen.pbio_snapshot();
  const auto records = pbio::decode_stream(snapshot);
  ASSERT_EQ(records.size(), 50u);
  EXPECT_EQ(records[0].format().name(), "md.atom");
  EXPECT_EQ(records[7].as<std::uint32_t>("id"), 7u);
  const auto type = records[0].as<std::int32_t>("type");
  EXPECT_GE(type, 0);
  EXPECT_LT(type, static_cast<std::int32_t>(config.species_count));
}

TEST(Molecular, StreamConcatenatesSteps) {
  MolecularConfig config;
  config.atom_count = 20;
  MolecularGenerator gen(config);
  const Bytes one = gen.pbio_snapshot();
  MolecularGenerator gen2(config);
  const Bytes three = gen2.stream(3);
  EXPECT_EQ(three.size() % one.size(), 0u);
  EXPECT_EQ(three.size() / one.size(), 3u);
}

TEST(Molecular, RejectsBadConfig) {
  MolecularConfig config;
  config.atom_count = 0;
  EXPECT_THROW(MolecularGenerator{config}, ConfigError);
  config = {};
  config.species_count = 0;
  EXPECT_THROW(MolecularGenerator{config}, ConfigError);
}

// ------------------------------------------------------------ transactions

TEST(Transactions, TextLooksLikeOperationalLog) {
  TransactionGenerator gen(1);
  const std::string line = gen.next_text();
  EXPECT_NE(line.find("OPS"), std::string::npos);
  EXPECT_NE(line.find("FLIGHT="), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Transactions, XmlIsWellShaped) {
  TransactionGenerator gen(2);
  const std::string elem = gen.next_xml();
  EXPECT_NE(elem.find("<operational-event"), std::string::npos);
  EXPECT_NE(elem.find("</operational-event>"), std::string::npos);
}

TEST(Transactions, BlocksHaveExactSize) {
  TransactionGenerator gen(3);
  EXPECT_EQ(gen.text_block(10000).size(), 10000u);
  EXPECT_EQ(gen.xml_block(10000).size(), 10000u);
}

TEST(Transactions, DeterministicForSeed) {
  TransactionGenerator a(4), b(4);
  EXPECT_EQ(a.text_block(5000), b.text_block(5000));
}

TEST(Transactions, EventCounterAdvances) {
  TransactionGenerator gen(5);
  gen.next_text();
  gen.next_xml();
  EXPECT_EQ(gen.events(), 2u);
}

TEST(Transactions, Figure2CompressibilityRegime) {
  // "This data set has a high rate of strings repetitions": LZ and BW both
  // land well below 50 %, BW at least as strong as LZ, Huffman behind both
  // — Fig. 2's ordering.
  TransactionGenerator gen(6);
  const Bytes data = gen.text_block(512 * 1024);
  const double bw = ratio(MethodId::kBurrowsWheeler, data);
  const double lz = ratio(MethodId::kLempelZiv, data);
  const double hu = ratio(MethodId::kHuffman, data);
  EXPECT_LT(bw, 40.0);
  EXPECT_LT(lz, 45.0);
  EXPECT_LE(bw, lz + 1.0);
  EXPECT_GT(hu, lz);
}

TEST(Transactions, XmlCompressesHarderThanText) {
  TransactionGenerator gen(7);
  const Bytes text = gen.text_block(256 * 1024);
  const Bytes xml = gen.xml_block(256 * 1024);
  EXPECT_LT(ratio(MethodId::kLempelZiv, xml),
            ratio(MethodId::kLempelZiv, text));
}

}  // namespace
}  // namespace acex::workloads
