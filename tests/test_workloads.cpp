#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "compress/registry.hpp"
#include "pbio/columnar.hpp"
#include "pbio/pbio.hpp"
#include "util/error.hpp"
#include "workloads/markup.hpp"
#include "workloads/molecular.hpp"
#include "workloads/tensor.hpp"
#include "workloads/transactions.hpp"

namespace acex::workloads {
namespace {

double ratio(MethodId method, ByteView data) {
  const CodecPtr codec = make_codec(method);
  return 100.0 * static_cast<double>(codec->compress(data).size()) /
         static_cast<double>(data.size());
}

// --------------------------------------------------------------- molecular

TEST(Molecular, FieldSizesMatchAtomCount) {
  MolecularConfig config;
  config.atom_count = 100;
  MolecularGenerator gen(config);
  EXPECT_EQ(gen.coordinates_bytes().size(), 100u * 12);
  EXPECT_EQ(gen.velocities_bytes().size(), 100u * 12);
  EXPECT_EQ(gen.types_bytes().size(), 100u * 4);
}

TEST(Molecular, DeterministicForSeed) {
  MolecularConfig config;
  config.seed = 9;
  MolecularGenerator a(config), b(config);
  a.step();
  b.step();
  EXPECT_EQ(a.coordinates_bytes(), b.coordinates_bytes());
  EXPECT_EQ(a.pbio_snapshot(), b.pbio_snapshot());
}

TEST(Molecular, StepMovesAtoms) {
  MolecularGenerator gen;
  const Bytes before = gen.coordinates_bytes();
  gen.step();
  EXPECT_NE(gen.coordinates_bytes(), before);
}

TEST(Molecular, Figure6CompressibilitySplit) {
  // The paper's key property: coordinates nearly incompressible, types
  // highly compressible, velocities in between.
  MolecularConfig config;
  config.atom_count = 16384;
  MolecularGenerator gen(config);
  for (int i = 0; i < 3; ++i) gen.step();

  const Bytes coords = gen.coordinates_bytes();
  const Bytes vels = gen.velocities_bytes();
  const Bytes types = gen.types_bytes();

  const double coord_lz = ratio(MethodId::kLempelZiv, coords);
  const double vel_lz = ratio(MethodId::kLempelZiv, vels);
  const double type_lz = ratio(MethodId::kLempelZiv, types);

  EXPECT_GT(coord_lz, 80.0);          // ~incompressible
  EXPECT_LT(type_lz, 30.0);           // tiny alphabet
  EXPECT_LT(vel_lz, coord_lz - 5.0);  // between the two
  EXPECT_GT(vel_lz, type_lz);
}

TEST(Molecular, PbioSnapshotDecodes) {
  MolecularConfig config;
  config.atom_count = 50;
  MolecularGenerator gen(config);
  const Bytes snapshot = gen.pbio_snapshot();
  const auto records = pbio::decode_stream(snapshot);
  ASSERT_EQ(records.size(), 50u);
  EXPECT_EQ(records[0].format().name(), "md.atom");
  EXPECT_EQ(records[7].as<std::uint32_t>("id"), 7u);
  const auto type = records[0].as<std::int32_t>("type");
  EXPECT_GE(type, 0);
  EXPECT_LT(type, static_cast<std::int32_t>(config.species_count));
}

TEST(Molecular, StreamConcatenatesSteps) {
  MolecularConfig config;
  config.atom_count = 20;
  MolecularGenerator gen(config);
  const Bytes one = gen.pbio_snapshot();
  MolecularGenerator gen2(config);
  const Bytes three = gen2.stream(3);
  EXPECT_EQ(three.size() % one.size(), 0u);
  EXPECT_EQ(three.size() / one.size(), 3u);
}

TEST(Molecular, RejectsBadConfig) {
  MolecularConfig config;
  config.atom_count = 0;
  EXPECT_THROW(MolecularGenerator{config}, ConfigError);
  config = {};
  config.species_count = 0;
  EXPECT_THROW(MolecularGenerator{config}, ConfigError);
}

// ------------------------------------------------------------ transactions

TEST(Transactions, TextLooksLikeOperationalLog) {
  TransactionGenerator gen(1);
  const std::string line = gen.next_text();
  EXPECT_NE(line.find("OPS"), std::string::npos);
  EXPECT_NE(line.find("FLIGHT="), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Transactions, XmlIsWellShaped) {
  TransactionGenerator gen(2);
  const std::string elem = gen.next_xml();
  EXPECT_NE(elem.find("<operational-event"), std::string::npos);
  EXPECT_NE(elem.find("</operational-event>"), std::string::npos);
}

TEST(Transactions, BlocksHaveExactSize) {
  TransactionGenerator gen(3);
  EXPECT_EQ(gen.text_block(10000).size(), 10000u);
  EXPECT_EQ(gen.xml_block(10000).size(), 10000u);
}

TEST(Transactions, DeterministicForSeed) {
  TransactionGenerator a(4), b(4);
  EXPECT_EQ(a.text_block(5000), b.text_block(5000));
}

TEST(Transactions, EventCounterAdvances) {
  TransactionGenerator gen(5);
  gen.next_text();
  gen.next_xml();
  EXPECT_EQ(gen.events(), 2u);
}

TEST(Transactions, Figure2CompressibilityRegime) {
  // "This data set has a high rate of strings repetitions": LZ and BW both
  // land well below 50 %, BW at least as strong as LZ, Huffman behind both
  // — Fig. 2's ordering.
  TransactionGenerator gen(6);
  const Bytes data = gen.text_block(512 * 1024);
  const double bw = ratio(MethodId::kBurrowsWheeler, data);
  const double lz = ratio(MethodId::kLempelZiv, data);
  const double hu = ratio(MethodId::kHuffman, data);
  EXPECT_LT(bw, 40.0);
  EXPECT_LT(lz, 45.0);
  EXPECT_LE(bw, lz + 1.0);
  EXPECT_GT(hu, lz);
}

TEST(Transactions, XmlCompressesHarderThanText) {
  TransactionGenerator gen(7);
  const Bytes text = gen.text_block(256 * 1024);
  const Bytes xml = gen.xml_block(256 * 1024);
  EXPECT_LT(ratio(MethodId::kLempelZiv, xml),
            ratio(MethodId::kLempelZiv, text));
}

// ----------------------------------------------------------------- tensor

TEST(TensorE4m3, QuantizerIsAFixpoint) {
  // Every representable non-NaN byte must survive a decode/encode
  // round-trip exactly — otherwise quantized streams mutate on re-quantize.
  for (int b = 0; b < 256; ++b) {
    const auto byte = static_cast<std::uint8_t>(b);
    if ((byte & 0x7F) == 0x7F) continue;  // NaN encodings
    EXPECT_EQ(to_e4m3(from_e4m3(byte)), byte) << "byte " << b;
  }
}

TEST(TensorE4m3, NanAndSaturationEdges) {
  EXPECT_TRUE(std::isnan(from_e4m3(0x7F)));
  EXPECT_TRUE(std::isnan(from_e4m3(0xFF)));
  EXPECT_EQ(to_e4m3(std::nanf("")), 0x7F);
  EXPECT_EQ(from_e4m3(to_e4m3(1e9f)), 448.0f);    // saturate, not NaN
  EXPECT_EQ(from_e4m3(to_e4m3(-1e9f)), -448.0f);
  EXPECT_EQ(from_e4m3(to_e4m3(0.0f)), 0.0f);
}

TEST(TensorE4m3, RoundsToNearestRepresentable) {
  // Quantization error must never exceed half the gap to the neighbours.
  TensorGenerator gen(21);
  const Bytes block = gen.e4m3_block(4096);
  for (const std::uint8_t byte : block) {
    const float value = from_e4m3(byte);
    ASSERT_FALSE(std::isnan(value));
    EXPECT_LE(std::fabs(value), 448.0f);
  }
}

TEST(Tensor, DeterministicForSeed) {
  TensorGenerator a(31), b(31);
  EXPECT_EQ(a.e4m3_block(8192), b.e4m3_block(8192));
  TensorGenerator c(31), d(31);
  EXPECT_EQ(c.f32_block(2048), d.f32_block(2048));
  EXPECT_NE(TensorGenerator(32).e4m3_block(8192),
            TensorGenerator(33).e4m3_block(8192));
}

TEST(Tensor, E4m3BlocksConcentrateOnFewByteValues) {
  // The decision-engine-relevant property: low entropy (few distinct byte
  // values) without string repetitions — Huffman's regime, not LZ's.
  TensorGenerator gen(11);
  const Bytes block = gen.e4m3_block(64 * 1024);
  const std::set<std::uint8_t> distinct(block.begin(), block.end());
  EXPECT_LT(distinct.size(), 200u);
  EXPECT_GT(distinct.size(), 16u);  // not degenerate either
  const double hu = ratio(MethodId::kHuffman, block);
  const double lz = ratio(MethodId::kLempelZiv, block);
  EXPECT_LT(hu, 90.0);   // order-0 structure is there
  EXPECT_GT(lz, 48.78);  // sits ABOVE the §2.5 cut: LZ finds little
  EXPECT_LT(hu, lz);     // ...so Huffman is the profitable choice
}

TEST(Tensor, F32BlocksHideTheStructure) {
  // Same values as raw float32: mantissa noise defeats every codec —
  // near-incompressible, the null-codec regime on fast links.
  TensorGenerator gen(11);
  const Bytes block = gen.f32_block(32 * 1024);
  EXPECT_EQ(block.size(), 4u * 32 * 1024);
  EXPECT_GT(ratio(MethodId::kLempelZiv, block), 80.0);
}

TEST(Tensor, ValuesEmittedAccumulates) {
  TensorGenerator gen(41);
  gen.e4m3_block(100);
  gen.f32_block(50);
  EXPECT_EQ(gen.values_emitted(), 150u);
}

TEST(Tensor, PbioRecordsAreColumnarShuffleCompatible) {
  // The per-channel summary records must ride the existing PBIO columnar
  // machinery: fixed layout, shuffle/unshuffle byte-identical, per-field
  // column slices addressable.
  ASSERT_TRUE(pbio::is_columnar_eligible(TensorGenerator::record_format()));
  TensorGenerator gen(51);
  const Bytes stream = gen.pbio_block(64);
  const auto records = pbio::decode_stream(stream);
  ASSERT_EQ(records.size(), 64u);
  EXPECT_EQ(records[0].format().name(),
            TensorGenerator::record_format().name());

  const Bytes shuffled = pbio::columnar_shuffle(stream);
  EXPECT_EQ(pbio::columnar_unshuffle(shuffled), stream);
  const pbio::ColumnSlices slices = pbio::column_slices(shuffled);
  EXPECT_EQ(slices.columns.size(),
            TensorGenerator::record_format().fields().size());
}

// ----------------------------------------------------------------- markup

TEST(Markup, DeterministicForSeed) {
  MarkupGenerator a(5), b(5);
  EXPECT_EQ(a.block(32 * 1024), b.block(32 * 1024));
  EXPECT_NE(MarkupGenerator(5).block(32 * 1024),
            MarkupGenerator(6).block(32 * 1024));
}

TEST(Markup, BlocksHaveExactSizeAndStreamRoot) {
  MarkupGenerator gen(8);
  const Bytes block = gen.block(20000);
  EXPECT_EQ(block.size(), 20000u);
  const std::string text(block.begin(), block.end());
  EXPECT_EQ(text.rfind("<document-stream version=\"1\">\n", 0), 0u);
  EXPECT_GT(gen.records(), 0u);
}

TEST(Markup, RecordsNestAndBalance) {
  MarkupGenerator gen(9);
  bool saw_nested = false;
  for (int i = 0; i < 50; ++i) {
    const std::string record = gen.next_record();
    // Opening tags match closing tags (self-closing leaves count once on
    // each side because they open AND close on one line).
    const auto count = [&](const std::string& needle) {
      std::size_t n = 0;
      for (std::size_t pos = record.find(needle); pos != std::string::npos;
           pos = record.find(needle, pos + 1)) {
        ++n;
      }
      return n;
    };
    EXPECT_EQ(count("</"), count("<") - count("</"))
        << "unbalanced record:\n" << record;
    if (record.find("  <") != std::string::npos) saw_nested = true;
  }
  EXPECT_TRUE(saw_nested);
}

TEST(Markup, DeepLzTerritoryBelowTheCut) {
  // Scaffolding dominates: extreme string repetition, ratio well under the
  // §2.5 cut, BW at least in LZ's league — yet unique leaf payloads keep
  // the null codec honest (nothing compresses to ~zero).
  MarkupGenerator gen(13);
  const Bytes block = gen.block(256 * 1024);
  const double lz = ratio(MethodId::kLempelZiv, block);
  const double bw = ratio(MethodId::kBurrowsWheeler, block);
  EXPECT_LT(lz, 48.78 - 10.0);
  EXPECT_LT(bw, lz + 5.0);
  EXPECT_GT(bw, 1.0);
}

}  // namespace
}  // namespace acex::workloads
