#include <gtest/gtest.h>

#include "compress/lz77.hpp"
#include "compress/lzw.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

TEST(Lzw, RoundTripsAllPatterns) {
  LzwCodec codec;
  for (const auto& pattern : testdata::patterns()) {
    for (const std::size_t size : {1u, 2u, 100u, 4096u, 100000u}) {
      const Bytes data = pattern.make(size, 31);
      EXPECT_EQ(codec.decompress(codec.compress(data)), data)
          << pattern.name << " size=" << size;
    }
  }
}

TEST(Lzw, EmptyInput) {
  LzwCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(Lzw, KwKwKSelfReference) {
  // The classic LZW corner: a code referencing the entry being defined.
  // "abababab..." produces it immediately.
  LzwCodec codec;
  for (const std::size_t n : {3u, 4u, 5u, 10u, 1000u}) {
    Bytes data;
    for (std::size_t i = 0; i < n; ++i) {
      data.push_back(i % 2 == 0 ? 'a' : 'b');
    }
    EXPECT_EQ(codec.decompress(codec.compress(data)), data) << "n=" << n;
  }
}

TEST(Lzw, SingleByteRuns) {
  LzwCodec codec;
  for (const std::size_t n : {1u, 2u, 3u, 7u, 255u, 65536u}) {
    const Bytes data(n, 0x41);
    EXPECT_EQ(codec.decompress(codec.compress(data)), data) << "n=" << n;
  }
}

TEST(Lzw, WidthTransitionsRoundTrip) {
  // Force the code width through 9 -> 10 -> 11 -> 12 bits: text with many
  // distinct digrams grows the dictionary steadily.
  LzwCodec codec;
  Rng rng(7);
  Bytes data;
  for (int i = 0; i < 40000; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.below(64)));
  }
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(Lzw, DictionaryFullResetRoundTrip) {
  // Random bytes build ~2-byte phrases, so ~200 KB fills the 64K-entry
  // dictionary and exercises the clear-marker path (possibly repeatedly).
  LzwCodec codec;
  const Bytes data = testdata::random_bytes(600000, 9);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(Lzw, CompressesRepetitiveText) {
  LzwCodec codec;
  const Bytes data = testdata::repetitive_text(256 * 1024, 11);
  EXPECT_LT(codec.compress(data).size(), data.size() / 2);
}

TEST(Lzw, Lz77VariantWinsOnPaperWorkload) {
  // The paper picked the LZ77 branch with Huffman-coded pointers; verify
  // that choice holds on its commercial-style data.
  LzwCodec lzw;
  LempelZivCodec lz77;
  const Bytes data = testdata::repetitive_text(256 * 1024, 12);
  EXPECT_LT(lz77.compress(data).size(), lzw.compress(data).size());
}

TEST(Lzw, StoredModeBoundsExpansion) {
  LzwCodec codec;
  const Bytes data = testdata::random_bytes(16 * 1024, 13);
  const Bytes packed = codec.compress(data);
  EXPECT_LE(packed.size(), data.size() + 16);
  EXPECT_EQ(codec.decompress(packed), data);
}

TEST(Lzw, TruncatedStreamThrows) {
  LzwCodec codec;
  Bytes packed = codec.compress(testdata::repetitive_text(32 * 1024, 14));
  packed.resize(packed.size() / 2);
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(Lzw, CorruptModeByteThrows) {
  LzwCodec codec;
  Bytes packed = codec.compress(testdata::repetitive_text(1024, 15));
  std::size_t pos = 0;
  (void)get_varint(packed, &pos);
  packed[pos] = 7;
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(Lzw, CorruptionNeverCrashes) {
  LzwCodec codec;
  const Bytes data = testdata::repetitive_text(16 * 1024, 16);
  const Bytes packed = codec.compress(data);
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes bad = packed;
    const std::size_t flips = 1 + rng.below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    try {
      const Bytes out = codec.decompress(bad);
      EXPECT_LE(out.size(), data.size());
    } catch (const Error&) {
    }
  }
}

TEST(Lzw, RegisteredInBuiltinsAndNamed) {
  EXPECT_EQ(method_from_name("lzw"), MethodId::kLzw);
  EXPECT_EQ(method_name(MethodId::kLzw), "lzw");
}

}  // namespace
}  // namespace acex
