// Unit coverage of the QA subsystem itself (DESIGN.md §10): mutators are
// deterministic and structure-aware, the corpus persists and minimizes,
// the oracle battery passes on healthy inputs, and a short invariant soak
// of the full bridge + faulted-link + engine stack runs clean.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "qa/corpus.hpp"
#include "qa/generators.hpp"
#include "qa/mutate.hpp"
#include "qa/oracles.hpp"
#include "qa/soak.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

Bytes sample_text(std::size_t size, std::uint64_t seed) {
  return qa::seed_payloads(size, seed).front().data;  // the "text" regime
}

// ------------------------------------------------------------- QaMutate

TEST(QaMutate, SameSeedReplaysTheSameMutationStream) {
  const Bytes input = sample_text(2048, 5);
  Rng a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(qa::mutate(input, a), qa::mutate(input, b)) << "iteration " << i;
  }
}

TEST(QaMutate, EventuallyChangesTheInput) {
  const Bytes input = sample_text(512, 6);
  Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (qa::mutate(input, rng) != input) ++changed;
  }
  EXPECT_GT(changed, 40);  // identity mutations exist but must be rare
}

TEST(QaMutate, SurvivesEmptyInput) {
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    const Bytes out = qa::mutate(Bytes{}, rng);
    EXPECT_LE(out.size(), 32u);  // only the splice case can grow it
  }
}

TEST(QaMutate, VarintMutatorLeavesNonVarintsAlone) {
  // Five continuation bytes and no terminator: no varint starts at 0.
  const Bytes input = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(qa::mutate_varint_at(input, 0, rng), input);
  }
}

TEST(QaMutate, VarintMutatorForgesDecodableOrAdversarialWidths) {
  Bytes input;
  put_varint(input, 300);            // two-byte varint up front
  input.insert(input.end(), 8, 0x55);  // trailing body
  Rng rng(11);
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    const Bytes out = qa::mutate_varint_at(input, 0, rng);
    ASSERT_GE(out.size(), 1u + 8u);
    // The replacement is at most an overlong/never-terminating 14 bytes.
    ASSERT_LE(out.size(), 14u + 8u);
    // The body after the varint is never disturbed.
    EXPECT_TRUE(std::equal(out.end() - 8, out.end(), input.end() - 8));
    if (out != input) ++changed;
  }
  EXPECT_GT(changed, 150);
}

TEST(QaMutate, ContainerMutatorKeepsWorkingAcrossAllCodecs) {
  const Bytes data = sample_text(4096, 9);
  for (const MethodId id : paper_methods()) {
    const CodecPtr codec = make_codec(id);
    const Bytes packed = codec->compress(data);
    Rng rng(static_cast<std::uint64_t>(id) + 100);
    for (int i = 0; i < 50; ++i) {
      const Bytes out = qa::mutate_container(packed, rng);
      EXPECT_LE(out.size(), packed.size() + 32);
    }
  }
}

// -------------------------------------------------------- QaFrameMutate

TEST(QaFrameMutate, SomeMutantsPenetrateTheHeaderChecksumGate) {
  // The structure-aware mutator re-fixes the v2 header checksum half the
  // time, so a healthy share of mutants must still *parse* — proving the
  // corruption reaches the layers behind the first integrity gate — while
  // others must be rejected up front.
  const CodecPtr codec = make_codec(MethodId::kLempelZiv);
  const Bytes framed = frame_compress_seq(*codec, sample_text(4096, 13), 7);
  Rng rng(17);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 400; ++i) {
    const Bytes bad = qa::mutate_frame(framed, rng);
    try {
      (void)frame_parse(bad);
      ++parsed;
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 40);
  EXPECT_GT(rejected, 40);
}

TEST(QaFrameMutate, FallsBackToGenericOnNonFrames) {
  const Bytes garbage = {1, 2, 3};
  Rng rng(23);
  for (int i = 0; i < 64; ++i) {
    (void)qa::mutate_frame(garbage, rng);  // must not crash or throw
  }
}

TEST(QaFrameMutate, DeterministicAcrossRuns) {
  const CodecPtr codec = make_codec(MethodId::kHuffman);
  const Bytes framed = frame_compress_seq(*codec, sample_text(1024, 29), 3);
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(qa::mutate_frame(framed, a), qa::mutate_frame(framed, b));
  }
}

TEST(QaFrameMutate, PbioMutatorTargetsSchemaAndFallsBackSafely) {
  const Bytes stream = qa::seed_pbio_stream(31);
  Rng rng(37);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    const Bytes out = qa::mutate_pbio(stream, rng);
    if (out != stream) ++changed;
  }
  EXPECT_GT(changed, 60);
  // Non-PBIO bytes route through the generic fallback without crashing.
  const Bytes not_pbio = {'X', 'Y', 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 32; ++i) (void)qa::mutate_pbio(not_pbio, rng);
}

// -------------------------------------------------------------- QaIters

TEST(QaIters, EnvOverridesFallbackOnlyWhenValid) {
  ::unsetenv("ACEX_FUZZ_ITERS");
  EXPECT_EQ(qa::fuzz_iterations(60), 60);
  ::setenv("ACEX_FUZZ_ITERS", "123", 1);
  EXPECT_EQ(qa::fuzz_iterations(60), 123);
  ::setenv("ACEX_FUZZ_ITERS", "0", 1);
  EXPECT_EQ(qa::fuzz_iterations(60), 60);
  ::setenv("ACEX_FUZZ_ITERS", "-4", 1);
  EXPECT_EQ(qa::fuzz_iterations(60), 60);
  ::setenv("ACEX_FUZZ_ITERS", "12abc", 1);
  EXPECT_EQ(qa::fuzz_iterations(60), 60);
  ::setenv("ACEX_FUZZ_ITERS", "", 1);
  EXPECT_EQ(qa::fuzz_iterations(60), 60);
  ::unsetenv("ACEX_FUZZ_ITERS");
}

// ------------------------------------------------------------- QaCorpus

TEST(QaCorpus, SaveLoadRoundTripsAndDeduplicates) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "qa_corpus_rt").string();
  std::filesystem::remove_all(dir);
  qa::Corpus corpus(dir);
  EXPECT_TRUE(corpus.files().empty());  // lazily created, lists empty

  const Bytes input = sample_text(777, 41);
  const std::string path = corpus.save("crash", input);
  EXPECT_EQ(qa::Corpus::load(path), input);

  // Identical bytes under the same tag reuse the entry.
  EXPECT_EQ(corpus.save("crash", input), path);
  EXPECT_EQ(corpus.files().size(), 1u);

  // Different bytes land in a second, distinct entry.
  Bytes other = input;
  other.push_back(0xAB);
  const std::string path2 = corpus.save("crash", other);
  EXPECT_NE(path2, path);
  EXPECT_EQ(corpus.files().size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(QaCorpus, LoadMissingFileThrowsIoError) {
  EXPECT_THROW(qa::Corpus::load("/nonexistent/qa/entry.bin"), IoError);
}

TEST(QaCorpus, EmptyDirNameIsAConfigError) {
  EXPECT_THROW(qa::Corpus(""), ConfigError);
}

TEST(QaMinimize, ShrinksToTheMinimalInterestingCore) {
  Bytes input(100, 0x00);
  input[57] = 0x42;
  const auto has_marker = [](const Bytes& b) {
    return std::find(b.begin(), b.end(), 0x42) != b.end();
  };
  const Bytes minimal = qa::minimize(input, has_marker);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 0x42);
}

TEST(QaMinimize, ReturnsInputUnchangedWhenNotInteresting) {
  const Bytes input = sample_text(64, 43);
  const Bytes out = qa::minimize(input, [](const Bytes&) { return false; });
  EXPECT_EQ(out, input);
}

TEST(QaMinimize, PreservesMultiByteProperty) {
  // The property needs two separated markers; minimization must keep both.
  Bytes input(64, 0x00);
  input[10] = 0x11;
  input[50] = 0x22;
  const auto both = [](const Bytes& b) {
    return std::find(b.begin(), b.end(), 0x11) != b.end() &&
           std::find(b.begin(), b.end(), 0x22) != b.end();
  };
  const Bytes minimal = qa::minimize(input, both);
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(both(minimal));
}

// ------------------------------------------------------------- QaOracle

TEST(QaOracle, GeneratorsAreDeterministicAndCoverRegimes) {
  const auto a = qa::seed_payloads(1024, 7);
  const auto b = qa::seed_payloads(1024, 7);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 6u);
  std::set<std::string> tags;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_STREQ(a[i].tag, b[i].tag);
    EXPECT_EQ(a[i].data, b[i].data);
    EXPECT_FALSE(a[i].data.empty()) << a[i].tag;
    tags.insert(a[i].tag);
  }
  EXPECT_EQ(tags.size(), a.size());  // regime tags are distinct
}

TEST(QaOracle, CleanInputsPassEveryOracle) {
  const CodecRegistry registry = CodecRegistry::with_builtins();
  for (const auto& [tag, data] : qa::seed_payloads(2048, 3)) {
    for (const MethodId id : paper_methods()) {
      const qa::Verdict rt = qa::codec_roundtrip(id, data);
      EXPECT_TRUE(rt.ok) << tag << ": " << rt.detail;
      const qa::Verdict xv = qa::frame_cross_version(id, data, 12345, registry);
      EXPECT_TRUE(xv.ok) << tag << ": " << xv.detail;
    }
    const qa::Verdict z = qa::zlib_agreement(data);
    EXPECT_TRUE(z.ok) << tag << ": " << z.detail;
  }
  const qa::Verdict p = qa::pbio_survives(qa::seed_pbio_stream(3));
  EXPECT_TRUE(p.ok) << p.detail;
  const qa::Verdict e = qa::event_survives(qa::seed_event_wire(3));
  EXPECT_TRUE(e.ok) << e.detail;
}

TEST(QaOracle, CrossVersionHoldsAtVarintWidthBoundarySequences) {
  const CodecRegistry registry = CodecRegistry::with_builtins();
  const Bytes data = sample_text(1024, 19);
  for (const std::uint64_t seq :
       {std::uint64_t{0}, std::uint64_t{0x7F}, std::uint64_t{0x80},
        std::uint64_t{0x3FFF}, std::uint64_t{0x4000},
        std::uint64_t{0xFFFFFFFF}}) {
    const qa::Verdict v = qa::frame_cross_version(MethodId::kLempelZiv, data,
                                                  seq, registry);
    EXPECT_TRUE(v.ok) << "seq " << seq << ": " << v.detail;
  }
}

TEST(QaOracle, MutatedFramesNeverBreakTheSurvivalOracle) {
  const CodecRegistry registry = CodecRegistry::with_builtins();
  const CodecPtr codec = make_codec(MethodId::kBurrowsWheeler);
  const Bytes framed = frame_compress_seq(*codec, sample_text(2048, 23), 99);
  Rng rng(47);
  for (int i = 0; i < qa::fuzz_iterations(60); ++i) {
    const Bytes bad = qa::mutate_frame(framed, rng);
    const qa::Verdict v = qa::frame_survives(bad, registry);
    EXPECT_TRUE(v.ok) << v.detail;
  }
}

TEST(QaOracle, MutatedContainersStayWithinDecoderBounds) {
  const Bytes data = sample_text(2048, 27);
  Rng rng(53);
  for (const MethodId id : paper_methods()) {
    const CodecPtr codec = make_codec(id);
    const Bytes packed = codec->compress(data);
    for (int i = 0; i < 30; ++i) {
      const Bytes bad = qa::mutate_container(packed, rng);
      const qa::Verdict v = qa::decoder_bounds(id, bad, data.size());
      EXPECT_TRUE(v.ok) << v.detail;
    }
  }
}

TEST(QaOracle, SerialAndParallelWireStreamsAreByteIdentical) {
  const Bytes data = sample_text(8 * 1024, 31);
  std::size_t blocks = 0;
  const qa::Verdict v = qa::serial_parallel_identity(
      data, MethodId::kLempelZiv, 4, 1024, &blocks);
  EXPECT_TRUE(v.ok) << v.detail;
  EXPECT_EQ(blocks, 8u);
}

TEST(QaOracle, AdaptivePathDeliversIdenticalPayloadAcrossWorkerCounts) {
  const Bytes data = sample_text(8 * 1024, 37);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const qa::Verdict v = qa::serial_parallel_adaptive(data, workers, 1024);
    EXPECT_TRUE(v.ok) << workers << " workers: " << v.detail;
  }
}

// --------------------------------------------------------------- QaSoak

TEST(QaSoak, ShortFaultedSoakRunsWithZeroViolations) {
  qa::SoakConfig config;
  config.rounds = 3;
  config.workers = 2;
  config.seed = 11;
  const qa::SoakReport report = qa::run_soak(config);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_GT(report.events_published, 0u);
  EXPECT_EQ(report.events_delivered + report.events_unrecovered,
            report.events_published);
  EXPECT_GT(report.blocks_sent, 0u);
  EXPECT_EQ(report.blocks_recovered + report.blocks_abandoned,
            report.blocks_sent);
}

TEST(QaSoak, SoakIsDeterministicForAFixedSeed) {
  qa::SoakConfig config;
  config.rounds = 2;
  config.workers = 2;
  config.seed = 77;
  // Adaptive method choices feed on real wall-clock compression timings,
  // so two runs may frame blocks differently; restrict the fault mix to
  // content-independent classes (per-message draws) so the recovery flow
  // and every counter below are pure functions of the seed.
  config.bit_flip_prob = 0;
  config.truncate_prob = 0;
  const qa::SoakReport a = qa::run_soak(config);
  const qa::SoakReport b = qa::run_soak(config);
  EXPECT_EQ(a.events_published, b.events_published);
  EXPECT_EQ(a.events_delivered, b.events_delivered);
  EXPECT_EQ(a.blocks_sent, b.blocks_sent);
  EXPECT_EQ(a.blocks_recovered, b.blocks_recovered);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(QaSoak, RejectsUnusableConfigs) {
  qa::SoakConfig bad;
  bad.block_size = 0;
  EXPECT_THROW(qa::run_soak(bad), ConfigError);
  qa::SoakConfig idle;
  idle.events_per_round = 0;
  idle.blocks_per_round = 0;
  EXPECT_THROW(qa::run_soak(idle), ConfigError);
  qa::SoakConfig never;
  never.seconds = 0;
  never.rounds = 0;
  EXPECT_THROW(qa::run_soak(never), ConfigError);
}

}  // namespace
}  // namespace acex
