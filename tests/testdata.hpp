#pragma once

// Shared data generators for acex tests: each produces a deterministic
// buffer with a distinct statistical character, so parameterized suites can
// sweep codecs across the regimes the paper distinguishes (low entropy,
// string repetitions, incompressible, ...).

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::testdata {

/// Identifier -> generator map entry.
struct Pattern {
  const char* name;
  Bytes (*make)(std::size_t size, std::uint64_t seed);
};

inline Bytes zeros(std::size_t size, std::uint64_t) { return Bytes(size, 0); }

inline Bytes single_byte(std::size_t size, std::uint64_t) {
  return Bytes(size, 0xAB);
}

inline Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  return rng.bytes(size);
}

/// Low-entropy but unstructured: heavily skewed byte distribution, no
/// repeats — Huffman/arithmetic territory.
inline Bytes low_entropy(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) {
    const double u = rng.uniform();
    if (u < 0.55) {
      b = 'e';
    } else if (u < 0.8) {
      b = static_cast<std::uint8_t>('a' + rng.below(4));
    } else {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return out;
}

/// Repetitive text: a handful of phrases repeated with small variations —
/// LZ/BWT territory, like the paper's transactional data.
inline Bytes repetitive_text(std::size_t size, std::uint64_t seed) {
  static const char* kPhrases[] = {
      "FLIGHT DL1027 DEPARTED ATL ON TIME; ",
      "GATE CHANGE B7 -> C12 CONFIRMED BY OPS; ",
      "BAGGAGE TRANSFER COMPLETE FOR PNR X9Q4ZL; ",
      "WEATHER HOLD LIFTED AT HUB; ",
  };
  Rng rng(seed);
  Bytes out;
  out.reserve(size + 64);
  while (out.size() < size) {
    const char* phrase = kPhrases[rng.below(4)];
    for (const char* p = phrase; *p; ++p) {
      out.push_back(static_cast<std::uint8_t>(*p));
    }
    if (rng.chance(0.2)) {
      out.push_back(static_cast<std::uint8_t>('0' + rng.below(10)));
    }
  }
  out.resize(size);
  return out;
}

/// Exact periodicity stresses BWT's rotation sort degenerate case.
inline Bytes periodic(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t period = 1 + rng.below(7);
  Bytes unit = rng.bytes(period);
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    out.insert(out.end(), unit.begin(), unit.end());
  }
  out.resize(size);
  return out;
}

/// Long runs with occasional breaks: RLE and match-extension paths.
inline Bytes long_runs(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const auto b = static_cast<std::uint8_t>(rng.below(4));
    const std::size_t run = 1 + rng.below(600);
    out.insert(out.end(), std::min(run, size - out.size()), b);
  }
  return out;
}

/// Bytes 254/255 everywhere: exercises the RLE escape/sentinel machinery.
inline Bytes high_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(253 + rng.below(3));  // 253, 254, 255
  }
  return out;
}

/// Sawtooth covering the full alphabet: every symbol used, mild structure.
inline Bytes all_bytes(std::size_t size, std::uint64_t) {
  Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  return out;
}

/// Binary float-like data: pseudo-random mantissas with correlated high
/// bytes, approximating the molecular coordinates of Fig. 6.
inline Bytes float_like(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  out.reserve(size + 4);
  float x = 0.0f;
  while (out.size() < size) {
    x += static_cast<float>(rng.gaussian()) * 0.01f;
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof x);
    __builtin_memcpy(&bits, &x, sizeof bits);
    for (int k = 0; k < 4; ++k) {
      out.push_back(static_cast<std::uint8_t>(bits >> (8 * k)));
    }
  }
  out.resize(size);
  return out;
}

inline const std::vector<Pattern>& patterns() {
  static const std::vector<Pattern> kPatterns = {
      {"zeros", zeros},
      {"single_byte", single_byte},
      {"random", random_bytes},
      {"low_entropy", low_entropy},
      {"repetitive_text", repetitive_text},
      {"periodic", periodic},
      {"long_runs", long_runs},
      {"high_bytes", high_bytes},
      {"all_bytes", all_bytes},
      {"float_like", float_like},
  };
  return kPatterns;
}

}  // namespace acex::testdata
