// Tests for the rate-limited transport decorator and the pipelined
// (compress-ahead) sender mode over real sockets.

#include <gtest/gtest.h>

#include <thread>

#include "adaptive/pipeline.hpp"
#include "transport/rate_limit.hpp"
#include "transport/tcp_transport.hpp"
#include "util/error.hpp"
#include "workloads/transactions.hpp"

namespace acex {
namespace {

// ------------------------------------------------------------ rate limit

TEST(RateLimit, EnforcesAverageRate) {
  auto [a, b] = transport::socket_pair();
  transport::RateLimitedTransport limited(a, /*bytes_per_second=*/2e6,
                                          /*burst_bytes=*/16 * 1024);

  std::thread drain([&b] {
    while (b.receive().has_value()) {
    }
  });

  MonotonicClock clock;
  const Stopwatch sw(clock);
  const Bytes chunk(16 * 1024, 0x5A);
  constexpr int kChunks = 50;  // 800 KB at 2 MB/s: ~0.4 s
  for (int i = 0; i < kChunks; ++i) limited.send(chunk);
  const Seconds elapsed = sw.elapsed();
  a.shutdown_send();
  drain.join();

  const double rate =
      static_cast<double>(chunk.size()) * kChunks / elapsed;
  EXPECT_LT(rate, 3.5e6);  // at most modestly above the configured rate
  EXPECT_GT(rate, 0.8e6);  // but the limiter must not stall either
}

TEST(RateLimit, BurstPassesImmediately) {
  auto [a, b] = transport::socket_pair();
  transport::RateLimitedTransport limited(a, 1000.0, 64 * 1024);
  MonotonicClock clock;
  const Stopwatch sw(clock);
  limited.send(Bytes(32 * 1024, 1));  // within the initial burst
  EXPECT_LT(sw.elapsed(), 0.1);
  EXPECT_TRUE(b.receive().has_value());
}

TEST(RateLimit, OversizedMessageStillProgresses) {
  auto [a, b] = transport::socket_pair();
  transport::RateLimitedTransport limited(a, 1e7, 1024);
  std::thread drain([&b] { (void)b.receive(); });
  limited.send(Bytes(8 * 1024, 2));  // 8x the burst
  drain.join();
}

TEST(RateLimit, ReceivePassesThrough) {
  auto [a, b] = transport::socket_pair();
  transport::RateLimitedTransport limited(a, 1e6);
  b.send(to_bytes("hello"));
  const auto got = limited.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "hello");
}

TEST(RateLimit, RejectsBadParameters) {
  auto [a, b] = transport::socket_pair();
  EXPECT_THROW(transport::RateLimitedTransport(a, 0.0), ConfigError);
  EXPECT_THROW(transport::RateLimitedTransport(a, -5.0), ConfigError);
  EXPECT_THROW(transport::RateLimitedTransport(a, 1e6, 0), ConfigError);
}

// ------------------------------------------------------- pipelined sender

TEST(PipelinedSender, RoundTripsOverSockets) {
  auto [client, server] = transport::socket_pair();
  workloads::TransactionGenerator gen(1);
  const Bytes data = gen.text_block(2 * 1024 * 1024 + 12345);  // odd tail

  std::thread sender_thread([&client, &data] {
    adaptive::AdaptiveConfig config;
    config.initial_bandwidth_Bps = 1e6;  // pessimistic: will compress
    adaptive::AdaptiveSender sender(client, config);
    const auto report = sender.send_all_pipelined(data);
    EXPECT_EQ(report.original_bytes, data.size());
    EXPECT_EQ(report.blocks.size(), 17u);
    // Indices must be sequential despite the overlap.
    for (std::size_t i = 0; i < report.blocks.size(); ++i) {
      EXPECT_EQ(report.blocks[i].index, i);
    }
    client.shutdown_send();
  });

  adaptive::AdaptiveReceiver receiver(server);
  const Bytes restored = receiver.receive_available();
  sender_thread.join();
  EXPECT_EQ(restored, data);
}

TEST(PipelinedSender, EmptyInputYieldsEmptyReport) {
  auto [client, server] = transport::socket_pair();
  adaptive::AdaptiveSender sender(client);
  const auto report = sender.send_all_pipelined(Bytes{});
  EXPECT_TRUE(report.blocks.empty());
  EXPECT_EQ(report.total_seconds, 0.0);
}

TEST(PipelinedSender, OverlapsCompressionWithThrottledSend) {
  // On a throttled link where wire time dominates, the pipelined total
  // must not exceed the serial total (and usually beats it by roughly the
  // compression time). Generous tolerance: this is a wall-clock test.
  workloads::TransactionGenerator gen(2);
  const Bytes data = gen.text_block(1024 * 1024);

  const auto run = [&](bool pipelined) {
    auto [client, server] = transport::socket_pair();
    transport::RateLimitedTransport limited(client, 1.5e6, 32 * 1024);
    std::thread drain([&server] {
      while (server.receive().has_value()) {
      }
    });
    adaptive::AdaptiveConfig config;
    config.initial_bandwidth_Bps = 1.5e6;
    adaptive::AdaptiveSender sender(limited, config);
    const auto report = pipelined ? sender.send_all_pipelined(data)
                                  : sender.send_all(data);
    client.shutdown_send();
    drain.join();
    return report.total_seconds;
  };

  const Seconds serial = run(false);
  const Seconds overlapped = run(true);
  EXPECT_LT(overlapped, serial * 1.15);
}

}  // namespace
}  // namespace acex
